file(REMOVE_RECURSE
  "libfuseme_cost.a"
)
