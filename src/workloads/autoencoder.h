// AutoEncoder workload (paper §6.5): a 2-layer encoder / 2-layer decoder
// with sigmoid activations, one DAG per mini-batch step covering the
// forward pass, squared-error loss, and the full backward pass (weight
// gradients).  Bias terms are omitted (they need row-broadcast adds, which
// neither the cost model nor the comparison depends on).

#ifndef FUSEME_WORKLOADS_AUTOENCODER_H_
#define FUSEME_WORKLOADS_AUTOENCODER_H_

#include <cstdint>

#include "ir/dag.h"

namespace fuseme {

struct AutoEncoderQuery {
  Dag dag;
  // Leaves.
  NodeId X;                    // batch × features
  NodeId W1, W2, W3, W4;       // h1×f, h2×h1, h1×h2, f×h1
  // Forward activations.
  NodeId H1, H2, H3, Xhat;
  // Loss and gradients (all outputs).
  NodeId loss;                 // sum((Xhat - X)^2)
  NodeId gW1, gW2, gW3, gW4;
};

AutoEncoderQuery BuildAutoEncoder(std::int64_t batch, std::int64_t features,
                                  std::int64_t h1, std::int64_t h2);

}  // namespace fuseme

#endif  // FUSEME_WORKLOADS_AUTOENCODER_H_
