// Cost model for cuboid-based fused operators (paper §3.3).
//
// Implements MemEst (Alg. 1), NetEst (Eq. 4), ComEst (Eq. 5) and Cost
// (Eq. 2).  All three walk the partial-plan tree recursively: the main
// matrix multiplication v_mm induces L/R/O subspaces; a nested matmul
// inside a subspace spawns its own model space with the collapsed
// parameters (P,1,R) / (1,Q,R) / (P,Q,1), and replication factors compound
// multiplicatively down the recursion (a block consumed two spaces deep is
// replicated by the product of the per-level factors — this is what makes
// *distant* matmuls expensive and drives the exploitation phase, §4.2).

#ifndef FUSEME_COST_COST_MODEL_H_
#define FUSEME_COST_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "fusion/partial_plan.h"
#include "runtime/cluster_config.h"

namespace fuseme {

/// (P,Q,R)-cuboid partitioning parameters, plus the k-slice grouping
/// factor W (slices per mask-replica group).  The R k-slices are processed
/// as ceil(R/W) *groups*; each group is one leader task that evaluates its
/// W slices sequentially, sharing one fetched copy of the sparse mask and
/// merging its partials locally before the cross-task aggregation.  W
/// trades task parallelism on the R axis against mask-replication and
/// aggregation traffic — the replication knob of distributed SpMM/SDDMM
/// partitioning.  W = 1 (the default) reproduces the plain (P,Q,R) cuboid
/// exactly; W only matters when R > 1 and a sparse driver exists, so the
/// optimizer searches it only then.
struct Cuboid {
  std::int64_t P = 1;
  std::int64_t Q = 1;
  std::int64_t R = 1;
  std::int64_t W = 1;

  std::int64_t volume() const { return P * Q * R; }
  /// Number of k-slice groups (= leader tasks per (p,q) pair).
  std::int64_t groups() const { return W <= 1 ? R : (R + W - 1) / W; }
  /// Number of schedulable tasks: P·Q·groups().
  std::int64_t effective_volume() const { return P * Q * groups(); }
  bool operator==(const Cuboid&) const = default;
  std::string ToString() const;
};

/// Block-grid dimensions of a plan's main matmul: I×J output blocks with K
/// common-dimension blocks.  For a plan with no matmul, I×J is the root's
/// block grid and K = 1.
struct GridDims {
  std::int64_t I = 1;
  std::int64_t J = 1;
  std::int64_t K = 1;
};

/// Estimated FLOPs to compute operator node `id` once at full scale
/// (numOp(v) in Eq. 5).
std::int64_t NumOp(const Dag& dag, NodeId id);

/// Serialized size of node `id`'s value in bytes (size(v) in Eqs. 3-4).
std::int64_t SizeOf(const Dag& dag, NodeId id);

class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config) : config_(config) {}

  const ClusterConfig& config() const { return config_; }

  /// A model whose task memory budget is scaled by `factor` (clamped to
  /// at least one byte).  The OOM degradation ladder searches under a
  /// tightened model so the optimizer picks a finer cuboid — a larger
  /// (P,Q,R) grid with a smaller per-task footprint — while the runtime
  /// keeps enforcing the real configured budget.
  CostModel WithBudgetFactor(double factor) const {
    ClusterConfig scaled = config_;
    scaled.task_memory_budget = std::max<std::int64_t>(
        static_cast<std::int64_t>(
            static_cast<double>(scaled.task_memory_budget) * factor),
        1);
    return CostModel(scaled);
  }

  /// Grid dims of `plan`'s main matmul under the configured block size.
  GridDims Grid(const PartialPlan& plan) const;

  /// Estimated memory per task in bytes (Alg. 1 + Eq. 3): partitioned
  /// slices of every materialized input plus the output partition.
  double MemEst(const Cuboid& c, const PartialPlan& plan) const;

  /// Estimated total network traffic in bytes (Eq. 4): every external
  /// input is shipped `div`-partitioned but replicated by the compound
  /// replication factor of its space.
  double NetEst(const Cuboid& c, const PartialPlan& plan) const;

  /// Estimated total FLOPs across the cluster (Eq. 5): operator work is
  /// repeated by the compound replication factor of its space; the main
  /// matmul of each space level is computed once per replica of that level.
  double ComEst(const Cuboid& c, const PartialPlan& plan) const;

  /// Eq. 2: max(NetEst/(N·B̂n), ComEst/(N·B̂c)), in seconds.
  double Cost(const Cuboid& c, const PartialPlan& plan) const;

  /// Matrix-aggregation shuffle bytes for R > 1: each output block has R
  /// partial results and (R-1)/R of them travel to the r=0 tasks.  When a
  /// sparse driver masks the matmul, partials are sparse and this term is
  /// small — one reason fusing the mask with the matmul makes the R axis
  /// cheap.  (An extension of Eq. 4, which counts consolidation only; the
  /// engine charges this traffic, so the optimizer must see it too.)
  double AggBytes(const Cuboid& c, const PartialPlan& plan) const;

  /// All estimates in one pass (cheaper when the caller needs them
  /// together, as the optimizer does).
  struct Estimates {
    double mem_per_task = 0;
    double net_bytes = 0;   // consolidation traffic (Eq. 4)
    double agg_bytes = 0;   // aggregation traffic (see AggBytes)
    double flops = 0;
  };
  Estimates Estimate(const Cuboid& c, const PartialPlan& plan) const;

 private:
  struct Accum {
    double mem = 0;
    double net = 0;
    double com = 0;
  };

  /// Recursive walk described in the header comment.  `subset` is the
  /// member set of the current space, `out_root` its output node, `c` the
  /// (possibly collapsed) cuboid parameters for the space, `rep` the
  /// compound replication factor, and `div` the partition count applied to
  /// materialized values living in this space.
  void Walk(const PartialPlan& plan, const struct SparseDriver& driver,
            const std::vector<NodeId>& subset, NodeId out_root,
            const Cuboid& c, double rep, double div, Accum* acc) const;

  void ChargeExternal(const Dag& dag, NodeId input, double rep, double div,
                      Accum* acc) const;

  ClusterConfig config_;
};

}  // namespace fuseme

#endif  // FUSEME_COST_COST_MODEL_H_
