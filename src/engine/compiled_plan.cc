#include "engine/compiled_plan.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/json_util.h"
#include "engine/solver_registry.h"
#include "verify/plan_verifier.h"

namespace fuseme {

namespace {

/// Shortest round-trip-exact rendering of a double ("%.17g", the same
/// convention the metric/trace exporters use).
std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// `forced` includes kAuto (the common case), which OperatorKindName maps
/// to "?" — give it a stable spelling instead.
std::string ForcedKindName(OperatorKind kind) {
  return kind == OperatorKind::kAuto ? "auto"
                                     : std::string(OperatorKindName(kind));
}

template <typename E, typename NameFn>
Result<E> ParseEnum(const char* what, const std::string& token, int max_value,
                    NameFn name) {
  for (int i = 0; i <= max_value; ++i) {
    const E e = static_cast<E>(i);
    if (name(e) == token) return e;
  }
  return Status::InvalidArgument(std::string("compiled plan JSON: unknown ") +
                                 what + " \"" + token + "\"");
}

Result<SystemMode> ParseSystemMode(const std::string& s) {
  return ParseEnum<SystemMode>(
      "system", s, static_cast<int>(SystemMode::kTensorFlow), SystemModeName);
}

Result<OperatorKind> ParseForcedKind(const std::string& s) {
  if (s == "auto") return OperatorKind::kAuto;
  return ParseEnum<OperatorKind>(
      "operator", s, static_cast<int>(OperatorKind::kCpmm), OperatorKindName);
}

Result<OperatorKind> ParseStageKind(const std::string& s) {
  FUSEME_ASSIGN_OR_RETURN(const OperatorKind kind, ParseForcedKind(s));
  if (kind == OperatorKind::kAuto) {
    return Status::InvalidArgument(
        "compiled plan JSON: stage operator kind must be resolved, got "
        "\"auto\"");
  }
  return kind;
}

Result<VerifyLevel> ParseVerifyLevel(const std::string& s) {
  return ParseEnum<VerifyLevel>(
      "verify level", s, static_cast<int>(VerifyLevel::kParanoid),
      VerifyLevelName);
}

Result<StatusCode> ParseStatusCode(const std::string& s) {
  return ParseEnum<StatusCode>(
      "status code", s, static_cast<int>(StatusCode::kInternal),
      StatusCodeName);
}

Result<OpKind> ParseOpKind(const std::string& s) {
  return ParseEnum<OpKind>("node kind", s,
                           static_cast<int>(OpKind::kTranspose), OpKindName);
}

Result<UnaryFn> ParseUnaryFn(const std::string& s) {
  return ParseEnum<UnaryFn>(
      "unary fn", s, static_cast<int>(UnaryFn::kReciprocal), UnaryFnName);
}

Result<BinaryFn> ParseBinaryFn(const std::string& s) {
  return ParseEnum<BinaryFn>("binary fn", s,
                             static_cast<int>(BinaryFn::kLess), BinaryFnName);
}

Result<AggFn> ParseAggFn(const std::string& s) {
  return ParseEnum<AggFn>("agg fn", s, static_cast<int>(AggFn::kMax),
                          AggFnName);
}

Result<AggAxis> ParseAggAxis(const std::string& s) {
  return ParseEnum<AggAxis>("agg axis", s, static_cast<int>(AggAxis::kCol),
                            AggAxisName);
}

Result<bool> ReadBool(JsonReader& r) {
  if (r.TryConsume('t')) {
    FUSEME_RETURN_IF_ERROR(r.Expect('r'));
    FUSEME_RETURN_IF_ERROR(r.Expect('u'));
    FUSEME_RETURN_IF_ERROR(r.Expect('e'));
    return true;
  }
  if (r.TryConsume('f')) {
    FUSEME_RETURN_IF_ERROR(r.Expect('a'));
    FUSEME_RETURN_IF_ERROR(r.Expect('l'));
    FUSEME_RETURN_IF_ERROR(r.Expect('s'));
    FUSEME_RETURN_IF_ERROR(r.Expect('e'));
    return false;
  }
  return r.Error("expected boolean");
}

Result<std::vector<std::int64_t>> ReadIntArray(JsonReader& r) {
  std::vector<std::int64_t> out;
  FUSEME_RETURN_IF_ERROR(r.Expect('['));
  if (r.TryConsume(']')) return out;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
    out.push_back(v);
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect(']'));
  return out;
}

void AppendNodeJson(std::string* out, const Node& n) {
  *out += "{\"kind\":\"" + std::string(OpKindName(n.kind)) + "\"";
  switch (n.kind) {
    case OpKind::kInput:
      *out += ",\"name\":\"" + JsonEscape(n.name) + "\"";
      break;
    case OpKind::kScalar:
      *out += ",\"value\":" + JsonDouble(n.scalar);
      break;
    case OpKind::kUnary:
      *out += ",\"fn\":\"" + std::string(UnaryFnName(n.unary_fn)) + "\"";
      break;
    case OpKind::kBinary:
      *out += ",\"fn\":\"" + std::string(BinaryFnName(n.binary_fn)) + "\"";
      break;
    case OpKind::kUnaryAgg:
      *out += ",\"fn\":\"" + std::string(AggFnName(n.agg_fn)) + "\"";
      *out += ",\"axis\":\"" + std::string(AggAxisName(n.agg_axis)) + "\"";
      break;
    case OpKind::kMatMul:
    case OpKind::kTranspose:
      break;
  }
  if (!n.inputs.empty()) {
    *out += ",\"inputs\":[";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) *out += ",";
      *out += std::to_string(n.inputs[i]);
    }
    *out += "]";
  }
  // Inferred metadata, recorded so FromJson can validate the rebuilt DAG
  // against what the artifact was compiled for.
  *out += ",\"rows\":" + std::to_string(n.rows);
  *out += ",\"cols\":" + std::to_string(n.cols);
  *out += ",\"nnz\":" + std::to_string(n.nnz);
  *out += "}";
}

void AppendPredictionJson(std::string* out, const StagePrediction& p) {
  *out += "{\"cuboid\":[" + std::to_string(p.cuboid.P) + "," +
          std::to_string(p.cuboid.Q) + "," + std::to_string(p.cuboid.R) +
          "," + std::to_string(p.cuboid.W) + "]";
  *out += ",\"num_tasks\":" + std::to_string(p.num_tasks);
  *out += ",\"net_bytes\":" + JsonDouble(p.net_bytes);
  *out += ",\"agg_bytes\":" + JsonDouble(p.agg_bytes);
  *out += ",\"flops\":" + JsonDouble(p.flops);
  *out += ",\"mem_per_task\":" + JsonDouble(p.mem_per_task);
  *out += ",\"cost_seconds\":" + JsonDouble(p.cost_seconds);
  *out += "}";
}

void AppendClusterJson(std::string* out, const ClusterConfig& c) {
  *out += "{\"num_nodes\":" + std::to_string(c.num_nodes);
  *out += ",\"tasks_per_node\":" + std::to_string(c.tasks_per_node);
  *out += ",\"task_memory_budget\":" + std::to_string(c.task_memory_budget);
  *out += ",\"net_bandwidth\":" + JsonDouble(c.net_bandwidth);
  *out += ",\"compute_bandwidth\":" + JsonDouble(c.compute_bandwidth);
  *out += ",\"block_size\":" + std::to_string(c.block_size);
  *out += ",\"timeout_seconds\":" + JsonDouble(c.timeout_seconds);
  *out += ",\"task_launch_overhead\":" + JsonDouble(c.task_launch_overhead);
  *out += ",\"shuffle_cpu_factor\":" + JsonDouble(c.shuffle_cpu_factor);
  *out += ",\"overlap_factor\":" + JsonDouble(c.overlap_factor);
  *out += ",\"prefetch_depth\":" + std::to_string(c.prefetch_depth);
  *out += ",\"emulated_shuffle_seconds_per_byte\":" +
          JsonDouble(c.emulated_shuffle_seconds_per_byte);
  *out += ",\"local_threads\":" + std::to_string(c.local_threads);
  *out += "}";
}

Status ReadClusterJson(JsonReader& r, ClusterConfig* c) {
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return Status::OK();
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "num_nodes") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      c->num_nodes = static_cast<int>(v);
    } else if (key == "tasks_per_node") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      c->tasks_per_node = static_cast<int>(v);
    } else if (key == "task_memory_budget") {
      FUSEME_ASSIGN_OR_RETURN(c->task_memory_budget, r.ReadInt());
    } else if (key == "net_bandwidth") {
      FUSEME_ASSIGN_OR_RETURN(c->net_bandwidth, r.ReadNumber());
    } else if (key == "compute_bandwidth") {
      FUSEME_ASSIGN_OR_RETURN(c->compute_bandwidth, r.ReadNumber());
    } else if (key == "block_size") {
      FUSEME_ASSIGN_OR_RETURN(c->block_size, r.ReadInt());
    } else if (key == "timeout_seconds") {
      FUSEME_ASSIGN_OR_RETURN(c->timeout_seconds, r.ReadNumber());
    } else if (key == "task_launch_overhead") {
      FUSEME_ASSIGN_OR_RETURN(c->task_launch_overhead, r.ReadNumber());
    } else if (key == "shuffle_cpu_factor") {
      FUSEME_ASSIGN_OR_RETURN(c->shuffle_cpu_factor, r.ReadNumber());
    } else if (key == "overlap_factor") {
      FUSEME_ASSIGN_OR_RETURN(c->overlap_factor, r.ReadNumber());
    } else if (key == "prefetch_depth") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      c->prefetch_depth = static_cast<int>(v);
    } else if (key == "emulated_shuffle_seconds_per_byte") {
      FUSEME_ASSIGN_OR_RETURN(c->emulated_shuffle_seconds_per_byte,
                              r.ReadNumber());
    } else if (key == "local_threads") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      c->local_threads = static_cast<int>(v);
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  return r.Expect('}');
}

/// One parsed-but-not-yet-rebuilt DAG node.
struct NodeRecord {
  OpKind kind = OpKind::kInput;
  std::string name;
  std::string fn;
  std::string axis;
  double value = 0.0;
  std::vector<std::int64_t> inputs;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
};

Result<NodeRecord> ReadNodeRecord(JsonReader& r) {
  NodeRecord rec;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return rec;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "kind") {
      FUSEME_ASSIGN_OR_RETURN(const std::string s, r.ReadString());
      FUSEME_ASSIGN_OR_RETURN(rec.kind, ParseOpKind(s));
    } else if (key == "name") {
      FUSEME_ASSIGN_OR_RETURN(rec.name, r.ReadString());
    } else if (key == "fn") {
      FUSEME_ASSIGN_OR_RETURN(rec.fn, r.ReadString());
    } else if (key == "axis") {
      FUSEME_ASSIGN_OR_RETURN(rec.axis, r.ReadString());
    } else if (key == "value") {
      FUSEME_ASSIGN_OR_RETURN(rec.value, r.ReadNumber());
    } else if (key == "inputs") {
      FUSEME_ASSIGN_OR_RETURN(rec.inputs, ReadIntArray(r));
    } else if (key == "rows") {
      FUSEME_ASSIGN_OR_RETURN(rec.rows, r.ReadInt());
    } else if (key == "cols") {
      FUSEME_ASSIGN_OR_RETURN(rec.cols, r.ReadInt());
    } else if (key == "nnz") {
      FUSEME_ASSIGN_OR_RETURN(rec.nnz, r.ReadInt());
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  return rec;
}

/// Replays one node record through the Dag builders.
Result<NodeId> RebuildNode(Dag* dag, const NodeRecord& rec, NodeId expected) {
  auto context = [&](Status s) {
    return Status::InvalidArgument("compiled plan dag node v" +
                                   std::to_string(expected) + ": " +
                                   s.message());
  };
  auto arity = [&](std::size_t want) -> Status {
    if (rec.inputs.size() != want) {
      return Status::InvalidArgument(
          "compiled plan dag node v" + std::to_string(expected) +
          ": expected " + std::to_string(want) + " input(s), got " +
          std::to_string(rec.inputs.size()));
    }
    return Status::OK();
  };
  auto in = [&](std::size_t i) { return static_cast<NodeId>(rec.inputs[i]); };
  Result<NodeId> id = Status::Internal("unset");
  switch (rec.kind) {
    case OpKind::kInput:
      id = dag->AddInput(rec.name, rec.rows, rec.cols, rec.nnz);
      break;
    case OpKind::kScalar:
      id = dag->AddScalar(rec.value);
      break;
    case OpKind::kUnary: {
      FUSEME_RETURN_IF_ERROR(arity(1));
      FUSEME_ASSIGN_OR_RETURN(const UnaryFn fn, ParseUnaryFn(rec.fn));
      id = dag->AddUnary(fn, in(0));
      break;
    }
    case OpKind::kBinary: {
      FUSEME_RETURN_IF_ERROR(arity(2));
      FUSEME_ASSIGN_OR_RETURN(const BinaryFn fn, ParseBinaryFn(rec.fn));
      id = dag->AddBinary(fn, in(0), in(1));
      break;
    }
    case OpKind::kMatMul:
      FUSEME_RETURN_IF_ERROR(arity(2));
      id = dag->AddMatMul(in(0), in(1));
      break;
    case OpKind::kUnaryAgg: {
      FUSEME_RETURN_IF_ERROR(arity(1));
      FUSEME_ASSIGN_OR_RETURN(const AggFn fn, ParseAggFn(rec.fn));
      FUSEME_ASSIGN_OR_RETURN(const AggAxis axis, ParseAggAxis(rec.axis));
      id = dag->AddUnaryAgg(fn, axis, in(0));
      break;
    }
    case OpKind::kTranspose:
      FUSEME_RETURN_IF_ERROR(arity(1));
      id = dag->AddTranspose(in(0));
      break;
  }
  if (!id.ok()) return context(id.status());
  if (*id != expected) {
    return Status::InvalidArgument(
        "compiled plan dag node v" + std::to_string(expected) +
        ": builder assigned id v" + std::to_string(*id));
  }
  const Node& built = dag->node(*id);
  if (built.rows != rec.rows || built.cols != rec.cols ||
      built.nnz != rec.nnz) {
    return Status::InvalidArgument(
        "compiled plan dag node v" + std::to_string(expected) +
        ": recorded metadata " + std::to_string(rec.rows) + "x" +
        std::to_string(rec.cols) + " (nnz " + std::to_string(rec.nnz) +
        ") does not match the rebuilt node's " +
        std::to_string(built.rows) + "x" + std::to_string(built.cols) +
        " (nnz " + std::to_string(built.nnz) + ")");
  }
  return id;
}

struct PlanRecord {
  std::vector<std::int64_t> members;
  std::int64_t root = kInvalidNode;
};

Result<PlanRecord> ReadPlanRecord(JsonReader& r) {
  PlanRecord rec;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return rec;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "members") {
      FUSEME_ASSIGN_OR_RETURN(rec.members, ReadIntArray(r));
    } else if (key == "root") {
      FUSEME_ASSIGN_OR_RETURN(rec.root, r.ReadInt());
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  return rec;
}

/// Pre-validates a plan record so the checked PartialPlan constructor
/// (which CHECK-fails on malformed regions) is only reached with members
/// it accepts; deeper structural rules stay the verifier's job.
Result<PartialPlan> RebuildPlan(const Dag& dag, const PlanRecord& rec,
                                std::size_t index) {
  auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("compiled plan plan #" +
                                   std::to_string(index) + ": " + why);
  };
  if (rec.members.empty()) return bad("empty member list");
  std::vector<NodeId> members;
  members.reserve(rec.members.size());
  bool root_is_member = false;
  for (const std::int64_t m : rec.members) {
    if (m < 0 || m >= dag.num_nodes()) {
      return bad("member v" + std::to_string(m) + " is not a DAG node");
    }
    const OpKind kind = dag.node(static_cast<NodeId>(m)).kind;
    if (kind == OpKind::kInput || kind == OpKind::kScalar) {
      return bad("member v" + std::to_string(m) + " is a leaf, not an "
                 "operator");
    }
    members.push_back(static_cast<NodeId>(m));
    if (m == rec.root) root_is_member = true;
  }
  if (!root_is_member) {
    return bad("root v" + std::to_string(rec.root) + " is not a member");
  }
  return PartialPlan(&dag, std::move(members),
                     static_cast<NodeId>(rec.root));
}

struct StageRecord {
  std::string kind;
  std::string solver;
  bool refine_cell = false;
  bool has_prediction = false;
  StagePrediction prediction;
  bool has_error = false;
  std::string error_code;
  std::string error_message;
};

Result<StagePrediction> ReadPredictionJson(JsonReader& r) {
  StagePrediction p;
  p.present = true;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return p;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "cuboid") {
      FUSEME_ASSIGN_OR_RETURN(const std::vector<std::int64_t> c,
                              ReadIntArray(r));
      if (c.size() != 4) return r.Error("cuboid must have 4 entries");
      p.cuboid = Cuboid{c[0], c[1], c[2], c[3]};
    } else if (key == "num_tasks") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      p.num_tasks = static_cast<int>(v);
    } else if (key == "net_bytes") {
      FUSEME_ASSIGN_OR_RETURN(p.net_bytes, r.ReadNumber());
    } else if (key == "agg_bytes") {
      FUSEME_ASSIGN_OR_RETURN(p.agg_bytes, r.ReadNumber());
    } else if (key == "flops") {
      FUSEME_ASSIGN_OR_RETURN(p.flops, r.ReadNumber());
    } else if (key == "mem_per_task") {
      FUSEME_ASSIGN_OR_RETURN(p.mem_per_task, r.ReadNumber());
    } else if (key == "cost_seconds") {
      FUSEME_ASSIGN_OR_RETURN(p.cost_seconds, r.ReadNumber());
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  return p;
}

Result<StageRecord> ReadStageRecord(JsonReader& r) {
  StageRecord rec;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return rec;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "kind") {
      FUSEME_ASSIGN_OR_RETURN(rec.kind, r.ReadString());
    } else if (key == "solver") {
      FUSEME_ASSIGN_OR_RETURN(rec.solver, r.ReadString());
    } else if (key == "refine_cell") {
      FUSEME_ASSIGN_OR_RETURN(rec.refine_cell, ReadBool(r));
    } else if (key == "prediction") {
      FUSEME_ASSIGN_OR_RETURN(rec.prediction, ReadPredictionJson(r));
      rec.has_prediction = true;
    } else if (key == "error") {
      rec.has_error = true;
      FUSEME_RETURN_IF_ERROR(r.Expect('{'));
      do {
        FUSEME_ASSIGN_OR_RETURN(const std::string k2, r.ReadString());
        FUSEME_RETURN_IF_ERROR(r.Expect(':'));
        if (k2 == "code") {
          FUSEME_ASSIGN_OR_RETURN(rec.error_code, r.ReadString());
        } else if (k2 == "message") {
          FUSEME_ASSIGN_OR_RETURN(rec.error_message, r.ReadString());
        } else {
          FUSEME_RETURN_IF_ERROR(r.SkipValue());
        }
      } while (r.TryConsume(','));
      FUSEME_RETURN_IF_ERROR(r.Expect('}'));
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  return rec;
}

Result<VerifierDiagnostic> ReadDiagnosticJson(JsonReader& r) {
  VerifierDiagnostic d;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (r.TryConsume('}')) return d;
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "rule") {
      FUSEME_ASSIGN_OR_RETURN(d.rule, r.ReadString());
    } else if (key == "node") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t v, r.ReadInt());
      d.node = static_cast<NodeId>(v);
    } else if (key == "message") {
      FUSEME_ASSIGN_OR_RETURN(d.message, r.ReadString());
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  return d;
}

/// floor(log2(density)) with an out-of-band bucket for empty matrices, so
/// "same shape class" tolerates nnz estimation noise but not a sparsity
/// regime change (the plans and cuboids were costed for the recorded
/// density).
int DensityBucket(std::int64_t nnz, std::int64_t cells) {
  if (cells <= 0 || nnz <= 0) return std::numeric_limits<int>::min();
  const double density =
      static_cast<double>(nnz) / static_cast<double>(cells);
  return static_cast<int>(std::floor(std::log2(density)));
}

}  // namespace

Status CompiledPlan::CheckCompatible(
    const EngineOptions& options,
    const std::map<NodeId, BlockedMatrix>& inputs) const {
  if (options.system != system_) {
    return Status::InvalidArgument(
        "compiled plan was compiled for system " +
        std::string(SystemModeName(system_)) +
        "; the executing engine runs " +
        std::string(SystemModeName(options.system)));
  }
  if (options.analytic != analytic_) {
    return Status::InvalidArgument(
        std::string("compiled plan was compiled in ") +
        (analytic_ ? "analytic" : "real") +
        " mode; the executing engine runs in " +
        (options.analytic ? "analytic" : "real") + " mode");
  }
  // Only the modeling fields matter: the plans, cuboids, and predictions
  // were chosen for them.  Execution-side knobs (prefetch depth, local
  // threads, transfer pacing) are documented result-invariant.
  const ClusterConfig& a = cluster_;
  const ClusterConfig& b = options.cluster;
  auto mismatch = [](const char* field, const std::string& artifact,
                     const std::string& engine) {
    return Status::InvalidArgument(
        std::string("compiled plan cluster mismatch: ") + field + " is " +
        artifact + " in the artifact but " + engine +
        " on the executing engine");
  };
  if (a.num_nodes != b.num_nodes) {
    return mismatch("num_nodes", std::to_string(a.num_nodes),
                    std::to_string(b.num_nodes));
  }
  if (a.tasks_per_node != b.tasks_per_node) {
    return mismatch("tasks_per_node", std::to_string(a.tasks_per_node),
                    std::to_string(b.tasks_per_node));
  }
  if (a.task_memory_budget != b.task_memory_budget) {
    return mismatch("task_memory_budget",
                    std::to_string(a.task_memory_budget),
                    std::to_string(b.task_memory_budget));
  }
  if (a.net_bandwidth != b.net_bandwidth) {
    return mismatch("net_bandwidth", JsonDouble(a.net_bandwidth),
                    JsonDouble(b.net_bandwidth));
  }
  if (a.compute_bandwidth != b.compute_bandwidth) {
    return mismatch("compute_bandwidth", JsonDouble(a.compute_bandwidth),
                    JsonDouble(b.compute_bandwidth));
  }
  if (a.block_size != b.block_size) {
    return mismatch("block_size", std::to_string(a.block_size),
                    std::to_string(b.block_size));
  }
  if (a.timeout_seconds != b.timeout_seconds) {
    return mismatch("timeout_seconds", JsonDouble(a.timeout_seconds),
                    JsonDouble(b.timeout_seconds));
  }
  if (a.task_launch_overhead != b.task_launch_overhead) {
    return mismatch("task_launch_overhead",
                    JsonDouble(a.task_launch_overhead),
                    JsonDouble(b.task_launch_overhead));
  }
  if (a.shuffle_cpu_factor != b.shuffle_cpu_factor) {
    return mismatch("shuffle_cpu_factor", JsonDouble(a.shuffle_cpu_factor),
                    JsonDouble(b.shuffle_cpu_factor));
  }
  if (a.overlap_factor != b.overlap_factor) {
    return mismatch("overlap_factor", JsonDouble(a.overlap_factor),
                    JsonDouble(b.overlap_factor));
  }

  for (const auto& [id, m] : inputs) {
    if (id < 0 || id >= dag_->num_nodes()) continue;
    const Node& n = dag_->node(id);
    if (n.kind != OpKind::kInput) continue;
    if (m.rows() != n.rows || m.cols() != n.cols) {
      return Status::InvalidArgument(
          "compiled plan expects input v" + std::to_string(id) + " (" +
          n.name + ") of shape " + std::to_string(n.rows) + "x" +
          std::to_string(n.cols) + ", got " + std::to_string(m.rows()) +
          "x" + std::to_string(m.cols()));
    }
    const std::int64_t cells = n.rows * n.cols;
    const int compiled_bucket = DensityBucket(n.nnz, cells);
    const int bound_bucket = DensityBucket(m.nnz(), cells);
    std::int64_t gap = static_cast<std::int64_t>(compiled_bucket) -
                       static_cast<std::int64_t>(bound_bucket);
    if (gap < 0) gap = -gap;
    if (gap > 1) {
      return Status::InvalidArgument(
          "compiled plan expects input v" + std::to_string(id) + " (" +
          n.name + ") in density bucket 2^" +
          std::to_string(compiled_bucket) + " (nnz " +
          std::to_string(n.nnz) + "), got bucket 2^" +
          std::to_string(bound_bucket) + " (nnz " +
          std::to_string(m.nnz()) +
          "); re-compile for this sparsity class");
    }
  }
  return Status::OK();
}

std::string CompiledPlan::ToJson() const {
  std::string out = "{\"version\":1";
  out += ",\"system\":\"" + std::string(SystemModeName(system_)) + "\"";
  out += ",\"forced\":\"" + ForcedKindName(forced_) + "\"";
  out += std::string(",\"analytic\":") + (analytic_ ? "true" : "false");
  out += ",\"verify\":\"" + std::string(VerifyLevelName(verify_)) + "\"";
  out += std::string(",\"verified\":") + (table_.verified ? "true" : "false");
  out += ",\"description\":\"" + JsonEscape(table_.description) + "\"";
  out += ",\"cluster\":";
  AppendClusterJson(&out, cluster_);

  out += ",\"dag\":{\"nodes\":[";
  for (NodeId id = 0; id < dag_->num_nodes(); ++id) {
    if (id > 0) out += ",";
    AppendNodeJson(&out, dag_->node(id));
  }
  out += "],\"outputs\":[";
  for (std::size_t i = 0; i < dag_->outputs().size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(dag_->outputs()[i]);
  }
  out += "]}";

  out += ",\"plans\":[";
  for (std::size_t i = 0; i < plans_.plans.size(); ++i) {
    if (i > 0) out += ",";
    const PartialPlan& p = plans_.plans[i];
    out += "{\"members\":[";
    for (std::size_t j = 0; j < p.members().size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(p.members()[j]);
    }
    out += "],\"root\":" + std::to_string(p.root()) + "}";
  }
  out += "]";

  out += ",\"stages\":[";
  for (std::size_t i = 0; i < table_.stages.size(); ++i) {
    if (i > 0) out += ",";
    const CompiledStage& s = table_.stages[i];
    out += "{\"kind\":\"" + std::string(OperatorKindName(s.kind)) + "\"";
    out += ",\"solver\":\"" + JsonEscape(s.solver_id) + "\"";
    out += std::string(",\"refine_cell\":") +
           (s.refine_cell ? "true" : "false");
    if (s.prediction_status.ok()) {
      out += ",\"prediction\":";
      AppendPredictionJson(&out, s.prediction);
    } else {
      out += ",\"error\":{\"code\":\"" +
             std::string(StatusCodeName(s.prediction_status.code())) +
             "\",\"message\":\"" +
             JsonEscape(s.prediction_status.message()) + "\"}";
    }
    out += "}";
  }
  out += "]";

  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < table_.diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    const VerifierDiagnostic& d = table_.diagnostics[i];
    out += "{\"rule\":\"" + JsonEscape(d.rule) + "\"";
    if (d.node != kInvalidNode) out += ",\"node\":" + std::to_string(d.node);
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  out += "]}";
  return out;
}

Result<CompiledPlan> CompiledPlan::FromJson(const std::string& json) {
  JsonReader r(json, "compiled plan JSON");
  CompiledPlan out;
  out.dag_ = std::make_unique<Dag>();
  std::vector<PlanRecord> plan_records;
  std::vector<StageRecord> stage_records;
  bool saw_dag = false;

  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  do {
    FUSEME_ASSIGN_OR_RETURN(const std::string key, r.ReadString());
    FUSEME_RETURN_IF_ERROR(r.Expect(':'));
    if (key == "version") {
      FUSEME_ASSIGN_OR_RETURN(const std::int64_t version, r.ReadInt());
      if (version != 1) {
        return r.Error("unsupported version " + std::to_string(version));
      }
    } else if (key == "system") {
      FUSEME_ASSIGN_OR_RETURN(const std::string s, r.ReadString());
      FUSEME_ASSIGN_OR_RETURN(out.system_, ParseSystemMode(s));
    } else if (key == "forced") {
      FUSEME_ASSIGN_OR_RETURN(const std::string s, r.ReadString());
      FUSEME_ASSIGN_OR_RETURN(out.forced_, ParseForcedKind(s));
    } else if (key == "analytic") {
      FUSEME_ASSIGN_OR_RETURN(out.analytic_, ReadBool(r));
    } else if (key == "verify") {
      FUSEME_ASSIGN_OR_RETURN(const std::string s, r.ReadString());
      FUSEME_ASSIGN_OR_RETURN(out.verify_, ParseVerifyLevel(s));
    } else if (key == "verified") {
      FUSEME_ASSIGN_OR_RETURN(out.table_.verified, ReadBool(r));
    } else if (key == "description") {
      FUSEME_ASSIGN_OR_RETURN(out.table_.description, r.ReadString());
    } else if (key == "cluster") {
      FUSEME_RETURN_IF_ERROR(ReadClusterJson(r, &out.cluster_));
    } else if (key == "dag") {
      saw_dag = true;
      FUSEME_RETURN_IF_ERROR(r.Expect('{'));
      do {
        FUSEME_ASSIGN_OR_RETURN(const std::string k2, r.ReadString());
        FUSEME_RETURN_IF_ERROR(r.Expect(':'));
        if (k2 == "nodes") {
          FUSEME_RETURN_IF_ERROR(r.Expect('['));
          NodeId next = 0;
          if (!r.TryConsume(']')) {
            do {
              FUSEME_ASSIGN_OR_RETURN(const NodeRecord rec,
                                      ReadNodeRecord(r));
              FUSEME_RETURN_IF_ERROR(
                  RebuildNode(out.dag_.get(), rec, next).status());
              ++next;
            } while (r.TryConsume(','));
            FUSEME_RETURN_IF_ERROR(r.Expect(']'));
          }
        } else if (k2 == "outputs") {
          FUSEME_ASSIGN_OR_RETURN(const std::vector<std::int64_t> outputs,
                                  ReadIntArray(r));
          for (const std::int64_t o : outputs) {
            if (o < 0 || o >= out.dag_->num_nodes()) {
              return Status::InvalidArgument(
                  "compiled plan JSON: output v" + std::to_string(o) +
                  " is not a DAG node");
            }
            out.dag_->MarkOutput(static_cast<NodeId>(o));
          }
        } else {
          FUSEME_RETURN_IF_ERROR(r.SkipValue());
        }
      } while (r.TryConsume(','));
      FUSEME_RETURN_IF_ERROR(r.Expect('}'));
    } else if (key == "plans") {
      FUSEME_RETURN_IF_ERROR(r.Expect('['));
      if (!r.TryConsume(']')) {
        do {
          FUSEME_ASSIGN_OR_RETURN(const PlanRecord rec, ReadPlanRecord(r));
          plan_records.push_back(rec);
        } while (r.TryConsume(','));
        FUSEME_RETURN_IF_ERROR(r.Expect(']'));
      }
    } else if (key == "stages") {
      FUSEME_RETURN_IF_ERROR(r.Expect('['));
      if (!r.TryConsume(']')) {
        do {
          FUSEME_ASSIGN_OR_RETURN(const StageRecord rec, ReadStageRecord(r));
          stage_records.push_back(rec);
        } while (r.TryConsume(','));
        FUSEME_RETURN_IF_ERROR(r.Expect(']'));
      }
    } else if (key == "diagnostics") {
      FUSEME_RETURN_IF_ERROR(r.Expect('['));
      if (!r.TryConsume(']')) {
        do {
          FUSEME_ASSIGN_OR_RETURN(const VerifierDiagnostic d,
                                  ReadDiagnosticJson(r));
          out.table_.diagnostics.push_back(d);
        } while (r.TryConsume(','));
        FUSEME_RETURN_IF_ERROR(r.Expect(']'));
      }
    } else {
      FUSEME_RETURN_IF_ERROR(r.SkipValue());
    }
  } while (r.TryConsume(','));
  FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  if (!saw_dag) {
    return Status::InvalidArgument("compiled plan JSON: missing dag");
  }

  // Plans reference the artifact's own DAG copy (stable address — the
  // unique_ptr never reseats).
  for (std::size_t i = 0; i < plan_records.size(); ++i) {
    FUSEME_ASSIGN_OR_RETURN(PartialPlan plan,
                            RebuildPlan(*out.dag_, plan_records[i], i));
    out.plans_.plans.push_back(std::move(plan));
  }
  out.plans_.description = out.table_.description;

  if (stage_records.size() != plan_records.size()) {
    return Status::InvalidArgument(
        "compiled plan JSON: " + std::to_string(stage_records.size()) +
        " stage(s) for " + std::to_string(plan_records.size()) + " plan(s)");
  }
  const SolverRegistry& registry = SolverRegistry::Global();
  for (std::size_t i = 0; i < stage_records.size(); ++i) {
    const StageRecord& rec = stage_records[i];
    CompiledStage stage;
    FUSEME_ASSIGN_OR_RETURN(stage.kind, ParseStageKind(rec.kind));
    stage.solver_id = rec.solver;
    stage.refine_cell = rec.refine_cell;
    const NodeId stage_root = out.plans_.plans[i].root();
    const StageSolver* solver = registry.Find(rec.solver);
    if (solver == nullptr || solver->kind() != stage.kind) {
      const VerifierDiagnostic d{
          rules::kCompiledSolver, stage_root,
          solver == nullptr
              ? "stage " + std::to_string(i) + " names unknown solver \"" +
                    rec.solver + "\""
              : "stage " + std::to_string(i) + " solver \"" + rec.solver +
                    "\" implements " +
                    std::string(OperatorKindName(solver->kind())) +
                    ", not the stage's " + rec.kind};
      return Status::InvalidArgument("compiled plan JSON: " + d.ToString());
    }
    if (rec.has_prediction == rec.has_error) {
      const VerifierDiagnostic d{
          rules::kCompiledPrediction, stage_root,
          "stage " + std::to_string(i) +
              (rec.has_prediction ? " carries both a prediction and an error"
                                  : " carries neither a prediction nor an "
                                    "error")};
      return Status::InvalidArgument("compiled plan JSON: " + d.ToString());
    }
    if (rec.has_prediction) {
      stage.prediction = rec.prediction;
      stage.prediction.operator_kind = OperatorKindName(stage.kind);
    } else {
      FUSEME_ASSIGN_OR_RETURN(const StatusCode code,
                              ParseStatusCode(rec.error_code));
      stage.prediction_status = Status(code, rec.error_message);
    }
    out.table_.stages.push_back(std::move(stage));
  }

  // A clean artifact must still verify cleanly against its own cluster:
  // fresh diagnostics mean the JSON was edited (or produced by a drifted
  // build) and the cached "verified, no findings" claim is stale.
  if (out.table_.verified && out.table_.diagnostics.empty()) {
    const CostModel model(out.cluster_);
    const PlanVerifier verifier(&model);
    const std::vector<VerifierDiagnostic> diags =
        verifier.Verify(*out.dag_, out.plans_, out.verify_);
    if (!diags.empty()) {
      return Status::InvalidArgument(
          "compiled plan failed re-verification: " +
          diags.front().ToString());
    }
  }
  return out;
}

}  // namespace fuseme
