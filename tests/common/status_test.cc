#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/result.h"

namespace fuseme {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status oom = Status::OutOfMemory("task 3 exceeded 10GB");
  EXPECT_FALSE(oom.ok());
  EXPECT_TRUE(oom.IsOutOfMemory());
  EXPECT_EQ(oom.message(), "task 3 exceeded 10GB");
  EXPECT_EQ(oom.ToString(), "OutOfMemory: task 3 exceeded 10GB");

  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::OutOfMemory("a"), Status::OutOfMemory("a"));
  EXPECT_FALSE(Status::OutOfMemory("a") == Status::OutOfMemory("b"));
  EXPECT_FALSE(Status::OutOfMemory("a") == Status::TimedOut("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfMemory), "OutOfMemory");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    FUSEME_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer(), Status::Internal("inner"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfMemory("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<int> { return 5; };
  auto fail = []() -> Result<int> { return Status::TimedOut("slow"); };
  auto chain = [&](bool ok) -> Result<int> {
    FUSEME_ASSIGN_OR_RETURN(int v, ok ? produce() : fail());
    return v + 1;
  };
  EXPECT_EQ(*chain(true), 6);
  EXPECT_TRUE(chain(false).status().IsTimedOut());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace fuseme
