#include "ops/fused_operator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "matrix/block_ops.h"
#include "matrix/sparse_kernels.h"
#include "ops/evaluator.h"
#include "runtime/prefetcher.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace fuseme {

namespace {

using Coord = std::pair<std::int64_t, std::int64_t>;

/// Balanced split of [0, n) into at most `parts` contiguous ranges.
std::vector<std::pair<std::int64_t, std::int64_t>> SplitRange(
    std::int64_t n, std::int64_t parts) {
  parts = std::max<std::int64_t>(1, std::min(parts, std::max<std::int64_t>(
                                                        n, 1)));
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(parts);
  for (std::int64_t p = 0; p < parts; ++p) {
    out.emplace_back(p * n / parts, (p + 1) * n / parts);
  }
  return out;
}

/// Weighted split of [0, weights.size()) into at most `parts` contiguous
/// ranges with roughly equal total weight (greedy cumulative targets).
std::vector<std::pair<std::int64_t, std::int64_t>> SplitRangeWeighted(
    const std::vector<std::int64_t>& weights, std::int64_t parts) {
  const std::int64_t n = static_cast<std::int64_t>(weights.size());
  parts = std::max<std::int64_t>(1, std::min(parts, std::max<std::int64_t>(
                                                        n, 1)));
  std::int64_t total = 0;
  for (std::int64_t w : weights) total += w;
  if (total == 0) return SplitRange(n, parts);
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  out.reserve(parts);
  std::int64_t begin = 0, accumulated = 0;
  for (std::int64_t p = 0; p < parts; ++p) {
    // Leave at least one index for each remaining part.
    const std::int64_t max_end = n - (parts - 1 - p);
    const double target =
        static_cast<double>(total) * static_cast<double>(p + 1) /
        static_cast<double>(parts);
    std::int64_t end = begin;
    while (end < max_end &&
           (end < begin + 1 ||
            static_cast<double>(accumulated) < target)) {
      accumulated += weights[end];
      ++end;
    }
    out.emplace_back(begin, end);
    begin = end;
  }
  out.back().second = n;
  return out;
}

/// Per-tile-row (axis=0) or per-tile-column (axis=1) nnz of a matrix.
std::vector<std::int64_t> TileAxisNnz(const BlockedMatrix& m, int axis) {
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(axis == 0 ? m.grid_rows() : m.grid_cols()),
      0);
  for (std::int64_t bi = 0; bi < m.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < m.grid_cols(); ++bj) {
      out[static_cast<std::size_t>(axis == 0 ? bi : bj)] +=
          m.block(bi, bj).nnz();
    }
  }
  return out;
}

/// Emulated transfer pacing (ClusterConfig::emulated_shuffle_seconds_per_
/// byte): stands in for the network time an in-process block copy doesn't
/// pay.  Sleeping idles the CPU, so a staged copy genuinely overlaps
/// compute.  Wall-clock only; no effect on results or accounting.
void PaceTransfer(double seconds_per_byte, const Block& block) {
  if (seconds_per_byte <= 0.0 || !block.is_real()) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      static_cast<double>(block.SizeBytes()) * seconds_per_byte));
}

/// Per-task fetch dedup + accounting.  One instance per work item: the
/// tasks a work item executes are owned exclusively by it, so the dedup
/// sets never race and the charges land in the item's local accounting.
///
/// When a FetchPipeline attaches a BlockPrefetcher, the closure consumes
/// staged copies instead of copying inline — but only *after* performing
/// the exact same dedup and charges on the consumer thread, so StageStats
/// are bitwise-identical with and without prefetching (charge-on-consume;
/// DESIGN.md section 14).
class TaskFetcher {
 public:
  TaskFetcher(const FusedInputs* inputs, StageAccounting* acct,
              StagePipeline* pipe, double pace_seconds_per_byte)
      : inputs_(inputs),
        acct_(acct),
        pipe_(pipe),
        pace_spb_(pace_seconds_per_byte) {}

  /// The active prefetcher consulted after charging (null = fetch
  /// directly).  Set and cleared by FetchPipeline.
  void set_prefetcher(BlockPrefetcher* prefetcher) {
    prefetcher_ = prefetcher;
  }
  double pace_seconds_per_byte() const { return pace_spb_; }

  /// A fetcher closure for `task`.  First fetch of a block charges its
  /// bytes as live task memory, and as consolidation traffic unless the
  /// block already lives on this task (a narrow dependency — the owning
  /// task of a co-partitioned input is the consuming task).
  BlockFetcher For(int task) {
    return [this, task](NodeId id, std::int64_t bi,
                        std::int64_t bj) -> Result<Block> {
      auto it = inputs_->find(id);
      if (it == inputs_->end()) {
        return Status::Internal("missing input matrix for node v" +
                                std::to_string(id));
      }
      const BlockedMatrix& m = it->second->blocks();
      if (bi < 0 || bi >= m.grid_rows() || bj < 0 || bj >= m.grid_cols()) {
        return Status::Internal("block coordinate out of range for v" +
                                std::to_string(id));
      }
      const Block& block = m.block(bi, bj);
      const bool first_fetch = fetched_[task].insert({id, bi, bj}).second;
      if (first_fetch) {
        const std::int64_t bytes = block.SizeBytes();
        if (it->second->Owner(bi, bj) != task) {
          acct_->ChargeConsolidation(task, bytes);
        }
        FUSEME_RETURN_IF_ERROR(acct_->ChargeMemory(task, bytes));
      }
      if (prefetcher_ != nullptr) {
        if (std::optional<Result<Block>> staged =
                prefetcher_->Take(PrefetchKey{id, bi, bj})) {
          return std::move(*staged);
        }
        if (pipe_ != nullptr) ++pipe_->prefetch_misses;
      }
      // Synchronous path: the copy (the modeled transfer) runs on the
      // consumer thread and counts as fetch-wait.
      const auto begin = std::chrono::steady_clock::now();
      if (first_fetch) PaceTransfer(pace_spb_, block);
      Result<Block> out(block);
      if (pipe_ != nullptr) {
        pipe_->fetch_wait_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          begin)
                .count();
      }
      return out;
    };
  }

  /// Marks a block as already resident on `task` (broadcast pre-charge).
  void MarkResident(int task, NodeId id, std::int64_t bi, std::int64_t bj) {
    fetched_[task].insert({id, bi, bj});
  }

 private:
  const FusedInputs* inputs_;
  StageAccounting* acct_;
  StagePipeline* pipe_;
  double pace_spb_;
  BlockPrefetcher* prefetcher_ = nullptr;
  std::map<int, std::set<std::tuple<NodeId, std::int64_t, std::int64_t>>>
      fetched_;
};

/// The prefetcher's copy source: a plain read of the stage's immutable
/// inputs, paced like any other modeled transfer.  Safe from any thread.
BlockPrefetcher::Source MakeSource(const FusedInputs* inputs,
                                   double pace_seconds_per_byte) {
  return [inputs, pace_seconds_per_byte](
             const PrefetchKey& key) -> Result<Block> {
    auto it = inputs->find(key.node);
    if (it == inputs->end()) {
      return Status::Internal("missing input matrix for node v" +
                              std::to_string(key.node));
    }
    const BlockedMatrix& m = it->second->blocks();
    if (key.bi < 0 || key.bi >= m.grid_rows() || key.bj < 0 ||
        key.bj >= m.grid_cols()) {
      return Status::Internal("block coordinate out of range for v" +
                              std::to_string(key.node));
    }
    const Block& block = m.block(key.bi, key.bj);
    PaceTransfer(pace_seconds_per_byte, block);
    return block;
  };
}

/// Bridges prefetcher copies to "prefetch" tracer spans, so TRACE_*.json
/// shows transfers pipelining against work-item compute.  Null tracer →
/// null hook (the prefetcher then skips the call entirely).
BlockPrefetcher::CopyHook MakeCopyHook(Tracer* tracer, std::string stage) {
  if (tracer == nullptr) return nullptr;
  return [tracer, stage](const PrefetchKey& key) {
    const std::int64_t begin_us = tracer->NowMicros();
    return [tracer, stage, key, begin_us](PrefetchOutcome outcome) {
      TraceSpan span;
      span.name = "prefetch v" + std::to_string(key.node) + " (" +
                  std::to_string(key.bi) + "," + std::to_string(key.bj) +
                  ")";
      span.category = "prefetch";
      span.begin_us = begin_us;
      span.end_us = tracer->NowMicros();
      span.tid = tracer->CurrentThreadId();
      span.args.emplace_back("stage", stage);
      span.args.emplace_back("outcome", PrefetchOutcomeName(outcome));
      tracer->Record(std::move(span));
    };
  };
}

/// Drives the asynchronous fetch pipeline of one evaluator over an
/// ordered list of output blocks (DESIGN.md section 14).  Before block
/// `idx` is evaluated, the external-input blocks of outputs
/// [idx, idx + depth] have been enumerated (EnumerateFetches) and staged
/// on the thread pool, so their copies run while earlier blocks compute;
/// depth 1 is classic double buffering.  Depth 0 — and meta-block stages,
/// which pass depth 0 — skip staging entirely: the legacy synchronous
/// path, byte-for-byte.
///
/// Determinism: issuance is pure lookahead.  Charges happen only when the
/// consuming fetcher asks for a block (same order, same dedup as the
/// synchronous path), and Finish() drops unconsumed copies without a
/// trace in the accounting, so StageStats are bitwise-identical for every
/// depth.  Destruction cancels queued copies and drains running ones —
/// an attempt killed by the fault injector with transfers in flight
/// replays cleanly from a fresh pipeline.
class FetchPipeline {
 public:
  FetchPipeline(StageContext* ctx, const FusedInputs* inputs,
                TaskFetcher* fetcher, const KernelEvaluator* eval,
                std::vector<NodeId> roots, const std::vector<Coord>* coords,
                int depth, StagePipeline* pipe)
      : fetcher_(fetcher),
        eval_(eval),
        roots_(std::move(roots)),
        coords_(coords),
        depth_(depth),
        pipe_(pipe),
        wait_base_(pipe->fetch_wait_seconds),
        begin_(std::chrono::steady_clock::now()) {
    if (depth_ > 0 && !coords_->empty()) {
      BlockPrefetcher::Options options;
      options.pool = GlobalThreadPool();
      options.metrics = ctx->metrics();
      options.journal = ctx->journal();
      options.copy_hook = MakeCopyHook(ctx->tracer(), ctx->label());
      prefetcher_.emplace(
          MakeSource(inputs, fetcher_->pace_seconds_per_byte()),
          std::move(options));
      fetcher_->set_prefetcher(&*prefetcher_);
    }
  }

  ~FetchPipeline() {
    if (!finished_) Finish();
  }

  FetchPipeline(const FetchPipeline&) = delete;
  FetchPipeline& operator=(const FetchPipeline&) = delete;

  /// Call right before evaluating coords[idx]: tops the pipeline up so
  /// waves idx..idx+depth are staged.
  void BeforeBlock(std::size_t idx) {
    if (!prefetcher_) return;
    const std::size_t limit =
        std::min(coords_->size(), idx + 1 + static_cast<std::size_t>(depth_));
    while (next_wave_ < limit) IssueWave(next_wave_++);
  }

  /// Tears the pipeline down and folds its telemetry into the item's
  /// StagePipeline: prefetch counters, fetch-wait seconds, and the
  /// remaining loop time as compute-busy seconds.
  void Finish() {
    finished_ = true;
    const double loop_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin_)
            .count();
    if (prefetcher_) {
      fetcher_->set_prefetcher(nullptr);
      prefetcher_->Drain();
      const PrefetchCounters c = prefetcher_->counters();
      pipe_->prefetch_issued += c.issued;
      pipe_->prefetch_ready += c.ready;
      pipe_->prefetch_waited += c.waited;
      pipe_->prefetch_stolen += c.stolen;
      pipe_->prefetch_cancelled += c.cancelled;
      pipe_->fetch_wait_seconds += c.fetch_wait_seconds;
      prefetcher_.reset();
    }
    const double waits = pipe_->fetch_wait_seconds - wait_base_;
    pipe_->compute_busy_seconds += std::max(0.0, loop_seconds - waits);
  }

 private:
  void IssueWave(std::size_t wave) {
    const auto [bi, bj] = (*coords_)[wave];
    targets_.clear();
    for (NodeId root : roots_) {
      eval_->EnumerateFetches(root, bi, bj, &seen_, &targets_);
    }
    for (const KernelEvaluator::FetchTarget& t : targets_) {
      prefetcher_->Prefetch(PrefetchKey{t.node, t.bi, t.bj});
    }
  }

  TaskFetcher* fetcher_;
  const KernelEvaluator* eval_;
  std::vector<NodeId> roots_;
  const std::vector<Coord>* coords_;
  int depth_;
  StagePipeline* pipe_;
  std::optional<BlockPrefetcher> prefetcher_;
  std::set<KernelEvaluator::Key> seen_;
  std::vector<KernelEvaluator::FetchTarget> targets_;
  std::size_t next_wave_ = 0;
  double wait_base_;
  std::chrono::steady_clock::time_point begin_;
  bool finished_ = false;
};

/// Where a partial aggregate of input block (bi, bj) lands in the output
/// grid of an aggregation root.
Coord AggTarget(const Node& agg, std::int64_t bi, std::int64_t bj) {
  switch (agg.agg_axis) {
    case AggAxis::kAll:
      return {0, 0};
    case AggAxis::kRow:
      return {bi, 0};
    case AggAxis::kCol:
      return {0, bj};
  }
  return {0, 0};
}

/// Accumulates per-output-block partial aggregates across tasks, charging
/// shuffle bytes for partials shipped to the (first-writer) owner task.
/// Only touched by the sequential commit pass, which replays buffered
/// results in the serial scan order — so the first-writer owner and the
/// floating-point merge order are deterministic and thread-count-invariant.
class AggMerger {
 public:
  AggMerger(const Node& agg, StageContext* ctx) : agg_(agg), ctx_(ctx) {}

  Status Add(int task, std::int64_t in_bi, std::int64_t in_bj,
             const Block& partial) {
    const Coord target = AggTarget(agg_, in_bi, in_bj);
    auto it = merged_.find(target);
    if (it == merged_.end()) {
      merged_.emplace(target, std::make_pair(partial, task));
      FUSEME_RETURN_IF_ERROR(ctx_->ChargeMemory(task, partial.SizeBytes()));
      return Status::OK();
    }
    auto& [block, owner] = it->second;
    if (task != owner) {
      // The partial travels to the owner in the matrix aggregation step.
      ctx_->ChargeAggregation(task, partial.SizeBytes());
    }
    FUSEME_ASSIGN_OR_RETURN(block,
                            MergeAgg(agg_.agg_fn, block, partial, nullptr));
    return Status::OK();
  }

  Result<DistributedMatrix> Finish(std::int64_t block_size, int num_tasks) {
    BlockedMatrix out(agg_.rows, agg_.cols, block_size);
    for (auto& [coord, entry] : merged_) {
      out.set_block(coord.first, coord.second, std::move(entry.first));
    }
    return DistributedMatrix::Create(std::move(out), PartitionScheme::kGrid,
                                     num_tasks);
  }

 private:
  const Node& agg_;
  StageContext* ctx_;
  std::map<Coord, std::pair<Block, int>> merged_;
};

/// An output block buffered by a work item until the commit pass.
struct BlockResult {
  std::int64_t bi = 0;
  std::int64_t bj = 0;
  Block block;
};

/// Outcome of one independent work item of a parallel operator.
struct WorkItem {
  Status status;
  int task = 0;  // task committing this item's outputs
  std::vector<BlockResult> outputs;
};

/// A stage's runtime instruments, resolved once per Execute call so the
/// per-work-item cost is a handful of relaxed atomic bumps.  With a null
/// registry every pointer stays null and recording is a pointer test.
struct StageInstruments {
  Counter* work_items = nullptr;
  Histogram* queue_wait_seconds = nullptr;
  Histogram* item_seconds = nullptr;
  Gauge* queue_depth = nullptr;
  Gauge* pool_threads = nullptr;
  Counter* kernel_flops = nullptr;
  Counter* gemm_flops = nullptr;
  Counter* sparse_to_dense = nullptr;
  Counter* dense_to_sparse = nullptr;
  Counter* output_nnz = nullptr;
  Counter* output_cells = nullptr;
  Counter* sparse_flops = nullptr;
  Counter* sddmm_dots = nullptr;
  Counter* sparse_parallel = nullptr;
  Counter* spmm_sparse_dense_calls = nullptr;
  Counter* spmm_dense_sparse_calls = nullptr;
  Counter* spmm_sparse_sparse_calls = nullptr;
  Counter* transpose_spmm_calls = nullptr;
  Counter* sddmm_calls = nullptr;
  Counter* ewise_merge_join_calls = nullptr;

  static StageInstruments Resolve(MetricsRegistry* metrics) {
    StageInstruments ins;
    if (metrics == nullptr) return ins;
    ins.work_items = metrics->GetCounter(metric_names::kWorkItems);
    ins.queue_wait_seconds = metrics->GetHistogram(
        metric_names::kWorkItemQueueWaitSeconds, DefaultTimeBoundaries());
    ins.item_seconds = metrics->GetHistogram(metric_names::kWorkItemSeconds,
                                             DefaultTimeBoundaries());
    ins.queue_depth = metrics->GetGauge(metric_names::kThreadPoolQueueDepth);
    ins.pool_threads = metrics->GetGauge(metric_names::kThreadPoolThreads);
    ins.kernel_flops = metrics->GetCounter(metric_names::kKernelFlops);
    ins.gemm_flops = metrics->GetCounter(metric_names::kKernelGemmFlops);
    ins.sparse_to_dense = metrics->GetCounter(
        metric_names::kBlockConversions, {{"direction", "sparse_to_dense"}});
    ins.dense_to_sparse = metrics->GetCounter(
        metric_names::kBlockConversions, {{"direction", "dense_to_sparse"}});
    ins.output_nnz = metrics->GetCounter(metric_names::kKernelOutputNnz);
    ins.output_cells = metrics->GetCounter(metric_names::kKernelOutputCells);
    ins.sparse_flops = metrics->GetCounter(metric_names::kKernelSparseFlops);
    ins.sddmm_dots = metrics->GetCounter(metric_names::kKernelSddmmDots);
    ins.sparse_parallel =
        metrics->GetCounter(metric_names::kKernelSparseParallel);
    auto calls = [metrics](const char* kernel) {
      return metrics->GetCounter(metric_names::kKernelSparseCalls,
                                 {{"kernel", kernel}});
    };
    ins.spmm_sparse_dense_calls = calls("spmm_sparse_dense");
    ins.spmm_dense_sparse_calls = calls("spmm_dense_sparse");
    ins.spmm_sparse_sparse_calls = calls("spmm_sparse_sparse");
    ins.transpose_spmm_calls = calls("transpose_spmm");
    ins.sddmm_calls = calls("sddmm");
    ins.ewise_merge_join_calls = calls("ewise_merge_join");
    return ins;
  }

  /// Folds the stage's sparse-kernel activity in: `before` is the
  /// process-wide snapshot taken when the stage started.  Stages execute
  /// one at a time, so the delta is exactly this stage's work.
  void FlushSparseKernels(const SparseKernelStats& before) const {
    if (sparse_flops == nullptr) return;
    const SparseKernelStats now = SparseKernelStatsSnapshot();
    sparse_flops->Add(now.flops - before.flops);
    sddmm_dots->Add(now.sddmm_dots - before.sddmm_dots);
    sparse_parallel->Add(now.parallel_launches - before.parallel_launches);
    spmm_sparse_dense_calls->Add(now.spmm_sparse_dense_calls -
                                 before.spmm_sparse_dense_calls);
    spmm_dense_sparse_calls->Add(now.spmm_dense_sparse_calls -
                                 before.spmm_dense_sparse_calls);
    spmm_sparse_sparse_calls->Add(now.spmm_sparse_sparse_calls -
                                  before.spmm_sparse_sparse_calls);
    transpose_spmm_calls->Add(now.transpose_spmm_calls -
                              before.transpose_spmm_calls);
    sddmm_calls->Add(now.sddmm_calls - before.sddmm_calls);
    ewise_merge_join_calls->Add(now.ewise_merge_join_calls -
                                before.ewise_merge_join_calls);
  }

  /// Folds one kernel evaluator's counters in when a work item is done
  /// with it.
  void FlushEvaluator(const KernelEvaluator& eval) const {
    if (kernel_flops == nullptr) return;
    kernel_flops->Add(eval.flops());
    gemm_flops->Add(eval.gemm_flops());
    sparse_to_dense->Add(eval.sparse_to_dense_conversions());
    dense_to_sparse->Add(eval.dense_to_sparse_conversions());
  }

  /// Records an emitted output block's density.
  void CountOutput(const Block& block) const {
    if (output_nnz == nullptr) return;
    output_nnz->Add(block.nnz());
    output_cells->Add(block.rows() * block.cols());
  }
};

/// Scopes one stage's sparse-kernel activity: snapshots the process-wide
/// counters at construction and feeds the delta to the metric families at
/// destruction (any exit path).  Stages execute one at a time, so deltas
/// never interleave.
struct SparseKernelFlushGuard {
  explicit SparseKernelFlushGuard(const StageInstruments& instruments)
      : ins(instruments), before(SparseKernelStatsSnapshot()) {}
  ~SparseKernelFlushGuard() { ins.FlushSparseKernels(before); }
  SparseKernelFlushGuard(const SparseKernelFlushGuard&) = delete;
  SparseKernelFlushGuard& operator=(const SparseKernelFlushGuard&) = delete;

  const StageInstruments& ins;
  SparseKernelStats before;
};

/// The work of one item, charged against a per-attempt local accounting.
/// Must be idempotent: the retry loop re-invokes it with a fresh
/// accounting after an injected failure, and the item's buffered outputs
/// are cleared between attempts.
using ItemBody = std::function<Status(std::int64_t, LocalStageAccounting*)>;

/// Executes `items->size()` work items: on the global pool when `threads`
/// > 1, inline and in index order otherwise (threads=1 and meta-block
/// simulation).  Items are independent, and every observable side effect
/// is replayed by a sequential commit pass afterwards, so results are
/// identical for every thread count.
///
/// Fault tolerance (DESIGN.md section 13): when the stage carries a
/// FaultInjector, each attempt of each item consults the deterministic
/// schedule.  A killed attempt discards its buffered outputs and its
/// *unflushed* local accounting — nothing reached the shared context —
/// then relaunches after modeled exponential backoff, up to the retry
/// policy's attempt budget.  Because the schedule is a pure function of
/// (stage, item, attempt) and a successful attempt recomputes identical
/// blocks, results and StageStats are bitwise-identical to a failure-free
/// run under any schedule and thread count.  Genuine statuses (OutOfMemory,
/// Internal, ...) are deterministic and never retried here.
void RunItems(StageContext* ctx, int threads, std::vector<WorkItem>* items,
              const StageInstruments& ins, const ItemBody& body) {
  const auto count = static_cast<std::int64_t>(items->size());
  Tracer* tracer = ctx->tracer();
  if (ins.work_items != nullptr) {
    ins.work_items->Add(count);
    ins.pool_threads->Set(static_cast<double>(std::max(threads, 1)));
  }
  const auto enqueue = std::chrono::steady_clock::now();
  const FaultInjector* injector = ctx->fault_injector();
  const RetryPolicy& policy = ctx->retry_policy();
  const int max_attempts =
      injector != nullptr ? std::max(policy.max_attempts, 1) : 1;
  auto run_one = [&](std::int64_t i) {
    const auto start = std::chrono::steady_clock::now();
    if (tracer != nullptr) {
      tracer->NameCurrentThread(GlobalThreadPool()->InWorker()
                                    ? "pool-worker"
                                    : "driver");
    }
    if (ins.queue_wait_seconds != nullptr) {
      ins.queue_wait_seconds->Observe(
          std::chrono::duration<double>(start - enqueue).count());
      ins.queue_depth->Set(
          static_cast<double>(GlobalThreadPool()->ApproxQueueDepth()));
    }
    WorkItem& item = (*items)[static_cast<std::size_t>(i)];
    int attempts = 0;
    int injected = 0;
    double backoff_seconds = 0.0;
    bool exhausted = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      ++attempts;
      item.outputs.clear();
      item.status = Status::OK();
      const InjectedFault fault =
          injector != nullptr
              ? injector->TaskFault(ctx->stage_ordinal(), i, attempt)
              : InjectedFault::kNone;
      LocalStageAccounting local(ctx);
      Status run = Status::OK();
      if (fault != InjectedFault::kLostAtLaunch) run = body(i, &local);
      if (run.ok() && fault != InjectedFault::kNone) {
        // The task died before committing: its buffered outputs and the
        // unflushed local accounting are discarded here, so the shared
        // context never sees the failed attempt.
        ++injected;
        if (ctx->metrics() != nullptr) {
          ctx->metrics()
              ->GetCounter(metric_names::kFaultInjected,
                           {{"kind", fault == InjectedFault::kLostAtLaunch
                                         ? "lost_at_launch"
                                         : "lost_before_commit"}})
              ->Increment();
        }
        if (tracer != nullptr) {
          TraceSpan span;
          span.name = "injected task failure";
          span.category = "fault";
          span.begin_us = span.end_us = tracer->NowMicros();
          span.tid = tracer->CurrentThreadId();
          span.args.emplace_back("stage", ctx->label());
          span.args.emplace_back("item", std::to_string(i));
          span.args.emplace_back("attempt", std::to_string(attempt));
          span.args.emplace_back("point",
                                 fault == InjectedFault::kLostAtLaunch
                                     ? "launch"
                                     : "pre-commit");
          tracer->Record(std::move(span));
        }
        if (attempt + 1 < max_attempts) {
          backoff_seconds += policy.BackoffSeconds(attempt);
          continue;
        }
        exhausted = true;
        item.outputs.clear();
        item.status = Status::Internal(
            "injected task failure on work item " + std::to_string(i) +
            " of " + ctx->label() + ": attempt budget (" +
            std::to_string(max_attempts) + ") exhausted");
        break;
      }
      item.status = run.ok() ? local.Flush() : std::move(run);
      break;
    }
    ctx->RecordItemRecovery(attempts, injected, backoff_seconds, exhausted);
    if (ctx->metrics() != nullptr) {
      ctx->metrics()
          ->GetCounter(metric_names::kWorkItemAttempts)
          ->Add(attempts);
      if (attempts > 1) {
        ctx->metrics()
            ->GetCounter(metric_names::kTaskRetries,
                         {{"cause", "injected_failure"}})
            ->Add(attempts - 1);
      }
    }
    if (ins.item_seconds != nullptr) {
      ins.item_seconds->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
  };
  if (threads > 1) {
    GlobalThreadPool()->ParallelFor(0, count, run_one, threads);
  } else {
    for (std::int64_t i = 0; i < count; ++i) run_one(i);
  }
}

/// True when every bound input carries real block data.  Meta-block
/// (analytic simulation) stages always run serially so the simulator stays
/// deterministic byte-for-byte.
bool AllInputsReal(const FusedInputs& inputs) {
  for (const auto& [id, dm] : inputs) {
    if (!dm->blocks().IsReal()) return false;
  }
  return true;
}

/// Commits round-robin-partitioned work items in the serial global
/// (bi, bj) scan order: replays each task's buffered blocks against the
/// shared context, reproducing the exact charge and aggregation-merge
/// sequence of the serial implementation.  An item that stopped early
/// surfaces its error at the position where the serial run would have
/// failed.
Status CommitRoundRobin(std::int64_t grid_rows, std::int64_t grid_cols,
                        std::vector<WorkItem>* items, bool agg_root,
                        AggMerger* agg_merger, BlockedMatrix* out_blocks,
                        StageContext* ctx) {
  const int num_tasks = static_cast<int>(items->size());
  std::vector<std::size_t> cursor(items->size(), 0);
  for (std::int64_t bi = 0; bi < grid_rows; ++bi) {
    for (std::int64_t bj = 0; bj < grid_cols; ++bj) {
      const int t = static_cast<int>((bi * grid_cols + bj) % num_tasks);
      WorkItem& item = (*items)[static_cast<std::size_t>(t)];
      if (cursor[t] >= item.outputs.size()) {
        FUSEME_RETURN_IF_ERROR(item.status);
        return Status::Internal("work item emitted too few blocks");
      }
      BlockResult& out = item.outputs[cursor[t]++];
      if (agg_root) {
        FUSEME_RETURN_IF_ERROR(agg_merger->Add(t, bi, bj, out.block));
      } else {
        FUSEME_RETURN_IF_ERROR(
            ctx->ChargeMemory(t, out.block.SizeBytes()));
        out_blocks->set_block(bi, bj, std::move(out.block));
      }
    }
  }
  // A trailing error (e.g. the accounting flush) with all blocks emitted.
  for (const WorkItem& item : *items) {
    FUSEME_RETURN_IF_ERROR(item.status);
  }
  return Status::OK();
}

}  // namespace

bool CuboidSupportsKSplit(const PartialPlan& plan) {
  const NodeId mm = plan.MainMatMul();
  if (mm == kInvalidNode) return false;
  const Dag& dag = plan.dag();
  const Node& root = dag.node(plan.root());
  const Node& grid_node = root.kind == OpKind::kUnaryAgg
                              ? dag.node(root.inputs[0])
                              : root;
  const Node& mm_node = dag.node(mm);
  return mm_node.rows == grid_node.rows && mm_node.cols == grid_node.cols;
}

Result<DistributedMatrix> CuboidFusedOperator::Execute(
    const PartialPlan& plan, const Cuboid& c, const FusedInputs& inputs,
    StageContext* ctx, const CuboidOptions& options) {
  const Dag& dag = plan.dag();
  const std::int64_t bs = ctx->config().block_size;
  const Node& root = dag.node(plan.root());
  const bool agg_root = root.kind == OpKind::kUnaryAgg;
  const NodeId eval_grid_node = agg_root ? root.inputs[0] : plan.root();
  const Node& grid_node = dag.node(eval_grid_node);

  const NodeId mm = plan.MainMatMul();
  const SparseDriver driver = FindSparseDriver(plan, mm);

  const NodeGrid out_grid{grid_node.rows, grid_node.cols, bs};
  std::int64_t k_blocks = 1;
  if (mm != kInvalidNode) {
    const Node& mm_lhs = dag.node(dag.node(mm).inputs[0]);
    k_blocks = (mm_lhs.cols + bs - 1) / bs;
    if (c.R > 1) {
      const Node& mm_node = dag.node(mm);
      if (mm_node.rows != grid_node.rows || mm_node.cols != grid_node.cols) {
        return Status::NotImplemented(
            "R>1 requires the O-space to preserve the matmul's shape");
      }
    }
  } else if (c.R > 1) {
    return Status::InvalidArgument("R>1 requires a matrix multiplication");
  }

  auto i_parts = SplitRange(out_grid.grid_rows(), c.P);
  auto j_parts = SplitRange(out_grid.grid_cols(), c.Q);
  const auto k_parts = SplitRange(k_blocks, c.R);
  if (options.balance_sparsity && driver.found() &&
      !plan.Contains(driver.sparse_input)) {
    // Weight the i/j splits by the mask's tile-row/column non-zeros so
    // every cuboid gets a similar number of exploitable positions.
    auto it = inputs.find(driver.sparse_input);
    if (it != inputs.end()) {
      const BlockedMatrix& mask = it->second->blocks();
      if (mask.grid_rows() == out_grid.grid_rows() &&
          mask.grid_cols() == out_grid.grid_cols()) {
        i_parts = SplitRangeWeighted(TileAxisNnz(mask, 0), c.P);
        j_parts = SplitRangeWeighted(TileAxisNnz(mask, 1), c.Q);
      }
    }
  }
  const std::int64_t eff_p = static_cast<std::int64_t>(i_parts.size());
  const std::int64_t eff_q = static_cast<std::int64_t>(j_parts.size());
  const std::int64_t eff_r = static_cast<std::int64_t>(k_parts.size());
  // k-slice grouping factor (Cuboid::W): slices per leader task in phase 1.
  const std::int64_t eff_w = std::clamp<std::int64_t>(c.W, 1, eff_r);
  const std::int64_t eff_groups = (eff_r + eff_w - 1) / eff_w;

  BlockedMatrix out_blocks(root.rows, root.cols, bs);
  AggMerger agg_merger(root, ctx);

  const bool real_inputs = AllInputsReal(inputs);
  const int threads = real_inputs ? ctx->Parallelism() : 1;
  // Meta-block stages skip the prefetch pipeline and transfer pacing:
  // their copies are descriptor-sized and the simulator models their
  // transfer time analytically.
  const int depth = real_inputs ? ctx->config().prefetch_depth : 0;
  const double pace =
      real_inputs ? ctx->config().emulated_shuffle_seconds_per_byte : 0.0;
  const StageInstruments ins = StageInstruments::Resolve(ctx->metrics());
  SparseKernelFlushGuard sparse_guard(ins);

  auto task_id = [&](std::int64_t p, std::int64_t q, std::int64_t r) {
    return static_cast<int>((p * eff_q + q) * eff_r + r);
  };

  if (mm == kInvalidNode) {
    // Cell fusion: no model space to partition.  Output blocks are
    // round-robin over P·Q tasks — the same placement as kGrid-partitioned
    // inputs, so same-shaped inputs are consumed as narrow dependencies
    // (no shuffle).  Each task is one work item.
    const int num_tasks = static_cast<int>(eff_p * eff_q);
    const std::int64_t gr = out_grid.grid_rows();
    const std::int64_t gc = out_grid.grid_cols();
    std::vector<WorkItem> items(num_tasks);
    for (int t = 0; t < num_tasks; ++t) items[t].task = t;
    RunItems(ctx, threads, &items, ins,
             [&](std::int64_t t, LocalStageAccounting* local) -> Status {
      WorkItem& item = items[static_cast<std::size_t>(t)];
      ScopedSpan span(ctx->tracer(), "cell task " + std::to_string(t),
                      "work-item");
      span.AddArg("stage", ctx->label());
      StagePipeline pipe;
      TaskFetcher fetcher(&inputs, local, &pipe, pace);
      Status run = [&]() -> Status {
        std::vector<Coord> coords;
        for (std::int64_t bi = 0; bi < gr; ++bi) {
          for (std::int64_t bj = 0; bj < gc; ++bj) {
            if ((bi * gc + bj) % num_tasks == t) coords.emplace_back(bi, bj);
          }
        }
        if (coords.empty()) return Status::OK();
        KernelEvaluator eval(&plan, bs, fetcher.For(item.task));
        FetchPipeline pipeline(ctx, &inputs, &fetcher, &eval,
                               {plan.root()}, &coords, depth, &pipe);
        for (std::size_t idx = 0; idx < coords.size(); ++idx) {
          pipeline.BeforeBlock(idx);
          const auto [bi, bj] = coords[idx];
          const std::int64_t before = eval.flops();
          FUSEME_ASSIGN_OR_RETURN(Block result,
                                  eval.Eval(plan.root(), bi, bj));
          local->ChargeFlops(item.task, eval.flops() - before);
          ins.CountOutput(result);
          item.outputs.push_back({bi, bj, std::move(result)});
        }
        pipeline.Finish();
        ins.FlushEvaluator(eval);
        return Status::OK();
      }();
      ctx->RecordItemPipeline(pipe);
      return run;
    });
    FUSEME_RETURN_IF_ERROR(CommitRoundRobin(gr, gc, &items, agg_root,
                                            &agg_merger, &out_blocks, ctx));
    if (agg_root) return agg_merger.Finish(bs, num_tasks);
    return DistributedMatrix::Create(std::move(out_blocks),
                                     PartitionScheme::kGrid, num_tasks);
  }

  // One work item per non-empty (p, q) cuboid column; the R k-slices of a
  // column are phases of the same item (phase 2 consumes phase 1's
  // partials, and the r-ascending shuffle-merge keeps the first-writer
  // order deterministic).
  std::vector<Coord> columns;
  columns.reserve(static_cast<std::size_t>(eff_p * eff_q));
  for (std::int64_t p = 0; p < eff_p; ++p) {
    for (std::int64_t q = 0; q < eff_q; ++q) {
      const auto [i0, i1] = i_parts[p];
      const auto [j0, j1] = j_parts[q];
      if (i0 == i1 || j0 == j1) continue;
      columns.emplace_back(p, q);
    }
  }

  std::vector<WorkItem> items(columns.size());
  for (std::size_t idx = 0; idx < columns.size(); ++idx) {
    items[idx].task = task_id(columns[idx].first, columns[idx].second, 0);
  }
  RunItems(ctx, threads, &items, ins,
           [&](std::int64_t idx, LocalStageAccounting* local_ptr) -> Status {
    const auto [p, q] = columns[static_cast<std::size_t>(idx)];
    WorkItem& item = items[static_cast<std::size_t>(idx)];
    ScopedSpan span(ctx->tracer(),
                    "cuboid column (" + std::to_string(p) + "," +
                        std::to_string(q) + ")",
                    "work-item");
    span.AddArg("stage", ctx->label());
    LocalStageAccounting& local = *local_ptr;
    StagePipeline pipe;
    TaskFetcher fetcher(&inputs, &local, &pipe, pace);
    Status run = [&, p = p, q = q]() -> Status {
      const auto [i0, i1] = i_parts[p];
      const auto [j0, j1] = j_parts[q];
      // The column's output blocks in evaluation order — each phase's
      // fetch pipeline stages the blocks of upcoming coords while the
      // current one computes.
      std::vector<Coord> coords;
      coords.reserve(static_cast<std::size_t>((i1 - i0) * (j1 - j0)));
      for (std::int64_t bi = i0; bi < i1; ++bi) {
        for (std::int64_t bj = j0; bj < j1; ++bj) {
          coords.emplace_back(bi, bj);
        }
      }

      // --- Phase 1 (R > 1 only): per-k-slice partial matmuls. ---
      // The k-slices run in W-sized *groups* (Cuboid::W; 1 = the plain
      // layout).  A group is one leader task that evaluates its slices
      // sequentially: every slice fetches through the leader (TaskFetcher
      // dedups per task, so the sparse mask is charged once per group, not
      // once per slice) and the group's partials merge locally before
      // crossing into the column-wide map — only one aggregation transfer
      // per group.  Slices and groups proceed r-ascending and both merge
      // levels sum in first-seen order, so the result is bitwise-identical
      // to W = 1 and to any serial execution.
      std::map<Coord, Block> mm_partials;
      if (eff_r > 1) {
        ScopedSpan phase1(ctx->tracer(),
                          "phase1 partial-mm (" + std::to_string(p) + "," +
                              std::to_string(q) + ")",
                          "phase");
        for (std::int64_t g0 = 0; g0 < eff_r; g0 += eff_w) {
          const std::int64_t g1 = std::min(eff_r, g0 + eff_w);
          const int leader = task_id(p, q, g0);
          std::map<Coord, Block> group_partials;
          for (std::int64_t r = g0; r < g1; ++r) {
            const auto [k0, k1] = k_parts[r];
            if (k0 == k1) continue;
            KernelEvaluator eval(&plan, bs, fetcher.For(leader));
            eval.RestrictK(mm, k0, k1);
            if (driver.found()) eval.SetSparseDriver(driver);
            std::vector<NodeId> roots{mm};
            if (driver.found()) {
              roots.insert(roots.begin(), driver.sparse_input);
            }
            FetchPipeline pipeline(ctx, &inputs, &fetcher, &eval,
                                   std::move(roots), &coords, depth, &pipe);
            for (std::size_t idx = 0; idx < coords.size(); ++idx) {
              pipeline.BeforeBlock(idx);
              const auto [bi, bj] = coords[idx];
              Result<Block> partial =
                  driver.found()
                      ? eval.EvalMaskedNode(mm, driver.sparse_input, bi, bj)
                      : eval.Eval(mm, bi, bj);
              FUSEME_RETURN_IF_ERROR(partial.status());
              auto it = group_partials.find({bi, bj});
              if (it == group_partials.end()) {
                group_partials.emplace(Coord{bi, bj}, std::move(*partial));
              } else {
                FUSEME_ASSIGN_OR_RETURN(
                    it->second,
                    MergeAgg(AggFn::kSum, it->second, *partial, nullptr));
              }
            }
            pipeline.Finish();
            local.ChargeFlops(leader, eval.flops());
            ins.FlushEvaluator(eval);
          }
          // Commit the group's merged partials.  std::map iterates in the
          // same (bi, bj) order the coords were evaluated in, so the
          // column-wide merge keeps the per-coordinate r-ascending
          // summation order.
          for (auto& [coord, block] : group_partials) {
            if (leader != task_id(p, q, 0)) {
              // Shuffle to the r=0 task in the aggregation step.
              local.ChargeAggregation(leader, block.SizeBytes());
            }
            auto it = mm_partials.find(coord);
            if (it == mm_partials.end()) {
              FUSEME_RETURN_IF_ERROR(local.ChargeMemory(
                  task_id(p, q, 0), block.SizeBytes()));
              mm_partials.emplace(coord, std::move(block));
            } else {
              FUSEME_ASSIGN_OR_RETURN(
                  it->second,
                  MergeAgg(AggFn::kSum, it->second, block, nullptr));
            }
          }
        }
      }

      // --- Phase 2 (or the only phase when R == 1): evaluate the root. ---
      ScopedSpan phase2(ctx->tracer(),
                        "phase2 root-eval (" + std::to_string(p) + "," +
                            std::to_string(q) + ")",
                        "phase");
      KernelEvaluator eval(&plan, bs, fetcher.For(item.task));
      if (driver.found()) eval.SetSparseDriver(driver);
      if (eff_r > 1) {
        for (auto& [coord, block] : mm_partials) {
          eval.Inject(mm, coord.first, coord.second, std::move(block));
        }
      } else {
        eval.RestrictK(mm, 0, k_blocks);
      }
      // Injection precedes pipeline construction, so enumeration sees the
      // bound partials and never re-stages the matmul's inputs.
      FetchPipeline pipeline(ctx, &inputs, &fetcher, &eval, {plan.root()},
                             &coords, depth, &pipe);
      for (std::size_t idx = 0; idx < coords.size(); ++idx) {
        pipeline.BeforeBlock(idx);
        const auto [bi, bj] = coords[idx];
        FUSEME_ASSIGN_OR_RETURN(Block result,
                                eval.Eval(plan.root(), bi, bj));
        ins.CountOutput(result);
        item.outputs.push_back({bi, bj, std::move(result)});
      }
      pipeline.Finish();
      local.ChargeFlops(item.task, eval.flops());
      ins.FlushEvaluator(eval);
      return Status::OK();
    }();
    ctx->RecordItemPipeline(pipe);
    return run;
  });

  // Sequential commit in the serial (p, q, bi, bj) order.
  for (WorkItem& item : items) {
    FUSEME_RETURN_IF_ERROR(item.status);
    for (BlockResult& out : item.outputs) {
      if (agg_root) {
        FUSEME_RETURN_IF_ERROR(
            agg_merger.Add(item.task, out.bi, out.bj, out.block));
      } else {
        FUSEME_RETURN_IF_ERROR(
            ctx->ChargeMemory(item.task, out.block.SizeBytes()));
        out_blocks.set_block(out.bi, out.bj, std::move(out.block));
      }
    }
  }

  // Schedulable tasks: W-grouped k-slices share a leader, so the count is
  // P·Q·⌈R/W⌉ (= P·Q·R when W = 1).
  const int num_tasks = static_cast<int>(eff_p * eff_q * eff_groups);
  if (agg_root) {
    return agg_merger.Finish(bs, num_tasks);
  }
  return DistributedMatrix::Create(std::move(out_blocks),
                                   PartitionScheme::kGrid, num_tasks);
}

Result<DistributedMatrix> BroadcastFusedOperator::Execute(
    const PartialPlan& plan, const FusedInputs& inputs, StageContext* ctx) {
  const Dag& dag = plan.dag();
  const std::int64_t bs = ctx->config().block_size;
  const Node& root = dag.node(plan.root());
  const bool agg_root = root.kind == OpKind::kUnaryAgg;
  const NodeId eval_grid_node = agg_root ? root.inputs[0] : plan.root();
  const Node& grid_node = dag.node(eval_grid_node);

  const NodeId mm = plan.MainMatMul();
  const SparseDriver driver = FindSparseDriver(plan, mm);

  // Main matrix = the external input with the most *elements* (paper
  // §2.2); everything else is broadcast.
  NodeId main_input = kInvalidNode;
  std::int64_t main_cells = -1;
  for (NodeId ext : plan.ExternalInputs()) {
    const Node& n = dag.node(ext);
    if (!n.is_matrix()) continue;
    if (!inputs.contains(ext)) {
      return Status::Internal("missing input matrix for node v" +
                              std::to_string(ext));
    }
    const std::int64_t cells = n.rows * n.cols;
    if (cells > main_cells) {
      main_cells = cells;
      main_input = ext;
    }
  }

  // Parallelism: the number of Spark partitions of the main matrix caps
  // the number of tasks (paper §6.2 "overall analysis": a small sparse X
  // yields few partitions and BFO cannot use the full cluster).
  int num_tasks = ctx->config().total_tasks();
  if (main_input != kInvalidNode) {
    num_tasks = static_cast<int>(std::min<std::int64_t>(
        num_tasks, inputs.at(main_input)->SparkPartitions()));
  }
  num_tasks = std::max(num_tasks, 1);

  BlockedMatrix out_blocks(root.rows, root.cols, bs);
  AggMerger agg_merger(root, ctx);
  const NodeGrid out_grid{grid_node.rows, grid_node.cols, bs};
  const std::int64_t gr = out_grid.grid_rows();
  const std::int64_t gc = out_grid.grid_cols();

  const bool real_inputs = AllInputsReal(inputs);
  const int threads = real_inputs ? ctx->Parallelism() : 1;
  const int depth = real_inputs ? ctx->config().prefetch_depth : 0;
  const double pace =
      real_inputs ? ctx->config().emulated_shuffle_seconds_per_byte : 0.0;
  const StageInstruments ins = StageInstruments::Resolve(ctx->metrics());
  SparseKernelFlushGuard sparse_guard(ins);

  // One work item per task: receive the broadcast side inputs, then
  // evaluate this task's round-robin share of the output grid, fetching
  // the main matrix blocks it needs (repartition traffic).
  std::vector<WorkItem> items(num_tasks);
  for (int t = 0; t < num_tasks; ++t) items[t].task = t;
  RunItems(ctx, threads, &items, ins,
           [&](std::int64_t t, LocalStageAccounting* local) -> Status {
    WorkItem& item = items[static_cast<std::size_t>(t)];
    ScopedSpan span(ctx->tracer(), "broadcast task " + std::to_string(t),
                    "work-item");
    span.AddArg("stage", ctx->label());
    StagePipeline pipe;
    TaskFetcher fetcher(&inputs, local, &pipe, pace);
    Status run = [&]() -> Status {
      // Broadcast: this task receives every block of every side input.
      for (NodeId ext : plan.ExternalInputs()) {
        if (!dag.node(ext).is_matrix() || ext == main_input) continue;
        const BlockedMatrix& side = inputs.at(ext)->blocks();
        for (std::int64_t bi = 0; bi < side.grid_rows(); ++bi) {
          for (std::int64_t bj = 0; bj < side.grid_cols(); ++bj) {
            const std::int64_t bytes = side.block(bi, bj).SizeBytes();
            local->ChargeConsolidation(item.task, bytes);
            FUSEME_RETURN_IF_ERROR(local->ChargeMemory(item.task, bytes));
            fetcher.MarkResident(item.task, ext, bi, bj);
          }
        }
      }
      std::vector<Coord> coords;
      for (std::int64_t bi = 0; bi < gr; ++bi) {
        for (std::int64_t bj = 0; bj < gc; ++bj) {
          if ((bi * gc + bj) % num_tasks == t) coords.emplace_back(bi, bj);
        }
      }
      KernelEvaluator eval(&plan, bs, fetcher.For(item.task));
      if (driver.found()) eval.SetSparseDriver(driver);
      FetchPipeline pipeline(ctx, &inputs, &fetcher, &eval, {plan.root()},
                             &coords, depth, &pipe);
      for (std::size_t idx = 0; idx < coords.size(); ++idx) {
        pipeline.BeforeBlock(idx);
        const auto [bi, bj] = coords[idx];
        const std::int64_t before = eval.flops();
        FUSEME_ASSIGN_OR_RETURN(Block result,
                                eval.Eval(plan.root(), bi, bj));
        local->ChargeFlops(item.task, eval.flops() - before);
        ins.CountOutput(result);
        item.outputs.push_back({bi, bj, std::move(result)});
      }
      pipeline.Finish();
      ins.FlushEvaluator(eval);
      return Status::OK();
    }();
    ctx->RecordItemPipeline(pipe);
    return run;
  });

  FUSEME_RETURN_IF_ERROR(CommitRoundRobin(gr, gc, &items, agg_root,
                                          &agg_merger, &out_blocks, ctx));
  if (agg_root) {
    return agg_merger.Finish(bs, num_tasks);
  }
  return DistributedMatrix::Create(std::move(out_blocks),
                                   PartitionScheme::kGrid, num_tasks);
}

}  // namespace fuseme
