// Fixture metric catalogue for the inline-literal negative case.
#ifndef FIXTURE_METRIC_LITERAL_METRIC_NAMES_H_
#define FIXTURE_METRIC_LITERAL_METRIC_NAMES_H_

namespace fuseme::metric_names {

inline constexpr char kDemo[] = "fuseme_demo_total";

}  // namespace fuseme::metric_names

#endif  // FIXTURE_METRIC_LITERAL_METRIC_NAMES_H_
