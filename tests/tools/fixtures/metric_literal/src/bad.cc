// Negative fixture: an inline "fuseme_..." metric name that bypasses the
// catalogue.  fuseme_lint must flag it (lint-metric-literal) while
// accepting the catalogued name used right next to it.

#include "telemetry/metric_names.h"

namespace fixture {

const char* Catalogued() { return fuseme::metric_names::kDemo; }

const char* Rogue() { return "fuseme_rogue_total"; }

}  // namespace fixture
