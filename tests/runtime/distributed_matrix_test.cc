#include "runtime/distributed_matrix.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(DistributedMatrixTest, RowSchemeGroupsTileRows) {
  BlockedMatrix m(8, 8, 2);  // 4x4 grid
  auto dist = DistributedMatrix::Create(m, PartitionScheme::kRow, 3);
  for (std::int64_t bj = 0; bj < 4; ++bj) {
    EXPECT_EQ(dist.Owner(0, bj), 0);
    EXPECT_EQ(dist.Owner(1, bj), 1);
    EXPECT_EQ(dist.Owner(2, bj), 2);
    EXPECT_EQ(dist.Owner(3, bj), 0);  // wraps
  }
}

TEST(DistributedMatrixTest, ColSchemeGroupsTileCols) {
  BlockedMatrix m(8, 8, 2);
  auto dist = DistributedMatrix::Create(m, PartitionScheme::kCol, 4);
  for (std::int64_t bi = 0; bi < 4; ++bi) {
    for (std::int64_t bj = 0; bj < 4; ++bj) {
      EXPECT_EQ(dist.Owner(bi, bj), bj);
    }
  }
}

TEST(DistributedMatrixTest, GridSchemeRoundRobins) {
  BlockedMatrix m(4, 4, 2);  // 2x2 grid
  auto dist = DistributedMatrix::Create(m, PartitionScheme::kGrid, 3);
  EXPECT_EQ(dist.Owner(0, 0), 0);
  EXPECT_EQ(dist.Owner(0, 1), 1);
  EXPECT_EQ(dist.Owner(1, 0), 2);
  EXPECT_EQ(dist.Owner(1, 1), 0);
}

TEST(DistributedMatrixTest, ActiveTasksIgnoresEmptyTiles) {
  // Only one tile non-zero -> only its owner is active.
  BlockedMatrix m(4, 4, 2);
  m.set_block(1, 1, Block::Constant(2, 2, 1.0));
  auto dist = DistributedMatrix::Create(m, PartitionScheme::kGrid, 4);
  EXPECT_EQ(dist.NumActiveTasks(), 1);
}

TEST(DistributedMatrixTest, MetaTilesAreActive) {
  BlockedMatrix m = BlockedMatrix::MakeMeta(4, 4, 8, 2);
  auto dist = DistributedMatrix::Create(m, PartitionScheme::kGrid, 2);
  EXPECT_EQ(dist.NumActiveTasks(), 2);
}

TEST(SparkPartitionsTest, SmallMatrixOnePartition) {
  EXPECT_EQ(EstimateSparkPartitions(1024, 100), 1);
}

TEST(SparkPartitionsTest, LargeMatrixSplitsBy16MB) {
  // 16 MB effective partition payload (see distributed_matrix.cc).
  const std::int64_t bytes = 512LL * 1024 * 1024;  // 512 MB
  EXPECT_EQ(EstimateSparkPartitions(bytes, 1000), 32);
}

TEST(SparkPartitionsTest, PaperCalibrationPoint) {
  // §6.2: a 100K×100K matrix at density 0.001 repartitions into ~13
  // partitions.  16·nnz bytes = 160 MB -> 10 partitions (same regime).
  const std::int64_t nnz = 10000000;
  std::int64_t parts = EstimateSparkPartitions(16 * nnz, 100 * 100);
  EXPECT_GE(parts, 5);
  EXPECT_LE(parts, 20);
}

TEST(SparkPartitionsTest, CappedByBlockCount) {
  const std::int64_t bytes = 100LL * 1024 * 1024 * 1024;
  EXPECT_EQ(EstimateSparkPartitions(bytes, 10), 10);
}

TEST(SparkPartitionsTest, SparseMatrixFewPartitions) {
  // The Fig. 12(a) situation: X is 100K x 100K at density 0.001 -> ~1.6 GB
  // sparse -> ~13 partitions, far fewer than the 100x100 block grid.
  const std::int64_t nnz = static_cast<std::int64_t>(0.001 * 1e10);
  const std::int64_t bytes = 16 * nnz;
  std::int64_t parts = EstimateSparkPartitions(bytes, 100 * 100);
  EXPECT_GT(parts, 1);
  EXPECT_LT(parts, 100);
}

}  // namespace
}  // namespace fuseme
