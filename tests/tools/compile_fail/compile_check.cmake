# CTest driver for the thread-safety compile-failure harness.
#
# Usage:
#   cmake -DCOMPILER=<c++ driver> -DFLAGS="<space-separated flags>"
#         -DSOURCE=<file.cc> -DEXPECT=PASS|FAIL -P compile_check.cmake
#
# Runs a syntax-only compile and asserts the outcome.  EXPECT=FAIL is the
# negative-artifact direction: a violation fixture that *compiles* means
# the annotations are decoration, so the test fails.

foreach(var COMPILER SOURCE EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compile_check.cmake: -D${var}=... is required")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
execute_process(
  COMMAND ${COMPILER} ${flag_list} -fsyntax-only ${SOURCE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
        "expected ${SOURCE} to be rejected, but it compiled cleanly — "
        "the thread-safety annotations are not being enforced")
  endif()
  message(STATUS "rejected as expected: ${SOURCE}")
elseif(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "expected ${SOURCE} to compile, but it failed:\n${err}")
  endif()
  message(STATUS "compiled as expected: ${SOURCE}")
else()
  message(FATAL_ERROR "EXPECT must be PASS or FAIL, got '${EXPECT}'")
endif()
