// Fixture verifier rule ids: unique, so lint-rule-id-dup passes.
#ifndef FIXTURE_CLEAN_RULES_H_
#define FIXTURE_CLEAN_RULES_H_

namespace fuseme::rules {

inline constexpr char kFirst[] = "fixture-first";
inline constexpr char kSecond[] = "fixture-second";

}  // namespace fuseme::rules

#endif  // FIXTURE_CLEAN_RULES_H_
