// Block: the unit of distributed matrix computation (paper §2.2).
//
// A distributed matrix is a grid of fixed-size blocks (paper default
// 1000×1000).  A Block holds one tile in one of four representations:
//
//   kZero   — all-zero tile, no storage (common for very sparse matrices);
//   kDense  — row-major DenseMatrix payload;
//   kSparse — CSR SparseMatrix payload;
//   kMeta   — *descriptor only* ({rows, cols, nnz}), used by the analytic
//             simulator to drive the very same physical operators at paper
//             scale without allocating the data.
//
// Payloads are shared_ptr-held so that replicating a block to many tasks
// (the heart of BFO/RFO/CFO) is cheap in-process; the CommTracker charges
// the modeled network bytes independently of this sharing.

#ifndef FUSEME_MATRIX_BLOCK_H_
#define FUSEME_MATRIX_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/logging.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace fuseme {

/// Density at or above which a block is stored (and estimated) as dense.
/// SystemML uses 0.4 as the dense/sparse storage crossover; we follow it.
inline constexpr double kDenseStorageThreshold = 0.4;

class Block {
 public:
  enum class Kind { kZero, kDense, kSparse, kMeta };

  Block() : Block(Kind::kZero, 0, 0, 0) {}

  static Block Zero(std::int64_t rows, std::int64_t cols) {
    return Block(Kind::kZero, rows, cols, 0);
  }
  static Block FromDense(DenseMatrix dense);
  static Block FromSparse(SparseMatrix sparse);
  /// Descriptor-only block for the analytic simulator.
  static Block Meta(std::int64_t rows, std::int64_t cols, std::int64_t nnz);
  /// Dense block filled with a constant.
  static Block Constant(std::int64_t rows, std::int64_t cols, double value);

  Kind kind() const { return kind_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  std::int64_t nnz() const { return nnz_; }
  double density() const {
    return size() == 0 ? 0.0 : static_cast<double>(nnz_) / size();
  }

  bool is_meta() const { return kind_ == Kind::kMeta; }
  bool is_zero() const { return kind_ == Kind::kZero; }
  /// True when the block carries actual values (zero counts as real).
  bool is_real() const { return kind_ != Kind::kMeta; }

  const DenseMatrix& dense() const {
    FUSEME_CHECK(kind_ == Kind::kDense);
    return *dense_;
  }
  const SparseMatrix& sparse() const {
    FUSEME_CHECK(kind_ == Kind::kSparse);
    return *sparse_;
  }

  /// Element access for any real kind (kZero returns 0).
  double At(std::int64_t i, std::int64_t j) const;

  /// Materializes as a DenseMatrix (CHECKs is_real()).
  DenseMatrix ToDense() const;

  /// In-memory footprint used for memory accounting and the network-byte
  /// model: dense tiles cost 8·rows·cols, sparse tiles 12·nnz + 8·rows
  /// (8-byte value + 4-byte column index per entry — block-local indices
  /// fit 32 bits — plus an 8-byte extent per row), zero tiles a small
  /// header.
  /// Meta blocks report what their materialized form *would* cost, picking
  /// dense vs. sparse by kDenseStorageThreshold.
  std::int64_t SizeBytes() const;

  /// Same accounting applied to a hypothetical tile, without building one.
  static std::int64_t EstimateSizeBytes(std::int64_t rows, std::int64_t cols,
                                        std::int64_t nnz);

  std::string ToString() const;

 private:
  Block(Kind kind, std::int64_t rows, std::int64_t cols, std::int64_t nnz)
      : kind_(kind), rows_(rows), cols_(cols), nnz_(nnz) {}

  Kind kind_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t nnz_;
  std::shared_ptr<const DenseMatrix> dense_;
  std::shared_ptr<const SparseMatrix> sparse_;
};

}  // namespace fuseme

#endif  // FUSEME_MATRIX_BLOCK_H_
