file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_autoencoder.dir/bench_fig15_autoencoder.cc.o"
  "CMakeFiles/bench_fig15_autoencoder.dir/bench_fig15_autoencoder.cc.o.d"
  "bench_fig15_autoencoder"
  "bench_fig15_autoencoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
