#include "fusion/planners.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "common/logging.h"
#include "cost/optimizer.h"
#include "fusion/sparsity_analysis.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

namespace {

bool IsOperatorNode(const Node& n) {
  return n.kind != OpKind::kInput && n.kind != OpKind::kScalar;
}

bool IsEwise(const Node& n) {
  return n.kind == OpKind::kUnary || n.kind == OpKind::kBinary;
}

/// Root of a member set: the unique member no other member consumes.
/// Node ids are topological, so it is the maximum id.
NodeId RootOf(const std::set<NodeId>& members) {
  FUSEME_CHECK(!members.empty());
  return *members.rbegin();
}

PartialPlan MakePlan(const Dag& dag, const std::set<NodeId>& members) {
  return PartialPlan(&dag, {members.begin(), members.end()},
                     RootOf(members));
}

}  // namespace

bool IsTerminationOperator(const Dag& dag, NodeId id) {
  const Node& n = dag.node(id);
  if (!IsOperatorNode(n)) return true;  // leaves never fuse
  if (dag.FanOut(id) > 1) return true;  // materialization point
  // Unary aggregations need a shuffle to combine per-task partials, so
  // they may only terminate a plan (paper §4.1).
  if (n.kind == OpKind::kUnaryAgg) return true;
  return false;
}

FusionPlanSet FinalizePlanSet(const Dag& dag,
                              std::vector<PartialPlan> plans,
                              std::string description) {
  std::set<NodeId> covered;
  for (const PartialPlan& p : plans) {
    covered.insert(p.members().begin(), p.members().end());
  }
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    if (!IsOperatorNode(n) || covered.contains(id)) continue;
    plans.emplace_back(&dag, std::vector<NodeId>{id}, id);
  }
  // A plan's root id exceeds the root id of every producer plan, so
  // sorting by root id is a valid execution order.
  std::sort(plans.begin(), plans.end(),
            [](const PartialPlan& a, const PartialPlan& b) {
              return a.root() < b.root();
            });
  FusionPlanSet out;
  out.plans = std::move(plans);
  out.description = std::move(description);
  return out;
}

// --------------------------------------------------------------------------
// CFG (paper Alg. 2 + Alg. 3)
// --------------------------------------------------------------------------

std::vector<PartialPlan> CfgPlanner::ExplorationPhase(const Dag& dag) const {
  std::set<NodeId> workload;
  for (NodeId id : dag.TopologicalOrder()) {
    if (IsOperatorNode(dag.node(id))) workload.insert(id);
  }

  std::vector<PartialPlan> plans;
  while (true) {
    // Pick a remaining matmul seed (smallest id for determinism).
    NodeId seed = kInvalidNode;
    for (NodeId id : workload) {
      if (dag.node(id).kind == OpKind::kMatMul) {
        seed = id;
        break;
      }
    }
    if (seed == kInvalidNode) break;

    workload.erase(seed);
    std::set<NodeId> members = {seed};
    bool top_reached = IsTerminationOperator(dag, seed);

    while (true) {
      // Adjacent operators of the plan still in the workload: children
      // always, consumers only while the top has not been reached.
      std::set<NodeId> adjacent;
      for (NodeId m : members) {
        for (NodeId in : dag.node(m).inputs) {
          if (workload.contains(in)) adjacent.insert(in);
        }
        if (!top_reached) {
          for (NodeId c : dag.Consumers(m)) {
            if (workload.contains(c)) adjacent.insert(c);
          }
        }
      }
      if (adjacent.empty()) break;
      for (NodeId v : adjacent) {
        const bool outgoing = !members.contains(v) &&
                              [&] {
                                for (NodeId in : dag.node(v).inputs) {
                                  if (members.contains(in)) return true;
                                }
                                return false;
                              }();
        if (!IsTerminationOperator(dag, v)) {
          members.insert(v);
        } else if (outgoing && !top_reached) {
          // A termination operator joins only as the plan's top (root).
          members.insert(v);
          top_reached = true;
        }
        workload.erase(v);
      }
    }
    plans.push_back(MakePlan(dag, members));
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter(metric_names::kPlannerExplorationCandidates)
        ->Add(static_cast<std::int64_t>(plans.size()));
  }
  return plans;
}

std::vector<PartialPlan> CfgPlanner::ExploitationPhase(
    const Dag& dag, std::vector<PartialPlan> candidates) const {
  (void)dag;
  PqrOptimizer optimizer(model_);
  optimizer.set_metrics(metrics_);
  Counter* split_attempts =
      metrics_ != nullptr
          ? metrics_->GetCounter(metric_names::kPlannerSplitAttempts)
          : nullptr;
  Counter* splits_taken =
      metrics_ != nullptr ? metrics_->GetCounter(metric_names::kPlannerSplits)
                          : nullptr;
  // Infeasible plans get a large finite sentinel so that a split producing
  // feasible pieces always reads as an improvement.
  constexpr double kInfeasible = 1e30;
  auto plan_cost = [&](const PartialPlan& plan) {
    PqrChoice choice = optimizer.Pruned(plan);
    return choice.feasible ? choice.cost : kInfeasible;
  };

  std::vector<PartialPlan> result;
  std::deque<PartialPlan> work(candidates.begin(), candidates.end());
  while (!work.empty()) {
    PartialPlan plan = std::move(work.front());
    work.pop_front();
    std::vector<NodeId> mms = plan.MatMuls();
    if (mms.size() <= 1) {
      result.push_back(std::move(plan));
      continue;
    }
    const NodeId vm = plan.MainMatMul();
    const double cost = plan_cost(plan);

    // Splitting points: every other matmul, most distant from vm first
    // (paper: the most distant one tends to cause the highest cost).
    std::vector<NodeId> sp;
    for (NodeId mm : mms) {
      if (mm != vm) sp.push_back(mm);
    }
    std::sort(sp.begin(), sp.end(), [&](NodeId a, NodeId b) {
      return plan.Distance(a, vm) > plan.Distance(b, vm);
    });

    bool split = false;
    for (NodeId vi : sp) {
      if (vi == plan.root()) continue;  // cannot split at the root
      if (split_attempts != nullptr) split_attempts->Increment();
      auto [fm, fi] = plan.SplitAt(vi);
      const double cost_m = plan_cost(fm);
      const double cost_i = plan_cost(fi);
      if (cost > cost_m + cost_i) {
        work.push_back(std::move(fm));
        work.push_back(std::move(fi));
        split = true;
        if (splits_taken != nullptr) splits_taken->Increment();
        break;
      }
    }
    if (!split) result.push_back(std::move(plan));
  }
  std::sort(result.begin(), result.end(),
            [](const PartialPlan& a, const PartialPlan& b) {
              return a.root() < b.root();
            });
  return result;
}

FusionPlanSet CfgPlanner::Plan(const Dag& dag) const {
  std::vector<PartialPlan> candidates = ExplorationPhase(dag);
  std::vector<PartialPlan> refined =
      ExploitationPhase(dag, std::move(candidates));
  return FinalizePlanSet(dag, std::move(refined), "CFG(explore+exploit)");
}

// --------------------------------------------------------------------------
// GEN (SystemDS templates, approximated)
// --------------------------------------------------------------------------

namespace {

/// Absorbs fanout-1 element-wise subtrees feeding `members` (e.g. the
/// (X != 0) mask branch of the weighted loss).
void AbsorbEwiseInputs(const Dag& dag, std::set<NodeId>* members,
                       std::set<NodeId>* used) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<NodeId> to_add;
    for (NodeId m : *members) {
      for (NodeId in : dag.node(m).inputs) {
        const Node& n = dag.node(in);
        if (!IsEwise(n)) continue;
        if (members->count(in) > 0 || used->count(in) > 0) continue;
        if (dag.FanOut(in) != 1) continue;
        to_add.push_back(in);
      }
    }
    for (NodeId id : to_add) {
      members->insert(id);
      used->insert(id);
      changed = true;
    }
  }
}

}  // namespace

FusionPlanSet GenPlanner::Plan(const Dag& dag) const {
  std::set<NodeId> used;
  std::vector<PartialPlan> plans;

  // --- Outer template: one matmul + chain + sparse mask multiply. ---
  for (NodeId mm : dag.MatMulNodes()) {
    if (used.contains(mm) || dag.FanOut(mm) > 1) continue;
    std::vector<NodeId> path = {mm};
    NodeId cur = mm;
    NodeId mask_mul = kInvalidNode;
    while (true) {
      auto consumers = dag.Consumers(cur);
      if (consumers.size() != 1 || dag.FanOut(cur) != 1) break;
      const NodeId c = consumers[0];
      if (used.contains(c)) break;
      const Node& cn = dag.node(c);
      if (cn.kind == OpKind::kUnaryAgg) {
        // An aggregation can cap the plan once the mask is found.
        if (mask_mul != kInvalidNode) path.push_back(c);
        break;
      }
      if (!IsEwise(cn)) break;
      path.push_back(c);
      if (cn.kind == OpKind::kBinary && cn.binary_fn == BinaryFn::kMul) {
        const NodeId other = cn.inputs[0] == cur ? cn.inputs[1]
                                                 : cn.inputs[0];
        const Node& on = dag.node(other);
        if (on.is_matrix() && on.rows == cn.rows && on.cols == cn.cols &&
            on.density() < kSparseDriverDensityThreshold) {
          mask_mul = c;  // sparsity exploitation is possible
        }
      }
      cur = c;
    }
    if (mask_mul == kInvalidNode) continue;
    std::set<NodeId> members(path.begin(), path.end());
    used.insert(members.begin(), members.end());
    AbsorbEwiseInputs(dag, &members, &used);
    plans.push_back(MakePlan(dag, members));
  }

  // --- Cell template: maximal element-wise trees over the rest. ---
  std::map<NodeId, int> group_of;
  std::vector<std::set<NodeId>> groups;
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    if (!IsEwise(n) || used.contains(id)) continue;
    int g = static_cast<int>(groups.size());
    groups.push_back({id});
    group_of[id] = g;
    for (NodeId in : n.inputs) {
      auto it = group_of.find(in);
      if (it == group_of.end() || it->second == g) continue;
      if (dag.FanOut(in) != 1) continue;
      // Merge the input's group into this one.
      int old = it->second;
      for (NodeId moved : groups[old]) group_of[moved] = g;
      groups[g].insert(groups[old].begin(), groups[old].end());
      groups[old].clear();
    }
  }
  for (const auto& g : groups) {
    if (g.size() < 2) continue;  // singletons are added by Finalize
    plans.push_back(MakePlan(dag, g));
  }

  return FinalizePlanSet(dag, std::move(plans), "GEN(outer+cell)");
}

// --------------------------------------------------------------------------
// Folded (MatFast) and NoFusion (DistME)
// --------------------------------------------------------------------------

FusionPlanSet FoldedPlanner::Plan(const Dag& dag) const {
  std::map<NodeId, int> group_of;
  std::vector<std::set<NodeId>> groups;
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    if (!IsEwise(n)) continue;
    int g = static_cast<int>(groups.size());
    groups.push_back({id});
    group_of[id] = g;
    for (NodeId in : n.inputs) {
      auto it = group_of.find(in);
      if (it == group_of.end() || it->second == g) continue;
      if (dag.FanOut(in) != 1) continue;
      int old = it->second;
      for (NodeId moved : groups[old]) group_of[moved] = g;
      groups[g].insert(groups[old].begin(), groups[old].end());
      groups[old].clear();
    }
  }
  std::vector<PartialPlan> plans;
  for (const auto& g : groups) {
    if (g.size() < 2) continue;
    plans.push_back(MakePlan(dag, g));
  }
  return FinalizePlanSet(dag, std::move(plans), "Folded(ewise chains)");
}

FusionPlanSet NoFusionPlanner::Plan(const Dag& dag) const {
  return FinalizePlanSet(dag, {}, "NoFusion(operator-at-a-time)");
}

}  // namespace fuseme
