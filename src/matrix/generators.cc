#include "matrix/generators.h"

#include <random>
#include <tuple>
#include <vector>

namespace fuseme {

DenseMatrix RandomDense(std::int64_t rows, std::int64_t cols,
                        std::uint64_t seed, double lo, double hi) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  DenseMatrix out(rows, cols);
  for (std::int64_t i = 0; i < out.size(); ++i) out.data()[i] = dist(rng);
  return out;
}

SparseMatrix RandomSparse(std::int64_t rows, std::int64_t cols,
                          double density, std::uint64_t seed, double lo,
                          double hi) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> value(lo, hi);
  std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
  triplets.reserve(
      static_cast<std::size_t>(density * static_cast<double>(rows * cols)) +
      16);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      if (coin(rng) < density) {
        double v = value(rng);
        if (v == 0.0) v = (lo + hi) / 2.0 + 1e-9;  // keep nnz exact
        triplets.emplace_back(i, j, v);
      }
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

BlockedMatrix RandomDenseBlocked(std::int64_t rows, std::int64_t cols,
                                 std::int64_t block_size, std::uint64_t seed,
                                 double lo, double hi) {
  return BlockedMatrix::FromDense(RandomDense(rows, cols, seed, lo, hi),
                                  block_size);
}

BlockedMatrix RandomSparseBlocked(std::int64_t rows, std::int64_t cols,
                                  double density, std::int64_t block_size,
                                  std::uint64_t seed, double lo, double hi) {
  return BlockedMatrix::FromSparse(
      RandomSparse(rows, cols, density, seed, lo, hi), block_size);
}

}  // namespace fuseme
