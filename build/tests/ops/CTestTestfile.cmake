# CMake generated Testfile for 
# Source directory: /root/repo/tests/ops
# Build directory: /root/repo/build/tests/ops
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ops/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/ops/fused_operator_test[1]_include.cmake")
include("/root/repo/build/tests/ops/balance_test[1]_include.cmake")
include("/root/repo/build/tests/ops/operator_sweep_test[1]_include.cmake")
