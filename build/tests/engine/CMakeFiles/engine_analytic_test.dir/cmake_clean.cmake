file(REMOVE_RECURSE
  "CMakeFiles/engine_analytic_test.dir/engine_analytic_test.cc.o"
  "CMakeFiles/engine_analytic_test.dir/engine_analytic_test.cc.o.d"
  "engine_analytic_test"
  "engine_analytic_test.pdb"
  "engine_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
