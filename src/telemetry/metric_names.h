// Stable metric name catalogue (see DESIGN.md section 12).
//
// Every instrument the engine registers uses one of these names, so
// dashboards and tests can reference them without string drift — the same
// contract the verifier gives its rule ids.  Names follow Prometheus
// conventions: `fuseme_` prefix, `_total` suffix on counters, base units
// (bytes, seconds) in the name.

#ifndef FUSEME_TELEMETRY_METRIC_NAMES_H_
#define FUSEME_TELEMETRY_METRIC_NAMES_H_

namespace fuseme::metric_names {

// --- Parser / IR ---
/// Queries handed to ParseQuery.
inline constexpr char kParserQueries[] = "fuseme_parser_queries_total";
/// Queries rejected with a parse or shape error.
inline constexpr char kParserErrors[] = "fuseme_parser_errors_total";
/// DAG nodes built, labeled {kind="input|matmul|..."}.
inline constexpr char kIrNodes[] = "fuseme_ir_nodes_total";

// --- CFG planner ---
/// Candidate plans produced by the exploration phase (Alg. 2).
inline constexpr char kPlannerExplorationCandidates[] =
    "fuseme_planner_exploration_candidates_total";
/// Split positions tried by the exploitation phase (Alg. 3).
inline constexpr char kPlannerSplitAttempts[] =
    "fuseme_planner_split_attempts_total";
/// Splits the exploitation phase actually took (cost improved).
inline constexpr char kPlannerSplits[] = "fuseme_planner_splits_total";
/// Plans kept in the final plan set, labeled {planner=...}.
inline constexpr char kPlannerPlans[] = "fuseme_planner_plans_total";
/// Histogram of MakePlans wall time in seconds.
inline constexpr char kPlannerWallSeconds[] = "fuseme_planner_wall_seconds";

// --- (P,Q,R) optimizer ---
/// Cuboid searches run (one per optimized fused operator).
inline constexpr char kOptimizerSearches[] =
    "fuseme_optimizer_searches_total";
/// Cuboids fully costed.
inline constexpr char kOptimizerEvaluations[] =
    "fuseme_optimizer_evaluations_total";
/// Grid points skipped by the pruned search (enumerated minus costed).
inline constexpr char kOptimizerCuboidsPruned[] =
    "fuseme_optimizer_cuboids_pruned_total";
/// Searches that found no feasible cuboid under the memory budget.
inline constexpr char kOptimizerInfeasible[] =
    "fuseme_optimizer_infeasible_total";

// --- Stage-solver registry (engine/solver_registry.h) ---
/// Solver selections recorded into compiled artifacts, labeled
/// {solver=<solver_names id>}.  One per compiled stage (plus one per
/// degradation rung that re-resolves at execute time), so repeat
/// Engine::Execute calls leave this flat — the bench_compile
/// compile-happens-once assertion rides on it.
inline constexpr char kSolverResolutions[] =
    "fuseme_solver_resolutions_total";
/// IsApplicable rejections while resolving, labeled {solver=...}; the
/// registry falls through to the next (less refined) candidate.
inline constexpr char kSolverRejections[] =
    "fuseme_solver_rejections_total";
/// Stage attempts dispatched through a solver's Run/analytic path,
/// labeled {solver=...}.  Grows with every execute, unlike resolutions.
inline constexpr char kSolverExecutions[] =
    "fuseme_solver_executions_total";

// --- Engine / stages ---
/// Engine runs, labeled {status="ok|out_of_memory|timed_out|error"}.
inline constexpr char kEngineRuns[] = "fuseme_engine_runs_total";
/// Shuffle bytes, labeled {cause="consolidation|aggregation"} (§3.3
/// NetEst split).
inline constexpr char kStageShuffleBytes[] =
    "fuseme_stage_shuffle_bytes_total";
/// Floating-point operations charged by stage accounting.
inline constexpr char kStageFlops[] = "fuseme_stage_flops_total";
/// Tasks launched across all stages.
inline constexpr char kStageTasks[] = "fuseme_stage_tasks_total";
/// Stages executed.
inline constexpr char kStages[] = "fuseme_stages_total";
/// Histogram of per-stage wall time in seconds.
inline constexpr char kStageSeconds[] = "fuseme_stage_seconds";
/// Per-task memory high-water in bytes (gauge; peak = worst task seen).
inline constexpr char kTaskMemoryBytes[] = "fuseme_task_memory_bytes";
/// Stages whose actual per-task memory exceeded the MemEst budget.
inline constexpr char kStageMemoryOverruns[] =
    "fuseme_stage_memory_overrun_total";

// --- Work items / thread pool ---
/// Work items executed by fused operators.
inline constexpr char kWorkItems[] = "fuseme_work_items_total";
/// Histogram of seconds between work-item submission and start.
inline constexpr char kWorkItemQueueWaitSeconds[] =
    "fuseme_work_item_queue_wait_seconds";
/// Histogram of work-item execution seconds.
inline constexpr char kWorkItemSeconds[] = "fuseme_work_item_seconds";
/// Global pool queue depth sampled at work-item start (gauge + peak).
inline constexpr char kThreadPoolQueueDepth[] =
    "fuseme_thread_pool_queue_depth";
/// Global pool worker count (gauge).
inline constexpr char kThreadPoolThreads[] = "fuseme_thread_pool_threads";

// --- Kernels ---
/// FLOPs counted by the kernel evaluator (all node kinds).
inline constexpr char kKernelFlops[] = "fuseme_kernel_flops_total";
/// FLOPs spent in dense GEMM specifically.
inline constexpr char kKernelGemmFlops[] = "fuseme_kernel_gemm_flops_total";
/// Block storage conversions, labeled
/// {direction="sparse_to_dense|dense_to_sparse"}.
inline constexpr char kBlockConversions[] =
    "fuseme_block_conversions_total";
/// Sparse-kernel invocations, labeled {kernel="spmm_sparse_dense|
/// spmm_dense_sparse|spmm_sparse_sparse|transpose_spmm|sddmm|
/// ewise_merge_join"} (DESIGN.md section 15).
inline constexpr char kKernelSparseCalls[] =
    "fuseme_kernel_sparse_calls_total";
/// FLOPs executed inside the sparse kernels (subset of kKernelFlops).
inline constexpr char kKernelSparseFlops[] =
    "fuseme_kernel_sparse_flops_total";
/// Dot-product evaluations (mask non-zeros × k-blocks) in SDDMM.
inline constexpr char kKernelSddmmDots[] =
    "fuseme_kernel_sddmm_dots_total";
/// Sparse-kernel invocations that split over the global thread pool.
inline constexpr char kKernelSparseParallel[] =
    "fuseme_kernel_sparse_parallel_launches_total";
/// Nonzeros in committed output blocks (density numerator).
inline constexpr char kKernelOutputNnz[] = "fuseme_kernel_output_nnz_total";
/// Cells in committed output blocks (density denominator).
inline constexpr char kKernelOutputCells[] =
    "fuseme_kernel_output_cells_total";

// --- Prefetch pipeline (DESIGN.md section 14) ---
/// Block copies staged by the prefetch pipeline.
inline constexpr char kPrefetchIssued[] =
    "fuseme_prefetch_blocks_issued_total";
/// Staged copies consumed, labeled {outcome="ready|waited|stolen"}:
/// ready = transfer done before the consumer asked (full overlap),
/// waited = consumer stalled on an in-flight transfer, stolen = consumer
/// ran a still-queued copy inline (saturated pool).
inline constexpr char kPrefetchConsumed[] =
    "fuseme_prefetch_blocks_consumed_total";
/// Staged copies dropped unconsumed (cancellation, retry, over-prefetch).
inline constexpr char kPrefetchCancelled[] =
    "fuseme_prefetch_blocks_cancelled_total";
/// Staged-but-unconsumed entries of the issuing prefetcher (gauge; peak =
/// deepest pipeline seen).
inline constexpr char kPrefetchInFlight[] =
    "fuseme_prefetch_in_flight_blocks";
/// Histogram of consumer seconds per non-ready staged block (stall waits
/// and inline steals).
inline constexpr char kPrefetchWaitSeconds[] =
    "fuseme_prefetch_fetch_wait_seconds";
/// Cumulative consumer-thread seconds spent acquiring input blocks
/// (gauge, summed across stages; wall clock, not modeled time).
inline constexpr char kFetchWaitSeconds[] = "fuseme_fetch_wait_seconds";
/// Cumulative consumer-thread seconds spent in kernel compute between
/// fetches (gauge, summed across stages).
inline constexpr char kComputeBusySeconds[] =
    "fuseme_compute_busy_seconds";
/// Per-stage overlap efficiency compute/(compute + fetch-wait) in [0, 1]
/// (gauge; 1.0 = transfers fully hidden behind compute).
inline constexpr char kStageOverlapEfficiency[] =
    "fuseme_stage_overlap_efficiency";

// --- Fault tolerance (DESIGN.md section 13) ---
/// Injected faults absorbed, labeled
/// {kind="lost_at_launch|lost_before_commit|oom|straggler"}.
inline constexpr char kFaultInjected[] = "fuseme_fault_injected_total";
/// Work-item re-launches, labeled {cause="injected_failure"}.
inline constexpr char kTaskRetries[] = "fuseme_task_retries_total";
/// Work-item attempts, first tries included.
inline constexpr char kWorkItemAttempts[] =
    "fuseme_work_item_attempts_total";
/// OOM degradation rungs taken, labeled {action="shrink_cuboid|cpmm"}.
inline constexpr char kStageDegradations[] =
    "fuseme_stage_degradations_total";
/// Speculative task copies the simulator launched against stragglers.
inline constexpr char kSpeculativeTasks[] =
    "fuseme_speculative_tasks_total";

// --- Verifier ---
/// Artifacts checked, labeled {artifact="dag|plan|plan_set|stage_graph|cuboid"}.
inline constexpr char kVerifierChecks[] = "fuseme_verifier_checks_total";
/// Diagnostics raised, labeled {rule=<verifier rule id>}.
inline constexpr char kVerifierDiagnostics[] =
    "fuseme_verifier_diagnostics_total";

// --- Logging ---
/// Log messages past the level filter, labeled
/// {level="debug|info|warning|error"}.
inline constexpr char kLogMessages[] = "fuseme_log_messages_total";

}  // namespace fuseme::metric_names

#endif  // FUSEME_TELEMETRY_METRIC_NAMES_H_
