// google-benchmark microbenchmarks for the local kernels that all the
// distributed operators bottom out in: block element-wise ops, matrix
// multiplication across representations, and the fused-kernel evaluator's
// masked (sparsity-exploiting) path vs the dense path.

#include <benchmark/benchmark.h>

#include "matrix/block_ops.h"
#include "matrix/generators.h"
#include "ops/evaluator.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

void BM_EwiseMulDenseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromDense(RandomDense(n, n, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = EwiseBinary(BinaryFn::kMul, a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EwiseMulDenseDense)->Arg(64)->Arg(256);

void BM_EwiseMulSparseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.01, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = EwiseBinary(BinaryFn::kMul, a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_EwiseMulSparseDense)->Arg(64)->Arg(256);

void BM_MatMulDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromDense(RandomDense(n, n, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = MatMul(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulDense)->Arg(32)->Arg(128);

void BM_MatMulSparseDense(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.02, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(n, n, 2, 1.0, 2.0));
  for (auto _ : state) {
    auto result = MatMul(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 2 * a.nnz() * n);
}
BENCHMARK(BM_MatMulSparseDense)->Arg(128)->Arg(256);

void BM_TransposeSparse(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Block a = Block::FromSparse(RandomSparse(n, n, 0.05, 1, 1.0, 2.0));
  for (auto _ : state) {
    auto result = Transpose(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransposeSparse)->Arg(256);

// The fused kernel of Fig. 8 — dense evaluation vs the sparsity-exploiting
// masked path on the same block.
struct EvalSetup {
  NmfPattern q;
  PartialPlan plan;
  std::map<NodeId, BlockedMatrix> data;

  explicit EvalSetup(std::int64_t n, double density)
      : q(BuildNmfPattern(n, n, 64,
                          static_cast<std::int64_t>(density * n * n))),
        plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul) {
    data[q.X] = BlockedMatrix::FromSparse(
        RandomSparse(n, n, density, 1, 1.0, 2.0), n);
    data[q.U] = BlockedMatrix::FromDense(RandomDense(n, 64, 2), n);
    data[q.V] = BlockedMatrix::FromDense(RandomDense(n, 64, 3), n);
  }

  BlockFetcher Fetcher() {
    return [this](NodeId id, std::int64_t bi,
                  std::int64_t bj) -> Result<Block> {
      return data.at(id).block(bi, bj);
    };
  }
};

void BM_FusedKernelDensePath(benchmark::State& state) {
  EvalSetup setup(256, 0.01);
  for (auto _ : state) {
    KernelEvaluator eval(&setup.plan, 256, setup.Fetcher());
    auto result = eval.Eval(setup.q.mul, 0, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FusedKernelDensePath);

void BM_FusedKernelMaskedPath(benchmark::State& state) {
  EvalSetup setup(256, 0.01);
  SparseDriver driver = FindSparseDriver(setup.plan, setup.q.mm);
  for (auto _ : state) {
    KernelEvaluator eval(&setup.plan, 256, setup.Fetcher());
    eval.SetSparseDriver(driver);
    auto result = eval.Eval(setup.q.mul, 0, 0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FusedKernelMaskedPath);

}  // namespace
}  // namespace fuseme

BENCHMARK_MAIN();
