// FaultInjector: the schedule must be a pure function of
// (seed, stage, item, attempt) — replayable by tests and independent of
// call order — with frequencies tracking the configured probabilities.

#include "runtime/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace fuseme {
namespace {

FaultSpec FailSpec(double p, std::uint64_t seed = 7) {
  FaultSpec spec;
  spec.seed = seed;
  spec.task_failure_probability = p;
  return spec;
}

TEST(FaultSpecTest, DisabledByDefault) {
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_TRUE(FailSpec(0.1).enabled());
  FaultSpec oom;
  oom.oom_stages = {2};
  EXPECT_TRUE(oom.enabled());
  FaultSpec straggle;
  straggle.straggler_probability = 0.5;
  EXPECT_TRUE(straggle.enabled());
}

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  const FaultInjector a(FailSpec(0.3));
  const FaultInjector b(FailSpec(0.3));
  for (int stage = 0; stage < 4; ++stage) {
    for (std::int64_t item = 0; item < 64; ++item) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.TaskFault(stage, item, attempt),
                  b.TaskFault(stage, item, attempt));
      }
    }
  }
}

TEST(FaultInjectorTest, DecisionsIndependentOfCallOrder) {
  const FaultInjector injector(FailSpec(0.3));
  // Query backwards first, then forwards; every answer must agree.
  std::vector<InjectedFault> reversed;
  for (std::int64_t item = 63; item >= 0; --item) {
    reversed.push_back(injector.TaskFault(1, item, 0));
  }
  for (std::int64_t item = 0; item < 64; ++item) {
    EXPECT_EQ(injector.TaskFault(1, item, 0),
              reversed[static_cast<std::size_t>(63 - item)]);
  }
}

TEST(FaultInjectorTest, SeedChangesTheSchedule) {
  const FaultInjector a(FailSpec(0.5, /*seed=*/1));
  const FaultInjector b(FailSpec(0.5, /*seed=*/2));
  int differing = 0;
  for (std::int64_t item = 0; item < 256; ++item) {
    if (a.TaskFault(0, item, 0) != b.TaskFault(0, item, 0)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, FailureFrequencyTracksProbability) {
  const FaultInjector injector(FailSpec(0.25));
  int failures = 0;
  const int n = 4000;
  for (std::int64_t item = 0; item < n; ++item) {
    if (injector.TaskFault(0, item, 0) != InjectedFault::kNone) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.25, 0.05);
}

TEST(FaultInjectorTest, BothFailurePointsOccur) {
  const FaultInjector injector(FailSpec(0.5));
  int at_launch = 0, before_commit = 0;
  for (std::int64_t item = 0; item < 512; ++item) {
    switch (injector.TaskFault(0, item, 0)) {
      case InjectedFault::kLostAtLaunch:
        ++at_launch;
        break;
      case InjectedFault::kLostBeforeCommit:
        ++before_commit;
        break;
      case InjectedFault::kNone:
        break;
    }
  }
  EXPECT_GT(at_launch, 0);
  EXPECT_GT(before_commit, 0);
}

TEST(FaultInjectorTest, ZeroAndOneProbabilitiesAreExact) {
  const FaultInjector never(FailSpec(0.0));
  const FaultInjector always(FailSpec(1.0));
  for (std::int64_t item = 0; item < 64; ++item) {
    EXPECT_EQ(never.TaskFault(0, item, 0), InjectedFault::kNone);
    EXPECT_NE(always.TaskFault(0, item, 0), InjectedFault::kNone);
  }
}

TEST(FaultInjectorTest, AttemptsDrawIndependently) {
  // With p = 0.5 some item must fail on attempt 0 yet pass on attempt 1 —
  // otherwise retrying could never succeed.
  const FaultInjector injector(FailSpec(0.5));
  bool recovered = false;
  for (std::int64_t item = 0; item < 256 && !recovered; ++item) {
    recovered = injector.TaskFault(0, item, 0) != InjectedFault::kNone &&
                injector.TaskFault(0, item, 1) == InjectedFault::kNone;
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultInjectorTest, OomFiresOnlyOnListedStages) {
  FaultSpec spec;
  spec.oom_stages = {0, 3};
  const FaultInjector injector(spec);
  EXPECT_TRUE(injector.InjectOom(0));
  EXPECT_FALSE(injector.InjectOom(1));
  EXPECT_FALSE(injector.InjectOom(2));
  EXPECT_TRUE(injector.InjectOom(3));
}

TEST(FaultInjectorTest, StragglerFactorIsSlowdownOrOne) {
  FaultSpec spec;
  spec.seed = 11;
  spec.straggler_probability = 0.5;
  spec.straggler_slowdown = 6.0;
  const FaultInjector injector(spec);
  int stragglers = 0;
  for (std::int64_t task = 0; task < 512; ++task) {
    const double f = injector.StragglerFactor(2, task);
    EXPECT_TRUE(f == 1.0 || f == 6.0);
    if (f > 1.0) ++stragglers;
  }
  EXPECT_NEAR(static_cast<double>(stragglers) / 512, 0.5, 0.1);
  // Straggler draws are keyed separately from failure draws.
  const FaultInjector none(FaultSpec{});
  EXPECT_EQ(none.StragglerFactor(2, 0), 1.0);
}

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 1.5;
  policy.backoff_max_seconds = 10.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 1.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 3.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 6.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 10.0);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(10), 10.0);
}

TEST(StageRecoveryTest, AnyReflectsActivity) {
  StageRecovery recovery;
  recovery.attempts = 12;  // clean run: attempts alone are not "activity"
  EXPECT_FALSE(recovery.any());
  recovery.retries = 1;
  EXPECT_TRUE(recovery.any());
  recovery = StageRecovery{};
  recovery.degradations = 1;
  EXPECT_TRUE(recovery.any());
  recovery = StageRecovery{};
  recovery.stragglers = 2;
  EXPECT_TRUE(recovery.any());
}

}  // namespace
}  // namespace fuseme
