// Predicted-vs-actual stage cost telemetry (DESIGN.md section 10).
//
// The engine's plan choice rides entirely on the cost model (paper §3.3);
// this layer records what the model *predicted* for each chosen stage —
// NetEst / AggBytes / ComEst / MemEst at the chosen (P,Q,R) — next to what
// the runtime actually charged, and distills per-dimension ratios so a
// mis-calibrated model is visible (and testable) instead of silently
// steering the optimizer.

#ifndef FUSEME_TELEMETRY_PREDICTION_H_
#define FUSEME_TELEMETRY_PREDICTION_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "runtime/stage.h"

namespace fuseme {

/// The cost model's view of one stage at operator-selection time.
struct StagePrediction {
  /// False when no prediction was recorded (e.g. the stage failed before
  /// an operator was chosen).
  bool present = false;
  std::string operator_kind;  // "CFO", "BFO", "RFO", "cpmm"
  /// Chosen (P,Q,R) for cuboid-based operators; (1,1,1) otherwise.
  Cuboid cuboid;
  int num_tasks = 0;
  double net_bytes = 0;     // NetEst: consolidation traffic
  double agg_bytes = 0;     // AggBytes: R>1 partial-aggregation shuffle
  double flops = 0;         // ComEst
  double mem_per_task = 0;  // MemEst
  double cost_seconds = 0;  // Eq. 2 modeled seconds
};

/// One stage's full telemetry: the prediction, the realized accounting
/// (measured charges in real mode, engine-adjusted closed forms in
/// analytic mode), and how the stage actually executed.
struct StageTelemetry {
  std::string label;
  StagePrediction predicted;
  StageStats actual;
  double wall_seconds = 0;  // host wall clock for the stage
  int threads = 1;          // work-item parallelism used
  /// What recovery did while the stage ran: attempts, retries, injected
  /// faults, degradation rungs, stragglers (runtime/fault_injector.h).
  /// All-zero on clean runs.
  StageRecovery recovery;
  /// Host wall-clock prefetch telemetry (fetch-wait vs compute-busy,
  /// staged-copy outcomes).  All-zero on analytic runs and at
  /// prefetch_depth 0 with no fetches timed.
  StagePipeline pipeline;
};

/// Per-dimension prediction error of one stage, as actual/predicted
/// ratios (1.0 = perfectly calibrated).  Dimensions where both sides are
/// below the noise floors (kRatioFloorBytes / kRatioFloorFlops) report
/// exactly 1.0 so empty shuffles don't produce 0/0 artifacts.
struct StagePredictionError {
  std::string label;
  double net_ratio = 1.0;
  double agg_ratio = 1.0;
  double flops_ratio = 1.0;
  double mem_ratio = 1.0;

  /// Worst |log2(ratio)| over the four dimensions.
  double MaxAbsLog2() const;
};

inline constexpr double kRatioFloorBytes = 4096;
inline constexpr double kRatioFloorFlops = 4096;

/// Per-plan prediction-error report over the stages that carry a
/// prediction (stages without one are skipped).
struct PredictionReport {
  std::vector<StagePredictionError> stages;
  /// Worst |log2(ratio)| across all stages and dimensions; 0 when every
  /// prediction was exact (or no stage carried one).
  double max_abs_log2 = 0;

  /// True when every ratio lies within [1/factor, factor].
  bool WithinFactor(double factor) const;
};

PredictionReport BuildPredictionReport(
    const std::vector<StageTelemetry>& stages);

/// Human-readable side-by-side table: one block per stage with predicted
/// value, actual value, and ratio for net / agg / flops / mem (the
/// `examples/explain` output).
std::string FormatPredictionTable(const std::vector<StageTelemetry>& stages);

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_PREDICTION_H_
