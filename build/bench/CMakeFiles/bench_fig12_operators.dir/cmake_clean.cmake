file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_operators.dir/bench_fig12_operators.cc.o"
  "CMakeFiles/bench_fig12_operators.dir/bench_fig12_operators.cc.o.d"
  "bench_fig12_operators"
  "bench_fig12_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
