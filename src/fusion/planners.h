// Fusion plan generators.
//
// A planner turns a query DAG into an ordered list of PartialPlans that
// covers every operator node (nodes that fuse with nothing become
// singleton plans).  Four policies are provided:
//
//  * CfgPlanner    — the paper's CFG: exploration (Alg. 2) grows candidate
//                    plans outward from matmul seeds, stopping at
//                    termination operators; exploitation (Alg. 3) splits a
//                    candidate at its most distant secondary matmul when
//                    two smaller plans are cheaper under the cost model.
//  * GenPlanner    — SystemDS's GEN templates (approximated): Outer fusion
//                    (a single matmul + the element-wise chain feeding a
//                    mask multiply + an optional aggregation top) and Cell
//                    fusion (maximal element-wise trees).  GEN never fuses
//                    more than one matmul into a plan.
//  * FoldedPlanner — MatFast: only consecutive element-wise operators fold.
//  * NoFusionPlanner — DistME: every operator is its own stage.

#ifndef FUSEME_FUSION_PLANNERS_H_
#define FUSEME_FUSION_PLANNERS_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "fusion/partial_plan.h"
#include "verify/diagnostic.h"

namespace fuseme {

class MetricsRegistry;  // telemetry/metrics.h

struct FusionPlanSet {
  /// Plans in a valid execution order (a plan appears after every plan
  /// whose root it consumes).  Together they cover all operator nodes.
  std::vector<PartialPlan> plans;
  std::string description;
  /// Invariant violations found while the set was generated (the engine's
  /// MakePlans verifies intermediate CFG candidates and final coverage
  /// when EngineOptions::verify is enabled).  Execution refuses to start
  /// while this is non-empty.
  std::vector<VerifierDiagnostic> diagnostics;
};

class Planner {
 public:
  virtual ~Planner() = default;
  virtual FusionPlanSet Plan(const Dag& dag) const = 0;
  virtual std::string_view name() const = 0;
};

/// Termination operators (paper §4.1): multi-consumer nodes
/// (materialization points) and shuffle-requiring unary aggregations.
bool IsTerminationOperator(const Dag& dag, NodeId id);

class CfgPlanner : public Planner {
 public:
  /// `model` drives the exploitation phase; must outlive the planner.
  explicit CfgPlanner(const CostModel* model) : model_(model) {}

  FusionPlanSet Plan(const Dag& dag) const override;
  std::string_view name() const override { return "CFG"; }

  /// Optional instrumentation: exploration candidates, exploitation split
  /// attempts/splits, and the exploitation optimizer searches all land in
  /// fuseme_planner_* / fuseme_optimizer_* (see telemetry/metric_names.h).
  /// Not owned; null disables.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// The exploration phase alone (paper Alg. 2), exposed for tests.
  std::vector<PartialPlan> ExplorationPhase(const Dag& dag) const;
  /// The exploitation phase alone (paper Alg. 3), exposed for tests.
  std::vector<PartialPlan> ExploitationPhase(
      const Dag& dag, std::vector<PartialPlan> candidates) const;

 private:
  const CostModel* model_;
  MetricsRegistry* metrics_ = nullptr;
};

class GenPlanner : public Planner {
 public:
  FusionPlanSet Plan(const Dag& dag) const override;
  std::string_view name() const override { return "GEN"; }
};

class FoldedPlanner : public Planner {
 public:
  FusionPlanSet Plan(const Dag& dag) const override;
  std::string_view name() const override { return "Folded"; }
};

class NoFusionPlanner : public Planner {
 public:
  FusionPlanSet Plan(const Dag& dag) const override;
  std::string_view name() const override { return "NoFusion"; }
};

/// Completes `plans` into full coverage (singleton plans for uncovered
/// operators) and orders them topologically.  Used by every planner.
FusionPlanSet FinalizePlanSet(const Dag& dag, std::vector<PartialPlan> plans,
                              std::string description);

}  // namespace fuseme

#endif  // FUSEME_FUSION_PLANNERS_H_
