// Fault-tolerant execution (DESIGN.md section 13): under any seeded
// failure schedule the engine must produce bitwise-identical numeric
// results and stage statistics, report exact retry/degradation counters
// (replayable from the injector hash), recover formerly-O.O.M. workloads
// via the degradation ladder, model straggler speculation in cluster
// time, and trip the run deadline deterministically.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/reference.h"
#include "matrix/generators.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions Options(SystemMode mode) {
  EngineOptions options;
  options.system = mode;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.cluster.net_bandwidth = 1e6;
  options.cluster.compute_bandwidth = 1e8;
  return options;
}

struct GnmfFixture {
  GnmfQuery q;
  std::map<NodeId, BlockedMatrix> inputs;

  GnmfFixture() : q(BuildGnmf(26, 20, 6, /*x_nnz=*/104)) {
    SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
    inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
    inputs[q.V] = BlockedMatrix::FromDense(RandomDense(26, 6, 52), kBs);
    inputs[q.U] = BlockedMatrix::FromDense(RandomDense(6, 20, 53), kBs);
  }
};

/// Replays the injector schedule for one stage: how many retries its
/// `items` work items need, asserting no item exhausts `max_attempts`.
std::int64_t ExpectedRetries(const FaultInjector& injector, int stage,
                             std::int64_t items, int max_attempts) {
  std::int64_t retries = 0;
  for (std::int64_t item = 0; item < items; ++item) {
    int attempt = 0;
    while (attempt + 1 < max_attempts &&
           injector.TaskFault(stage, item, attempt) != InjectedFault::kNone) {
      ++attempt;
    }
    EXPECT_EQ(injector.TaskFault(stage, item, attempt), InjectedFault::kNone)
        << "schedule exhausts item " << item << " of stage " << stage
        << "; pick a different seed or raise max_attempts";
    retries += attempt;
  }
  return retries;
}

TEST(FaultToleranceTest, CleanRunsReportNoRecovery) {
  GnmfFixture f;
  Engine engine(Options(SystemMode::kFuseMe));
  auto run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.report.attempts, 0);  // first tries are counted
  EXPECT_EQ(run.report.total_retries(), 0);
  EXPECT_TRUE(run.report.degradations.empty());
  EXPECT_EQ(run.report.speculative_tasks, 0);
  EXPECT_EQ(run.Summary().find("retr"), std::string::npos);
}

TEST(FaultToleranceTest, FailureScheduleSweepIsBitwiseIdentical) {
  GnmfFixture f;
  Engine clean_engine(Options(SystemMode::kFuseMe));
  auto clean = clean_engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(clean.ok()) << clean.status();

  constexpr int kMaxAttempts = 8;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    for (double p : {0.05, 0.2}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " p=" + std::to_string(p));
      EngineOptions options = Options(SystemMode::kFuseMe);
      options.faults.seed = seed;
      options.faults.task_failure_probability = p;
      options.recovery.retry.max_attempts = kMaxAttempts;
      Result<Engine> engine = Engine::Create(options);
      ASSERT_TRUE(engine.ok()) << engine.status();
      auto faulted = engine->Run(f.q.dag, f.inputs);
      ASSERT_TRUE(faulted.ok()) << faulted.status();

      // Numeric results are bitwise identical to the clean run's.
      ASSERT_EQ(faulted.outputs.size(), clean.outputs.size());
      for (const auto& [id, matrix] : clean.outputs) {
        EXPECT_EQ(DenseMatrix::MaxAbsDiff(
                      faulted.outputs.at(id).blocks().ToDense(),
                      matrix.blocks().ToDense()),
                  0.0);
      }

      // Stage statistics match except modeled elapsed time (which grows
      // by backoff and re-launch overhead).
      ASSERT_EQ(faulted.report.stages.size(), clean.report.stages.size());
      for (std::size_t i = 0; i < clean.report.stages.size(); ++i) {
        const StageStats& a = clean.report.stages[i];
        const StageStats& b = faulted.report.stages[i];
        EXPECT_EQ(a.num_tasks, b.num_tasks);
        EXPECT_EQ(a.consolidation_bytes, b.consolidation_bytes);
        EXPECT_EQ(a.aggregation_bytes, b.aggregation_bytes);
        EXPECT_EQ(a.flops, b.flops);
        EXPECT_EQ(a.max_task_memory, b.max_task_memory);
        EXPECT_GE(b.elapsed_seconds, a.elapsed_seconds);
      }

      // Retry accounting is exact: replay the schedule over the per-stage
      // work-item counts the clean run established.
      const FaultInjector injector(options.faults);
      std::int64_t expected_retries = 0;
      ASSERT_EQ(faulted.report.telemetry.size(),
                clean.report.telemetry.size());
      for (std::size_t i = 0; i < clean.report.telemetry.size(); ++i) {
        const std::int64_t items =
            clean.report.telemetry[i].recovery.attempts;
        const std::int64_t stage_retries = ExpectedRetries(
            injector, static_cast<int>(i), items, kMaxAttempts);
        EXPECT_EQ(faulted.report.telemetry[i].recovery.retries,
                  stage_retries);
        EXPECT_EQ(faulted.report.telemetry[i].recovery.injected_failures,
                  stage_retries);
        expected_retries += stage_retries;
      }
      EXPECT_EQ(faulted.report.total_retries(), expected_retries);
      EXPECT_EQ(faulted.report.attempts,
                clean.report.attempts + expected_retries);
      if (expected_retries > 0) {
        EXPECT_GT(faulted.report.elapsed_seconds,
                  clean.report.elapsed_seconds);
        EXPECT_NE(faulted.Summary().find("retr"), std::string::npos);
      }
    }
  }
}

TEST(FaultToleranceTest, ExhaustedAttemptBudgetFailsTheRun) {
  GnmfFixture f;
  EngineOptions options = Options(SystemMode::kFuseMe);
  options.faults.seed = 3;
  options.faults.task_failure_probability = 1.0;  // every attempt dies
  options.recovery.retry.max_attempts = 2;
  Engine engine(options);
  auto run = engine.Run(f.q.dag, f.inputs);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("attempt budget"),
            std::string::npos);
  ASSERT_FALSE(run.report.telemetry.empty());
  EXPECT_GT(run.report.telemetry.front().recovery.exhausted_items, 0);
  EXPECT_TRUE(run.outputs.empty());
}

TEST(FaultToleranceTest, OomDegradationCompletesRealWorkload) {
  // Fig. 12 methodology: one full-query plan forced onto each operator.
  NmfPattern q = BuildNmfPattern(26, 22, 10, /*x_nnz=*/57);
  SparseMatrix x = RandomSparse(26, 22, 0.1, /*seed=*/71, 1.0, 2.0);
  DenseMatrix u = RandomDense(26, 10, /*seed=*/72, 0.5, 1.5);
  DenseMatrix v = RandomDense(22, 10, /*seed=*/73, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.mul,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(expected.ok());
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  // Find a budget the broadcast operator exceeds but the cuboid operator
  // (measured peak and modeled MemEst alike) fits with room to spare.
  Engine roomy(Options(SystemMode::kFuseMe));
  auto bfo_probe = roomy.RunWithPlans(q.dag, full, inputs, OperatorKind::kBfo);
  auto cfo_probe = roomy.RunWithPlans(q.dag, full, inputs, OperatorKind::kCfo);
  ASSERT_TRUE(bfo_probe.ok()) << bfo_probe.status();
  ASSERT_TRUE(cfo_probe.ok()) << cfo_probe.status();
  auto cfo_pred = roomy.PredictStage(full.plans.front(), OperatorKind::kCfo);
  ASSERT_TRUE(cfo_pred.ok());
  const std::int64_t cfo_needs =
      std::max(cfo_probe.report.max_task_memory,
               static_cast<std::int64_t>(cfo_pred->mem_per_task));
  ASSERT_LT(cfo_needs, bfo_probe.report.max_task_memory)
      << "workload geometry no longer separates BFO from CFO footprints";
  const std::int64_t budget =
      (cfo_needs + bfo_probe.report.max_task_memory) / 2;

  // Without recovery the squeezed budget is a terminal O.O.M. cell.
  EngineOptions squeezed = Options(SystemMode::kFuseMe);
  squeezed.cluster.task_memory_budget = budget;
  Engine strict(squeezed);
  auto failed = strict.RunWithPlans(q.dag, full, inputs, OperatorKind::kBfo);
  ASSERT_TRUE(failed.status().IsOutOfMemory()) << failed.status();

  // With the ladder enabled the same forced-BFO cell completes — and the
  // numbers still match the single-node reference.
  squeezed.recovery.degrade_on_oom = true;
  Engine degrading(squeezed);
  auto recovered =
      degrading.RunWithPlans(q.dag, full, inputs, OperatorKind::kBfo);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_FALSE(recovered.report.degradations.empty());
  EXPECT_NE(recovered.report.degradations.front().from.find("BFO"),
            std::string::npos);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(
                recovered.outputs.at(q.mul).blocks().ToDense(), *expected),
            1e-9);
  EXPECT_NE(recovered.Summary().find("degradation"), std::string::npos);
}

TEST(FaultToleranceTest, OomDegradationCompletesPaperScaleBfo) {
  // engine_analytic_test's BfoOomsWhenSidesLarge cell: broadcasting ~24 GB
  // of sides exceeds the 10 GB task budget.  The ladder re-partitions and
  // the formerly-O.O.M. cell completes.
  NmfPattern q =
      BuildNmfPattern(750000, 750000, 2000, /*x_nnz=*/562500000);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  EngineOptions options;
  options.analytic = true;
  Engine strict(options);
  auto failed = strict.RunWithPlans(q.dag, full, {}, OperatorKind::kBfo);
  ASSERT_TRUE(failed.status().IsOutOfMemory()) << failed.status();

  options.recovery.degrade_on_oom = true;
  Engine degrading(options);
  auto recovered = degrading.RunWithPlans(q.dag, full, {}, OperatorKind::kBfo);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_FALSE(recovered.report.degradations.empty());
  EXPECT_NE(recovered.report.degradations.front().from.find("BFO"),
            std::string::npos);
}

TEST(FaultToleranceTest, InjectedOomConsumedOnceAndDegraded) {
  // Force the whole query onto a broadcast operator so the targeted stage
  // always has a degradation rung (BFO -> CFO), then inject an OOM there.
  NmfPattern q = BuildNmfPattern(26, 22, 10, /*x_nnz=*/57);
  SparseMatrix x = RandomSparse(26, 22, 0.1, /*seed=*/71, 1.0, 2.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(26, 10, 72, 0.5, 1.5), kBs);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(22, 10, 73, 0.5, 1.5), kBs);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  EngineOptions options = Options(SystemMode::kFuseMe);
  options.faults.seed = 5;
  options.faults.oom_stages = {0};

  // Without the ladder, the injected OOM is terminal — the paper's cell.
  Engine strict(options);
  auto failed = strict.RunWithPlans(q.dag, full, inputs, OperatorKind::kBfo);
  ASSERT_TRUE(failed.status().IsOutOfMemory()) << failed.status();
  EXPECT_NE(failed.status().message().find("injected"), std::string::npos);

  // With it, the stage re-runs degraded and the run completes; the
  // injection fires only on the stage's first attempt.
  options.recovery.degrade_on_oom = true;
  Engine degrading(options);
  auto recovered =
      degrading.RunWithPlans(q.dag, full, inputs, OperatorKind::kBfo);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_FALSE(recovered.report.telemetry.empty());
  EXPECT_EQ(recovered.report.telemetry.front().recovery.injected_oom, 1);
  ASSERT_FALSE(recovered.report.degradations.empty());
  EXPECT_NE(recovered.report.degradations.front().from.find("BFO"),
            std::string::npos);
  EXPECT_NE(recovered.report.degradations.front().cause.find("injected"),
            std::string::npos);
}

TEST(FaultToleranceTest, StragglersExtendElapsedAndSpeculationCuts) {
  GnmfFixture f;
  EngineOptions base = Options(SystemMode::kFuseMe);
  // Zero launch overhead makes the speculative copy strictly cheaper than
  // riding out a 100x straggler, so speculation must win every time.
  base.cluster.task_launch_overhead = 0.0;
  Engine clean_engine(base);
  auto clean = clean_engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(clean.ok()) << clean.status();

  EngineOptions straggling = base;
  straggling.faults.seed = 13;
  straggling.faults.straggler_probability = 0.5;
  straggling.faults.straggler_slowdown = 100.0;

  EngineOptions no_speculation = straggling;
  no_speculation.recovery.speculative_execution = false;

  auto speculated = Engine(straggling).Run(f.q.dag, f.inputs);
  auto rode_out = Engine(no_speculation).Run(f.q.dag, f.inputs);
  ASSERT_TRUE(speculated.ok()) << speculated.status();
  ASSERT_TRUE(rode_out.ok()) << rode_out.status();

  EXPECT_GT(speculated.report.speculative_tasks, 0);
  EXPECT_EQ(rode_out.report.speculative_tasks, 0);
  EXPECT_GT(speculated.report.elapsed_seconds,
            clean.report.elapsed_seconds);
  EXPECT_GT(rode_out.report.elapsed_seconds,
            speculated.report.elapsed_seconds);

  // Stragglers slow the modeled clock, never the numbers.
  for (const auto& [id, matrix] : clean.outputs) {
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(
                  speculated.outputs.at(id).blocks().ToDense(),
                  matrix.blocks().ToDense()),
              0.0);
  }
}

TEST(FaultToleranceTest, BackoffTripsTheRunDeadlineDeterministically) {
  GnmfFixture f;
  EngineOptions options = Options(SystemMode::kFuseMe);
  options.faults.seed = 1;
  options.faults.task_failure_probability = 0.5;
  options.recovery.retry.max_attempts = 8;
  // Each retry backs off for hours of modeled time; the 12-hour default
  // horizon would survive, a tight one cannot.
  options.recovery.retry.backoff_base_seconds = 3600.0;
  options.recovery.retry.backoff_max_seconds = 3600.0;
  options.cluster.timeout_seconds = 1800.0;
  Engine engine(options);
  auto first = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(first.status().IsTimedOut()) << first.status();
  EXPECT_NE(first.Summary().find("T.O."), std::string::npos);
  // Deterministic: the same schedule trips at the same point every run.
  auto second = engine.Run(f.q.dag, f.inputs);
  EXPECT_TRUE(second.status().IsTimedOut());
  EXPECT_EQ(first.report.elapsed_seconds, second.report.elapsed_seconds);
  EXPECT_EQ(first.report.total_retries(), second.report.total_retries());
}

TEST(FaultToleranceTest, TracerRecordsFaultSpans) {
  GnmfFixture f;
  Tracer tracer;
  EngineOptions options = Options(SystemMode::kFuseMe);
  options.faults.seed = 7;
  options.faults.task_failure_probability = 0.2;
  options.recovery.retry.max_attempts = 8;
  options.tracer = &tracer;
  Engine engine(options);
  auto run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_GT(run.report.total_retries(), 0);

  std::int64_t fault_spans = 0;
  for (const TraceSpan& span : tracer.spans()) {
    if (span.category == "fault") ++fault_spans;
  }
  EXPECT_EQ(fault_spans, run.report.total_retries());
}

TEST(FaultToleranceTest, MetricsCountRecovery) {
  GnmfFixture f;
  MetricsRegistry metrics;
  EngineOptions options = Options(SystemMode::kFuseMe);
  options.faults.seed = 7;
  options.faults.task_failure_probability = 0.2;
  options.recovery.retry.max_attempts = 8;
  options.metrics = &metrics;
  Engine engine(options);
  auto run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_GT(run.report.total_retries(), 0);

  EXPECT_EQ(metrics.GetCounter(metric_names::kWorkItemAttempts)->value(),
            run.report.attempts);
  EXPECT_EQ(metrics
                .GetCounter(metric_names::kTaskRetries,
                            {{"cause", "injected_failure"}})
                ->value(),
            run.report.total_retries());
  const std::int64_t injected =
      metrics
          .GetCounter(metric_names::kFaultInjected,
                      {{"kind", "lost_at_launch"}})
          ->value() +
      metrics
          .GetCounter(metric_names::kFaultInjected,
                      {{"kind", "lost_before_commit"}})
          ->value();
  EXPECT_EQ(injected, run.report.total_retries());
}

}  // namespace
}  // namespace fuseme
