// Negative fixture: reuses the rule id declared in a.h under a new
// identifier.  fuseme_lint must flag it (lint-rule-id-dup).
#ifndef FIXTURE_RULE_DUP_B_H_
#define FIXTURE_RULE_DUP_B_H_

namespace fuseme::rules {

inline constexpr char kImpostor[] = "fixture-duplicated-id";

}  // namespace fuseme::rules

#endif  // FIXTURE_RULE_DUP_B_H_
