// Compile-once / execute-many amortization (DESIGN.md section 18): the
// host-side cost of Engine::Compile versus Engine::Execute on the GNMF
// update step, and the per-run saving of replaying one CompiledPlan ten
// times instead of re-planning through the legacy Run path.
//
// Beyond the timings this harness *asserts* the facade's contract and
// exits non-zero on a violation:
//   * compile happens exactly once — the fuseme_solver_resolutions_total
//     and fuseme_planner_plans_total counter families must stay flat
//     across every Execute of a compiled artifact,
//   * a replayed Execute is bitwise identical to the legacy single-shot
//     Run (outputs and shuffle/flops accounting).
//
// Environment overrides for quick smoke runs (scripts/run_bench_smoke.sh):
//   FUSEME_BENCH_COMPILE_N   matrix dimension (default 768)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/compiled_plan.h"
#include "matrix/generators.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

std::vector<BenchRecord> g_records;
MetricsRegistry g_metrics;

constexpr int kExecuteReps = 10;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IdenticalOutputs(const Engine::RunResult& a, const Engine::RunResult& b) {
  if (a.outputs.size() != b.outputs.size()) return false;
  for (const auto& [id, dm] : a.outputs) {
    auto it = b.outputs.find(id);
    if (it == b.outputs.end()) return false;
    if (DenseMatrix::MaxAbsDiff(dm.blocks().ToDense(),
                                it->second.blocks().ToDense()) != 0.0) {
      return false;
    }
  }
  return a.report.consolidation_bytes == b.report.consolidation_bytes &&
         a.report.aggregation_bytes == b.report.aggregation_bytes &&
         a.report.flops == b.report.flops;
}

}  // namespace

int main() {
  std::int64_t n = 768;
  if (const char* env = std::getenv("FUSEME_BENCH_COMPILE_N")) {
    n = std::max<std::int64_t>(128, std::atoll(env));
  }
  const std::int64_t k = 32;
  const std::int64_t bs = 32;
  const double density = 0.05;
  const std::int64_t nnz = static_cast<std::int64_t>(
      static_cast<double>(n) * static_cast<double>(n) * density);

  GnmfQuery q = BuildGnmf(n, n, k, nnz);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(n, n, density, /*seed=*/1, 1.0, 2.0), bs);
  inputs[q.V] = BlockedMatrix::FromDense(
      RandomDense(n, k, /*seed=*/2, 0.5, 1.5), bs);
  inputs[q.U] = BlockedMatrix::FromDense(
      RandomDense(k, n, /*seed=*/3, 0.5, 1.5), bs);

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 2;
  options.cluster.block_size = bs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.metrics = &g_metrics;
  Engine engine(options);

  // Legacy single-shot baseline: plan + verify + execute on every call.
  const double run_t0 = Now();
  Engine::RunResult legacy = engine.Run(q.dag, inputs);
  const double run_wall = Now() - run_t0;
  if (!legacy.report.ok()) {
    std::fprintf(stderr, "FAIL: legacy Run failed: %s\n",
                 legacy.report.status.ToString().c_str());
    return 1;
  }

  const double compile_t0 = Now();
  Result<CompiledPlan> compiled = engine.Compile(q.dag);
  const double compile_wall = Now() - compile_t0;
  if (!compiled.ok()) {
    std::fprintf(stderr, "FAIL: Compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  // The compile-happens-once watermark: these families move only while
  // planning/resolving, so replayed executes must leave them flat.
  const MetricsSnapshot after_compile = g_metrics.Snapshot();
  const std::int64_t resolutions_watermark =
      after_compile.CounterTotal(metric_names::kSolverResolutions);
  const std::int64_t planner_watermark =
      after_compile.CounterTotal(metric_names::kPlannerPlans);

  const double exec_t0 = Now();
  Engine::RunResult first = engine.Execute(*compiled, inputs);
  const double execute_wall = Now() - exec_t0;
  if (!first.report.ok()) {
    std::fprintf(stderr, "FAIL: Execute failed: %s\n",
                 first.report.status.ToString().c_str());
    return 1;
  }
  if (!IdenticalOutputs(legacy, first)) {
    std::fprintf(stderr,
                 "FAIL: Execute(compiled) diverged from the legacy Run\n");
    return 1;
  }

  const double batch_t0 = Now();
  for (int rep = 1; rep < kExecuteReps; ++rep) {
    Engine::RunResult replay = engine.Execute(*compiled, inputs);
    if (!replay.report.ok()) {
      std::fprintf(stderr, "FAIL: Execute rep %d failed: %s\n", rep,
                   replay.report.status.ToString().c_str());
      return 1;
    }
    if (!IdenticalOutputs(first, replay)) {
      std::fprintf(stderr, "FAIL: Execute rep %d diverged\n", rep);
      return 1;
    }
  }
  const double amortized_wall =
      (execute_wall + (Now() - batch_t0)) / kExecuteReps;

  const MetricsSnapshot after_executes = g_metrics.Snapshot();
  const std::int64_t resolutions_now =
      after_executes.CounterTotal(metric_names::kSolverResolutions);
  const std::int64_t planner_now =
      after_executes.CounterTotal(metric_names::kPlannerPlans);
  if (resolutions_now != resolutions_watermark) {
    std::fprintf(stderr,
                 "FAIL: solver resolutions moved across executes "
                 "(%lld -> %lld): Execute re-resolved instead of replaying\n",
                 static_cast<long long>(resolutions_watermark),
                 static_cast<long long>(resolutions_now));
    return 1;
  }
  if (planner_now != planner_watermark) {
    std::fprintf(stderr,
                 "FAIL: planner ran across executes (%lld -> %lld plans): "
                 "Execute re-planned instead of replaying\n",
                 static_cast<long long>(planner_watermark),
                 static_cast<long long>(planner_now));
    return 1;
  }

  std::printf(
      "gnmf n=%lld k=%lld: compile %.4fs   execute %.4fs   legacy run "
      "%.4fs   amortized over %d executes %.4fs/run\n",
      static_cast<long long>(n), static_cast<long long>(k), compile_wall,
      execute_wall, run_wall, kExecuteReps, amortized_wall);
  std::printf("compile-exactly-once: %lld resolutions, %lld planner plans "
              "(flat across %d executes)\n",
              static_cast<long long>(resolutions_watermark),
              static_cast<long long>(planner_watermark), kExecuteReps);

  const std::vector<std::pair<std::string, std::string>> shape = {
      {"n", std::to_string(n)},
      {"k", std::to_string(k)},
      {"block_size", std::to_string(bs)},
      {"density", "0.05"}};
  auto record = [&](const char* name, double wall,
                    const ExecutionReport& report) {
    BenchRecord r = RecordFor(name, report, shape);
    r.elapsed_seconds = wall;  // host wall clock, not modeled seconds
    return r;
  };
  g_records.push_back(record("compile", compile_wall, legacy.report));
  g_records.back().bytes = 0;
  g_records.back().flops = 0;
  g_records.push_back(record("execute", execute_wall, first.report));
  g_records.push_back(record("legacy_run", run_wall, legacy.report));
  BenchRecord amortized =
      record("execute_amortized", amortized_wall, first.report);
  amortized.config.emplace_back("reps", std::to_string(kExecuteReps));
  g_records.push_back(std::move(amortized));

  if (!WriteBenchJson("compile", g_records,
                      after_executes.ToJson())) {
    return 1;
  }
  return 0;
}
