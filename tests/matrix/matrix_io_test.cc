#include "matrix/matrix_io.h"

#include <unistd.h>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MatrixIoTest, DenseRoundTrip) {
  BlockedMatrix m = RandomDenseBlocked(23, 17, 8, /*seed=*/1);
  const std::string path = TempPath("dense.fmem");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->rows(), 23);
  EXPECT_EQ(loaded->cols(), 17);
  EXPECT_EQ(loaded->block_size(), 8);
  EXPECT_TRUE(loaded->ToDense() == m.ToDense());
}

TEST(MatrixIoTest, SparseRoundTripPreservesRepresentation) {
  BlockedMatrix m = RandomSparseBlocked(40, 40, 0.05, 8, /*seed=*/2);
  const std::string path = TempPath("sparse.fmem");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ToDense() == m.ToDense());
  EXPECT_EQ(loaded->nnz(), m.nnz());
  // Zero tiles stay implicit (kZero) and sparse tiles stay sparse.
  for (std::int64_t bi = 0; bi < m.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < m.grid_cols(); ++bj) {
      EXPECT_EQ(loaded->block(bi, bj).kind(), m.block(bi, bj).kind());
    }
  }
}

TEST(MatrixIoTest, AllZeroMatrix) {
  BlockedMatrix m(16, 16, 4);
  const std::string path = TempPath("zero.fmem");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->nnz(), 0);
  EXPECT_EQ(loaded->num_blocks(), 16);
}

TEST(MatrixIoTest, MetaMatrixRejected) {
  BlockedMatrix meta = BlockedMatrix::MakeMeta(100, 100, 50, 10);
  EXPECT_TRUE(
      SaveMatrix(meta, TempPath("meta.fmem")).IsInvalidArgument());
}

TEST(MatrixIoTest, MissingFileRejected) {
  EXPECT_TRUE(LoadMatrix(TempPath("nope.fmem")).status().IsInvalidArgument());
}

TEST(MatrixIoTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.fmem");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a matrix", f);
  std::fclose(f);
  EXPECT_TRUE(LoadMatrix(path).status().IsInvalidArgument());
}

TEST(MatrixIoTest, TruncatedFileRejected) {
  BlockedMatrix m = RandomDenseBlocked(23, 17, 8, /*seed=*/3);
  const std::string path = TempPath("trunc.fmem");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadMatrix(path).ok());
}

}  // namespace
}  // namespace fuseme
