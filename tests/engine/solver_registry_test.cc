// Stage-solver registry (DESIGN.md section 18): catalogue completeness,
// refined-first resolution order, and — the MIOpen-style contract — every
// solver's IsApplicable returning a *precise* Status naming the violated
// precondition on crafted-unsupported stages.

#include "engine/solver_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "engine/engine.h"
#include "engine/solver_names.h"
#include "fusion/partial_plan.h"
#include "ir/dag.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

ClusterConfig Cluster(std::int64_t budget = 1LL << 40) {
  ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.tasks_per_node = 3;
  cluster.block_size = kBs;
  cluster.task_memory_budget = budget;
  return cluster;
}

void ExpectRejectedWith(const Status& status, const std::string& fragment) {
  ASSERT_FALSE(status.ok()) << "expected a precondition rejection";
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "message \"" << status.message() << "\" lacks \"" << fragment
      << "\"";
}

/// The full fused NMF stage X * log(U x V^T + eps); x_nnz selects the
/// mask's sparsity class (288 of 40x36 = density 0.2, under the sparse-
/// driver threshold; 40*36 = fully dense).
struct NmfFixture {
  NmfPattern q;
  FusionPlanSet full;

  explicit NmfFixture(std::int64_t x_nnz)
      : q(BuildNmfPattern(40, 36, 24, x_nnz)) {
    full.plans.emplace_back(
        &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  }
  const PartialPlan& plan() const { return full.plans.front(); }
};

TEST(SolverRegistryTest, CatalogueIsComplete) {
  const SolverRegistry& registry = SolverRegistry::Global();
  EXPECT_EQ(registry.solvers().size(), 6u);
  for (const char* id :
       {solver_names::kCfo, solver_names::kCfoSpmm, solver_names::kCfoSddmm,
        solver_names::kBfo, solver_names::kRfo, solver_names::kCpmm}) {
    const StageSolver* solver = registry.Find(id);
    ASSERT_NE(solver, nullptr) << id;
    EXPECT_EQ(solver->id(), id);
    EXPECT_NE(solver->kind(), OperatorKind::kAuto) << id;
  }
  EXPECT_EQ(registry.Find("solver.nonexistent"), nullptr);
  EXPECT_EQ(registry.Find(""), nullptr);
}

TEST(SolverRegistryTest, ForKindIsRefinedFirst) {
  const SolverRegistry& registry = SolverRegistry::Global();
  const auto cfo = registry.ForKind(OperatorKind::kCfo);
  ASSERT_EQ(cfo.size(), 3u);
  EXPECT_EQ(cfo[0]->id(), solver_names::kCfoSddmm);
  EXPECT_EQ(cfo[1]->id(), solver_names::kCfoSpmm);
  EXPECT_EQ(cfo[2]->id(), solver_names::kCfo);
  for (auto [kind, id] :
       std::vector<std::pair<OperatorKind, const char*>>{
           {OperatorKind::kBfo, solver_names::kBfo},
           {OperatorKind::kRfo, solver_names::kRfo},
           {OperatorKind::kCpmm, solver_names::kCpmm}}) {
    const auto solvers = registry.ForKind(kind);
    ASSERT_EQ(solvers.size(), 1u) << id;
    EXPECT_EQ(solvers[0]->id(), id);
  }
  EXPECT_TRUE(registry.ForKind(OperatorKind::kAuto).empty());
}

TEST(SolverRegistryTest, ResolveNullOnlyForAuto) {
  NmfFixture f(/*x_nnz=*/288);
  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  EXPECT_EQ(SolverRegistry::Global().Resolve(env, OperatorKind::kAuto,
                                             f.plan()),
            nullptr);
  for (OperatorKind kind : {OperatorKind::kCfo, OperatorKind::kBfo,
                            OperatorKind::kRfo, OperatorKind::kCpmm}) {
    EXPECT_NE(SolverRegistry::Global().Resolve(env, kind, f.plan()), nullptr);
  }
}

TEST(SolverRegistryTest, EmptyPlanRejectedByEverySolver) {
  // Fused operators iterate member operator nodes; a memberless region has
  // nothing to execute, and every solver must say so by name.
  Dag dag;
  const NodeId x = *dag.AddInput("X", 16, 16);
  const NodeId y = *dag.AddInput("Y", 16, 16);
  const NodeId add = *dag.AddBinary(BinaryFn::kAdd, x, y);
  dag.MarkOutput(add);
  const PartialPlan empty = PartialPlan::UncheckedForTest(&dag, {}, add);

  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  for (const StageSolver* solver : SolverRegistry::Global().solvers()) {
    SCOPED_TRACE(std::string(solver->id()));
    const Status status = solver->IsApplicable(env, empty);
    ExpectRejectedWith(
        status, "requires a fused region with at least one member operator");
    EXPECT_NE(status.message().find(solver->id()), std::string::npos)
        << "rejection must name the solver: " << status.message();
  }
}

TEST(SolverRegistryTest, MatmulFreePlanRejectsMatmulSolvers) {
  // log(mm + eps) with the matmul left *outside* the region: the sparse
  // refinements and cpmm have no member matmul to anchor to, while the
  // base operators still apply.
  NmfFixture f(/*x_nnz=*/288);
  const PartialPlan cell(&f.q.dag, {f.q.add, f.q.log}, f.q.log);
  ASSERT_TRUE(cell.MatMuls().empty());

  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  const SolverRegistry& registry = SolverRegistry::Global();
  ExpectRejectedWith(
      registry.Find(solver_names::kCfoSpmm)->IsApplicable(env, cell),
      "the plan has none");
  ExpectRejectedWith(
      registry.Find(solver_names::kCfoSddmm)->IsApplicable(env, cell),
      "the plan has none");
  ExpectRejectedWith(
      registry.Find(solver_names::kCpmm)->IsApplicable(env, cell),
      "common dimension; the plan has none");
  EXPECT_TRUE(
      registry.Find(solver_names::kCfo)->IsApplicable(env, cell).ok());
  EXPECT_TRUE(
      registry.Find(solver_names::kBfo)->IsApplicable(env, cell).ok());
  EXPECT_TRUE(
      registry.Find(solver_names::kRfo)->IsApplicable(env, cell).ok());

  const StageSolver* chosen = registry.Resolve(env, OperatorKind::kCfo, cell);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->id(), solver_names::kCfo);
}

TEST(SolverRegistryTest, SparseMaskThroughChainResolvesToSpmm) {
  // X * log(U x V^T + eps) with sparse X: the mask reaches the product
  // through an element-wise chain, so SpMM engages but SDDMM — which
  // needs the mask on the product directly — must reject with the chain
  // diagnosis.
  NmfFixture f(/*x_nnz=*/288);
  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  const SolverRegistry& registry = SolverRegistry::Global();
  EXPECT_TRUE(registry.Find(solver_names::kCfoSpmm)
                  ->IsApplicable(env, f.plan())
                  .ok());
  ExpectRejectedWith(
      registry.Find(solver_names::kCfoSddmm)->IsApplicable(env, f.plan()),
      "the mask applies through an element-wise chain");

  const StageSolver* chosen =
      registry.Resolve(env, OperatorKind::kCfo, f.plan());
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->id(), solver_names::kCfoSpmm);
}

TEST(SolverRegistryTest, DirectMaskResolvesToSddmm) {
  // X * (U x V^T) with sparse X masking the product directly: the
  // canonical SDDMM shape, and the most refined CFO solver wins.
  Dag dag;
  const NodeId x = *dag.AddInput("X", 40, 36, /*nnz=*/288);
  const NodeId u = *dag.AddInput("U", 40, 24);
  const NodeId v = *dag.AddInput("V", 36, 24);
  const NodeId vt = *dag.AddTranspose(v);
  const NodeId mm = *dag.AddMatMul(u, vt);
  const NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, mm);
  dag.MarkOutput(mul);
  const PartialPlan plan(&dag, {vt, mm, mul}, mul);

  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  const SolverRegistry& registry = SolverRegistry::Global();
  EXPECT_TRUE(
      registry.Find(solver_names::kCfoSddmm)->IsApplicable(env, plan).ok());
  const StageSolver* chosen = registry.Resolve(env, OperatorKind::kCfo, plan);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->id(), solver_names::kCfoSddmm);
}

TEST(SolverRegistryTest, DenseMaskFallsBackToBaseCfoAndCountsRejections) {
  // Fully dense X disqualifies both sparse refinements ("no sparse driver
  // found"); resolution falls back to the base CFO and the metric
  // families record exactly what happened.
  NmfFixture f(/*x_nnz=*/40 * 36);
  CostModel model(Cluster());
  MetricsRegistry metrics;
  SolverEnv env;
  env.model = &model;
  env.metrics = &metrics;
  const SolverRegistry& registry = SolverRegistry::Global();
  ExpectRejectedWith(
      registry.Find(solver_names::kCfoSpmm)->IsApplicable(env, f.plan()),
      "no sparse driver found");
  ExpectRejectedWith(
      registry.Find(solver_names::kCfoSddmm)->IsApplicable(env, f.plan()),
      "no sparse driver found");

  const StageSolver* chosen =
      registry.Resolve(env, OperatorKind::kCfo, f.plan());
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->id(), solver_names::kCfo);
  auto count = [&](const char* name, const char* solver) {
    return metrics.GetCounter(name, {{"solver", solver}})->value();
  };
  EXPECT_EQ(count(metric_names::kSolverRejections, solver_names::kCfoSddmm),
            1);
  EXPECT_EQ(count(metric_names::kSolverRejections, solver_names::kCfoSpmm),
            1);
  EXPECT_EQ(count(metric_names::kSolverResolutions, solver_names::kCfo), 1);
  EXPECT_EQ(count(metric_names::kSolverResolutions, solver_names::kCfoSpmm),
            0);
}

TEST(SolverRegistryTest, TinyBudgetRejectionsNameTheBudget) {
  // A 128-byte task budget (half a block): BFO cannot broadcast the side
  // matrices, RFO cannot replicate its (I,J,1) slice, and cpmm finds no
  // feasible (1,1,R) cuboid — each says exactly why.
  NmfFixture f(/*x_nnz=*/288);
  CostModel model(Cluster(/*budget=*/128));
  SolverEnv env;
  env.model = &model;
  const SolverRegistry& registry = SolverRegistry::Global();
  ExpectRejectedWith(
      registry.Find(solver_names::kBfo)->IsApplicable(env, f.plan()),
      "must broadcast");
  ExpectRejectedWith(
      registry.Find(solver_names::kRfo)->IsApplicable(env, f.plan()),
      "replicates");
  ExpectRejectedWith(
      registry.Find(solver_names::kCpmm)->IsApplicable(env, f.plan()),
      "found no (1,1,R) cuboid within the per-task memory budget");
}

TEST(SolverRegistryTest, ReshapedOutputRejectsCpmm) {
  // t(A x B) with a non-square product: the O-space reshapes the matmul
  // output, so k-split partials have no coordinate-wise merge.
  Dag dag;
  const NodeId a = *dag.AddInput("A", 40, 24);
  const NodeId b = *dag.AddInput("B", 24, 36);
  const NodeId mm = *dag.AddMatMul(a, b);
  const NodeId t = *dag.AddTranspose(mm);
  dag.MarkOutput(t);
  const PartialPlan plan(&dag, {mm, t}, t);

  CostModel model(Cluster());
  SolverEnv env;
  env.model = &model;
  ExpectRejectedWith(SolverRegistry::Global()
                         .Find(solver_names::kCpmm)
                         ->IsApplicable(env, plan),
                     "cannot split the common dimension");
}

TEST(SolverRegistryTest, ConcurrentResolutionIsSafe) {
  // The registry is immutable after magic-static init, so Find / ForKind /
  // Resolve / IsApplicable from many threads must race-free agree (run
  // under scripts/run_tsan.sh).
  NmfFixture sparse(/*x_nnz=*/288);
  NmfFixture dense(/*x_nnz=*/40 * 36);
  CostModel model(Cluster());
  std::atomic<int> spmm_hits{0};
  std::atomic<int> cfo_hits{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      // Thread-local metrics: SolverEnv sinks are per-engine in
      // production, and the counters themselves are exercised elsewhere.
      MetricsRegistry metrics;
      SolverEnv env;
      env.model = &model;
      env.metrics = &metrics;
      const SolverRegistry& registry = SolverRegistry::Global();
      for (int iter = 0; iter < 50; ++iter) {
        const StageSolver* s =
            registry.Resolve(env, OperatorKind::kCfo, sparse.plan());
        if (s != nullptr && s->id() == solver_names::kCfoSpmm) ++spmm_hits;
        const StageSolver* d =
            registry.Resolve(env, OperatorKind::kCfo, dense.plan());
        if (d != nullptr && d->id() == solver_names::kCfo) ++cfo_hits;
        ASSERT_NE(registry.Find(solver_names::kBfo), nullptr);
        ASSERT_EQ(registry.ForKind(OperatorKind::kCfo).size(), 3u);
        ASSERT_TRUE(registry.Find(solver_names::kRfo)
                        ->IsApplicable(env, sparse.plan())
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(spmm_hits.load(), 8 * 50);
  EXPECT_EQ(cfo_hits.load(), 8 * 50);
}

TEST(SolverRegistryTest, DescribeListsEverySolverVerdict) {
  // Engine::Describe: the planner's stages with all six solvers' verdicts
  // each, exactly one marked as what Compile would choose.
  NmfFixture f(/*x_nnz=*/288);
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster = Cluster();
  Engine engine(options);
  const PlanDescription described = engine.Describe(f.q.dag);
  ASSERT_FALSE(described.stages.empty());
  for (const StageDescription& stage : described.stages) {
    SCOPED_TRACE(stage.label);
    EXPECT_EQ(stage.candidates.size(), 6u);
    EXPECT_NE(stage.kind, OperatorKind::kAuto);
    int chosen = 0;
    for (const SolverCandidate& c : stage.candidates) {
      if (c.chosen) {
        ++chosen;
        EXPECT_TRUE(c.applicability.ok())
            << c.solver_id << " chosen yet inapplicable: "
            << c.applicability;
      }
      EXPECT_NE(SolverRegistry::Global().Find(c.solver_id), nullptr)
          << c.solver_id;
    }
    EXPECT_EQ(chosen, 1);
  }
  const std::string text = described.ToString();
  EXPECT_NE(text.find("planner:"), std::string::npos);
  EXPECT_NE(text.find(solver_names::kCfo), std::string::npos);
  EXPECT_NE(text.find("rejected:"), std::string::npos)
      << "at least one verdict should carry its precondition message:\n"
      << text;
}

}  // namespace
}  // namespace fuseme
