#include "common/string_util.h"

#include <cmath>
#include <cstdio>

namespace fuseme {

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f sec", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f hr", seconds / 3600.0);
  }
  return buf;
}

std::string WithThousands(std::int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

}  // namespace fuseme
