// Verifier vocabulary: diagnostic records and the engine's VerifyLevel.
//
// Kept header-only and dependency-free so planner-layer containers
// (FusionPlanSet) can carry diagnostics without linking the verifier.

#ifndef FUSEME_VERIFY_DIAGNOSTIC_H_
#define FUSEME_VERIFY_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "ir/node.h"

namespace fuseme {

/// How much plan verification the engine performs (DESIGN.md section 11).
enum class VerifyLevel {
  kOff,      // no verification
  kPlanner,  // DAG + plan-set structural rules before execution (default)
  kParanoid, // kPlanner plus per-stage cuboid feasibility re-checks
};

inline std::string_view VerifyLevelName(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::kOff:
      return "off";
    case VerifyLevel::kPlanner:
      return "planner";
    case VerifyLevel::kParanoid:
      return "paranoid";
  }
  return "?";
}

/// One violated invariant.  `rule` is a stable machine-readable id (the
/// rules::k* constants in verify/plan_verifier.h); `node` anchors the
/// violation to a DAG vertex when one is involved.
struct VerifierDiagnostic {
  std::string rule;
  NodeId node = kInvalidNode;
  std::string message;

  /// "[rule] v3: message" (node omitted when kInvalidNode).
  std::string ToString() const {
    std::string out = "[" + rule + "]";
    if (node != kInvalidNode) out += " v" + std::to_string(node);
    out += ": " + message;
    return out;
  }
};

/// Newline-joined rendering of a diagnostic list.
inline std::string FormatDiagnostics(
    const std::vector<VerifierDiagnostic>& diags) {
  std::string out;
  for (const VerifierDiagnostic& d : diags) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

}  // namespace fuseme

#endif  // FUSEME_VERIFY_DIAGNOSTIC_H_
