// Ablation studies on the design choices DESIGN.md calls out:
//  (1) the elastic R axis — CFO with optimizer-chosen R vs forced R=1;
//  (2) the memory-feasibility constraint — optimizer vs "fill the cluster"
//      heuristics (T,T,1) and (I,J,1);
//  (3) the exploitation phase — CFG with vs without plan splitting;
//  (4) pruned vs exhaustive search result quality.

#include <cstdio>

#include "bench_util.h"
#include "cost/optimizer.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

ExecutionReport RunForced(const Dag& dag, const FusionPlanSet& plans,
                          OperatorKind kind) {
  EngineOptions options;
  options.analytic = true;
  Engine engine(options);
  return engine.RunWithPlans(dag, plans, {}, kind).report;
}

}  // namespace

int main() {
  ClusterConfig cluster;
  CostModel model(cluster);

  std::printf("=== Ablation 1: the elastic R axis ===\n");
  PrintRow({"spec", "R* chosen", "cost(R*)", "cost(R=1)", "penalty"});
  PrintRule(5);
  for (const SyntheticSpec& spec : VaryCommonDimension()) {
    NmfPattern q = BuildNmfPattern(spec.i, spec.j, spec.k, spec.x_nnz());
    PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
    PqrOptimizer opt(&model);
    PqrChoice free_r = opt.Pruned(plan);
    // Best parameters with R forced to 1.
    PqrChoice r1;
    const GridDims g = model.Grid(plan);
    for (std::int64_t p = 1; p <= g.I; ++p) {
      for (std::int64_t qq = 1; qq <= g.J; ++qq) {
        Cuboid c{p, qq, 1};
        if (c.volume() < cluster.total_tasks()) continue;
        if (model.MemEst(c, plan) >
            static_cast<double>(cluster.task_memory_budget)) {
          continue;
        }
        const double cost = model.Cost(c, plan);
        if (!r1.feasible || cost < r1.cost) {
          r1.feasible = true;
          r1.cost = cost;
          r1.c = c;
        }
      }
    }
    char a[32], b[32], pen[32];
    std::snprintf(a, sizeof(a), "%.3f", free_r.cost);
    std::snprintf(b, sizeof(b), "%.3f", r1.feasible ? r1.cost : -1.0);
    std::snprintf(pen, sizeof(pen), "%.2fx",
                  r1.feasible ? r1.cost / free_r.cost : 0.0);
    PrintRow({"K=" + spec.label, std::to_string(free_r.c.R), a, b, pen});
  }

  std::printf("\n=== Ablation 2: cost-based (P,Q,R) vs fixed policies ===\n");
  PrintRow({"spec", "CFO(P*,Q*,R*)", "BFO-like", "RFO-like"});
  PrintRule(4);
  for (const SyntheticSpec& spec : VaryTwoLargeDimensions()) {
    NmfPattern q = BuildNmfPattern(spec.i, spec.j, spec.k, spec.x_nnz());
    FusionPlanSet full;
    full.plans.emplace_back(
        &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
    PrintRow({spec.label,
              ElapsedCell(RunForced(q.dag, full, OperatorKind::kCfo)),
              ElapsedCell(RunForced(q.dag, full, OperatorKind::kBfo)),
              ElapsedCell(RunForced(q.dag, full, OperatorKind::kRfo))});
  }

  std::printf("\n=== Ablation 3: CFG exploitation phase on GNMF ===\n");
  {
    GnmfQuery q = BuildGnmf(480189, 17770, 200, 100480507);
    CfgPlanner planner(&model);
    auto explored = planner.ExplorationPhase(q.dag);
    auto refined = planner.ExploitationPhase(q.dag, explored);

    EngineOptions options;
    options.analytic = true;
    Engine engine(options);
    FusionPlanSet raw = FinalizePlanSet(q.dag, explored, "explore only");
    FusionPlanSet split =
        FinalizePlanSet(q.dag, refined, "explore + exploit");
    ExecutionReport raw_report =
        engine.RunWithPlans(q.dag, raw, {}, OperatorKind::kCfo).report;
    ExecutionReport split_report =
        engine.RunWithPlans(q.dag, split, {}, OperatorKind::kCfo).report;
    PrintRow({"phase", "plans", "elapsed", "comm GB"});
    PrintRule(4);
    PrintRow({"explore only", std::to_string(raw.plans.size()),
              ElapsedCell(raw_report), BytesCell(raw_report)});
    PrintRow({"explore+exploit", std::to_string(split.plans.size()),
              ElapsedCell(split_report), BytesCell(split_report)});
  }

  std::printf("\n=== Ablation 4: pruning never loses to exhaustive ===\n");
  PrintRow({"spec", "pruned cost", "exhaustive", "evals ratio"});
  PrintRule(4);
  for (std::int64_t k : {500, 2000, 8000}) {
    NmfPattern q = BuildNmfPattern(50000, 50000, k,
                                   static_cast<std::int64_t>(2.5e8));
    PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
    PqrOptimizer opt(&model);
    PqrChoice pr = opt.Pruned(plan);
    PqrChoice ex = opt.Exhaustive(plan);
    char a[32], b[32], ratio[32];
    std::snprintf(a, sizeof(a), "%.3f", pr.cost);
    std::snprintf(b, sizeof(b), "%.3f", ex.cost);
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(ex.evaluations) /
                      std::max<std::int64_t>(pr.evaluations, 1));
    PrintRow({"K=" + std::to_string(k), a, b, ratio});
    if (pr.cost > ex.cost * (1 + 1e-9)) {
      std::printf("!! pruning lost the optimum\n");
      return 1;
    }
  }
  return 0;
}
