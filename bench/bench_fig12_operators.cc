// Figure 12 (+ Table 3): distributed fused operator comparison on
// O = X * log(U × Vᵀ + eps) over the three synthetic sweeps and the
// node-scaling experiment.  Systems: SystemDS's BFO/RFO (selected by the
// §6.2 rule, as SystemDS does), DistME (CuboidMM, no fusion), and FuseME's
// CFO.  The §6.2 methodology executes the whole query as ONE fused
// operator in the fused systems (the planner is bypassed).
//
// Elapsed times and communication come from the analytic executor on the
// paper's modeled cluster (8 nodes, 12 tasks/node, 10 GB/task, 1 Gbps).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "matrix/generators.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

std::vector<BenchRecord> g_records;
Tracer g_tracer;  // spans from every engine run; TRACE_fig12_operators.json
MetricsRegistry g_metrics;  // embedded in BENCH_fig12_operators.json

struct Row {
  std::string label;
  ExecutionReport systemds;
  std::string systemds_op;  // "B" or "R"
  ExecutionReport distme;
  ExecutionReport fuseme;
  Cuboid pqr;
};

Row RunSpec(const SyntheticSpec& spec, int num_nodes = 8) {
  Row row;
  row.label = spec.label;
  NmfPattern q = BuildNmfPattern(spec.i, spec.j, spec.k, spec.x_nnz());
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  full.description = "single fused operator (Sec 6.2 methodology)";

  EngineOptions options;
  options.analytic = true;
  options.cluster.num_nodes = num_nodes;
  options.tracer = &g_tracer;
  options.metrics = &g_metrics;

  {  // SystemDS: BFO or RFO by the §6.2 rule — its only two *fused*
     // operators ("SystemDS uses only either BFO or RFO").
    options.system = SystemMode::kSystemDs;
    Engine engine(options);
    const std::int64_t bs = options.cluster.block_size;
    const std::int64_t gi = (spec.i + bs - 1) / bs;
    const std::int64_t gj = (spec.j + bs - 1) / bs;
    const std::int64_t parts = EstimateSparkPartitions(
        SizeOf(q.dag, q.X), gi * gj);
    const bool use_bfo = parts < gi || parts < gj;
    row.systemds_op = use_bfo ? "B" : "R";
    auto run = engine.RunWithPlans(
        q.dag, full, {},
        use_bfo ? OperatorKind::kBfo : OperatorKind::kRfo);
    row.systemds = run.report;
  }
  {  // DistME: operator-at-a-time with CuboidMM.
    options.system = SystemMode::kDistMe;
    Engine engine(options);
    row.distme = engine.Run(q.dag, {}).report;
  }
  {  // FuseME: the whole query as one CFO.
    options.system = SystemMode::kFuseMe;
    Engine engine(options);
    auto run = engine.RunWithPlans(q.dag, full, {}, OperatorKind::kCfo);
    row.fuseme = run.report;
    // Recover (P*,Q*,R*) for Table 3.
    PqrOptimizer opt(&engine.cost_model());
    row.pqr = opt.Pruned(full.plans[0]).c;
  }
  return row;
}

void PrintSweep(const char* title, const std::vector<SyntheticSpec>& specs) {
  std::printf("--- %s ---\n", title);
  PrintRow({"n", "SystemDS", "", "DistME", "FuseME", "", "(P*,Q*,R*)"});
  PrintRow({"", "elapsed", "comm GB", "elapsed", "elapsed", "comm GB", ""});
  PrintRule(7);
  for (const SyntheticSpec& spec : specs) {
    Row row = RunSpec(spec);
    PrintRow({row.label + " (" + row.systemds_op + ")",
              ElapsedCell(row.systemds), BytesCell(row.systemds),
              ElapsedCell(row.distme), ElapsedCell(row.fuseme),
              BytesCell(row.fuseme), row.pqr.ToString()});
    const std::vector<std::pair<std::string, std::string>> base = {
        {"sweep", title}, {"dataset", row.label}};
    auto with_system = [&](const char* system) {
      auto config = base;
      config.emplace_back("system", system);
      return config;
    };
    g_records.push_back(
        RecordFor("fig12_systemds", row.systemds, with_system("SystemDS")));
    g_records.push_back(
        RecordFor("fig12_distme", row.distme, with_system("DistME")));
    g_records.push_back(
        RecordFor("fig12_fuseme", row.fuseme, with_system("FuseME")));
  }
  std::printf("\n");
}

// --- Real-mode CFO stage: serial vs parallel wall clock (ISSUE
// acceptance).  A single fused CFO over actual blocks; identical plans,
// identical inputs, local_threads=1 vs the machine's parallelism.  The
// outputs and the accounted StageStats must match exactly. ---

double TimeCfoSeconds(const Engine& engine, const NmfPattern& q,
                      const FusionPlanSet& plans,
                      const std::map<NodeId, BlockedMatrix>& inputs,
                      Engine::RunResult* out) {
  double best = 1e30;
  for (int run = 0; run < 3; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = engine.RunWithPlans(q.dag, plans, inputs, OperatorKind::kCfo);
    const auto t1 = std::chrono::steady_clock::now();
    if (!out->report.ok()) {
      std::fprintf(stderr, "CFO run failed: %s\n",
                   out->report.status.ToString().c_str());
      std::exit(1);
    }
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void RunRealModeCfoSpeedup() {
  // FUSEME_BENCH_CFO_N overrides the matrix dimension (quick local runs).
  std::int64_t n = 4096;
  if (const char* env = std::getenv("FUSEME_BENCH_CFO_N")) {
    n = std::max<std::int64_t>(256, std::atoll(env));
  }
  const std::int64_t k = 256, bs = 256;
  const int machine = GlobalParallelism();
  std::printf(
      "--- real-mode CFO on X*log(U x V^T + eps), %lldx%lld k=%lld bs=%lld, "
      "1 thread vs %d ---\n",
      static_cast<long long>(n), static_cast<long long>(n),
      static_cast<long long>(k), static_cast<long long>(bs), machine);

  NmfPattern q = BuildNmfPattern(n, n, k, n * n / 100);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(n, n, 0.01, 1, 1.0, 2.0), bs);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(n, k, 2, 0.5, 1.5), bs);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(n, k, 3, 0.5, 1.5), bs);

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.block_size = bs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.tracer = &g_tracer;
  options.metrics = &g_metrics;

  options.cluster.local_threads = 1;
  Engine::RunResult serial_run, parallel_run;
  const double serial =
      TimeCfoSeconds(Engine(options), q, full, inputs, &serial_run);
  options.cluster.local_threads = 0;  // process default
  const double parallel =
      TimeCfoSeconds(Engine(options), q, full, inputs, &parallel_run);

  const DenseMatrix a = serial_run.outputs.at(q.mul).blocks().ToDense();
  const DenseMatrix b = parallel_run.outputs.at(q.mul).blocks().ToDense();
  const bool outputs_equal = DenseMatrix::MaxAbsDiff(a, b) == 0.0;
  const ExecutionReport& sr = serial_run.report;
  const ExecutionReport& pr = parallel_run.report;
  const bool stats_equal = sr.consolidation_bytes == pr.consolidation_bytes &&
                           sr.aggregation_bytes == pr.aggregation_bytes &&
                           sr.flops == pr.flops &&
                           sr.max_task_memory == pr.max_task_memory;
  if (!outputs_equal || !stats_equal) {
    std::fprintf(stderr, "FAIL: parallel CFO %s differ from serial\n",
                 outputs_equal ? "StageStats" : "outputs");
    std::exit(1);
  }

  // Fetch-wait attribution (DESIGN.md section 14): how many of each run's
  // consumer-thread seconds went to acquiring input blocks vs computing.
  auto fetch_wait = [](const ExecutionReport& report) {
    double seconds = 0.0;
    for (const StageTelemetry& t : report.telemetry) {
      seconds += t.pipeline.fetch_wait_seconds;
    }
    return seconds;
  };
  const double serial_wait = fetch_wait(sr);
  const double parallel_wait = fetch_wait(pr);

  std::printf(
      "serial  %.3fs (fetch-wait %.3fs)\nparallel %.3fs (fetch-wait %.3fs)\n"
      "speedup %.2fx at %d threads (outputs and StageStats identical)\n\n",
      serial, serial_wait, parallel, parallel_wait, serial / parallel,
      machine);

  auto config = [&](int threads, double wait_seconds) {
    char wait[32];
    std::snprintf(wait, sizeof(wait), "%.6f", wait_seconds);
    std::vector<std::pair<std::string, std::string>> c = {
        {"n", std::to_string(n)},
        {"k", std::to_string(k)},
        {"block_size", std::to_string(bs)},
        {"threads", std::to_string(threads)},
        {"fetch_wait_seconds", wait}};
    return c;
  };
  BenchRecord rec_serial =
      RecordFor("cfo_real_mode", sr, config(1, serial_wait));
  rec_serial.elapsed_seconds = serial;  // wall clock, not modeled seconds
  BenchRecord rec_parallel =
      RecordFor("cfo_real_mode", pr, config(machine, parallel_wait));
  rec_parallel.elapsed_seconds = parallel;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", serial / parallel);
  rec_parallel.config.emplace_back("speedup", buf);
  g_records.push_back(std::move(rec_serial));
  g_records.push_back(std::move(rec_parallel));
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 12: BFO/RFO vs DistME vs CFO on X*log(U x V^T + eps) "
      "===\n\n");
  PrintSweep("Fig 12(a,e): two large dimensions (n x 2K x n, d=0.001)",
             VaryTwoLargeDimensions());
  PrintSweep("Fig 12(b,f): common dimension (100K x n x 100K, d=0.2)",
             VaryCommonDimension());
  PrintSweep("Fig 12(c,g): density (100K x 2K x 100K)", VaryDensity());

  std::printf("--- Fig 12(d,h): varying the number of nodes ---\n");
  PrintRow({"nodes", "d", "SystemDS", "FuseME"});
  PrintRule(4);
  for (double density : {0.1, 0.2}) {
    for (int nodes : {2, 4, 8}) {
      SyntheticSpec spec{"100K", 100000, 100000, 2000, density};
      Row row = RunSpec(spec, nodes);
      char d[16];
      std::snprintf(d, sizeof(d), "%.1f", density);
      PrintRow({std::to_string(nodes), d,
                ElapsedCell(row.systemds) + " (" + row.systemds_op + ")",
                ElapsedCell(row.fuseme)});
    }
  }
  std::printf(
      "\nTable 3 note: the (P*,Q*,R*) column above is the optimizer's pick\n"
      "per dataset (paper Table 3 reports (8,6,2)-style values).\n\n");

  RunRealModeCfoSpeedup();
  if (!WriteBenchJson("fig12_operators", g_records,
                      g_metrics.Snapshot().ToJson())) {
    return 1;
  }
  WriteTraceJson("fig12_operators", g_tracer);
  return 0;
}
