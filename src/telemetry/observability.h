// Live observability plane: composition root for the flight recorder,
// the time-series sampler, and the embedded HTTP exporter (DESIGN.md
// section 17).
//
// EngineOptions carries an ObservabilityOptions; Engine::Create calls
// ObservabilityPlane::Start with it, and the engine threads the plane's
// journal through the stage/operator/prefetch layers the same way it
// threads Tracer*/MetricsRegistry*.  Everything defaults to off — a run
// with the default options builds no plane, takes no new locks, and is
// bitwise-identical to a run before this subsystem existed.

#ifndef FUSEME_TELEMETRY_OBSERVABILITY_H_
#define FUSEME_TELEMETRY_OBSERVABILITY_H_

#include <chrono>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "telemetry/event_journal.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"

namespace fuseme {

/// Engine-facing knobs; every default means "disabled".
struct ObservabilityOptions {
  /// Flight-recorder capacity in events; 0 disables the journal.
  std::int64_t journal_capacity = 0;
  /// Background sampling period; 0 disables the sampler.  Requires a
  /// metrics registry on the engine options.
  double sample_period_seconds = 0.0;
  /// Sampler ring capacity (samples retained).
  std::int64_t sampler_capacity = 256;
  /// Exporter TCP port on loopback: -1 disables the exporter (default),
  /// 0 binds an ephemeral port (read it back from the plane), 1-65535
  /// binds that port.
  int exporter_port = -1;
  /// Install the fatal-log hook that dumps the journal's last events to
  /// stderr when a FUSEME_CHECK fails.  Requires the journal.  Process-
  /// global (last attach wins), hence opt-in.
  bool crash_dump = false;

  [[nodiscard]] bool any_enabled() const {
    return journal_capacity > 0 || sample_period_seconds > 0 ||
           exporter_port >= 0;
  }

  /// Structural validity: non-negative capacities/periods, port range,
  /// and cross-field requirements (sampler/exporter need `have_metrics`,
  /// crash_dump needs the journal).
  [[nodiscard]] Status Validate(bool have_metrics) const;
};

/// Owns whichever of journal/sampler/exporter the options enable and
/// manages their background threads.  Stop order (exporter first, then
/// sampler) is the destructor's job; the plane outlives any thread it
/// started.
class ObservabilityPlane {
 public:
  /// Builds and starts the enabled pieces.  `metrics` may be null only
  /// when the options don't need it (Validate enforces this); `epoch`
  /// anchors journal and sampler timestamps — pass the engine Tracer's
  /// epoch so /flightz and TRACE_*.json share a clock.
  static Result<std::unique_ptr<ObservabilityPlane>> Start(
      const ObservabilityOptions& options, const MetricsRegistry* metrics,
      std::chrono::steady_clock::time_point epoch =
          std::chrono::steady_clock::now());

  ~ObservabilityPlane();

  ObservabilityPlane(const ObservabilityPlane&) = delete;
  ObservabilityPlane& operator=(const ObservabilityPlane&) = delete;

  /// Null when the corresponding piece is disabled.
  [[nodiscard]] EventJournal* journal() { return journal_.get(); }
  [[nodiscard]] const EventJournal* journal() const { return journal_.get(); }
  [[nodiscard]] MetricsSampler* sampler() { return sampler_.get(); }

  /// Bound exporter port, or -1 when the exporter is disabled.
  [[nodiscard]] int exporter_port() const;

 private:
  ObservabilityPlane() = default;

  ObservabilityOptions options_;
  std::unique_ptr<EventJournal> journal_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<HttpExporter> exporter_;
  bool crash_dump_attached_ = false;
};

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_OBSERVABILITY_H_
