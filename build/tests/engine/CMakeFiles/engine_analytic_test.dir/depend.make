# Empty dependencies file for engine_analytic_test.
# This may be replaced when dependencies are built.
