// PartialPlan: a fused sub-DAG (paper §2.1, §3, §4).
//
// A partial fusion plan is a connected set of operator nodes of a query DAG
// that will execute as one distributed fused operator.  Within a plan the
// members form a tree rooted at the plan's single output operator (multi-
// consumer nodes are termination operators and may only appear at the top,
// so no member other than the root has two consuming edges).
//
// The plan knows how to classify its members into the four subspaces of the
// paper's 3-D model (§3.1) relative to a main matrix multiplication:
// L-space (feeds the lhs), R-space (feeds the rhs), MM-space (the matmul
// itself), and O-space (everything downstream plus its side inputs).

#ifndef FUSEME_FUSION_PARTIAL_PLAN_H_
#define FUSEME_FUSION_PARTIAL_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/dag.h"

namespace fuseme {

class PartialPlan {
 public:
  enum class Space { kL, kR, kMM, kO, kNone };

  PartialPlan() : dag_(nullptr), root_(kInvalidNode) {}
  /// `members` must include `root`; all members must be operator nodes of
  /// `dag` forming a connected tree under `root`.
  PartialPlan(const Dag* dag, std::vector<NodeId> members, NodeId root);

  /// TEST-ONLY mutation hook: builds a plan without the constructor's
  /// membership/operator checks so verifier tests can assemble corrupted
  /// fusion regions (leaf members, foreign roots, disconnected sets).
  static PartialPlan UncheckedForTest(const Dag* dag,
                                      std::vector<NodeId> members,
                                      NodeId root);

  const Dag& dag() const { return *dag_; }
  NodeId root() const { return root_; }
  const std::vector<NodeId>& members() const { return members_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(members_.size());
  }
  bool Contains(NodeId id) const;

  /// Member matmul nodes (ba(×)).
  std::vector<NodeId> MatMuls() const;

  /// The main matrix multiplication v_mm: the member matmul with the
  /// largest voxel count I·J·K (paper Alg. 3 line 3).  kInvalidNode when
  /// the plan has no matmul.
  NodeId MainMatMul() const;

  /// External inputs: nodes outside the plan (leaf matrices, scalars, or
  /// outputs of other plans) consumed by members.  Deduplicated, in first-
  /// use order.
  std::vector<NodeId> ExternalInputs() const;

  /// Classifies every member relative to `main_mm` (which must be a
  /// member): its subtree under lhs -> kL, under rhs -> kR, itself -> kMM,
  /// everything else (downstream + side subtrees) -> kO.
  std::map<NodeId, Space> ClassifySpaces(NodeId main_mm) const;

  /// Tree distance in hops between two members (paper Alg. 3 line 7).
  int Distance(NodeId a, NodeId b) const;

  /// Splits at member `v` (paper Alg. 3 line 9): the subtree rooted at `v`
  /// becomes the second plan F_i; the remainder (with `v` now an external
  /// input) becomes the first plan F_m.  `v` must not be the root.
  std::pair<PartialPlan, PartialPlan> SplitAt(NodeId v) const;

  /// The member whose output `id` feeds, or kInvalidNode for the root.
  NodeId ParentOf(NodeId id) const;

  /// "{v1,v3,v5} root=v5" style rendering.
  std::string ToString() const;

 private:
  const Dag* dag_;
  std::vector<NodeId> members_;  // sorted ascending
  NodeId root_;
};

std::string_view SpaceName(PartialPlan::Space space);

}  // namespace fuseme

#endif  // FUSEME_FUSION_PARTIAL_PLAN_H_
