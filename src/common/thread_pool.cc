#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>

namespace fuseme {

namespace {

/// Set while a thread is executing a task for some pool; used to collapse
/// nested ParallelFor calls.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() const { return current_pool == this; }

std::size_t ThreadPool::ApproxQueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline.  packaged_task catches exceptions into the
    // future, so this cannot throw through Enqueue.
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn,
                             int max_parallelism) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  std::int64_t helpers = num_threads();
  if (max_parallelism > 0) {
    helpers = std::min<std::int64_t>(helpers, max_parallelism - 1);
  }
  helpers = std::min(helpers, n - 1);
  if (helpers <= 0 || InWorker()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared loop state.  Helpers hold the state via shared_ptr, so a helper
  // that is dequeued late (even after this frame returned — impossible
  // here because we join every future, but cheap insurance) finds the
  // range exhausted instead of touching freed memory.
  struct State {
    std::atomic<std::int64_t> next;
    std::int64_t end = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<bool> abort{false};
    Mutex mu;
    std::exception_ptr error GUARDED_BY(mu);
    std::int64_t error_index GUARDED_BY(mu) =
        std::numeric_limits<std::int64_t>::max();
  };
  auto state = std::make_shared<State>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->fn = &fn;

  auto drain = [](const std::shared_ptr<State>& s) {
    while (!s->abort.load(std::memory_order_relaxed)) {
      const std::int64_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->end) return;
      try {
        (*s->fn)(i);
      } catch (...) {
        MutexLock lock(s->mu);
        if (i < s->error_index) {
          s->error_index = i;
          s->error = std::current_exception();
        }
        s->abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::int64_t h = 0; h < helpers; ++h) {
    futures.push_back(Submit([state, drain]() { drain(state); }));
  }
  drain(state);
  for (std::future<void>& future : futures) future.get();
  // Move the exception out of the shared state before rethrowing: a helper
  // may drop the last State reference on its own thread after we return,
  // and the caller must be able to inspect the caught exception without
  // racing that release.
  std::exception_ptr error;
  {
    MutexLock lock(state->mu);
    error = std::move(state->error);
    state->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

Mutex global_pool_mu;
std::unique_ptr<ThreadPool> global_pool GUARDED_BY(global_pool_mu);
int global_parallelism GUARDED_BY(global_pool_mu) = 0;  // 0 = unresolved

int DefaultParallelism() {
  // getenv is mt-unsafe only against concurrent setenv; this read happens
  // on first pool use, before the process mutates its environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("FUSEME_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool* GlobalThreadPool() {
  MutexLock lock(global_pool_mu);
  if (global_pool == nullptr) {
    if (global_parallelism == 0) global_parallelism = DefaultParallelism();
    global_pool = std::make_unique<ThreadPool>(global_parallelism - 1);
  }
  return global_pool.get();
}

int GlobalParallelism() {
  MutexLock lock(global_pool_mu);
  if (global_parallelism == 0) global_parallelism = DefaultParallelism();
  return global_parallelism;
}

void SetGlobalThreadPoolThreads(int num_threads) {
  std::unique_ptr<ThreadPool> old;
  {
    MutexLock lock(global_pool_mu);
    global_parallelism = std::max(num_threads, 1);
    old = std::move(global_pool);  // destroyed (joined) outside the lock
    global_pool = std::make_unique<ThreadPool>(global_parallelism - 1);
  }
}

}  // namespace fuseme
