#include "common/logging.h"

#include <atomic>

namespace fuseme {

namespace {

std::atomic<int> g_log_level{[] {
  if (const char* env = std::getenv("FUSEME_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kWarning);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  std::cerr << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace fuseme
