#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the concurrency-sensitive
# test directories (common/, matrix/, ops/, runtime/, engine/, telemetry/)
# under it — including the event-journal and sampler hammers and the live
# HTTP exporter tests.
# Usage: scripts/run_tsan.sh [extra ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFUSEME_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"

# The tests that exercise the thread pool, the parallel kernels, and the
# parallel operators (including the serial-vs-parallel determinism suite
# and the fault-injection retry path, which merges recovery accounting
# from worker threads).
REGEX=${1:-'Synchronization|ThreadPool|GlobalThreadPool|ParallelDeterminism|PrefetchDeterminism|Prefetcher|MatMul|BlockedMatrix|Stage|FusedOperator|OperatorSweep|Metrics|Logging|FaultTolerance|FaultInjector|FaultSpec|RetryPolicy|StageRecovery|OptionsValidation|SparseKernels|EventJournal|Sampler|HttpServer|HttpExporter|SolverRegistry|CompiledPlan'}

# Exercise more than one thread even on small CI machines.
export FUSEME_THREADS=${FUSEME_THREADS:-4}
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

cd "$BUILD_DIR"
ctest --output-on-failure -R "$REGEX"
