
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/stage_test.cc" "tests/runtime/CMakeFiles/stage_test.dir/stage_test.cc.o" "gcc" "tests/runtime/CMakeFiles/stage_test.dir/stage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/fuseme_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fuseme_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/fuseme_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/fuseme_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fuseme_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fuseme_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fuseme_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fuseme_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/fuseme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
