# Empty compiler generated dependencies file for sparsity_analysis_test.
# This may be replaced when dependencies are built.
