#include "matrix/sparse_matrix.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.At(1, 2), 0.0);
}

TEST(SparseMatrixTest, FromTripletsBasic) {
  SparseMatrix m = SparseMatrix::FromTriplets(3, 3, {{0, 1, 2.0},
                                                     {2, 2, 5.0},
                                                     {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.At(0, 1), 2.0);
  EXPECT_EQ(m.At(1, 0), -1.0);
  EXPECT_EQ(m.At(2, 2), 5.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0},
                                                     {0, 0, 2.0},
                                                     {1, 1, 3.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.At(0, 0), 3.0);
  EXPECT_EQ(m.At(1, 1), 3.0);
}

TEST(SparseMatrixTest, FromTripletsDropsCancelledDuplicates) {
  // Duplicates that accumulate to exactly 0.0 must not leave an explicit
  // zero entry (FromDense never stores zeros either).
  SparseMatrix m = SparseMatrix::FromTriplets(3, 3, {{0, 0, 2.5},
                                                     {0, 0, -2.5},
                                                     {1, 2, 1.0},
                                                     {2, 2, 0.0}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.At(0, 0), 0.0);
  EXPECT_EQ(m.At(1, 2), 1.0);
  EXPECT_EQ(m.At(2, 2), 0.0);
  // The cancelled run must match a from-dense round trip exactly.
  SparseMatrix dense_path = SparseMatrix::FromDense(m.ToDense());
  EXPECT_EQ(dense_path.nnz(), m.nnz());
}

TEST(SparseMatrixTest, FromTripletsUnsortedInput) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{2, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {0, 0, 4.0}});
  EXPECT_EQ(m.At(0, 0), 4.0);
  EXPECT_EQ(m.At(0, 2), 2.0);
  EXPECT_EQ(m.At(1, 1), 3.0);
  EXPECT_EQ(m.At(2, 0), 1.0);
  // CSR invariant: row_ptr monotone, col_idx sorted within rows.
  for (std::size_t r = 1; r < m.row_ptr().size(); ++r) {
    EXPECT_GE(m.row_ptr()[r], m.row_ptr()[r - 1]);
  }
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    for (std::int64_t p = m.row_ptr()[r] + 1; p < m.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);
    }
  }
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  DenseMatrix d(3, 4);
  d(0, 1) = 2.0;
  d(2, 3) = -7.0;
  d(1, 0) = 0.5;
  SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 3);
  EXPECT_TRUE(s.ToDense() == d);
}

TEST(SparseMatrixTest, TransposedMatchesDenseTranspose) {
  SparseMatrix s = RandomSparse(8, 5, 0.3, /*seed=*/3);
  DenseMatrix expected = s.ToDense().Transposed();
  SparseMatrix t = s.Transposed();
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_TRUE(t.ToDense() == expected);
}

TEST(SparseMatrixTest, TransposeIsInvolution) {
  SparseMatrix s = RandomSparse(6, 9, 0.25, /*seed=*/11);
  EXPECT_TRUE(s.Transposed().Transposed().ToDense() == s.ToDense());
}

TEST(SparseMatrixTest, ForEachVisitsRowMajor) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{1, 2, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}});
  std::vector<std::pair<std::int64_t, std::int64_t>> visited;
  m.ForEach([&](std::int64_t i, std::int64_t j, double) {
    visited.emplace_back(i, j);
  });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_EQ(visited[1], (std::pair<std::int64_t, std::int64_t>{1, 0}));
  EXPECT_EQ(visited[2], (std::pair<std::int64_t, std::int64_t>{1, 2}));
}

TEST(SparseMatrixTest, DensityMatchesRequestApproximately) {
  SparseMatrix s = RandomSparse(100, 100, 0.1, /*seed=*/5);
  EXPECT_NEAR(s.density(), 0.1, 0.03);
}

TEST(SparseMatrixTest, RowWithNoEntries) {
  SparseMatrix m = SparseMatrix::FromTriplets(4, 2, {{0, 0, 1.0},
                                                     {3, 1, 2.0}});
  EXPECT_EQ(m.At(1, 0), 0.0);
  EXPECT_EQ(m.At(2, 1), 0.0);
  EXPECT_EQ(m.row_ptr()[1], 1);
  EXPECT_EQ(m.row_ptr()[2], 1);
  EXPECT_EQ(m.row_ptr()[3], 1);
  EXPECT_EQ(m.row_ptr()[4], 2);
}

}  // namespace
}  // namespace fuseme
