// Minimal leveled logging + check macros.
//
// FUSEME_CHECK aborts on contract violations (programming errors); recoverable
// conditions use Status instead.  Log level is controlled at runtime via
// SetLogLevel or the FUSEME_LOG_LEVEL environment variable (0=debug..3=error).

#ifndef FUSEME_COMMON_LOGGING_H_
#define FUSEME_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/synchronization.h"

namespace fuseme {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Lowercase level name for metric labels: "debug".."error".
const char* LogLevelLabel(LogLevel level);

/// Destination for formatted log lines.  The default (no sink installed)
/// writes to stderr; tests install a CaptureLogSink to assert on warnings
/// instead of scraping stderr.  Write() is always invoked under the
/// logging mutex, so implementations see one call at a time.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `line` is the fully formatted message, no trailing newline.
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` for subsequent log messages and returns the previous
/// sink (null means the default stderr destination).  Passing null
/// restores the default.
LogSink* SetLogSink(LogSink* sink);

/// Test sink capturing (level, line) pairs in memory.
class CaptureLogSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override;
  [[nodiscard]] std::vector<std::pair<LogLevel, std::string>> messages() const;
  /// Count of captured messages at exactly `level`.
  [[nodiscard]] std::size_t CountAt(LogLevel level) const;
  void Clear();

 private:
  mutable Mutex mu_;
  std::vector<std::pair<LogLevel, std::string>> messages_ GUARDED_BY(mu_);
};

/// Counter hook, invoked for every message that passes the level filter
/// (before the sink write).  The common layer cannot depend on the
/// metrics registry, so this is a raw function pointer — the telemetry
/// layer's AttachLogMetrics installs one that bumps
/// `fuseme_log_messages_total{level=...}`.  Null uninstalls.
using LogCounterHook = void (*)(LogLevel level, void* arg);
void SetLogCounterHook(LogCounterHook hook, void* arg);

/// Last-words hook, invoked exactly once from the fatal path (a failed
/// FUSEME_CHECK) after the fatal message is written and before abort().
/// Same raw-function-pointer convention as the counter hook: the
/// telemetry layer's AttachJournalCrashDump installs one that writes the
/// flight recorder's last events to stderr, so a crash leaves the event
/// journal behind.  Null uninstalls.  The hook runs on the crashing
/// thread and must not assume any particular lock is free.
using FatalLogHook = void (*)(void* arg);
void SetFatalLogHook(FatalLogHook hook, void* arg);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace fuseme

#define FUSEME_LOG(level)                                               \
  if (static_cast<int>(::fuseme::LogLevel::k##level) >=                 \
      static_cast<int>(::fuseme::GetLogLevel()))                        \
  ::fuseme::internal_logging::LogMessage(::fuseme::LogLevel::k##level,  \
                                         __FILE__, __LINE__)

#define FUSEME_CHECK(condition)                                       \
  if (!(condition))                                                   \
  ::fuseme::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)

#define FUSEME_CHECK_EQ(a, b) FUSEME_CHECK((a) == (b))
#define FUSEME_CHECK_NE(a, b) FUSEME_CHECK((a) != (b))
#define FUSEME_CHECK_LT(a, b) FUSEME_CHECK((a) < (b))
#define FUSEME_CHECK_LE(a, b) FUSEME_CHECK((a) <= (b))
#define FUSEME_CHECK_GT(a, b) FUSEME_CHECK((a) > (b))
#define FUSEME_CHECK_GE(a, b) FUSEME_CHECK((a) >= (b))

#define FUSEME_DCHECK(condition) FUSEME_CHECK(condition)

#endif  // FUSEME_COMMON_LOGGING_H_
