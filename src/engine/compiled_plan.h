// CompiledPlan: the engine's compile-once / execute-many artifact
// (DESIGN.md section 18).
//
// Engine::Compile runs the full planning pipeline exactly once — CFG
// planner, verifier, per-stage solver resolution, and the cost-model base
// predictions — and freezes the result into a CompiledPlan.
// Engine::Execute replays the artifact against fresh inputs of the same
// shape class without re-planning, re-verifying, or re-searching; only
// the input-dependent prediction refinement (the CFO cell-stage
// narrow-dependency model) is re-applied per run, so outputs and
// StageStats are bitwise identical to the legacy Run path.
//
// The artifact serializes to JSON (ToJson/FromJson) for cross-process
// reuse: the DAG is replayed through the Dag builders and re-validated
// against the recorded metadata, the plan set is re-verified, and every
// stage's solver id is checked against the registry (verifier rules
// compiled-solver / compiled-prediction).

#ifndef FUSEME_ENGINE_COMPILED_PLAN_H_
#define FUSEME_ENGINE_COMPILED_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace fuseme {

/// One frozen stage of a compiled plan (1:1 with the plan set's plans,
/// in execution order): the resolved operator kind, the registry solver
/// chosen for it, and the compile-time base prediction.
struct CompiledStage {
  /// Resolved physical operator (forced kind, or the SystemMode policy's
  /// choice).  Never kAuto.
  OperatorKind kind = OperatorKind::kCfo;
  /// Stable id of the resolved StageSolver (engine/solver_names.h).
  std::string solver_id;
  /// True when Execute must re-apply RefineCellStagePrediction against
  /// the live-bound inputs (CFO on a matmul-free plan); the base numbers
  /// below are pre-refinement.
  bool refine_cell = false;
  /// OK when `prediction` holds; otherwise the exact status the
  /// compile-time prediction failed with (e.g. OutOfMemory when no
  /// cuboid fit), replayed by Execute so failures reproduce too.
  Status prediction_status;
  /// Base (input-independent) prediction: cuboid, task count, and the
  /// closed-form NetEst/AggBytes/ComEst/MemEst estimates.
  StagePrediction prediction;
};

/// Everything Compile produces beyond the plan set itself.  Split out so
/// the legacy Run/RunWithPlans wrappers can compile-and-execute against a
/// caller's Dag/plan set in place, without copying them into an artifact.
struct CompiledStageTable {
  /// Resolved report description: the planner's own, or the synthesized
  /// "caller-supplied (N plan(s))".
  std::string description;
  /// Cached verification output: the plan set's carried diagnostics plus
  /// (when `verified`) one full PlanVerifier::Verify pass.  Execute
  /// replays these instead of re-verifying (kParanoid re-checks).
  std::vector<VerifierDiagnostic> diagnostics;
  /// Whether the verifier ran at compile time (compile-time verify level
  /// was not kOff).  False means `diagnostics` only carries what the
  /// plan set brought along.
  bool verified = false;
  std::vector<CompiledStage> stages;
};

/// A compiled execution artifact: an owned copy of the query DAG, the
/// fusion plan set over it, and the per-stage solver/prediction table.
/// Move-only (stages reference the owned DAG through the plan set).
/// Construct via Engine::Compile / Engine::CompileWithPlans / FromJson.
class CompiledPlan {
 public:
  CompiledPlan(CompiledPlan&&) = default;
  CompiledPlan& operator=(CompiledPlan&&) = default;
  CompiledPlan(const CompiledPlan&) = delete;
  CompiledPlan& operator=(const CompiledPlan&) = delete;

  const Dag& dag() const { return *dag_; }
  const FusionPlanSet& plans() const { return plans_; }
  const CompiledStageTable& table() const { return table_; }
  const std::vector<CompiledStage>& stages() const { return table_.stages; }
  const std::vector<VerifierDiagnostic>& diagnostics() const {
    return table_.diagnostics;
  }
  const std::string& description() const { return table_.description; }
  SystemMode system() const { return system_; }
  /// The forced-operator argument the artifact was compiled with (kAuto
  /// unless the caller forced one through CompileWithPlans).
  OperatorKind forced() const { return forced_; }
  bool analytic() const { return analytic_; }
  /// Verify level the artifact was compiled under.
  VerifyLevel verify() const { return verify_; }
  /// Cluster the plans/predictions were modeled for.
  const ClusterConfig& cluster() const { return cluster_; }

  /// Cheap pre-execution compatibility check: the executing engine's
  /// system/mode/cluster must match what the artifact was compiled for,
  /// and every bound input must match its DAG leaf's shape exactly and
  /// its recorded sparsity class (density buckets of floor(log2(d)),
  /// ±1 bucket of grace).  Returns InvalidArgument naming the precise
  /// mismatch; inputs the DAG doesn't declare are ignored, and missing
  /// ones follow the run path's own rules (synthesized in analytic mode,
  /// InvalidArgument at bind time in real mode).
  Status CheckCompatible(const EngineOptions& options,
                         const std::map<NodeId, BlockedMatrix>& inputs) const;

  /// JSON serialization for cross-process reuse (schema in DESIGN.md
  /// section 18).  FromJson replays the DAG through the builders,
  /// re-validates node metadata, re-verifies the plan set, and checks
  /// every stage's solver id against the registry; a tampered artifact
  /// fails with InvalidArgument citing the compiled-solver /
  /// compiled-prediction verifier rules.
  std::string ToJson() const;
  static Result<CompiledPlan> FromJson(const std::string& json);

 private:
  friend class Engine;
  CompiledPlan() = default;

  /// Owned so the plan set's PartialPlans (which hold a const Dag*) stay
  /// valid across moves and process boundaries.
  std::unique_ptr<Dag> dag_;
  FusionPlanSet plans_;
  CompiledStageTable table_;
  SystemMode system_ = SystemMode::kFuseMe;
  OperatorKind forced_ = OperatorKind::kAuto;
  bool analytic_ = false;
  VerifyLevel verify_ = VerifyLevel::kPlanner;
  ClusterConfig cluster_;
};

}  // namespace fuseme

#endif  // FUSEME_ENGINE_COMPILED_PLAN_H_
