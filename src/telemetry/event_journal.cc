#include "telemetry/event_journal.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/json_util.h"

namespace fuseme {

namespace {

Result<LogLevel> ParseSeverity(const std::string& label) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    if (label == LogLevelLabel(level)) return level;
  }
  return Status::InvalidArgument("journal JSON: unknown severity \"" + label +
                                 "\"");
}

void AppendEventJson(const JournalEvent& e, std::ostringstream& out) {
  out << "{\"seq\": " << e.seq << ", \"t_us\": " << e.t_us
      << ", \"severity\": \"" << LogLevelLabel(e.severity) << "\", \"id\": \""
      << JsonEscape(e.id) << "\", \"payload\": {";
  bool first = true;
  for (const auto& [key, value] : e.payload) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(key) << "\": \"" << JsonEscape(value) << "\"";
  }
  out << "}}";
}

}  // namespace

EventJournal::EventJournal(std::int64_t capacity,
                           std::chrono::steady_clock::time_point epoch)
    : epoch_(epoch) {
  if (capacity < kShards) capacity = kShards;
  shard_capacity_ = (capacity + kShards - 1) / kShards;
  capacity_ = shard_capacity_ * kShards;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.ring.resize(static_cast<std::size_t>(shard_capacity_));
  }
}

std::int64_t EventJournal::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventJournal::Emit(
    LogLevel severity, std::string_view id,
    std::vector<std::pair<std::string, std::string>> payload) {
  JournalEvent event;
  // Sequence and timestamp are claimed before taking the shard lock so
  // the critical section is just the slot move.  Timestamps can be
  // microseconds out of order relative to sequence under contention;
  // `seq` is the authoritative order.
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.t_us = NowMicros();
  event.severity = severity;
  event.id.assign(id.data(), id.size());
  event.payload = std::move(payload);

  Shard& shard = shards_[event.seq % kShards];
  const std::size_t slot = static_cast<std::size_t>(
      (event.seq / kShards) % shard_capacity_);
  MutexLock lock(shard.mu);
  shard.ring[slot] = std::move(event);
  ++shard.appended;
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::vector<JournalEvent> events;
  events.reserve(static_cast<std::size_t>(capacity_));
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    // Only slots that have ever been written hold events; a ring that
    // wrapped holds its most recent shard_capacity_ entries.
    const std::int64_t held = std::min(shard.appended, shard_capacity_);
    for (std::int64_t i = 0; i < held; ++i) {
      // Racing emitters may overwrite a slot between claiming a sequence
      // and our lock; the copy is still a coherent event either way.
      events.push_back(shard.ring[static_cast<std::size_t>(i) %
                                  static_cast<std::size_t>(shard_capacity_)]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              return a.seq < b.seq;
            });
  // Slots overwritten mid-snapshot can leave a stale and a fresh copy of
  // the same ring position but never the same seq twice; dedup is
  // unnecessary, but drop any default-constructed hole (seq 0 twice can't
  // happen, empty id can only be a never-written slot racing `appended`).
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const JournalEvent& e) {
                                return e.id.empty();
                              }),
               events.end());
  return events;
}

std::string EventJournal::DumpJson() const {
  const std::vector<JournalEvent> events = Snapshot();
  std::ostringstream out;
  out << "{\"emitted\": " << total_emitted()
      << ", \"capacity\": " << capacity_ << ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ", ";
    AppendEventJson(events[i], out);
  }
  out << "]}";
  return out.str();
}

Result<std::vector<JournalEvent>> ParseJournalJson(const std::string& json) {
  JsonReader reader(json, "journal JSON");
  std::vector<JournalEvent> events;
  FUSEME_RETURN_IF_ERROR(reader.Expect('{'));
  if (!reader.TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(const std::string key, reader.ReadString());
      FUSEME_RETURN_IF_ERROR(reader.Expect(':'));
      if (key != "events") {
        FUSEME_RETURN_IF_ERROR(reader.SkipValue());
        continue;
      }
      FUSEME_RETURN_IF_ERROR(reader.Expect('['));
      if (reader.TryConsume(']')) continue;
      do {
        JournalEvent event;
        FUSEME_RETURN_IF_ERROR(reader.Expect('{'));
        if (!reader.TryConsume('}')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(const std::string field,
                                    reader.ReadString());
            FUSEME_RETURN_IF_ERROR(reader.Expect(':'));
            if (field == "seq") {
              FUSEME_ASSIGN_OR_RETURN(event.seq, reader.ReadInt());
            } else if (field == "t_us") {
              FUSEME_ASSIGN_OR_RETURN(event.t_us, reader.ReadInt());
            } else if (field == "severity") {
              FUSEME_ASSIGN_OR_RETURN(const std::string label,
                                      reader.ReadString());
              FUSEME_ASSIGN_OR_RETURN(event.severity, ParseSeverity(label));
            } else if (field == "id") {
              FUSEME_ASSIGN_OR_RETURN(event.id, reader.ReadString());
            } else if (field == "payload") {
              FUSEME_RETURN_IF_ERROR(reader.Expect('{'));
              if (!reader.TryConsume('}')) {
                do {
                  FUSEME_ASSIGN_OR_RETURN(std::string pkey,
                                          reader.ReadString());
                  FUSEME_RETURN_IF_ERROR(reader.Expect(':'));
                  FUSEME_ASSIGN_OR_RETURN(std::string pvalue,
                                          reader.ReadString());
                  event.payload.emplace_back(std::move(pkey),
                                             std::move(pvalue));
                } while (reader.TryConsume(','));
                FUSEME_RETURN_IF_ERROR(reader.Expect('}'));
              }
            } else {
              FUSEME_RETURN_IF_ERROR(reader.SkipValue());
            }
          } while (reader.TryConsume(','));
          FUSEME_RETURN_IF_ERROR(reader.Expect('}'));
        }
        events.push_back(std::move(event));
      } while (reader.TryConsume(','));
      FUSEME_RETURN_IF_ERROR(reader.Expect(']'));
    } while (reader.TryConsume(','));
    FUSEME_RETURN_IF_ERROR(reader.Expect('}'));
  }
  return events;
}

namespace {

// The crash hook runs on the fatal path with arbitrary locks possibly
// held by *other* threads; EventJournal's shard mutexes are leaf locks
// held only for slot copies, so DumpJson here can only deadlock if the
// crashing thread itself died inside Emit — acceptable for a
// last-words diagnostic.
void DumpJournalOnFatal(void* arg) {
  auto* journal = static_cast<EventJournal*>(arg);
  std::cerr << "[FATAL] flight recorder (last " << journal->capacity()
            << " events): " << journal->DumpJson() << std::endl;
}

}  // namespace

void AttachJournalCrashDump(EventJournal* journal) {
  if (journal == nullptr) {
    SetFatalLogHook(nullptr, nullptr);
    return;
  }
  SetFatalLogHook(&DumpJournalOnFatal, journal);
}

}  // namespace fuseme
