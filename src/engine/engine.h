// Engine: DAG in, fusion plan + distributed execution + report out.
//
// The engine reproduces four systems' planning/execution policies on one
// runtime (paper §6: SystemDS, MatFast, DistME, FuseME):
//
//   kFuseMe   CFG planner, every plan as a CFO with optimizer-chosen
//             (P,Q,R) — the paper's system.
//   kSystemDs GEN templates; matmul-bearing plans run as BFO or RFO by the
//             §6.2 selection rule (BFO when the main matrix has fewer
//             Spark partitions than its block-grid dimensions).
//   kMatFast  folded element-wise chains; matmuls broadcast the smaller
//             operand.
//   kDistMe   no fusion; matmuls use CuboidMM (a single-node CFO plan),
//             everything else is an operator-at-a-time stage.
//
// Two execution paths share all policy code:
//   real      block-level execution of the physical operators (numeric
//             results, measured communication/flops);
//   analytic  closed-form stage statistics from the cost model — used to
//             run paper-scale experiments in milliseconds.  Matrices are
//             carried as metadata descriptors.
//
// Elapsed time always comes from the Simulator's cluster model; OutOfMemory
// and TimedOut surface in the report exactly like the paper's O.O.M./T.O.
// table cells.

#ifndef FUSEME_ENGINE_ENGINE_H_
#define FUSEME_ENGINE_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "cost/optimizer.h"
#include "fusion/planners.h"
#include "ops/fused_operator.h"
#include "runtime/distributed_matrix.h"
#include "runtime/simulator.h"
#include "telemetry/prediction.h"
#include "verify/diagnostic.h"

namespace fuseme {

class Tracer;
class MetricsRegistry;  // telemetry/metrics.h

enum class SystemMode {
  kFuseMe,
  kSystemDs,
  kMatFast,
  kDistMe,
  /// TensorFlow with XLA (paper §6.5): element-wise chains fuse (the XLA
  /// fusion pass); matrix multiplications run data-parallel with the
  /// smaller operand broadcast to every instance.
  kTensorFlow,
};
std::string_view SystemModeName(SystemMode mode);

/// Physical operator selection for a plan.  kAuto applies the SystemMode's
/// policy; the explicit values force one operator (used by the Fig. 12
/// benchmark, which compares BFO/RFO/CFO on the same plan).  kCpmm is
/// SystemDS's k-partitioned shuffle matmul — a (1,1,R) cuboid with the
/// smallest memory-feasible R — used when neither broadcast nor
/// replication fits.
enum class OperatorKind { kAuto, kCfo, kBfo, kRfo, kCpmm };

struct EngineOptions {
  SystemMode system = SystemMode::kFuseMe;
  ClusterConfig cluster;
  /// true: metadata-only analytic execution (no numeric block data).
  bool analytic = false;
  /// Use the pruning (P,Q,R) search instead of the exhaustive one.
  bool pruned_search = true;
  /// Skew-aware cuboid splits (see CuboidOptions::balance_sparsity).
  /// Real-mode only: the analytic path models aggregate totals, which
  /// balancing does not change.
  bool balance_sparsity = false;
  /// Optional span sink (not owned): when set, the engine records a span
  /// per stage and the physical operators record spans per work item;
  /// export with Tracer::WriteChromeJson.  See DESIGN.md section 10.
  Tracer* tracer = nullptr;
  /// Optional metrics sink (not owned): when set, the whole pipeline
  /// (parser, planner, optimizer, verifier, runtime, kernels) records
  /// counters/gauges/histograms into it — see telemetry/metric_names.h and
  /// DESIGN.md section 12.  Null disables with no hot-path cost.
  MetricsRegistry* metrics = nullptr;
  /// How much static plan verification runs before/while executing
  /// (verify/plan_verifier.h, DESIGN.md section 11).  kPlanner checks the
  /// DAG, every plan, and the stage graph up front; kParanoid re-checks
  /// each chosen cuboid against the optimizer's own memory estimate
  /// before the stage runs.  Diagnostics fail the run with
  /// StatusCode::kInternal and land in ExecutionReport.
  VerifyLevel verify = VerifyLevel::kPlanner;
};

struct ExecutionReport {
  Status status;
  double elapsed_seconds = 0.0;
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t max_task_memory = 0;
  std::vector<StageStats> stages;
  /// Per-stage predicted-vs-actual telemetry (one entry per attempted
  /// stage, in execution order; see telemetry/prediction.h).  Feed to
  /// BuildPredictionReport / FormatPredictionTable.
  std::vector<StageTelemetry> telemetry;
  /// Invariant violations the PlanVerifier found (empty on clean runs).
  /// Non-empty implies status is kInternal and execution never started
  /// (or, at kParanoid, stopped before the offending stage).
  std::vector<VerifierDiagnostic> verifier_diagnostics;
  std::string plan_description;

  std::int64_t total_bytes() const {
    return consolidation_bytes + aggregation_bytes;
  }
  bool ok() const { return status.ok(); }
  /// One-line outcome: "3.2 min, 17.3 GB shuffled, 12 stages" or the
  /// failure code ("O.O.M." / "T.O.").
  std::string Summary() const;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);

  const EngineOptions& options() const { return options_; }
  const CostModel& cost_model() const { return model_; }

  /// Generates this system's fusion plan set for `dag`.
  FusionPlanSet MakePlans(const Dag& dag) const;

  struct RunResult {
    ExecutionReport report;
    /// Root-node values of dag.outputs() (meta descriptors in analytic
    /// mode).  Empty when execution failed.
    std::map<NodeId, DistributedMatrix> outputs;
  };

  /// Plans and executes the whole DAG.  `inputs` binds leaf nodes to
  /// matrices; in analytic mode missing leaves are synthesized as
  /// descriptors from the DAG metadata.
  RunResult Run(const Dag& dag,
                const std::map<NodeId, BlockedMatrix>& inputs) const;

  /// Executes a caller-supplied plan set (e.g. the single full-query plan
  /// of §6.2), optionally forcing the physical operator.
  RunResult RunWithPlans(const Dag& dag, const FusionPlanSet& plans,
                         const std::map<NodeId, BlockedMatrix>& inputs,
                         OperatorKind forced = OperatorKind::kAuto) const;

  /// Cost-model prediction for running `plan` as `kind`: chosen cuboid
  /// plus NetEst/AggBytes/ComEst/MemEst (telemetry/prediction.h).  Fails
  /// with OutOfMemory when no cuboid fits the task budget (CFO/cpmm) —
  /// exactly the cases where execution could not proceed either.
  /// When the stage's bound `inputs` are available, their partitioning
  /// refines the narrow-dependency model (a same-shaped input only skips
  /// the shuffle where its owner task coincides with the consuming task);
  /// without them, inputs are assumed grid-partitioned over the cluster.
  Result<StagePrediction> PredictStage(const PartialPlan& plan,
                                       OperatorKind kind,
                                       const FusedInputs* inputs =
                                           nullptr) const;

 private:
  /// Operator the current SystemMode uses for `plan`.
  OperatorKind PickOperator(const PartialPlan& plan,
                            const FusedInputs& inputs) const;

  Result<DistributedMatrix> RunPlanReal(const PartialPlan& plan,
                                        OperatorKind kind,
                                        const StagePrediction& pred,
                                        const FusedInputs& inputs,
                                        StageContext* ctx) const;

  /// Fills `stats` from the prediction's closed forms (plus the engine's
  /// narrow-dependency and output-write adjustments) and returns the
  /// descriptor output.
  Result<DistributedMatrix> RunPlanAnalytic(const PartialPlan& plan,
                                            OperatorKind kind,
                                            const StagePrediction& pred,
                                            StageStats* stats) const;

  PqrChoice Optimize(const PartialPlan& plan) const;

  EngineOptions options_;
  CostModel model_;
};

}  // namespace fuseme

#endif  // FUSEME_ENGINE_ENGINE_H_
