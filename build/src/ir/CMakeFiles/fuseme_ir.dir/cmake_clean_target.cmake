file(REMOVE_RECURSE
  "libfuseme_ir.a"
)
