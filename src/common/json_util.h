// Minimal JSON helpers shared by the telemetry exporters/parsers.
//
// The engine's machine-readable artifacts (Chrome traces, metric
// snapshots, bench results) are all emitted by hand-rolled writers over a
// small JSON subset: objects, arrays, strings with ASCII escapes, and
// numbers.  JsonReader is the matching pull parser — enough to round-trip
// everything the writers produce, with positioned errors so schema
// violations are debuggable.  JsonEscape is the writer-side escape shared
// by every exporter.

#ifndef FUSEME_COMMON_JSON_UTIL_H_
#define FUSEME_COMMON_JSON_UTIL_H_

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"

namespace fuseme {

/// Escapes `s` for embedding in a double-quoted JSON string.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Pull parser over the exporters' subset of JSON: objects, arrays,
/// strings (with the escapes JsonEscape produces), and integer/float
/// numbers.  `context` prefixes error messages ("trace JSON", "metrics
/// JSON", ...).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text, std::string context = "JSON")
      : text_(text), context_(std::move(context)) {}

  [[nodiscard]] Status Error(const std::string& message) const {
    return Status::InvalidArgument(context_ + ": " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ReadString() {
    FUSEME_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The exporters only emit \u00XX control codes; anything wider
          // would need UTF-8 encoding, which this reader doesn't do.
          if (code > 0x7f) return Error("non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    FUSEME_RETURN_IF_ERROR(Expect('"'));
    return out;
  }

  Result<double> ReadNumber() {
    FUSEME_ASSIGN_OR_RETURN(const std::string token, ReadNumberToken());
    return std::stod(token);
  }

  /// Reads a number that the writer emitted as an integer, exactly (no
  /// round-trip through double, which loses precision past 2^53).  Floats
  /// are accepted and truncated toward zero.
  Result<std::int64_t> ReadInt() {
    FUSEME_ASSIGN_OR_RETURN(const std::string token, ReadNumberToken());
    if (token.find_first_of(".eE") == std::string::npos) {
      return static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr,
                                                    10));
    }
    return static_cast<std::int64_t>(std::stod(token));
  }

  /// Skips one value of any supported type (used for ignored keys).
  Status SkipValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("truncated value");
    const char c = text_[pos_];
    if (c == '"') return ReadString().status();
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      FUSEME_RETURN_IF_ERROR(Expect(c));
      if (TryConsume(close)) return Status::OK();
      do {
        if (c == '{') {
          FUSEME_RETURN_IF_ERROR(ReadString().status());
          FUSEME_RETURN_IF_ERROR(Expect(':'));
        }
        FUSEME_RETURN_IF_ERROR(SkipValue());
      } while (TryConsume(','));
      return Expect(close);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return ReadNumber().status();
    }
    for (const char* lit : {"true", "false", "null"}) {
      const std::size_t len = std::char_traits<char>::length(lit);
      if (text_.compare(pos_, len, lit) == 0) {
        pos_ += len;
        return Status::OK();
      }
    }
    return Error("unsupported value");
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  Result<std::string> ReadNumberToken() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace fuseme

#endif  // FUSEME_COMMON_JSON_UTIL_H_
