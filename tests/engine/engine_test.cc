// End-to-end real-mode execution: all four system policies must produce
// numerically identical results on the same queries, with policy-dependent
// plan shapes and communication profiles.

#include "engine/engine.h"

#include "engine/compiled_plan.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions Options(SystemMode mode) {
  EngineOptions options;
  options.system = mode;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.cluster.net_bandwidth = 1e6;
  options.cluster.compute_bandwidth = 1e8;
  return options;
}

struct GnmfFixture {
  GnmfQuery q;
  std::map<NodeId, BlockedMatrix> inputs;
  std::map<NodeId, DenseMatrix> dense;
  DenseMatrix expected_u, expected_v;

  GnmfFixture() : q(BuildGnmf(26, 20, 6, /*x_nnz=*/104)) {
    SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
    DenseMatrix v = RandomDense(26, 6, /*seed=*/52, 0.5, 1.5);
    DenseMatrix u = RandomDense(6, 20, /*seed=*/53, 0.5, 1.5);
    inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
    inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
    inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
    dense = {{q.X, x.ToDense()}, {q.V, v}, {q.U, u}};
    expected_u = *ReferenceEval(q.dag, q.a5, dense);
    expected_v = *ReferenceEval(q.dag, q.b5, dense);
  }
};

class AllSystems : public ::testing::TestWithParam<SystemMode> {};

TEST_P(AllSystems, GnmfStepMatchesReference) {
  GnmfFixture f;
  Engine engine(Options(GetParam()));
  Engine::RunResult run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  ASSERT_EQ(run.outputs.size(), 2u);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(
                run.outputs.at(f.q.a5).blocks().ToDense(), f.expected_u),
            1e-8);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(
                run.outputs.at(f.q.b5).blocks().ToDense(), f.expected_v),
            1e-8);
  EXPECT_GT(run.report.elapsed_seconds, 0.0);
  EXPECT_GT(run.report.consolidation_bytes, 0);
  EXPECT_GT(run.report.flops, 0);
  EXPECT_FALSE(run.report.stages.empty());
}

TEST_P(AllSystems, AlsLossMatchesReference) {
  AlsLossQuery q = BuildAlsLoss(24, 20, 8, /*x_nnz=*/96);
  SparseMatrix x = RandomSparse(24, 20, 0.2, /*seed=*/61, 1.0, 2.0);
  DenseMatrix u = RandomDense(24, 8, /*seed=*/62, 0.1, 0.9);
  DenseMatrix v = RandomDense(8, 20, /*seed=*/63, 0.1, 0.9);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.loss,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(expected.ok());

  Engine engine(Options(GetParam()));
  Engine::RunResult run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_NEAR(run.outputs.at(q.loss).blocks().ToDense()(0, 0),
              (*expected)(0, 0), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Systems, AllSystems,
                         ::testing::Values(SystemMode::kFuseMe,
                                           SystemMode::kSystemDs,
                                           SystemMode::kMatFast,
                                           SystemMode::kDistMe),
                         [](const auto& info) {
                           return std::string(SystemModeName(info.param));
                         });

TEST(EngineTest, FuseMeUsesFewerStagesThanDistMe) {
  GnmfFixture f;
  Engine fuseme(Options(SystemMode::kFuseMe));
  Engine distme(Options(SystemMode::kDistMe));
  auto run_f = fuseme.Run(f.q.dag, f.inputs);
  auto run_d = distme.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run_f.report.ok());
  ASSERT_TRUE(run_d.report.ok());
  EXPECT_LT(run_f.report.stages.size(), run_d.report.stages.size());
}

TEST(EngineTest, MissingInputReported) {
  GnmfFixture f;
  std::map<NodeId, BlockedMatrix> partial = f.inputs;
  partial.erase(f.q.U);
  Engine engine(Options(SystemMode::kFuseMe));
  auto run = engine.Run(f.q.dag, partial);
  EXPECT_TRUE(run.report.status.IsInvalidArgument());
  EXPECT_TRUE(run.outputs.empty());
}

TEST(EngineTest, TimeoutSurfacesAsTo) {
  GnmfFixture f;
  EngineOptions options = Options(SystemMode::kFuseMe);
  options.cluster.timeout_seconds = 1e-9;
  Engine engine(options);
  auto run = engine.Run(f.q.dag, f.inputs);
  EXPECT_TRUE(run.report.status.IsTimedOut());
  EXPECT_NE(run.report.Summary().find("T.O."), std::string::npos);
}

TEST(EngineTest, OomSurfacesFromTinyBudget) {
  GnmfFixture f;
  EngineOptions options = Options(SystemMode::kMatFast);
  options.cluster.task_memory_budget = 128;  // nothing fits
  Engine engine(options);
  auto run = engine.Run(f.q.dag, f.inputs);
  EXPECT_TRUE(run.report.status.IsOutOfMemory());
  EXPECT_NE(run.report.Summary().find("O.O.M."), std::string::npos);
}

TEST(EngineTest, ForcedOperatorsAgreeNumerically) {
  // The Fig. 12 methodology: one full-query plan executed as BFO/RFO/CFO.
  NmfPattern q = BuildNmfPattern(26, 22, 10, /*x_nnz=*/57);
  SparseMatrix x = RandomSparse(26, 22, 0.1, /*seed=*/71, 1.0, 2.0);
  DenseMatrix u = RandomDense(26, 10, /*seed=*/72, 0.5, 1.5);
  DenseMatrix v = RandomDense(22, 10, /*seed=*/73, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.mul,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(expected.ok());

  FusionPlanSet full;
  full.plans.emplace_back(&q.dag,
                          std::vector<NodeId>{q.vT, q.mm, q.add, q.log,
                                              q.mul},
                          q.mul);
  full.description = "single full-query plan";

  Engine engine(Options(SystemMode::kFuseMe));
  for (OperatorKind kind :
       {OperatorKind::kCfo, OperatorKind::kBfo, OperatorKind::kRfo}) {
    auto compiled = engine.CompileWithPlans(q.dag, full, kind);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    auto run = engine.Execute(*compiled, inputs);
    ASSERT_TRUE(run.report.ok()) << run.report.status;
    EXPECT_LE(DenseMatrix::MaxAbsDiff(
                  run.outputs.at(q.mul).blocks().ToDense(), *expected),
              1e-9);
  }
}

TEST(EngineTest, ReportSummaryReadsWell) {
  GnmfFixture f;
  Engine engine(Options(SystemMode::kFuseMe));
  auto run = engine.Run(f.q.dag, f.inputs);
  ASSERT_TRUE(run.report.ok());
  std::string summary = run.report.Summary();
  EXPECT_NE(summary.find("shuffled"), std::string::npos);
  EXPECT_NE(summary.find("stages"), std::string::npos);
}

}  // namespace
}  // namespace fuseme
