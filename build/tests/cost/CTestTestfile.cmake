# CMake generated Testfile for 
# Source directory: /root/repo/tests/cost
# Build directory: /root/repo/build/tests/cost
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cost/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/cost/optimizer_test[1]_include.cmake")
