file(REMOVE_RECURSE
  "CMakeFiles/fuseme_planner.dir/planners.cc.o"
  "CMakeFiles/fuseme_planner.dir/planners.cc.o.d"
  "libfuseme_planner.a"
  "libfuseme_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
