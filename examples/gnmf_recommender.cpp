// GNMF recommender (paper §6.4): factorize a sparse rating matrix X into
// V·U with Gaussian NMF multiplicative updates (Eq. 6), running every
// iteration through the FuseME engine, then use the factors to recommend.
//
//   $ ./build/examples/gnmf_recommender

#include <cstdio>
#include <vector>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

namespace {

double ReconstructionError(const DenseMatrix& x, const DenseMatrix& v,
                           const DenseMatrix& u) {
  double err = 0;
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    for (std::int64_t j = 0; j < x.cols(); ++j) {
      if (x(i, j) == 0.0) continue;  // score observed ratings only
      double dot = 0;
      for (std::int64_t k = 0; k < v.cols(); ++k) dot += v(i, k) * u(k, j);
      err += (x(i, j) - dot) * (x(i, j) - dot);
    }
  }
  return err;
}

}  // namespace

int main() {
  const std::int64_t users = 120, items = 90, factors = 8, block = 16;
  const int iterations = 8;

  // Synthetic ratings: ~8% of the user-item pairs rated 1..5.
  SparseMatrix ratings =
      RandomSparse(users, items, 0.08, /*seed=*/7, 1.0, 5.0);
  DenseMatrix x = ratings.ToDense();
  DenseMatrix v = RandomDense(users, factors, /*seed=*/8, 0.1, 1.0);
  DenseMatrix u = RandomDense(factors, items, /*seed=*/9, 0.1, 1.0);

  GnmfQuery q = BuildGnmf(users, items, factors, ratings.nnz());

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 4;
  options.cluster.tasks_per_node = 4;
  options.cluster.block_size = block;
  Engine engine(options);

  std::printf("GNMF on %lldx%lld ratings (nnz=%lld), k=%lld\n",
              static_cast<long long>(users), static_cast<long long>(items),
              static_cast<long long>(ratings.nnz()),
              static_cast<long long>(factors));
  std::printf("%-5s %-14s %-24s\n", "iter", "squared error",
              "engine summary");

  double accumulated = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    // Gauss-Seidel style: update U first, then V against the new U (the
    // simultaneous form of Eq. 6 is not monotone on every dataset).
    std::string summary;
    for (NodeId target : {q.a5, q.b5}) {
      std::map<NodeId, BlockedMatrix> inputs;
      inputs[q.X] = BlockedMatrix::FromSparse(ratings, block);
      inputs[q.V] = BlockedMatrix::FromDense(v, block);
      inputs[q.U] = BlockedMatrix::FromDense(u, block);
      Engine::RunResult run = engine.Run(q.dag, inputs);
      if (!run.report.ok()) {
        std::printf("iteration %d failed: %s\n", iter,
                    run.report.Summary().c_str());
        return 1;
      }
      if (target == q.a5) {
        u = run.outputs.at(q.a5).blocks().ToDense();
      } else {
        v = run.outputs.at(q.b5).blocks().ToDense();
      }
      accumulated += run.report.elapsed_seconds;
      summary = run.report.Summary();
    }
    std::printf("%-5d %-14.2f %s\n", iter + 1, ReconstructionError(x, v, u),
                summary.c_str());
  }
  std::printf("\naccumulated modeled time over %d iterations: %.2f sec\n",
              iterations, accumulated);

  // Recommend: the highest predicted unrated item for user 0.
  std::int64_t best_item = -1;
  double best_score = -1;
  for (std::int64_t j = 0; j < items; ++j) {
    if (x(0, j) != 0.0) continue;
    double score = 0;
    for (std::int64_t k = 0; k < factors; ++k) score += v(0, k) * u(k, j);
    if (score > best_score) {
      best_score = score;
      best_item = j;
    }
  }
  std::printf("recommendation for user 0: item %lld (predicted %.2f)\n",
              static_cast<long long>(best_item), best_score);
  return 0;
}
