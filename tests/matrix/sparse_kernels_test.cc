// Golden suite for the sparsity-aware kernels (DESIGN.md section 15):
// every kernel is checked against a naive dense reference across a
// density × shape sweep, serial and parallel runs are required to agree
// bitwise, and the block_ops sparse paths that used to bypass the kernels
// get regression coverage (merge-join element-wise multiply, i-outer
// dense×sparse accumulation, thread-pool dispatch thresholds).

#include "matrix/sparse_kernels.h"

#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "matrix/block_ops.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

DenseMatrix RefMatMul(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      for (std::int64_t k = 0; k < a.cols(); ++k) {
        out(i, j) += a(i, k) * b(k, j);
      }
    }
  }
  return out;
}

DenseMatrix Added(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = a;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < a.cols(); ++j) out(i, j) += b(i, j);
  }
  return out;
}

bool BitwiseEqual(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * a.size()) == 0;
}

// Restores the global pool size on scope exit so tests compose.
struct PoolGuard {
  explicit PoolGuard(int threads) : previous(GlobalParallelism()) {
    SetGlobalThreadPoolThreads(threads);
  }
  ~PoolGuard() { SetGlobalThreadPoolThreads(previous); }
  int previous;
};

// ---------------------------------------------------------------------------
// Golden sweep: densities × shapes, every kernel vs the dense reference.

using Shape = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class SparseKernelsGolden
    : public ::testing::TestWithParam<std::tuple<double, Shape>> {};

TEST_P(SparseKernelsGolden, SpmmSparseDenseMatchesReference) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  SparseMatrix a = RandomSparse(m, k, density, /*seed=*/101, 0.5, 2.0);
  DenseMatrix b = RandomDense(k, n, /*seed=*/102, 0.5, 2.0);
  DenseMatrix acc = RandomDense(m, n, /*seed=*/103, -1.0, 1.0);
  DenseMatrix expected = Added(acc, RefMatMul(a.ToDense(), b));
  std::int64_t flops = 0;
  SpmmAccSparseDense(&acc, a, b, &flops);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc, expected), 1e-9);
  EXPECT_EQ(flops, 2 * a.nnz() * n);
}

TEST_P(SparseKernelsGolden, SpmmDenseSparseMatchesReference) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  DenseMatrix a = RandomDense(m, k, /*seed=*/111, 0.5, 2.0);
  SparseMatrix b = RandomSparse(k, n, density, /*seed=*/112, 0.5, 2.0);
  DenseMatrix acc = RandomDense(m, n, /*seed=*/113, -1.0, 1.0);
  DenseMatrix expected = Added(acc, RefMatMul(a, b.ToDense()));
  std::int64_t flops = 0;
  SpmmAccDenseSparse(&acc, a, b, &flops);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc, expected), 1e-9);
  EXPECT_EQ(flops, 2 * m * b.nnz());
}

TEST_P(SparseKernelsGolden, SpmmSparseSparseMatchesReference) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  SparseMatrix a = RandomSparse(m, k, density, /*seed=*/121, 0.5, 2.0);
  SparseMatrix b = RandomSparse(k, n, density, /*seed=*/122, 0.5, 2.0);
  DenseMatrix acc = RandomDense(m, n, /*seed=*/123, -1.0, 1.0);
  DenseMatrix expected = Added(acc, RefMatMul(a.ToDense(), b.ToDense()));
  std::int64_t flops = 0;
  SpmmAccSparseSparse(&acc, a, b, &flops);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc, expected), 1e-9);
  EXPECT_GE(flops, 0);  // 2 × products actually formed
}

TEST_P(SparseKernelsGolden, TransposeSpmmMatchesReference) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  // a stored untransposed as k×m; result is aᵀ·b, an m×n accumulation.
  SparseMatrix a = RandomSparse(k, m, density, /*seed=*/131, 0.5, 2.0);
  DenseMatrix bd = RandomDense(k, n, /*seed=*/132, 0.5, 2.0);
  DenseMatrix expected_gain = RefMatMul(a.ToDense().Transposed(), bd);

  for (bool sparse_b : {false, true}) {
    Block b = sparse_b ? Block::FromSparse(SparseMatrix::FromDense(bd))
                       : Block::FromDense(bd);
    DenseMatrix acc = RandomDense(m, n, /*seed=*/133, -1.0, 1.0);
    DenseMatrix expected = Added(acc, expected_gain);
    std::int64_t flops = 0;
    TransposeSpmmAcc(&acc, a, b, &flops);
    EXPECT_LE(DenseMatrix::MaxAbsDiff(acc, expected), 1e-9)
        << "sparse_b=" << sparse_b;
  }
}

TEST_P(SparseKernelsGolden, SddmmMatchesElementDots) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  SparseMatrix mask = RandomSparse(m, n, density, /*seed=*/141, 1.0, 2.0);
  DenseMatrix a = RandomDense(m, k, /*seed=*/142, 0.5, 2.0);
  DenseMatrix b = RandomDense(k, n, /*seed=*/143, 0.5, 2.0);
  std::vector<double> acc(mask.nnz(), 0.0);
  std::int64_t flops = 0;
  SddmmAcc(mask, Block::FromDense(a), Block::FromDense(b), &acc, &flops);
  std::int64_t p = 0;
  mask.ForEach([&](std::int64_t i, std::int64_t j, double) {
    double dot = 0.0;
    for (std::int64_t kk = 0; kk < k; ++kk) dot += a(i, kk) * b(kk, j);
    // Same ascending-k order as the kernel: bitwise equality required.
    EXPECT_EQ(acc[p], dot) << "entry " << p;
    ++p;
  });
  EXPECT_EQ(flops, 2 * mask.nnz() * k);
}

TEST_P(SparseKernelsGolden, EwiseMulMergeJoinMatchesDenseProduct) {
  auto [density, shape] = GetParam();
  auto [m, k, n] = shape;
  (void)k;
  SparseMatrix a = RandomSparse(m, n, density, /*seed=*/151, 0.5, 2.0);
  SparseMatrix b = RandomSparse(m, n, density, /*seed=*/152, 0.5, 2.0);
  std::int64_t flops = 0;
  SparseMatrix got = EwiseMulMergeJoin(a, b, &flops);
  DenseMatrix da = a.ToDense(), db = b.ToDense();
  DenseMatrix expected(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) expected(i, j) = da(i, j) * db(i, j);
  }
  EXPECT_TRUE(BitwiseEqual(got.ToDense(), expected));
  EXPECT_EQ(flops, std::min(a.nnz(), b.nnz()));
  EXPECT_LE(got.nnz(), std::min(a.nnz(), b.nnz()));
}

INSTANTIATE_TEST_SUITE_P(
    DensityShapeSweep, SparseKernelsGolden,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1, 0.5),
                       ::testing::Values(Shape{37, 29, 23},
                                         Shape{64, 64, 64},
                                         Shape{128, 96, 80})));

// ---------------------------------------------------------------------------
// Determinism: serial and parallel runs must agree bitwise, because the
// parallel kernels only partition the (disjoint) output rows — the
// per-element accumulation order never changes.

TEST(SparseKernelsTest, SpmmSparseDenseSerialParallelBitwiseIdentical) {
  // 2·nnz·n ≈ 2 · 260k · 32 ≈ 17M FLOPs — clears kSparseParallelFlops.
  SparseMatrix a = RandomSparse(1024, 512, 0.5, /*seed=*/201, 0.5, 2.0);
  DenseMatrix b = RandomDense(512, 32, /*seed=*/202, -1.0, 1.0);
  ASSERT_GE(2 * a.nnz() * b.cols(), kSparseParallelFlops);

  DenseMatrix serial(1024, 32), parallel(1024, 32);
  {
    PoolGuard guard(1);
    SpmmAccSparseDense(&serial, a, b, nullptr);
  }
  {
    PoolGuard guard(4);
    SparseKernelStats before = SparseKernelStatsSnapshot();
    SpmmAccSparseDense(&parallel, a, b, nullptr);
    SparseKernelStats after = SparseKernelStatsSnapshot();
    EXPECT_EQ(after.parallel_launches - before.parallel_launches, 1);
  }
  EXPECT_TRUE(BitwiseEqual(serial, parallel));
}

TEST(SparseKernelsTest, TransposeSpmmSerialParallelBitwiseIdentical) {
  SparseMatrix a = RandomSparse(512, 1024, 0.5, /*seed=*/211, 0.5, 2.0);
  DenseMatrix b = RandomDense(512, 32, /*seed=*/212, -1.0, 1.0);
  DenseMatrix serial(1024, 32), parallel(1024, 32);
  {
    PoolGuard guard(1);
    TransposeSpmmAcc(&serial, a, Block::FromDense(b), nullptr);
  }
  {
    PoolGuard guard(4);
    TransposeSpmmAcc(&parallel, a, Block::FromDense(b), nullptr);
  }
  EXPECT_TRUE(BitwiseEqual(serial, parallel));
}

TEST(SparseKernelsTest, SddmmSerialParallelBitwiseIdentical) {
  SparseMatrix mask = RandomSparse(1024, 512, 0.1, /*seed=*/221, 1.0, 2.0);
  DenseMatrix a = RandomDense(1024, 128, /*seed=*/222, -1.0, 1.0);
  DenseMatrix b = RandomDense(128, 512, /*seed=*/223, -1.0, 1.0);
  ASSERT_GE(2 * mask.nnz() * a.cols(), kSparseParallelFlops);
  std::vector<double> serial(mask.nnz(), 0.0), parallel(mask.nnz(), 0.0);
  {
    PoolGuard guard(1);
    SddmmAcc(mask, Block::FromDense(a), Block::FromDense(b), &serial,
             nullptr);
  }
  {
    PoolGuard guard(4);
    SddmmAcc(mask, Block::FromDense(a), Block::FromDense(b), &parallel,
             nullptr);
  }
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                        sizeof(double) * serial.size()),
            0);
}

// Bugfix regression: dense-A × sparse-B accumulation is i-outer
// row-streaming now, but per output element the k contributions must still
// land in ascending-k order — bitwise identical to the old kk-outer loop.
TEST(SparseKernelsTest, DenseSparseMatchesKkOuterReferenceBitwise) {
  DenseMatrix a = RandomDense(96, 80, /*seed=*/231, -2.0, 2.0);
  SparseMatrix b = RandomSparse(80, 64, 0.2, /*seed=*/232, -1.0, 1.0);
  DenseMatrix got = RandomDense(96, 64, /*seed=*/233, -1.0, 1.0);
  DenseMatrix ref = got;  // same starting accumulator

  // The pre-fix formulation: kk-outer over b's rows, i innermost.
  const auto& rp = b.row_ptr();
  const auto& ci = b.col_idx();
  const auto& vb = b.values();
  for (std::int64_t kk = 0; kk < b.rows(); ++kk) {
    for (std::int64_t p = rp[kk]; p < rp[kk + 1]; ++p) {
      for (std::int64_t i = 0; i < a.rows(); ++i) {
        ref(i, ci[p]) += a(i, kk) * vb[p];
      }
    }
  }
  SpmmAccDenseSparse(&got, a, b, nullptr);
  EXPECT_TRUE(BitwiseEqual(got, ref));
}

// Bugfix regression: small kernels must NOT pay the fork/join cost — the
// nnz-based FLOP threshold keeps them inline even with a warm pool.
TEST(SparseKernelsTest, SmallKernelsStayInline) {
  PoolGuard guard(4);
  SparseMatrix a = RandomSparse(128, 64, 0.1, /*seed=*/241, 0.5, 2.0);
  DenseMatrix b = RandomDense(64, 8, /*seed=*/242, 0.5, 2.0);
  DenseMatrix acc(128, 8);
  SparseKernelStats before = SparseKernelStatsSnapshot();
  SpmmAccSparseDense(&acc, a, b, nullptr);
  SparseKernelStats after = SparseKernelStatsSnapshot();
  EXPECT_EQ(after.parallel_launches, before.parallel_launches);
  EXPECT_EQ(after.spmm_sparse_dense_calls - before.spmm_sparse_dense_calls,
            1);
}

// ---------------------------------------------------------------------------
// block_ops integration regressions.

// Bugfix regression: both-sparse element-wise multiply runs the merge-join
// (no per-entry binary searches) and matches the dense product exactly.
TEST(SparseKernelsTest, BothSparseEwiseMulUsesMergeJoin) {
  SparseMatrix sa = RandomSparse(200, 200, 0.001, /*seed=*/251, 0.5, 2.0);
  SparseMatrix sb = RandomSparse(200, 200, 0.001, /*seed=*/252, 0.5, 2.0);
  Block a = Block::FromSparse(sa);
  Block b = Block::FromSparse(sb);
  SparseKernelStats before = SparseKernelStatsSnapshot();
  std::int64_t flops = 0;
  auto result = EwiseBinary(BinaryFn::kMul, a, b, &flops);
  ASSERT_TRUE(result.ok()) << result.status();
  SparseKernelStats after = SparseKernelStatsSnapshot();
  EXPECT_EQ(after.ewise_merge_join_calls - before.ewise_merge_join_calls, 1);
  EXPECT_EQ(flops, std::min(sa.nnz(), sb.nnz()));

  DenseMatrix da = sa.ToDense(), db = sb.ToDense();
  DenseMatrix expected(200, 200);
  for (std::int64_t i = 0; i < 200; ++i) {
    for (std::int64_t j = 0; j < 200; ++j) {
      expected(i, j) = da(i, j) * db(i, j);
    }
  }
  EXPECT_TRUE(BitwiseEqual(result->ToDense(), expected));
}

// Bugfix regression: all three sparse MatMulAcc paths route through the
// CSR kernels (visible in the call counters).
TEST(SparseKernelsTest, MatMulAccRoutesThroughSparseKernels) {
  DenseMatrix d = RandomDense(48, 40, /*seed=*/261, 0.5, 2.0);
  SparseMatrix s = RandomSparse(40, 32, 0.1, /*seed=*/262, 0.5, 2.0);
  SparseMatrix s2 = RandomSparse(48, 40, 0.1, /*seed=*/263, 0.5, 2.0);
  Block bd = Block::FromDense(d);
  Block bs = Block::FromSparse(s);
  Block bs2 = Block::FromSparse(s2);

  SparseKernelStats before = SparseKernelStatsSnapshot();
  DenseMatrix acc1(48, 32);
  ASSERT_TRUE(MatMulAcc(&acc1, bd, bs).ok());  // dense × sparse
  DenseMatrix acc2(48, 32);
  ASSERT_TRUE(MatMulAcc(&acc2, bs2, Block::FromDense(s.ToDense())).ok());
  DenseMatrix acc3(48, 32);
  ASSERT_TRUE(MatMulAcc(&acc3, bs2, bs).ok());  // sparse × sparse
  SparseKernelStats after = SparseKernelStatsSnapshot();
  EXPECT_EQ(after.spmm_dense_sparse_calls - before.spmm_dense_sparse_calls,
            1);
  EXPECT_EQ(after.spmm_sparse_dense_calls - before.spmm_sparse_dense_calls,
            1);
  EXPECT_EQ(after.spmm_sparse_sparse_calls - before.spmm_sparse_sparse_calls,
            1);

  // All three agree with the dense reference.
  DenseMatrix expected = RefMatMul(s2.ToDense(), s.ToDense());
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc2, expected), 1e-9);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc3, expected), 1e-9);
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc1, RefMatMul(d, s.ToDense())), 1e-9);
}

// ---------------------------------------------------------------------------
// TSan hammer (scripts/run_tsan.sh matches on "SparseKernels"): repeated
// parallel launches of every row-slab kernel with a busy pool.  Any slab
// overlap or counter race shows up as a TSan report, and the bitwise check
// catches silent double-accumulation.

TEST(SparseKernelsTest, ParallelHammer) {
  PoolGuard guard(4);
  SparseMatrix a = RandomSparse(1024, 512, 0.5, /*seed=*/271, 0.5, 2.0);
  DenseMatrix b = RandomDense(512, 32, /*seed=*/272, -1.0, 1.0);
  SparseMatrix at = RandomSparse(512, 1024, 0.5, /*seed=*/273, 0.5, 2.0);
  SparseMatrix mask = RandomSparse(1024, 512, 0.1, /*seed=*/274, 1.0, 2.0);
  DenseMatrix ma = RandomDense(1024, 128, /*seed=*/275, -1.0, 1.0);
  DenseMatrix mb = RandomDense(128, 512, /*seed=*/276, -1.0, 1.0);

  DenseMatrix spmm_first(1024, 32);
  SpmmAccSparseDense(&spmm_first, a, b, nullptr);
  for (int iter = 0; iter < 3; ++iter) {
    DenseMatrix spmm(1024, 32);
    SpmmAccSparseDense(&spmm, a, b, nullptr);
    EXPECT_TRUE(BitwiseEqual(spmm, spmm_first));
    DenseMatrix tacc(1024, 32);
    TransposeSpmmAcc(&tacc, at, Block::FromDense(b), nullptr);
    std::vector<double> dots(mask.nnz(), 0.0);
    SddmmAcc(mask, Block::FromDense(ma), Block::FromDense(mb), &dots,
             nullptr);
  }
}

}  // namespace
}  // namespace fuseme
