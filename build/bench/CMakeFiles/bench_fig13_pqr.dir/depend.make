# Empty dependencies file for bench_fig13_pqr.
# This may be replaced when dependencies are built.
