// Distributed fused operators (paper §2.2, §3.2).
//
// Both operators execute a PartialPlan as ONE distributed stage — matrix
// consolidation, local fused kernels, optional matrix aggregation — and
// record every byte / FLOP / memory charge in the StageContext:
//
//  * CuboidFusedOperator — the paper's CFO.  (P,Q,R)-cuboid partitions the
//    main matmul's model space; L/R/O side inputs are fetched per task
//    (replication emerges from overlapping fetch sets).  R>1 runs in two
//    phases: partial (optionally mask-exploiting) matmuls per k-slice,
//    then a shuffle-merge and the O-space evaluation on the r=0 tasks.
//    RFO is the special case (P,Q,R) = (I,J,1); plans without a matmul run
//    with R = 1 as plain Cell fusion.
//
//  * BroadcastFusedOperator — the paper's BFO.  The largest input is
//    repartitioned; every other input is broadcast whole to every task
//    (charged against each task's memory budget, which is exactly how the
//    BFO O.O.M. failures of Figs. 12/14 arise).
//
// Execution is representation-agnostic: with meta-block inputs the same
// control flow runs the analytic simulation.

#ifndef FUSEME_OPS_FUSED_OPERATOR_H_
#define FUSEME_OPS_FUSED_OPERATOR_H_

#include <map>

#include "common/result.h"
#include "cost/cost_model.h"
#include "fusion/partial_plan.h"
#include "runtime/distributed_matrix.h"
#include "runtime/stage.h"

namespace fuseme {

/// External node id -> its distributed matrix.  Every matrix-valued
/// external input of the plan must be present.
using FusedInputs = std::map<NodeId, const DistributedMatrix*>;

/// Execution options for the cuboid operator.
struct CuboidOptions {
  /// Split the i/j axes by the sparse mask's per-tile-row/column non-zero
  /// counts instead of uniformly, so each cuboid carries a similar amount
  /// of exploitable work.  Implements the load-balancing extension the
  /// paper lists as future work (§8: "better load balancing by
  /// considering differences in sparsities of cuboids").  No effect when
  /// the plan has no sparse driver.
  bool balance_sparsity = false;
};

class CuboidFusedOperator {
 public:
  /// Runs `plan` with cuboid `c`; accounting goes to `ctx`.
  static Result<DistributedMatrix> Execute(
      const PartialPlan& plan, const Cuboid& c, const FusedInputs& inputs,
      StageContext* ctx, const CuboidOptions& options = {});
};

/// Whether the two-phase R>1 execution applies to `plan`: it requires the
/// O-space to preserve the main matmul's shape (so partial blocks can be
/// merged coordinate-wise before the O-space evaluation).
bool CuboidSupportsKSplit(const PartialPlan& plan);

class BroadcastFusedOperator {
 public:
  static Result<DistributedMatrix> Execute(const PartialPlan& plan,
                                           const FusedInputs& inputs,
                                           StageContext* ctx);
};

}  // namespace fuseme

#endif  // FUSEME_OPS_FUSED_OPERATOR_H_
