file(REMOVE_RECURSE
  "CMakeFiles/fuseme_cost.dir/cost_model.cc.o"
  "CMakeFiles/fuseme_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/fuseme_cost.dir/optimizer.cc.o"
  "CMakeFiles/fuseme_cost.dir/optimizer.cc.o.d"
  "libfuseme_cost.a"
  "libfuseme_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
