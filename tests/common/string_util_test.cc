#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fuseme {
namespace {

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0.00 B");
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3.0 * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.12), "120 ms");
  EXPECT_EQ(HumanSeconds(36.0), "36.0 sec");
  EXPECT_EQ(HumanSeconds(600.0), "10.0 min");
  EXPECT_EQ(HumanSeconds(7200.0), "2.00 hr");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

}  // namespace
}  // namespace fuseme
