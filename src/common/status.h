// Status: error-handling vocabulary for FuseME.
//
// FuseME follows the Arrow/RocksDB convention: fallible functions return a
// Status (or Result<T>, see result.h) instead of throwing.  OutOfMemory and
// TimedOut are first-class codes because the paper's evaluation reports
// O.O.M. and T.O. cells as ordinary experimental outcomes (Figs. 12, 14, 15).

#ifndef FUSEME_COMMON_STATUS_H_
#define FUSEME_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace fuseme {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,   // per-task memory estimate exceeded the budget (theta_t)
  kTimedOut,      // simulated elapsed time exceeded the experiment horizon
  kNotImplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OutOfMemory"...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
/// [[nodiscard]]: silently dropping a Status hides OutOfMemory/TimedOut
/// outcomes; cast to void explicitly when ignoring one is intended.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fuseme

/// Propagates a non-OK Status from the current function.
#define FUSEME_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::fuseme::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // FUSEME_COMMON_STATUS_H_
