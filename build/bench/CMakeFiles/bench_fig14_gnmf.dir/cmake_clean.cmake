file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gnmf.dir/bench_fig14_gnmf.cc.o"
  "CMakeFiles/bench_fig14_gnmf.dir/bench_fig14_gnmf.cc.o.d"
  "bench_fig14_gnmf"
  "bench_fig14_gnmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gnmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
