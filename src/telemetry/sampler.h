// Time-series sampler: periodic MetricsRegistry snapshots flattened into
// bounded in-memory ring series (see DESIGN.md section 17).
//
// A background thread (capability-annotated Mutex/CondVar, no raw std
// primitives) wakes every `period_seconds`, flattens Snapshot() into
// scalar points — counters as-is, gauges plus their `_peak`, histograms
// as `_count`/`_sum` — and appends one TimeSample to a fixed-capacity
// ring, overwriting oldest-first.  SampleNow() is the same flattening
// run inline on the caller's thread, so tests exercise the exact
// series-building code without sleeping.
//
// Lock ordering: a sampling pass reads the registry (its shard locks)
// strictly before taking the sampler's own mutex for the ring append —
// the two are never held together, so the sampler adds no edge to the
// registry's lock graph (DESIGN.md section 17 records this).

#ifndef FUSEME_TELEMETRY_SAMPLER_H_
#define FUSEME_TELEMETRY_SAMPLER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/synchronization.h"
#include "telemetry/metrics.h"

namespace fuseme {

/// One flattened registry snapshot.  `t_us` is microseconds since the
/// sampler's epoch (shared with the Tracer/EventJournal when wired
/// through the engine); `values` is sorted by key because the underlying
/// MetricsSnapshot is sorted.
struct TimeSample {
  std::int64_t t_us = 0;
  std::vector<std::pair<std::string, double>> values;

  bool operator==(const TimeSample&) const = default;
};

/// Periodic registry sampler with a bounded in-memory ring.
/// Thread-safe; Start/Stop manage the background thread, SampleNow works
/// with or without it.
class MetricsSampler {
 public:
  struct Options {
    /// Background sampling period.  Must be > 0 to Start().
    double period_seconds = 1.0;
    /// Retained samples; the ring overwrites oldest-first.
    std::int64_t capacity = 256;
  };

  /// `registry` must outlive the sampler and is never null.
  MetricsSampler(const MetricsRegistry* registry, Options options,
                 std::chrono::steady_clock::time_point epoch =
                     std::chrono::steady_clock::now());
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Launches the background thread.  No-op if already running.
  void Start();
  /// Stops and joins the background thread.  No-op if not running.
  void Stop();

  /// Takes one sample inline on the calling thread and appends it to the
  /// ring; returns the flattened sample.  Deterministic given the
  /// registry's state (timestamp aside) — the unit tests' path.
  TimeSample SampleNow();

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<TimeSample> Series() const;

  /// {"period_seconds": ..., "capacity": ..., "taken": N, "samples":
  ///  [{"t_us": ..., "values": {"name": v, ...}}, ...]} — what /seriesz
  /// serves.
  [[nodiscard]] std::string ToJson() const;

  /// Samples taken over the sampler's lifetime (>= retained count).
  [[nodiscard]] std::int64_t total_samples() const;
  [[nodiscard]] std::int64_t capacity() const { return options_.capacity; }
  [[nodiscard]] double period_seconds() const {
    return options_.period_seconds;
  }

  /// Flattens one snapshot into scalar series points (static so tests
  /// can check the flattening against a hand-built snapshot).
  static std::vector<std::pair<std::string, double>> Flatten(
      const MetricsSnapshot& snapshot);

 private:
  void Loop();

  const MetricsRegistry* registry_;
  Options options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::vector<TimeSample> ring_ GUARDED_BY(mu_);
  std::int64_t taken_ GUARDED_BY(mu_) = 0;
  std::thread thread_;
};

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_SAMPLER_H_
