file(REMOVE_RECURSE
  "CMakeFiles/autoencoder_training.dir/autoencoder_training.cpp.o"
  "CMakeFiles/autoencoder_training.dir/autoencoder_training.cpp.o.d"
  "autoencoder_training"
  "autoencoder_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoencoder_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
