
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/autoencoder.cc" "src/workloads/CMakeFiles/fuseme_workloads.dir/autoencoder.cc.o" "gcc" "src/workloads/CMakeFiles/fuseme_workloads.dir/autoencoder.cc.o.d"
  "/root/repo/src/workloads/datasets.cc" "src/workloads/CMakeFiles/fuseme_workloads.dir/datasets.cc.o" "gcc" "src/workloads/CMakeFiles/fuseme_workloads.dir/datasets.cc.o.d"
  "/root/repo/src/workloads/queries.cc" "src/workloads/CMakeFiles/fuseme_workloads.dir/queries.cc.o" "gcc" "src/workloads/CMakeFiles/fuseme_workloads.dir/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fuseme_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/fuseme_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
