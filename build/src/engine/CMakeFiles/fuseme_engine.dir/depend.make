# Empty dependencies file for fuseme_engine.
# This may be replaced when dependencies are built.
