#include "ir/printer.h"

#include <algorithm>
#include <sstream>

namespace fuseme {

std::string DagToString(const Dag& dag) {
  std::ostringstream os;
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    os << "v" << id << ": " << n.Label();
    if (n.is_matrix()) {
      os << " [" << n.rows << "x" << n.cols;
      char buf[32];
      std::snprintf(buf, sizeof(buf), ", d=%.4g", n.density());
      os << buf << "]";
    }
    if (!n.inputs.empty()) {
      os << " <-";
      for (NodeId in : n.inputs) os << " v" << in;
    }
    const auto& outs = dag.outputs();
    if (std::find(outs.begin(), outs.end(), id) != outs.end()) {
      os << "  (output)";
    }
    os << "\n";
  }
  return os.str();
}

std::string DagToDot(const Dag& dag) {
  std::ostringstream os;
  os << "digraph query {\n  rankdir=BT;\n";
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    const char* shape =
        n.kind == OpKind::kInput || n.kind == OpKind::kScalar ? "box"
                                                              : "ellipse";
    os << "  v" << id << " [label=\"" << n.Label() << "\", shape=" << shape
       << "];\n";
    for (NodeId in : n.inputs) {
      os << "  v" << in << " -> v" << id << ";\n";
    }
  }
  for (NodeId out : dag.outputs()) {
    os << "  v" << out << " [penwidth=2];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ExprToString(const Dag& dag, NodeId id) {
  const Node& n = dag.node(id);
  switch (n.kind) {
    case OpKind::kInput:
      return n.name;
    case OpKind::kScalar: {
      std::ostringstream os;
      os << n.scalar;
      return os.str();
    }
    case OpKind::kUnary:
      return std::string(UnaryFnName(n.unary_fn)) + "(" +
             ExprToString(dag, n.inputs[0]) + ")";
    case OpKind::kBinary:
      return "(" + ExprToString(dag, n.inputs[0]) + " " +
             std::string(BinaryFnName(n.binary_fn)) + " " +
             ExprToString(dag, n.inputs[1]) + ")";
    case OpKind::kMatMul:
      return "(" + ExprToString(dag, n.inputs[0]) + " x " +
             ExprToString(dag, n.inputs[1]) + ")";
    case OpKind::kUnaryAgg: {
      std::string fn(AggFnName(n.agg_fn));
      if (n.agg_axis == AggAxis::kRow) fn = "row" + fn;
      if (n.agg_axis == AggAxis::kCol) fn = "col" + fn;
      return fn + "(" + ExprToString(dag, n.inputs[0]) + ")";
    }
    case OpKind::kTranspose:
      return "T(" + ExprToString(dag, n.inputs[0]) + ")";
  }
  return "?";
}

}  // namespace fuseme
