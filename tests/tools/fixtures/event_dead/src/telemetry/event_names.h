// Negative fixture: a catalogue entry nothing references.  fuseme_lint
// must flag kDead (lint-event-dead); kLive is referenced from live.cc.
#ifndef FIXTURE_EVENT_DEAD_EVENT_NAMES_H_
#define FIXTURE_EVENT_DEAD_EVENT_NAMES_H_

namespace fuseme::event_names {

inline constexpr char kLive[] = "fuseme.demo.live";
inline constexpr char kDead[] = "fuseme.demo.dead";

}  // namespace fuseme::event_names

#endif  // FIXTURE_EVENT_DEAD_EVENT_NAMES_H_
