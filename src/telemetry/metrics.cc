#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <sstream>

#include "common/json_util.h"
#include "common/logging.h"
#include "telemetry/metric_names.h"

namespace fuseme {

void Counter::Add(std::int64_t delta) {
  FUSEME_CHECK_GE(delta, 0) << "counters are monotone";
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::RaisePeak(double candidate) {
  double observed = peak_.load(std::memory_order_relaxed);
  while (candidate > observed &&
         !peak_.compare_exchange_weak(observed, candidate,
                                      std::memory_order_relaxed)) {
  }
}

// Peak is raised before the value is published so a snapshot never sees
// value > peak (the invariant CheckMetricsConsistency enforces).
void Gauge::Set(double value) {
  RaisePeak(value);
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  double observed = value_.load(std::memory_order_relaxed);
  double desired = observed + delta;
  RaisePeak(desired);
  while (!value_.compare_exchange_weak(observed, desired,
                                       std::memory_order_relaxed)) {
    desired = observed + delta;
    RaisePeak(desired);
  }
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1) {
  FUSEME_CHECK(!boundaries_.empty()) << "histogram needs >= 1 boundary";
  for (std::size_t i = 1; i < boundaries_.size(); ++i) {
    FUSEME_CHECK_LT(boundaries_[i - 1], boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto idx = static_cast<std::size_t>(it - boundaries_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> DefaultTimeBoundaries() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> DefaultByteBoundaries() {
  std::vector<double> out;
  for (double b = 1024.0; b <= 17.0 * 1024 * 1024 * 1024; b *= 4.0) {
    out.push_back(b);
  }
  return out;
}

namespace {

MetricLabels Canonicalize(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    FUSEME_CHECK(labels[i].first != labels[i - 1].first)
        << "duplicate metric label key '" << labels[i].first << "'";
  }
  return labels;
}

std::string InstrumentKey(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  for (const auto& [label_key, label_value] : labels) {
    key += '\x1f';
    key += label_key;
    key += '\x1e';
    key += label_value;
  }
  return key;
}

/// Shortest decimal form that strtod parses back to exactly `v` (finite
/// values only), so text and JSON exports round-trip bit-exactly.
std::string FormatDouble(double v) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string PrometheusEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` (or "" when empty), optionally appending one
/// extra label — used for the histogram `le` series.
std::string RenderLabels(const MetricLabels& labels,
                         const char* extra_key = nullptr,
                         const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += PrometheusEscape(value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += PrometheusEscape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     MetricLabels labels) {
  return Lookup(name, std::move(labels), MetricKind::kCounter, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  return Lookup(name, std::move(labels), MetricKind::kGauge, nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> boundaries,
                                         MetricLabels labels) {
  return Lookup(name, std::move(labels), MetricKind::kHistogram, &boundaries)
      ->histogram.get();
}

MetricsRegistry::Entry* MetricsRegistry::Lookup(
    std::string_view name, MetricLabels labels, MetricKind kind,
    const std::vector<double>* boundaries) {
  labels = Canonicalize(std::move(labels));
  std::string key = InstrumentKey(name, labels);
  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  MutexLock lock(shard.mu);
  auto [it, inserted] = shard.instruments.try_emplace(std::move(key));
  Entry& entry = it->second;
  if (inserted) {
    entry.name = std::string(name);
    entry.labels = std::move(labels);
    entry.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(*boundaries);
        break;
    }
    return &entry;
  }
  FUSEME_CHECK(entry.kind == kind)
      << "metric '" << entry.name << "' re-registered as " << KindName(kind)
      << ", was " << KindName(entry.kind);
  if (kind == MetricKind::kHistogram) {
    FUSEME_CHECK(entry.histogram->boundaries() == *boundaries)
        << "histogram '" << entry.name
        << "' re-registered with different boundaries";
  }
  return &entry;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.instruments) {
      MetricSample sample;
      sample.name = entry.name;
      sample.labels = entry.labels;
      sample.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          sample.counter_value = entry.counter->value();
          break;
        case MetricKind::kGauge:
          // Peak read after value: RaisePeak-before-publish plus this
          // order keeps peak >= value even mid-mutation.
          sample.gauge_value = entry.gauge->value();
          sample.gauge_peak = entry.gauge->peak();
          break;
        case MetricKind::kHistogram:
          sample.boundaries = entry.histogram->boundaries();
          sample.bucket_counts = entry.histogram->bucket_counts();
          sample.histogram_count = entry.histogram->count();
          sample.histogram_sum = entry.histogram->sum();
          break;
      }
      snapshot.samples.push_back(std::move(sample));
    }
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return snapshot;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const MetricLabels& labels) const {
  const MetricLabels canonical = Canonicalize(labels);
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.labels == canonical) return &sample;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  std::int64_t total = 0;
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.kind == MetricKind::kCounter) {
      total += sample.counter_value;
    }
  }
  return total;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  // Samples are sorted by name, so each family is one contiguous run.
  for (std::size_t i = 0; i < samples.size();) {
    std::size_t end = i;
    while (end < samples.size() && samples[end].name == samples[i].name) {
      ++end;
    }
    const std::string& name = samples[i].name;
    out << "# TYPE " << name << ' ' << KindName(samples[i].kind) << '\n';
    switch (samples[i].kind) {
      case MetricKind::kCounter:
        for (std::size_t s = i; s < end; ++s) {
          out << name << RenderLabels(samples[s].labels) << ' '
              << samples[s].counter_value << '\n';
        }
        break;
      case MetricKind::kGauge:
        for (std::size_t s = i; s < end; ++s) {
          out << name << RenderLabels(samples[s].labels) << ' '
              << FormatDouble(samples[s].gauge_value) << '\n';
        }
        out << "# TYPE " << name << "_peak gauge\n";
        for (std::size_t s = i; s < end; ++s) {
          out << name << "_peak" << RenderLabels(samples[s].labels) << ' '
              << FormatDouble(samples[s].gauge_peak) << '\n';
        }
        break;
      case MetricKind::kHistogram:
        for (std::size_t s = i; s < end; ++s) {
          const MetricSample& sample = samples[s];
          std::int64_t cumulative = 0;
          for (std::size_t b = 0; b < sample.boundaries.size(); ++b) {
            cumulative += sample.bucket_counts[b];
            out << name << "_bucket"
                << RenderLabels(sample.labels, "le",
                                FormatDouble(sample.boundaries[b]))
                << ' ' << cumulative << '\n';
          }
          cumulative += sample.bucket_counts.back();
          out << name << "_bucket"
              << RenderLabels(sample.labels, "le", "+Inf") << ' ' << cumulative
              << '\n';
          out << name << "_sum" << RenderLabels(sample.labels) << ' '
              << FormatDouble(sample.histogram_sum) << '\n';
          out << name << "_count" << RenderLabels(sample.labels) << ' '
              << cumulative << '\n';
        }
        break;
    }
    i = end;
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"metrics\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& sample = samples[i];
    out << (i == 0 ? "" : ",") << "\n  {\"name\": \"" << JsonEscape(sample.name)
        << "\", \"kind\": \"" << KindName(sample.kind) << "\", \"labels\": {";
    for (std::size_t l = 0; l < sample.labels.size(); ++l) {
      out << (l == 0 ? "" : ", ") << '"' << JsonEscape(sample.labels[l].first)
          << "\": \"" << JsonEscape(sample.labels[l].second) << '"';
    }
    out << '}';
    switch (sample.kind) {
      case MetricKind::kCounter:
        out << ", \"value\": " << sample.counter_value;
        break;
      case MetricKind::kGauge:
        out << ", \"value\": " << FormatDouble(sample.gauge_value)
            << ", \"peak\": " << FormatDouble(sample.gauge_peak);
        break;
      case MetricKind::kHistogram: {
        out << ", \"boundaries\": [";
        for (std::size_t b = 0; b < sample.boundaries.size(); ++b) {
          out << (b == 0 ? "" : ", ") << FormatDouble(sample.boundaries[b]);
        }
        out << "], \"buckets\": [";
        for (std::size_t b = 0; b < sample.bucket_counts.size(); ++b) {
          out << (b == 0 ? "" : ", ") << sample.bucket_counts[b];
        }
        out << "], \"count\": " << sample.histogram_count
            << ", \"sum\": " << FormatDouble(sample.histogram_sum);
        break;
      }
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

namespace {

Result<MetricSample> ReadSample(JsonReader* r) {
  MetricSample sample;
  bool have_kind = false;
  FUSEME_RETURN_IF_ERROR(r->Expect('{'));
  if (!r->TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r->ReadString());
      FUSEME_RETURN_IF_ERROR(r->Expect(':'));
      if (key == "name") {
        FUSEME_ASSIGN_OR_RETURN(sample.name, r->ReadString());
      } else if (key == "kind") {
        FUSEME_ASSIGN_OR_RETURN(std::string kind, r->ReadString());
        have_kind = true;
        if (kind == "counter") {
          sample.kind = MetricKind::kCounter;
        } else if (kind == "gauge") {
          sample.kind = MetricKind::kGauge;
        } else if (kind == "histogram") {
          sample.kind = MetricKind::kHistogram;
        } else {
          return r->Error("unknown metric kind '" + kind + "'");
        }
      } else if (key == "labels") {
        FUSEME_RETURN_IF_ERROR(r->Expect('{'));
        if (!r->TryConsume('}')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(std::string label_key, r->ReadString());
            FUSEME_RETURN_IF_ERROR(r->Expect(':'));
            FUSEME_ASSIGN_OR_RETURN(std::string label_value, r->ReadString());
            sample.labels.emplace_back(std::move(label_key),
                                       std::move(label_value));
          } while (r->TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r->Expect('}'));
        }
      } else if (key == "value") {
        // The writer emits "kind" before any kind-specific field.
        if (!have_kind) return r->Error("\"value\" before \"kind\"");
        if (sample.kind == MetricKind::kCounter) {
          FUSEME_ASSIGN_OR_RETURN(sample.counter_value, r->ReadInt());
        } else {
          FUSEME_ASSIGN_OR_RETURN(sample.gauge_value, r->ReadNumber());
        }
      } else if (key == "peak") {
        FUSEME_ASSIGN_OR_RETURN(sample.gauge_peak, r->ReadNumber());
      } else if (key == "boundaries") {
        FUSEME_RETURN_IF_ERROR(r->Expect('['));
        if (!r->TryConsume(']')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(double boundary, r->ReadNumber());
            sample.boundaries.push_back(boundary);
          } while (r->TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r->Expect(']'));
        }
      } else if (key == "buckets") {
        FUSEME_RETURN_IF_ERROR(r->Expect('['));
        if (!r->TryConsume(']')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(std::int64_t bucket, r->ReadInt());
            sample.bucket_counts.push_back(bucket);
          } while (r->TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r->Expect(']'));
        }
      } else if (key == "count") {
        FUSEME_ASSIGN_OR_RETURN(sample.histogram_count, r->ReadInt());
      } else if (key == "sum") {
        FUSEME_ASSIGN_OR_RETURN(sample.histogram_sum, r->ReadNumber());
      } else {
        FUSEME_RETURN_IF_ERROR(r->SkipValue());
      }
    } while (r->TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r->Expect('}'));
  }
  if (!have_kind) return r->Error("sample missing \"kind\"");
  return sample;
}

}  // namespace

Result<MetricsSnapshot> ParseMetricsJson(const std::string& json) {
  JsonReader r(json, "metrics JSON");
  MetricsSnapshot snapshot;
  bool saw_metrics = false;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  if (!r.TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r.ReadString());
      FUSEME_RETURN_IF_ERROR(r.Expect(':'));
      if (key == "metrics") {
        saw_metrics = true;
        FUSEME_RETURN_IF_ERROR(r.Expect('['));
        if (!r.TryConsume(']')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(MetricSample sample, ReadSample(&r));
            snapshot.samples.push_back(std::move(sample));
          } while (r.TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r.Expect(']'));
        }
      } else {
        FUSEME_RETURN_IF_ERROR(r.SkipValue());
      }
    } while (r.TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  }
  if (!saw_metrics) return r.Error("missing \"metrics\"");
  if (!r.AtEnd()) return r.Error("trailing content");
  return snapshot;
}

namespace {

Status TextError(std::size_t line_number, const std::string& message) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_number) + ": " + message);
}

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }

}  // namespace

Status ValidatePrometheusText(const std::string& text) {
  std::map<std::string, std::string> declared;  // family name -> type
  // Bucket series keyed by name + labels-without-le, in file order.
  struct BucketSeries {
    std::vector<std::pair<double, double>> entries;  // (le, cumulative)
  };
  std::map<std::string, BucketSeries> bucket_series;
  std::map<std::string, double> count_values;  // same key as bucket_series

  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, directive, name, type;
      comment >> hash >> directive;
      if (directive == "TYPE") {
        if (!(comment >> name >> type)) {
          return TextError(line_number, "malformed # TYPE");
        }
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return TextError(line_number, "unknown type '" + type + "'");
        }
        if (!declared.emplace(name, type).second) {
          return TextError(line_number, "duplicate # TYPE for '" + name + "'");
        }
      }
      continue;  // HELP and other comments pass through
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    if (!IsNameStart(line[pos])) {
      return TextError(line_number, "bad metric name start");
    }
    while (pos < line.size() && IsNameChar(line[pos])) ++pos;
    const std::string name = line.substr(0, pos);

    MetricLabels labels;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        std::size_t key_start = pos;
        while (pos < line.size() && IsNameChar(line[pos])) ++pos;
        if (pos == key_start || pos >= line.size() || line[pos] != '=') {
          return TextError(line_number, "malformed label key");
        }
        const std::string key = line.substr(key_start, pos - key_start);
        ++pos;  // '='
        if (pos >= line.size() || line[pos] != '"') {
          return TextError(line_number, "label value must be quoted");
        }
        ++pos;
        std::string value;
        while (pos < line.size() && line[pos] != '"') {
          if (line[pos] == '\\') {
            if (pos + 1 >= line.size()) {
              return TextError(line_number, "truncated label escape");
            }
            const char esc = line[pos + 1];
            if (esc == '\\' || esc == '"') {
              value += esc;
            } else if (esc == 'n') {
              value += '\n';
            } else {
              return TextError(line_number, "unknown label escape");
            }
            pos += 2;
          } else {
            value += line[pos++];
          }
        }
        if (pos >= line.size()) {
          return TextError(line_number, "unterminated label value");
        }
        ++pos;  // closing '"'
        labels.emplace_back(key, value);
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        return TextError(line_number, "unterminated label set");
      }
      ++pos;
    }

    if (pos >= line.size() || line[pos] != ' ') {
      return TextError(line_number, "expected space before value");
    }
    ++pos;
    const std::string value_text = line.substr(pos);
    double value = 0;
    if (value_text == "+Inf") {
      value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
      value = -std::numeric_limits<double>::infinity();
    } else if (value_text == "NaN") {
      value = std::numeric_limits<double>::quiet_NaN();
    } else {
      char* end = nullptr;
      value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        return TextError(line_number, "bad sample value '" + value_text + "'");
      }
    }

    // The sample must refer to a declared family: either directly, or as
    // a _bucket/_sum/_count series of a declared histogram.
    std::string base = name;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::size_t len = std::strlen(candidate);
      if (name.size() > len &&
          name.compare(name.size() - len, len, candidate) == 0) {
        const std::string stripped = name.substr(0, name.size() - len);
        auto it = declared.find(stripped);
        if (it != declared.end() && it->second == "histogram") {
          base = stripped;
          suffix = candidate;
          break;
        }
      }
    }
    const auto decl = declared.find(base);
    if (decl == declared.end()) {
      return TextError(line_number, "sample '" + name + "' has no # TYPE");
    }
    if (decl->second == "histogram") {
      if (suffix.empty()) {
        return TextError(line_number,
                         "histogram '" + base +
                             "' sampled without _bucket/_sum/_count");
      }
      double le = 0;
      MetricLabels series_labels;
      bool have_le = false;
      for (const auto& [key, label_value] : labels) {
        if (key == "le") {
          have_le = true;
          le = label_value == "+Inf"
                   ? std::numeric_limits<double>::infinity()
                   : std::strtod(label_value.c_str(), nullptr);
        } else {
          series_labels.emplace_back(key, label_value);
        }
      }
      std::string series_key = InstrumentKey(base, series_labels);
      if (suffix == "_bucket") {
        if (!have_le) {
          return TextError(line_number, "_bucket line missing le label");
        }
        bucket_series[series_key].entries.emplace_back(le, value);
      } else if (suffix == "_count") {
        count_values[series_key] = value;
      }
    }
  }

  for (const auto& [series_key, series] : bucket_series) {
    const auto& entries = series.entries;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (!(entries[i - 1].first < entries[i].first)) {
        return Status::InvalidArgument(
            "prometheus text: le labels not increasing in a bucket series");
      }
      if (entries[i].second < entries[i - 1].second) {
        return Status::InvalidArgument(
            "prometheus text: bucket counts not cumulative");
      }
    }
    if (entries.empty() ||
        !std::isinf(entries.back().first)) {
      return Status::InvalidArgument(
          "prometheus text: bucket series does not end at le=\"+Inf\"");
    }
    const auto count_it = count_values.find(series_key);
    if (count_it != count_values.end() &&
        count_it->second != entries.back().second) {
      return Status::InvalidArgument(
          "prometheus text: _count disagrees with the +Inf bucket");
    }
  }
  return Status::OK();
}

Status CheckMetricsConsistency(const MetricsSnapshot& snapshot) {
  for (const MetricSample& sample : snapshot.samples) {
    const std::string where =
        "metric '" + sample.name + RenderLabels(sample.labels) + "'";
    switch (sample.kind) {
      case MetricKind::kCounter:
        if (sample.counter_value < 0) {
          return Status::Internal(where + ": negative counter");
        }
        break;
      case MetricKind::kGauge:
        if (!(sample.gauge_peak >= sample.gauge_value)) {
          return Status::Internal(where + ": peak below current value");
        }
        break;
      case MetricKind::kHistogram: {
        if (sample.bucket_counts.size() != sample.boundaries.size() + 1) {
          return Status::Internal(where + ": bucket/boundary size mismatch");
        }
        std::int64_t total = 0;
        for (std::int64_t bucket : sample.bucket_counts) {
          if (bucket < 0) return Status::Internal(where + ": negative bucket");
          total += bucket;
        }
        if (total != sample.histogram_count) {
          return Status::Internal(where +
                                  ": count disagrees with bucket sum");
        }
        if (!std::isfinite(sample.histogram_sum)) {
          return Status::Internal(where + ": non-finite sum");
        }
        break;
      }
    }
  }
  return Status::OK();
}

namespace {

struct LogMetricsState {
  Counter* counters[4] = {nullptr, nullptr, nullptr, nullptr};
};
LogMetricsState g_log_metrics;

void LogCounterTrampoline(LogLevel level, void* arg) {
  auto* state = static_cast<LogMetricsState*>(arg);
  const int index = static_cast<int>(level);
  if (index >= 0 && index < 4 && state->counters[index] != nullptr) {
    state->counters[index]->Increment();
  }
}

}  // namespace

void AttachLogMetrics(MetricsRegistry* registry) {
  // Uninstall first: SetLogCounterHook serializes with in-flight log
  // messages, so after it returns no thread reads g_log_metrics.
  SetLogCounterHook(nullptr, nullptr);
  if (registry == nullptr) return;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    g_log_metrics.counters[static_cast<int>(level)] = registry->GetCounter(
        metric_names::kLogMessages, {{"level", LogLevelLabel(level)}});
  }
  SetLogCounterHook(&LogCounterTrampoline, &g_log_metrics);
}

}  // namespace fuseme
