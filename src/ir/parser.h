// A small DML-like expression parser — the textual front end (the paper's
// system accepts SystemML DML / Scala expressions; this is the analogous
// layer for this engine).
//
//   X * log(U %*% t(V) + 1e-8)
//   sum((X != 0) * (X - U %*% V)^2)
//
// Grammar (precedence low → high):
//   expr    := cmp ( ('+'|'-') cmp )*
//   cmp     := term ( ('=='|'!='|'<'|'>') term )*        [comparisons]
//   term    := power ( ('*'|'/') power )*
//   power   := matmul ( '^' matmul )*                    [right-assoc]
//   matmul  := unary ( '%*%' unary )*
//   unary   := '-' unary | primary
//   primary := NUMBER | IDENT | FUNC '(' expr (',' expr)* ')' | '(' expr ')'
//
// Functions: t, log, exp, sqrt, abs, sigmoid, relu, sq, nz,
//            sum, rowSums, colSums, min, max, pow.
// Identifiers resolve against a caller-supplied symbol table of matrix
// shapes; '^' with a literal 2 lowers to the cheaper u(^2).

#ifndef FUSEME_IR_PARSER_H_
#define FUSEME_IR_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "ir/dag.h"

namespace fuseme {

class MetricsRegistry;  // telemetry/metrics.h

/// Shape (and optional sparsity) of an input matrix named in a query.
struct MatrixShape {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = -1;  // -1 = dense
};

struct ParsedQuery {
  /// The DAG is heap-allocated so ParsedQuery stays movable while Expr
  /// handles keep pointing at a stable Dag.
  std::unique_ptr<Dag> dag;
  std::map<std::string, NodeId> inputs;  // name -> leaf node
  NodeId root = kInvalidNode;            // marked as the DAG output
};

/// Parses `text` against `symbols`.  Unknown identifiers, malformed
/// syntax, and shape errors come back as InvalidArgument with a position.
/// With a non-null `metrics`, bumps fuseme_parser_queries_total /
/// fuseme_parser_errors_total and counts the built DAG's nodes into
/// fuseme_ir_nodes_total{kind=...}.
Result<ParsedQuery> ParseQuery(
    std::string_view text, const std::map<std::string, MatrixShape>& symbols,
    MetricsRegistry* metrics = nullptr);

}  // namespace fuseme

#endif  // FUSEME_IR_PARSER_H_
