#include "matrix/sparse_matrix.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace fuseme {

SparseMatrix SparseMatrix::FromTriplets(
    std::int64_t rows, std::int64_t cols,
    std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  SparseMatrix out(rows, cols);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  // Accumulate each duplicate (i, j) run before emitting so a run that
  // cancels to 0.0 leaves no explicit-zero entry (matching FromDense,
  // which never stores zeros).
  std::size_t t = 0;
  while (t < triplets.size()) {
    const std::int64_t i = std::get<0>(triplets[t]);
    const std::int64_t j = std::get<1>(triplets[t]);
    FUSEME_CHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    double sum = 0.0;
    for (; t < triplets.size() && std::get<0>(triplets[t]) == i &&
           std::get<1>(triplets[t]) == j;
         ++t) {
      sum += std::get<2>(triplets[t]);
    }
    if (sum == 0.0) continue;
    out.col_idx_.push_back(j);
    out.values_.push_back(sum);
    out.row_ptr_[i + 1] = static_cast<std::int64_t>(out.col_idx_.size());
  }
  // Prefix-max to make row_ptr monotone (rows with no entries).
  for (std::int64_t r = 1; r <= rows; ++r) {
    out.row_ptr_[r] = std::max(out.row_ptr_[r], out.row_ptr_[r - 1]);
  }
  return out;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense) {
  SparseMatrix out(dense.rows(), dense.cols());
  for (std::int64_t i = 0; i < dense.rows(); ++i) {
    for (std::int64_t j = 0; j < dense.cols(); ++j) {
      double v = dense(i, j);
      if (v != 0.0) {
        out.col_idx_.push_back(j);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[i + 1] = static_cast<std::int64_t>(out.col_idx_.size());
  }
  return out;
}

SparseMatrix SparseMatrix::FromCsr(std::int64_t rows, std::int64_t cols,
                                   std::vector<std::int64_t> row_ptr,
                                   std::vector<std::int64_t> col_idx,
                                   std::vector<double> values) {
  FUSEME_CHECK_EQ(static_cast<std::int64_t>(row_ptr.size()), rows + 1);
  FUSEME_CHECK_EQ(col_idx.size(), values.size());
  FUSEME_CHECK_EQ(row_ptr.front(), 0);
  FUSEME_CHECK_EQ(row_ptr.back(), static_cast<std::int64_t>(col_idx.size()));
  SparseMatrix out(rows, cols);
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.values_ = std::move(values);
#ifndef NDEBUG
  for (std::int64_t i = 0; i < rows; ++i) {
    FUSEME_CHECK(out.row_ptr_[i] <= out.row_ptr_[i + 1]);
    for (std::int64_t p = out.row_ptr_[i]; p < out.row_ptr_[i + 1]; ++p) {
      FUSEME_CHECK(out.col_idx_[p] >= 0 && out.col_idx_[p] < cols);
      FUSEME_CHECK(p == out.row_ptr_[i] || out.col_idx_[p - 1] < out.col_idx_[p]);
    }
  }
#endif
  return out;
}

double SparseMatrix::At(std::int64_t i, std::int64_t j) const {
  FUSEME_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  auto begin = col_idx_.begin() + row_ptr_[i];
  auto end = col_idx_.begin() + row_ptr_[i + 1];
  auto it = std::lower_bound(begin, end, j);
  if (it != end && *it == j) {
    return values_[it - col_idx_.begin()];
  }
  return 0.0;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  ForEach([&](std::int64_t i, std::int64_t j, double v) { out(i, j) = v; });
  return out;
}

SparseMatrix SparseMatrix::Transposed() const {
  // Counting sort by column for O(nnz + cols).
  SparseMatrix out(cols_, rows_);
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<std::int64_t> count(cols_ + 1, 0);
  for (std::int64_t j : col_idx_) ++count[j + 1];
  for (std::int64_t j = 0; j < cols_; ++j) count[j + 1] += count[j];
  out.row_ptr_.assign(count.begin(), count.end());
  std::vector<std::int64_t> next(count.begin(), count.end() - 1);
  ForEach([&](std::int64_t i, std::int64_t j, double v) {
    std::int64_t pos = next[j]++;
    out.col_idx_[pos] = i;
    out.values_[pos] = v;
  });
  return out;
}

}  // namespace fuseme
