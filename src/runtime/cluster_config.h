// ClusterConfig: the modeled execution environment (paper §6.1).
//
// Defaults mirror the paper's testbed: 8 worker nodes, 12 tasks per node,
// 10 GB memory budget per task (theta_t), 1 Gbps Ethernet per node, and
// 546 GFLOPS compute per node, with 1000×1000 blocks and a 12-hour timeout.

#ifndef FUSEME_RUNTIME_CLUSTER_CONFIG_H_
#define FUSEME_RUNTIME_CLUSTER_CONFIG_H_

#include <cstdint>

namespace fuseme {

struct ClusterConfig {
  /// Number of worker nodes (N).
  int num_nodes = 8;
  /// Concurrent tasks per node (Tc).
  int tasks_per_node = 12;
  /// Memory budget per task in bytes (theta_t).
  std::int64_t task_memory_budget = 10LL * 1024 * 1024 * 1024;
  /// Peak network bandwidth per node in bytes/sec (B̂n). 1 Gbps default.
  double net_bandwidth = 1e9 / 8.0;
  /// Peak compute bandwidth per node in FLOP/sec (B̂c). 546 GFLOPS default.
  double compute_bandwidth = 546e9;
  /// Square block (tile) side length.
  std::int64_t block_size = 1000;
  /// Experiment horizon; exceeding it reports TimedOut ("T.O." cells).
  double timeout_seconds = 12.0 * 3600.0;
  /// Fixed per-stage-wave overhead in seconds: Spark job/stage submission,
  /// task dispatch, barrier, and result collection.  Applied once per
  /// scheduling wave; measured Spark deployments sit around a second.
  double task_launch_overhead = 1.0;
  /// Extra CPU time charged per unit of network time: models Spark's
  /// shuffle machinery occupying cores while data moves (paper §6.2,
  /// "Apache Spark tends to occupy CPU cores ... for data shuffling").
  double shuffle_cpu_factor = 1.0;
  /// Comm/compute overlap factor f of the simulator's per-wave time model:
  /// wave = max(comm, comp) + (1 - f) * min(comm, comp).  1.0 (default)
  /// keeps the paper's ideal-overlap max() model; 0.0 models a fully
  /// serialized fetch-then-compute stage (the prefetch_depth = 0 real-mode
  /// path).  A modeling knob only — it never changes computed results.
  double overlap_factor = 1.0;
  /// Fetch-pipeline depth of the real-mode operators: how many output
  /// blocks ahead of the consumer their input-block copies are staged on
  /// the thread pool (0 = synchronous legacy fetch-then-compute, 1 =
  /// classic double buffering).  Results and StageStats are bitwise
  /// identical for every depth — see DESIGN.md section 14.
  int prefetch_depth = 2;
  /// Emulated transfer pacing for real-mode block fetches, in seconds per
  /// byte (0 = off, the default).  When set, every block copy — staged or
  /// direct — sleeps bytes * this before returning, standing in for the
  /// network transfer an in-process run doesn't perform; benchmarks use it
  /// to measure compute/transfer overlap honestly.  Wall-clock only:
  /// results, StageStats, and the simulator's modeled time are unaffected.
  double emulated_shuffle_seconds_per_byte = 0.0;
  /// Local execution parallelism of the real-mode physical operators:
  /// total number of threads, calling thread included.  0 = the process
  /// default (FUSEME_THREADS env or hardware_concurrency); 1 = serial.
  /// Results and StageStats are identical for every value — see
  /// DESIGN.md "Execution runtime".
  int local_threads = 0;

  /// Total task slots in the cluster (T).
  int total_tasks() const { return num_nodes * tasks_per_node; }
  /// Compute bandwidth of one task slot.
  double per_task_compute() const {
    return compute_bandwidth / tasks_per_node;
  }
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_CLUSTER_CONFIG_H_
