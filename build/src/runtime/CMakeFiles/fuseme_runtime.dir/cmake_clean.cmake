file(REMOVE_RECURSE
  "CMakeFiles/fuseme_runtime.dir/distributed_matrix.cc.o"
  "CMakeFiles/fuseme_runtime.dir/distributed_matrix.cc.o.d"
  "CMakeFiles/fuseme_runtime.dir/simulator.cc.o"
  "CMakeFiles/fuseme_runtime.dir/simulator.cc.o.d"
  "CMakeFiles/fuseme_runtime.dir/stage.cc.o"
  "CMakeFiles/fuseme_runtime.dir/stage.cc.o.d"
  "libfuseme_runtime.a"
  "libfuseme_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
