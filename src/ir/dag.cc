#include "ir/dag.h"

#include <algorithm>

#include "common/logging.h"
#include "matrix/sparsity.h"

namespace fuseme {

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kScalar:
      return "scalar";
    case OpKind::kUnary:
      return "u";
    case OpKind::kBinary:
      return "b";
    case OpKind::kMatMul:
      return "ba(x)";
    case OpKind::kUnaryAgg:
      return "ua";
    case OpKind::kTranspose:
      return "r(T)";
  }
  return "?";
}

std::string_view AggAxisName(AggAxis axis) {
  switch (axis) {
    case AggAxis::kAll:
      return "all";
    case AggAxis::kRow:
      return "row";
    case AggAxis::kCol:
      return "col";
  }
  return "?";
}

std::string Node::Label() const {
  switch (kind) {
    case OpKind::kInput:
      return name;
    case OpKind::kScalar:
      return std::to_string(scalar);
    case OpKind::kUnary:
      return "u(" + std::string(UnaryFnName(unary_fn)) + ")";
    case OpKind::kBinary:
      return "b(" + std::string(BinaryFnName(binary_fn)) + ")";
    case OpKind::kMatMul:
      return "ba(x)";
    case OpKind::kUnaryAgg:
      return "ua(" + std::string(AggFnName(agg_fn)) + "," +
             std::string(AggAxisName(agg_axis)) + ")";
    case OpKind::kTranspose:
      return "r(T)";
  }
  return "?";
}

Status Dag::CheckId(NodeId id) const {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("unknown node id " + std::to_string(id));
  }
  return Status::OK();
}

Result<NodeId> Dag::Push(Node node) {
  node.id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Result<NodeId> Dag::AddInput(std::string name, std::int64_t rows,
                             std::int64_t cols, std::int64_t nnz) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("input '" + name +
                                   "' must have positive dimensions");
  }
  Node n;
  n.kind = OpKind::kInput;
  n.name = std::move(name);
  n.rows = rows;
  n.cols = cols;
  n.nnz = nnz < 0 ? rows * cols : std::min(nnz, rows * cols);
  return Push(std::move(n));
}

Result<NodeId> Dag::AddScalar(double value) {
  Node n;
  n.kind = OpKind::kScalar;
  n.scalar = value;
  n.rows = 1;
  n.cols = 1;
  n.nnz = value != 0.0 ? 1 : 0;
  return Push(std::move(n));
}

Result<NodeId> Dag::AddUnary(UnaryFn fn, NodeId input) {
  FUSEME_RETURN_IF_ERROR(CheckId(input));
  const Node& in = nodes_[input];
  if (!in.is_matrix()) {
    return Status::InvalidArgument("unary operator requires a matrix input");
  }
  Node n;
  n.kind = OpKind::kUnary;
  n.unary_fn = fn;
  n.inputs = {input};
  n.rows = in.rows;
  n.cols = in.cols;
  n.nnz = EstimateUnaryNnz(fn, in.rows, in.cols, in.nnz);
  return Push(std::move(n));
}

Result<NodeId> Dag::AddBinary(BinaryFn fn, NodeId lhs, NodeId rhs) {
  FUSEME_RETURN_IF_ERROR(CheckId(lhs));
  FUSEME_RETURN_IF_ERROR(CheckId(rhs));
  const Node& a = nodes_[lhs];
  const Node& b = nodes_[rhs];
  const bool a_scalar = a.kind == OpKind::kScalar;
  const bool b_scalar = b.kind == OpKind::kScalar;
  if (a_scalar && b_scalar) {
    return Status::InvalidArgument(
        "binary operator on two scalars: fold it instead");
  }
  Node n;
  n.kind = OpKind::kBinary;
  n.binary_fn = fn;
  n.inputs = {lhs, rhs};
  if (a_scalar || b_scalar) {
    const Node& m = a_scalar ? b : a;
    const Node& s = a_scalar ? a : b;
    n.rows = m.rows;
    n.cols = m.cols;
    n.nnz = EstimateEwiseScalarNnz(fn, m.rows, m.cols, m.nnz, s.scalar,
                                   /*scalar_left=*/a_scalar);
  } else {
    if (a.rows != b.rows || a.cols != b.cols) {
      return Status::InvalidArgument(
          "binary operator shape mismatch: " + std::to_string(a.rows) + "x" +
          std::to_string(a.cols) + " vs " + std::to_string(b.rows) + "x" +
          std::to_string(b.cols));
    }
    n.rows = a.rows;
    n.cols = a.cols;
    n.nnz = EstimateEwiseBinaryNnz(fn, a.rows, a.cols, a.nnz, b.nnz);
  }
  return Push(std::move(n));
}

Result<NodeId> Dag::AddMatMul(NodeId lhs, NodeId rhs) {
  FUSEME_RETURN_IF_ERROR(CheckId(lhs));
  FUSEME_RETURN_IF_ERROR(CheckId(rhs));
  const Node& a = nodes_[lhs];
  const Node& b = nodes_[rhs];
  if (!a.is_matrix() || !b.is_matrix()) {
    return Status::InvalidArgument("matmul requires matrix inputs");
  }
  if (a.cols != b.rows) {
    return Status::InvalidArgument(
        "matmul inner dimension mismatch: " + std::to_string(a.cols) +
        " vs " + std::to_string(b.rows));
  }
  Node n;
  n.kind = OpKind::kMatMul;
  n.inputs = {lhs, rhs};
  n.rows = a.rows;
  n.cols = b.cols;
  n.nnz = EstimateMatMulNnz(a.rows, a.cols, b.cols, a.nnz, b.nnz);
  return Push(std::move(n));
}

Result<NodeId> Dag::AddUnaryAgg(AggFn fn, AggAxis axis, NodeId input) {
  FUSEME_RETURN_IF_ERROR(CheckId(input));
  const Node& in = nodes_[input];
  if (!in.is_matrix()) {
    return Status::InvalidArgument("aggregation requires a matrix input");
  }
  Node n;
  n.kind = OpKind::kUnaryAgg;
  n.agg_fn = fn;
  n.agg_axis = axis;
  n.inputs = {input};
  switch (axis) {
    case AggAxis::kAll:
      n.rows = 1;
      n.cols = 1;
      break;
    case AggAxis::kRow:
      n.rows = in.rows;
      n.cols = 1;
      break;
    case AggAxis::kCol:
      n.rows = 1;
      n.cols = in.cols;
      break;
  }
  n.nnz = n.rows * n.cols;  // aggregates are effectively dense
  return Push(std::move(n));
}

Result<NodeId> Dag::AddTranspose(NodeId input) {
  FUSEME_RETURN_IF_ERROR(CheckId(input));
  const Node& in = nodes_[input];
  if (!in.is_matrix()) {
    return Status::InvalidArgument("transpose requires a matrix input");
  }
  Node n;
  n.kind = OpKind::kTranspose;
  n.inputs = {input};
  n.rows = in.cols;
  n.cols = in.rows;
  n.nnz = in.nnz;
  return Push(std::move(n));
}

void Dag::MarkOutput(NodeId id) {
  FUSEME_CHECK(id >= 0 && id < num_nodes());
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) {
    outputs_.push_back(id);
  }
}

std::vector<NodeId> Dag::Consumers(NodeId id) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (std::find(n.inputs.begin(), n.inputs.end(), id) != n.inputs.end()) {
      out.push_back(n.id);
    }
  }
  return out;
}

int Dag::FanOut(NodeId id) const {
  int count = 0;
  for (const Node& n : nodes_) {
    // Count each consuming edge (a node may consume `id` twice, e.g. X*X).
    count += static_cast<int>(
        std::count(n.inputs.begin(), n.inputs.end(), id));
  }
  if (std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end()) {
    ++count;
  }
  return count;
}

std::vector<NodeId> Dag::TopologicalOrder() const {
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    order[i] = static_cast<NodeId>(i);
  }
  return order;
}

std::vector<NodeId> Dag::MatMulNodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.kind == OpKind::kMatMul) out.push_back(n.id);
  }
  return out;
}

}  // namespace fuseme
