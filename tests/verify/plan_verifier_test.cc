// PlanVerifier rule coverage: every rule has (a) a clean case where it
// stays silent and (b) a corrupted artifact — built through the test-only
// mutation hooks — that triggers exactly that rule.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "verify/plan_verifier.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

int CountRule(const std::vector<VerifierDiagnostic>& diags,
              std::string_view rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const VerifierDiagnostic& d) { return d.rule == rule; }));
}

/// Asserts `diags` contains exactly one diagnostic overall and that it
/// fires `rule`.
void ExpectExactly(const std::vector<VerifierDiagnostic>& diags,
                   std::string_view rule) {
  EXPECT_EQ(diags.size(), 1u) << FormatDiagnostics(diags);
  EXPECT_EQ(CountRule(diags, rule), 1) << FormatDiagnostics(diags);
}

// --- DAG rules ------------------------------------------------------------

struct SmallDag {
  Dag dag;
  NodeId X, Y, mm, u;
};

SmallDag MakeSmallDag() {
  SmallDag d;
  d.X = *d.dag.AddInput("X", 40, 60);
  d.Y = *d.dag.AddInput("Y", 60, 30);
  d.mm = *d.dag.AddMatMul(d.X, d.Y);
  d.u = *d.dag.AddUnary(UnaryFn::kSquare, d.mm);
  d.dag.MarkOutput(d.u);
  return d;
}

TEST(VerifyDagTest, CleanDagHasNoDiagnostics) {
  SmallDag d = MakeSmallDag();
  EXPECT_TRUE(PlanVerifier().VerifyDag(d.dag).empty());
}

TEST(VerifyDagTest, InputIdRule) {
  SmallDag d = MakeSmallDag();
  // A node consuming itself violates topological wiring.
  d.dag.mutable_node_for_test(d.u)->inputs = {d.u};
  ExpectExactly(PlanVerifier().VerifyDag(d.dag), rules::kDagInputId);
}

TEST(VerifyDagTest, ArityRule) {
  SmallDag d = MakeSmallDag();
  d.dag.mutable_node_for_test(d.u)->inputs = {d.mm, d.mm};
  ExpectExactly(PlanVerifier().VerifyDag(d.dag), rules::kDagArity);
}

TEST(VerifyDagTest, OperandKindRule) {
  Dag dag;
  const NodeId x = *dag.AddInput("X", 40, 60);
  const NodeId y = *dag.AddInput("Y", 60, 30);
  const NodeId s = *dag.AddScalar(2.0);  // earlier than mm: wiring stays topological
  const NodeId mm = *dag.AddMatMul(x, y);
  dag.MarkOutput(mm);
  dag.mutable_node_for_test(mm)->inputs = {x, s};
  ExpectExactly(PlanVerifier().VerifyDag(dag), rules::kDagOperandKind);
}

TEST(VerifyDagTest, ShapeRule) {
  SmallDag d = MakeSmallDag();
  d.dag.mutable_node_for_test(d.u)->rows = 99;
  ExpectExactly(PlanVerifier().VerifyDag(d.dag), rules::kDagShape);
}

TEST(VerifyDagTest, ShapeRuleCatchesIncompatibleOperands) {
  SmallDag d = MakeSmallDag();
  // Rewire the matmul to inner-incompatible operands (X: 40x60, X: 40x60).
  d.dag.mutable_node_for_test(d.mm)->inputs = {d.X, d.X};
  const auto diags = PlanVerifier().VerifyDag(d.dag);
  // The matmul re-derivation fails, and downstream nnz estimates shift;
  // the shape rule must be among the findings on the matmul node.
  EXPECT_GE(CountRule(diags, rules::kDagShape), 1) << FormatDiagnostics(diags);
}

TEST(VerifyDagTest, NnzBoundsRule) {
  SmallDag d = MakeSmallDag();
  d.dag.mutable_node_for_test(d.u)->nnz = 40 * 30 + 5;
  ExpectExactly(PlanVerifier().VerifyDag(d.dag), rules::kDagNnz);
}

TEST(VerifyDagTest, SparsityRule) {
  SmallDag d = MakeSmallDag();
  // In-bounds but inconsistent with the re-derived estimate.
  d.dag.mutable_node_for_test(d.u)->nnz = 7;
  ExpectExactly(PlanVerifier().VerifyDag(d.dag), rules::kDagSparsity);
}

// --- Plan rules -----------------------------------------------------------

TEST(VerifyPlanTest, CleanPlanHasNoDiagnostics) {
  SmallDag d = MakeSmallDag();
  PartialPlan plan(&d.dag, {d.mm, d.u}, d.u);
  EXPECT_TRUE(PlanVerifier().VerifyPlan(d.dag, plan).empty());
}

TEST(VerifyPlanTest, RootRule) {
  SmallDag d = MakeSmallDag();
  PartialPlan plan =
      PartialPlan::UncheckedForTest(&d.dag, {d.mm}, /*root=*/d.u);
  ExpectExactly(PlanVerifier().VerifyPlan(d.dag, plan), rules::kPlanRoot);
}

TEST(VerifyPlanTest, MemberIdRule) {
  SmallDag d = MakeSmallDag();
  PartialPlan plan = PartialPlan::UncheckedForTest(&d.dag, {d.u, 999}, d.u);
  ExpectExactly(PlanVerifier().VerifyPlan(d.dag, plan),
                rules::kPlanMemberId);
}

TEST(VerifyPlanTest, MemberKindRule) {
  SmallDag d = MakeSmallDag();
  // The leaf X fused into the region.
  PartialPlan plan =
      PartialPlan::UncheckedForTest(&d.dag, {d.X, d.mm, d.u}, d.u);
  ExpectExactly(PlanVerifier().VerifyPlan(d.dag, plan),
                rules::kPlanMemberKind);
}

TEST(VerifyPlanTest, ConnectedRule) {
  Dag dag;
  const NodeId x = *dag.AddInput("X", 8, 8);
  const NodeId y = *dag.AddInput("Y", 8, 8);
  const NodeId u1 = *dag.AddUnary(UnaryFn::kSquare, x);
  const NodeId u2 = *dag.AddUnary(UnaryFn::kSquare, y);
  dag.MarkOutput(u1);
  dag.MarkOutput(u2);
  PartialPlan plan = PartialPlan::UncheckedForTest(&dag, {u1, u2}, u2);
  ExpectExactly(PlanVerifier().VerifyPlan(dag, plan),
                rules::kPlanConnected);
}

TEST(VerifyPlanTest, InternalTerminationRule) {
  Dag dag;
  const NodeId x = *dag.AddInput("X", 8, 8);
  const NodeId u1 = *dag.AddUnary(UnaryFn::kSquare, x);
  const NodeId agg = *dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, u1);
  const NodeId u2 = *dag.AddUnary(UnaryFn::kSquare, agg);
  dag.MarkOutput(u2);
  // The shuffle aggregation fused below the root.
  PartialPlan plan(&dag, {u1, agg, u2}, u2);
  ExpectExactly(PlanVerifier().VerifyPlan(dag, plan),
                rules::kPlanInternalTermination);
}

TEST(VerifyPlanTest, NoMatMulRule) {
  Dag dag;
  const NodeId x = *dag.AddInput("X", 8, 8);
  const NodeId u1 = *dag.AddUnary(UnaryFn::kSquare, x);
  dag.MarkOutput(u1);
  PartialPlan plan(&dag, {u1}, u1);
  EXPECT_TRUE(PlanVerifier().VerifyPlan(dag, plan).empty());
  ExpectExactly(
      PlanVerifier().VerifyPlan(dag, plan, /*require_matmul=*/true),
      rules::kPlanNoMatMul);
}

TEST(VerifyPlanTest, SubspaceUniqueRule) {
  Dag dag;
  const NodeId s = *dag.AddInput("S", 16, 16);
  const NodeId shared = *dag.AddUnary(UnaryFn::kAbs, s);
  const NodeId l = *dag.AddUnary(UnaryFn::kSquare, shared);
  const NodeId r = *dag.AddUnary(UnaryFn::kRelu, shared);
  const NodeId mm = *dag.AddMatMul(l, r);
  dag.MarkOutput(mm);
  // `shared` feeds both matmul operands: it cannot live in one subspace.
  PartialPlan plan =
      PartialPlan::UncheckedForTest(&dag, {shared, l, r, mm}, mm);
  const auto diags = PlanVerifier().VerifyPlan(dag, plan);
  EXPECT_EQ(CountRule(diags, rules::kPlanSubspaceUnique), 1)
      << FormatDiagnostics(diags);
  // The shared node is also a multi-consumer termination operator; that
  // companion finding is expected and correct.
  EXPECT_EQ(CountRule(diags, rules::kPlanInternalTermination), 1)
      << FormatDiagnostics(diags);
}

TEST(VerifyPlanTest, SubspaceAxesRule) {
  SmallDag d = MakeSmallDag();
  PartialPlan plan(&d.dag, {d.mm}, d.mm);
  EXPECT_TRUE(PlanVerifier().VerifyPlan(d.dag, plan).empty());
  // Corrupt the matmul's i extent: VerifyPlan (which does not re-run the
  // DAG pass) must still see the i×j×k inconsistency.
  d.dag.mutable_node_for_test(d.mm)->rows = 99;
  ExpectExactly(PlanVerifier().VerifyPlan(d.dag, plan),
                rules::kPlanSubspaceAxes);
}

TEST(VerifyPlanTest, SubspaceAxesRuleKAxis) {
  SmallDag d = MakeSmallDag();
  PartialPlan plan(&d.dag, {d.mm}, d.mm);
  d.dag.mutable_node_for_test(d.Y)->rows = 61;  // k disagrees with lhs
  ExpectExactly(PlanVerifier().VerifyPlan(d.dag, plan),
                rules::kPlanSubspaceAxes);
}

// --- Plan-set rules -------------------------------------------------------

TEST(VerifyPlanSetTest, CoverageRule) {
  // u2 is an operator no plan covers; the output (u1) IS a root, so only
  // the coverage rule can fire — and only when coverage is required.
  Dag dag;
  const NodeId x = *dag.AddInput("X", 8, 8);
  const NodeId u1 = *dag.AddUnary(UnaryFn::kSquare, x);
  const NodeId u2 = *dag.AddUnary(UnaryFn::kAbs, u1);
  (void)u2;
  dag.MarkOutput(u1);
  FusionPlanSet partial;
  partial.plans.emplace_back(&dag, std::vector<NodeId>{u1}, u1);
  EXPECT_TRUE(PlanVerifier()
                  .VerifyPlanSet(dag, partial, /*require_coverage=*/false)
                  .empty());
  ExpectExactly(
      PlanVerifier().VerifyPlanSet(dag, partial, /*require_coverage=*/true),
      rules::kPlanSetCoverage);
}

TEST(VerifyPlanSetTest, OverlapRule) {
  SmallDag d = MakeSmallDag();
  FusionPlanSet set;
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.mm, d.u}, d.u);
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.mm}, d.mm);
  ExpectExactly(PlanVerifier().VerifyPlanSet(d.dag, set),
                rules::kPlanSetOverlap);
}

TEST(VerifyPlanSetTest, OutputRule) {
  SmallDag d = MakeSmallDag();
  // The output u is fused as an internal member of a larger region in a
  // corrupted set whose root is the matmul: u never materializes.
  FusionPlanSet set;
  set.plans.push_back(
      PartialPlan::UncheckedForTest(&d.dag, {d.mm, d.u}, d.mm));
  const auto diags = PlanVerifier().VerifyPlanSet(d.dag, set);
  ExpectExactly(diags, rules::kPlanSetOutput);
}

// --- Stage-graph rules ----------------------------------------------------

struct ChainDag {
  Dag dag;
  NodeId x, u1, u2;
};

ChainDag MakeChainDag() {
  ChainDag d;
  d.x = *d.dag.AddInput("X", 8, 8);
  d.u1 = *d.dag.AddUnary(UnaryFn::kSquare, d.x);
  d.u2 = *d.dag.AddUnary(UnaryFn::kAbs, d.u1);
  d.dag.MarkOutput(d.u2);
  return d;
}

TEST(VerifyStageGraphTest, CleanGraphHasNoDiagnostics) {
  ChainDag d = MakeChainDag();
  FusionPlanSet set;
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u1}, d.u1);
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u2}, d.u2);
  EXPECT_TRUE(PlanVerifier().VerifyStageGraph(d.dag, set).empty());
}

TEST(VerifyStageGraphTest, OrderRule) {
  ChainDag d = MakeChainDag();
  FusionPlanSet set;
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u2}, d.u2);
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u1}, d.u1);
  ExpectExactly(PlanVerifier().VerifyStageGraph(d.dag, set),
                rules::kStageOrder);
}

TEST(VerifyStageGraphTest, MissingInputRule) {
  ChainDag d = MakeChainDag();
  FusionPlanSet set;
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u2}, d.u2);
  ExpectExactly(PlanVerifier().VerifyStageGraph(d.dag, set),
                rules::kStageMissingInput);
}

TEST(VerifyStageGraphTest, DuplicateRootRule) {
  ChainDag d = MakeChainDag();
  FusionPlanSet set;
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u1}, d.u1);
  set.plans.emplace_back(&d.dag, std::vector<NodeId>{d.u1}, d.u1);
  const auto diags = PlanVerifier().VerifyStageGraph(d.dag, set);
  ExpectExactly(diags, rules::kStageDuplicateRoot);
}

// --- Cuboid rules ---------------------------------------------------------

struct CuboidFixture {
  Dag dag;
  ClusterConfig config;
  NodeId mm = kInvalidNode;

  CuboidFixture() {
    config.block_size = 10;
    const NodeId a = *dag.AddInput("A", 40, 60);
    const NodeId b = *dag.AddInput("B", 60, 30);
    mm = *dag.AddMatMul(a, b);  // grid 4x3 with K=6
    dag.MarkOutput(mm);
  }
};

TEST(VerifyCuboidTest, CleanCuboidHasNoDiagnostics) {
  CuboidFixture f;
  CostModel model(f.config);
  PartialPlan plan(&f.dag, {f.mm}, f.mm);
  EXPECT_TRUE(
      PlanVerifier(&model).VerifyCuboid(plan, Cuboid{4, 3, 2}).empty());
}

TEST(VerifyCuboidTest, BoundsRule) {
  CuboidFixture f;
  CostModel model(f.config);
  PartialPlan plan(&f.dag, {f.mm}, f.mm);
  ExpectExactly(PlanVerifier(&model).VerifyCuboid(plan, Cuboid{5, 3, 1}),
                rules::kCuboidBounds);
  ExpectExactly(PlanVerifier(&model).VerifyCuboid(plan, Cuboid{0, 1, 1}),
                rules::kCuboidBounds);
}

TEST(VerifyCuboidTest, KSplitRule) {
  CuboidFixture f;
  // A transpose in the O-space reshapes the 40x30 matmul output, so the
  // common dimension cannot be split.
  const NodeId t = *f.dag.AddTranspose(f.mm);
  f.dag.MarkOutput(t);
  CostModel model(f.config);
  PartialPlan plan(&f.dag, {f.mm, t}, t);
  EXPECT_TRUE(
      PlanVerifier(&model).VerifyCuboid(plan, Cuboid{4, 3, 1}).empty());
  ExpectExactly(PlanVerifier(&model).VerifyCuboid(plan, Cuboid{4, 3, 2}),
                rules::kCuboidKSplit);
}

TEST(VerifyCuboidTest, MemoryRule) {
  CuboidFixture f;
  f.config.task_memory_budget = 1;  // nothing fits
  CostModel model(f.config);
  PartialPlan plan(&f.dag, {f.mm}, f.mm);
  ExpectExactly(PlanVerifier(&model).VerifyCuboid(plan, Cuboid{1, 1, 1}),
                rules::kCuboidMemory);
}

// --- Engine integration ---------------------------------------------------

TEST(EngineVerifyTest, CorruptedDagFailsTheRunWithDiagnostics) {
  GnmfQuery q = BuildGnmf(4000, 1800, 200, /*x_nnz=*/400000);
  EngineOptions options;
  options.analytic = true;
  Engine engine(options);

  FusionPlanSet plans = engine.MakePlans(q.dag);
  ASSERT_TRUE(plans.diagnostics.empty())
      << FormatDiagnostics(plans.diagnostics);

  // Corrupt the inferred shape of the U-side main matmul after planning.
  q.dag.mutable_node_for_test(q.a1)->rows = 12345;
  auto run = engine.RunWithPlans(q.dag, plans, {});
  EXPECT_EQ(run.report.status.code(), StatusCode::kInternal)
      << run.report.status.ToString();
  EXPECT_FALSE(run.report.verifier_diagnostics.empty());
  EXPECT_GE(CountRule(run.report.verifier_diagnostics, rules::kDagShape), 1)
      << FormatDiagnostics(run.report.verifier_diagnostics);
  EXPECT_TRUE(run.outputs.empty());
}

TEST(EngineVerifyTest, VerifyOffSkipsTheGate) {
  // Verification disabled: a clean run executes with no diagnostics and
  // no verifier work at all.
  GnmfQuery q = BuildGnmf(4000, 1800, 200, /*x_nnz=*/400000);
  EngineOptions options;
  options.analytic = true;
  options.verify = VerifyLevel::kOff;
  Engine engine(options);
  FusionPlanSet plans = engine.MakePlans(q.dag);
  EXPECT_TRUE(plans.diagnostics.empty());
  auto run = engine.RunWithPlans(q.dag, plans, {});
  EXPECT_TRUE(run.report.ok()) << run.report.status.ToString();
  EXPECT_TRUE(run.report.verifier_diagnostics.empty());
}

TEST(EngineVerifyTest, ParanoidLevelPassesOnValidQueries) {
  GnmfQuery q = BuildGnmf(4000, 1800, 200, /*x_nnz=*/400000);
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe, SystemMode::kTensorFlow}) {
    EngineOptions options;
    options.system = mode;
    options.analytic = true;
    options.verify = VerifyLevel::kParanoid;
    Engine engine(options);
    auto run = engine.Run(q.dag, {});
    EXPECT_TRUE(run.report.ok())
        << SystemModeName(mode) << ": " << run.report.status.ToString();
    EXPECT_TRUE(run.report.verifier_diagnostics.empty())
        << FormatDiagnostics(run.report.verifier_diagnostics);
  }
}

TEST(EngineVerifyTest, CfgCandidatesAreVerifiedInMakePlans) {
  GnmfQuery q = BuildGnmf(4000, 1800, 200, /*x_nnz=*/400000);
  EngineOptions options;
  options.analytic = true;
  Engine engine(options);
  FusionPlanSet plans = engine.MakePlans(q.dag);
  EXPECT_TRUE(plans.diagnostics.empty())
      << FormatDiagnostics(plans.diagnostics);
  EXPECT_FALSE(plans.plans.empty());
}

}  // namespace
}  // namespace fuseme
