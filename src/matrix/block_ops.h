// Block-level local kernels: the "local operation step" primitives.
//
// Every kernel works on real blocks (zero/dense/sparse) *and* meta blocks:
// with a meta input, the output is a meta block whose nnz comes from the
// sparsity estimators and whose cost still lands in `flops`.  This lets the
// physical operators (BFO/RFO/CFO) execute unchanged in real mode and in
// the analytic simulator.
//
// All kernels accept an optional `flops` accumulator; when non-null, the
// number of floating-point operations performed (or, for meta blocks,
// estimated) is added to it.

#ifndef FUSEME_MATRIX_BLOCK_OPS_H_
#define FUSEME_MATRIX_BLOCK_OPS_H_

#include <cstdint>

#include "common/result.h"
#include "matrix/block.h"
#include "matrix/scalar_ops.h"

namespace fuseme {

/// Element-wise binary op; shapes must match exactly.
Result<Block> EwiseBinary(BinaryFn fn, const Block& a, const Block& b,
                          std::int64_t* flops = nullptr);

/// Element-wise op against a scalar.  `scalar_left` selects fn(s, a_ij)
/// versus fn(a_ij, s).
Result<Block> EwiseScalar(BinaryFn fn, const Block& a, double scalar,
                          bool scalar_left, std::int64_t* flops = nullptr);

/// Element-wise unary op.
Result<Block> Unary(UnaryFn fn, const Block& a,
                    std::int64_t* flops = nullptr);

/// Matrix multiplication a(m×k) · b(k×n).
Result<Block> MatMul(const Block& a, const Block& b,
                     std::int64_t* flops = nullptr);

/// acc += a·b with a dense accumulator — used for k-axis aggregation of
/// partial products.  Shapes must match acc (CHECKed).
Status MatMulAcc(DenseMatrix* acc, const Block& a, const Block& b,
                 std::int64_t* flops = nullptr);

/// Transpose (reorganization operator r(T)).
Result<Block> Transpose(const Block& a, std::int64_t* flops = nullptr);

/// Full aggregation to a 1×1 block (ua(sum) etc.).
Result<Block> FullAgg(AggFn fn, const Block& a,
                      std::int64_t* flops = nullptr);

/// Row aggregation to rows×1 (rowSums etc.).
Result<Block> RowAgg(AggFn fn, const Block& a,
                     std::int64_t* flops = nullptr);

/// Column aggregation to 1×cols (colSums etc.).
Result<Block> ColAgg(AggFn fn, const Block& a,
                     std::int64_t* flops = nullptr);

/// Combines two partial aggregates of identical shape (the "matrix
/// aggregation step" of a distributed operator): sum adds, min/max fold.
Result<Block> MergeAgg(AggFn fn, const Block& a, const Block& b,
                       std::int64_t* flops = nullptr);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_BLOCK_OPS_H_
