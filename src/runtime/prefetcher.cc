#include "runtime/prefetcher.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "telemetry/event_journal.h"
#include "telemetry/event_names.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

const char* PrefetchOutcomeName(PrefetchOutcome outcome) {
  switch (outcome) {
    case PrefetchOutcome::kReady:
      return "ready";
    case PrefetchOutcome::kWaited:
      return "waited";
    case PrefetchOutcome::kStolen:
      return "stolen";
    case PrefetchOutcome::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// One staged copy.  `state` transitions kQueued -> kRunning ->
/// kReady/kFailed, or kQueued -> kCancelled; the CAS out of kQueued is the
/// race arbiter between the pool task and a stealing consumer, so exactly
/// one of them runs the copy.
struct BlockPrefetcher::Entry {
  enum State { kQueued, kRunning, kReady, kFailed, kCancelled };

  std::atomic<int> state{kQueued};
  /// Written by the copying thread before state stores kReady/kFailed
  /// (under Shared::mu), read by the consumer after it observes that
  /// state (under the same mutex).
  Result<Block> value = Status::Internal("prefetch not completed");
};

struct BlockPrefetcher::Shared {
  Source source;
  Options opts;

  mutable Mutex mu;
  CondVar cv;
  std::map<PrefetchKey, std::shared_ptr<Entry>> entries GUARDED_BY(mu);
  /// Copies currently executing on pool threads; the destructor drains
  /// this to zero so no task outlives the source's inputs.
  int pool_copies_running GUARDED_BY(mu) = 0;
  PrefetchCounters counters GUARDED_BY(mu);

  // Resolved once; null with a null registry (pointer test per event).
  Counter* issued_metric = nullptr;
  Counter* ready_metric = nullptr;
  Counter* waited_metric = nullptr;
  Counter* stolen_metric = nullptr;
  Counter* cancelled_metric = nullptr;
  Gauge* in_flight_metric = nullptr;
  Histogram* wait_seconds_metric = nullptr;

  /// Unconsumed entries, under mu.
  std::int64_t InFlightLocked() const REQUIRES(mu) {
    return static_cast<std::int64_t>(entries.size());
  }
  void UpdateDepthGaugeLocked() REQUIRES(mu) {
    if (in_flight_metric != nullptr) {
      in_flight_metric->Set(static_cast<double>(InFlightLocked()));
    }
  }
};

BlockPrefetcher::BlockPrefetcher(Source source, Options options)
    : shared_(std::make_shared<Shared>()) {
  FUSEME_CHECK(source != nullptr);
  shared_->source = std::move(source);
  shared_->opts = std::move(options);
  MetricsRegistry* metrics = shared_->opts.metrics;
  if (metrics != nullptr) {
    shared_->issued_metric =
        metrics->GetCounter(metric_names::kPrefetchIssued);
    shared_->ready_metric = metrics->GetCounter(
        metric_names::kPrefetchConsumed, {{"outcome", "ready"}});
    shared_->waited_metric = metrics->GetCounter(
        metric_names::kPrefetchConsumed, {{"outcome", "waited"}});
    shared_->stolen_metric = metrics->GetCounter(
        metric_names::kPrefetchConsumed, {{"outcome", "stolen"}});
    shared_->cancelled_metric =
        metrics->GetCounter(metric_names::kPrefetchCancelled);
    shared_->in_flight_metric =
        metrics->GetGauge(metric_names::kPrefetchInFlight);
    shared_->wait_seconds_metric = metrics->GetHistogram(
        metric_names::kPrefetchWaitSeconds, DefaultTimeBoundaries());
  }
}

BlockPrefetcher::~BlockPrefetcher() { Drain(); }

void BlockPrefetcher::Drain() {
  CancelPending();
  MutexLock lock(shared_->mu);
  while (shared_->pool_copies_running != 0) shared_->cv.Wait(shared_->mu);
  // Copies that completed but were never consumed are dropped here; they
  // count as cancelled so the telemetry shows over-prefetching.
  const auto leftovers =
      static_cast<std::int64_t>(shared_->entries.size());
  if (leftovers > 0) {
    shared_->counters.cancelled += leftovers;
    if (shared_->cancelled_metric != nullptr) {
      shared_->cancelled_metric->Add(leftovers);
    }
  }
  shared_->entries.clear();
  shared_->UpdateDepthGaugeLocked();
}

void BlockPrefetcher::RunCopy(const std::shared_ptr<Shared>& shared,
                              const std::shared_ptr<Entry>& entry,
                              const PrefetchKey& key) {
  {
    MutexLock lock(shared->mu);
    int expected = Entry::kQueued;
    if (!entry->state.compare_exchange_strong(expected, Entry::kRunning)) {
      return;  // stolen by the consumer or cancelled
    }
    ++shared->pool_copies_running;
  }
  std::function<void(PrefetchOutcome)> done;
  if (shared->opts.copy_hook != nullptr) {
    done = shared->opts.copy_hook(key);
  }
  Result<Block> value = shared->source(key);
  {
    MutexLock lock(shared->mu);
    const bool ok = value.ok();
    entry->value = std::move(value);
    entry->state.store(ok ? Entry::kReady : Entry::kFailed);
    --shared->pool_copies_running;
  }
  shared->cv.NotifyAll();
  if (done != nullptr) done(PrefetchOutcome::kReady);
}

void BlockPrefetcher::Prefetch(const PrefetchKey& key) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(shared_->mu);
    auto [it, inserted] =
        shared_->entries.emplace(key, nullptr);
    if (!inserted) return;  // already staged (and not yet consumed)
    it->second = std::make_shared<Entry>();
    entry = it->second;
    ++shared_->counters.issued;
    if (shared_->issued_metric != nullptr) {
      shared_->issued_metric->Increment();
    }
    shared_->UpdateDepthGaugeLocked();
  }
  ThreadPool* pool = shared_->opts.pool;
  if (pool != nullptr) {
    // Fire-and-forget: the entry's state machine and pool_copies_running
    // carry completion; the future is not needed (packaged_task futures do
    // not block on destruction).
    pool->Submit([shared = shared_, entry, key] {
      RunCopy(shared, entry, key);
    });
  } else {
    RunCopy(shared_, entry, key);
  }
}

std::optional<Result<Block>> BlockPrefetcher::Take(const PrefetchKey& key) {
  MutexLock lock(shared_->mu);
  auto it = shared_->entries.find(key);
  if (it == shared_->entries.end()) return std::nullopt;
  std::shared_ptr<Entry> entry = it->second;

  bool outcome_counted = false;
  int state = entry->state.load();
  if (state == Entry::kQueued) {
    int expected = Entry::kQueued;
    if (entry->state.compare_exchange_strong(expected, Entry::kRunning)) {
      // Steal: the pool has not started this copy; run it inline instead
      // of waiting for a saturated queue.  The scope re-acquires below,
      // which the thread-safety analysis verifies.
      lock.Unlock();
      std::function<void(PrefetchOutcome)> done;
      if (shared_->opts.copy_hook != nullptr) {
        done = shared_->opts.copy_hook(key);
      }
      const auto begin = std::chrono::steady_clock::now();
      Result<Block> value = shared_->source(key);
      const double elapsed = SecondsSince(begin);
      if (done != nullptr) done(PrefetchOutcome::kStolen);
      lock.Lock();
      const bool ok = value.ok();
      entry->value = std::move(value);
      entry->state.store(ok ? Entry::kReady : Entry::kFailed);
      ++shared_->counters.stolen;
      shared_->counters.fetch_wait_seconds += elapsed;
      if (shared_->stolen_metric != nullptr) {
        shared_->stolen_metric->Increment();
        shared_->wait_seconds_metric->Observe(elapsed);
      }
      outcome_counted = true;
      state = entry->state.load();
    } else {
      state = entry->state.load();
    }
  }

  if (outcome_counted) {
    // The steal above already attributed this consumption.
  } else if (state == Entry::kRunning) {
    const auto begin = std::chrono::steady_clock::now();
    for (;;) {
      const int s = entry->state.load();
      if (s == Entry::kReady || s == Entry::kFailed ||
          s == Entry::kCancelled) {
        break;
      }
      shared_->cv.Wait(shared_->mu);
    }
    const double elapsed = SecondsSince(begin);
    ++shared_->counters.waited;
    shared_->counters.fetch_wait_seconds += elapsed;
    if (shared_->waited_metric != nullptr) {
      shared_->waited_metric->Increment();
      shared_->wait_seconds_metric->Observe(elapsed);
    }
    if (shared_->opts.journal != nullptr) {
      // Stalls are rare (the pipeline exists to avoid them) and the
      // journal's shard mutex is a leaf lock, so emitting under mu here
      // is safe and off the ordered-commit path.
      shared_->opts.journal->Emit(
          LogLevel::kWarning, event_names::kPrefetchStall,
          {{"node", std::to_string(key.node)},
           {"bi", std::to_string(key.bi)},
           {"bj", std::to_string(key.bj)},
           {"wait_seconds", std::to_string(elapsed)}});
    }
    state = entry->state.load();
  } else if (state == Entry::kReady || state == Entry::kFailed) {
    ++shared_->counters.ready;
    if (shared_->ready_metric != nullptr) shared_->ready_metric->Increment();
  }

  if (state == Entry::kCancelled) {
    shared_->entries.erase(key);
    shared_->UpdateDepthGaugeLocked();
    return std::nullopt;
  }
  Result<Block> out = std::move(entry->value);
  shared_->entries.erase(key);
  shared_->UpdateDepthGaugeLocked();
  return out;
}

void BlockPrefetcher::CancelPending() {
  MutexLock lock(shared_->mu);
  for (auto it = shared_->entries.begin(); it != shared_->entries.end();) {
    int expected = Entry::kQueued;
    if (it->second->state.compare_exchange_strong(expected,
                                                  Entry::kCancelled)) {
      ++shared_->counters.cancelled;
      if (shared_->cancelled_metric != nullptr) {
        shared_->cancelled_metric->Increment();
      }
      it = shared_->entries.erase(it);
    } else {
      ++it;
    }
  }
  shared_->UpdateDepthGaugeLocked();
}

std::int64_t BlockPrefetcher::InFlight() const {
  MutexLock lock(shared_->mu);
  return shared_->InFlightLocked();
}

PrefetchCounters BlockPrefetcher::counters() const {
  MutexLock lock(shared_->mu);
  return shared_->counters;
}

}  // namespace fuseme
