// Span tracing for the execution runtime (see DESIGN.md section 10).
//
// A Tracer collects timed spans — stages, operator work items, kernel
// phases — from any thread.  Timestamps are microseconds since the
// tracer's construction on a monotonic clock; thread ids are small stable
// integers assigned on first use, so traces are readable and diffable.
// The collected spans export to the Chrome trace-event JSON format, which
// chrome://tracing and https://ui.perfetto.dev open directly, and parse
// back for round-trip tests and tooling.
//
// Tracing is strictly optional: every integration point takes a nullable
// Tracer* and a null tracer makes ScopedSpan a no-op, so untraced runs pay
// nothing but a pointer test per span site.

#ifndef FUSEME_TELEMETRY_TRACER_H_
#define FUSEME_TELEMETRY_TRACER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/synchronization.h"

namespace fuseme {

/// One completed span: a named interval on a thread, with free-form
/// string arguments (rendered by the trace viewers' detail pane).
struct TraceSpan {
  std::string name;
  std::string category;
  std::int64_t begin_us = 0;  // microseconds since the tracer's epoch
  std::int64_t end_us = 0;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;

  std::int64_t duration_us() const { return end_us - begin_us; }
  bool operator==(const TraceSpan&) const = default;
};

/// Thread-safe span sink.  Record() may be called concurrently from pool
/// workers; snapshot accessors copy under the same mutex.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  /// Anchors timestamps at `epoch` instead of construction time, so
  /// several sinks (tracer, event journal, sampler) can share one clock
  /// origin and their outputs correlate by timestamp.
  explicit Tracer(std::chrono::steady_clock::time_point epoch)
      : epoch_(epoch) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The zero point of every *_us field in this tracer's spans.  The
  /// engine hands this epoch to its EventJournal/MetricsSampler so
  /// /flightz and /seriesz timestamps line up with TRACE_*.json.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

  /// Microseconds elapsed since this tracer was constructed.
  std::int64_t NowMicros() const;

  /// Stable small id for the calling thread (assigned on first use).
  int CurrentThreadId();

  /// Names a thread / the process for the trace viewers: exported as
  /// Chrome "M" (metadata) records, so Perfetto's track list shows
  /// "pool-worker-3" instead of a bare tid.  Last write wins.
  void SetThreadName(int tid, std::string name);
  void SetProcessName(std::string name);
  /// SetThreadName(CurrentThreadId(), name) — what work items call.
  void NameCurrentThread(std::string name);

  [[nodiscard]] std::map<int, std::string> thread_names() const;
  [[nodiscard]] std::string process_name() const;

  void Record(TraceSpan span);

  /// Snapshot of the recorded spans, sorted by (begin_us, tid, name) so
  /// output is deterministic regardless of completion interleaving.
  std::vector<TraceSpan> spans() const;
  std::size_t size() const;
  void Clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete
  /// events).  Loadable by chrome://tracing and Perfetto.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; false (with a stderr warning) when
  /// the file is not writable.
  bool WriteChromeJson(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  std::map<std::thread::id, int> thread_ids_ GUARDED_BY(mu_);
  std::map<int, std::string> thread_names_ GUARDED_BY(mu_);
  std::string process_name_ GUARDED_BY(mu_) = "fuseme";
};

/// RAII span: captures begin on construction, records on destruction.
/// A null tracer disables it entirely.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, std::string category);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddArg(std::string key, std::string value);

 private:
  Tracer* tracer_;
  TraceSpan span_;
};

/// Everything ParseChromeTraceFull recovers from an exported trace:
/// complete ("X") spans plus the thread/process-name metadata ("M")
/// records.
struct ParsedChromeTrace {
  std::vector<TraceSpan> spans;
  std::map<int, std::string> thread_names;
  std::string process_name;
};

/// Parses a trace produced by Tracer::ToChromeJson back into spans (the
/// inverse of the exporter; used by the round-trip tests and any tooling
/// that post-processes traces).  Unknown top-level keys are ignored;
/// events other than "X" (complete) are skipped.
Result<std::vector<TraceSpan>> ParseChromeTrace(const std::string& json);

/// Like ParseChromeTrace but also returns the "M" metadata records
/// (thread_name / process_name) the exporter emits.
Result<ParsedChromeTrace> ParseChromeTraceFull(const std::string& json);

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_TRACER_H_
