#include "fusion/partial_plan.h"

#include <gtest/gtest.h>

#include "workloads/queries.h"

namespace fuseme {
namespace {

using Space = PartialPlan::Space;

// U-side GNMF plan {a1, a2, a3, a4, a5}: the paper's F1 (Fig. 10(a)).
PartialPlan GnmfF1(const GnmfQuery& q) {
  return PartialPlan(&q.dag, {q.a1, q.a2, q.a3, q.a4, q.a5}, q.a5);
}

TEST(PartialPlanTest, MembershipAndRoot) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  EXPECT_EQ(plan.size(), 5);
  EXPECT_TRUE(plan.Contains(q.a1));
  EXPECT_TRUE(plan.Contains(q.a5));
  EXPECT_FALSE(plan.Contains(q.vT));
  EXPECT_FALSE(plan.Contains(q.b1));
  EXPECT_EQ(plan.root(), q.a5);
}

TEST(PartialPlanTest, MatMulsAndMain) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  auto mms = plan.MatMuls();
  EXPECT_EQ(mms.size(), 3u);  // a1, a2, a4
  // a1 = Vᵀ×X has voxels k·n·m, the largest since m,n >> k.
  EXPECT_EQ(plan.MainMatMul(), q.a1);
}

TEST(PartialPlanTest, ExternalInputs) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  auto ext = plan.ExternalInputs();
  // vT (shared transpose output), X, U, and V (a2 = Vᵀ×V reads V itself).
  EXPECT_EQ(ext.size(), 4u);
  EXPECT_NE(std::find(ext.begin(), ext.end(), q.vT), ext.end());
  EXPECT_NE(std::find(ext.begin(), ext.end(), q.X), ext.end());
  EXPECT_NE(std::find(ext.begin(), ext.end(), q.U), ext.end());
  EXPECT_NE(std::find(ext.begin(), ext.end(), q.V), ext.end());
}

TEST(PartialPlanTest, SpaceClassification) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  auto spaces = plan.ClassifySpaces(q.a1);
  EXPECT_EQ(spaces[q.a1], Space::kMM);
  // a1's inputs (vT, X) are external, so L and R spaces are empty and the
  // remaining members are all O-space (Fig. 11).
  EXPECT_EQ(spaces[q.a2], Space::kO);
  EXPECT_EQ(spaces[q.a3], Space::kO);
  EXPECT_EQ(spaces[q.a4], Space::kO);
  EXPECT_EQ(spaces[q.a5], Space::kO);
}

TEST(PartialPlanTest, SpaceClassificationWithSubtrees) {
  // PCA (X×S)ᵀ×X: main matmul mm2 with L-subtree {t, mm1}.
  PcaPattern q = BuildPcaPattern(500, 40);
  PartialPlan plan(&q.dag, {q.mm1, q.t, q.mm2}, q.mm2);
  EXPECT_EQ(plan.MainMatMul(), q.mm2);
  auto spaces = plan.ClassifySpaces(q.mm2);
  EXPECT_EQ(spaces[q.mm2], Space::kMM);
  EXPECT_EQ(spaces[q.t], Space::kL);
  EXPECT_EQ(spaces[q.mm1], Space::kL);
}

TEST(PartialPlanTest, ParentOf) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  EXPECT_EQ(plan.ParentOf(q.a1), q.a3);
  EXPECT_EQ(plan.ParentOf(q.a3), q.a5);
  EXPECT_EQ(plan.ParentOf(q.a2), q.a4);
  EXPECT_EQ(plan.ParentOf(q.a4), q.a5);
  EXPECT_EQ(plan.ParentOf(q.a5), kInvalidNode);
}

TEST(PartialPlanTest, DistanceMatchesPaperExample) {
  // Paper §4.2: "the distance between v1 and v4 is three" (a1..a4 here)
  // and a2 is the most distant matmul from a1.
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  EXPECT_EQ(plan.Distance(q.a1, q.a4), 3);  // a1-a3-a5-a4
  EXPECT_EQ(plan.Distance(q.a1, q.a2), 4);  // a1-a3-a5-a4-a2
  EXPECT_EQ(plan.Distance(q.a1, q.a1), 0);
  EXPECT_EQ(plan.Distance(q.a3, q.a5), 1);
}

TEST(PartialPlanTest, SplitAtSeparatesSubtree) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  auto [fm, fi] = plan.SplitAt(q.a2);
  // F_i is just {a2}; F_m keeps the rest with a2 as a new external input.
  EXPECT_EQ(fi.size(), 1);
  EXPECT_EQ(fi.root(), q.a2);
  EXPECT_EQ(fm.size(), 4);
  EXPECT_EQ(fm.root(), q.a5);
  EXPECT_FALSE(fm.Contains(q.a2));
  auto ext = fm.ExternalInputs();
  EXPECT_NE(std::find(ext.begin(), ext.end(), q.a2), ext.end());
}

TEST(PartialPlanTest, SplitAtCarriesDescendants) {
  GnmfQuery q = BuildGnmf(1000, 800, 20, 4000);
  PartialPlan plan = GnmfF1(q);
  // Splitting at a4 carries its descendant a2 along (paper §4.2: "if v_i
  // has its descendent operators in F, the operators are also split").
  auto [fm, fi] = plan.SplitAt(q.a4);
  EXPECT_EQ(fi.size(), 2);
  EXPECT_TRUE(fi.Contains(q.a2));
  EXPECT_TRUE(fi.Contains(q.a4));
  EXPECT_EQ(fm.size(), 3);
}

TEST(PartialPlanTest, NoMatMulPlan) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 10, 10, 20);
  NodeId u = *dag.AddInput("U", 10, 10);
  NodeId v = *dag.AddInput("V", 10, 10);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, u);
  NodeId div = *dag.AddBinary(BinaryFn::kDiv, mul, v);
  PartialPlan plan(&dag, {mul, div}, div);
  EXPECT_TRUE(plan.MatMuls().empty());
  EXPECT_EQ(plan.MainMatMul(), kInvalidNode);
}

TEST(PartialPlanTest, ToStringMentionsMembers) {
  GnmfQuery q = BuildGnmf(100, 80, 4, 40);
  PartialPlan plan = GnmfF1(q);
  std::string s = plan.ToString();
  EXPECT_NE(s.find("root=v"), std::string::npos);
  EXPECT_NE(s.find("{v"), std::string::npos);
}

}  // namespace
}  // namespace fuseme
