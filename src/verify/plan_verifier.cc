#include "verify/plan_verifier.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>

#include "matrix/sparsity.h"
#include "ops/fused_operator.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

namespace {

std::string Shape(std::int64_t rows, std::int64_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

void Emit(std::vector<VerifierDiagnostic>* diags, const char* rule,
          NodeId node, std::string message) {
  diags->push_back(VerifierDiagnostic{rule, node, std::move(message)});
}

int ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kScalar:
      return 0;
    case OpKind::kUnary:
    case OpKind::kUnaryAgg:
    case OpKind::kTranspose:
      return 1;
    case OpKind::kBinary:
    case OpKind::kMatMul:
      return 2;
  }
  return 0;
}

/// Checks node `id`'s input ids and arity; returns false (after emitting)
/// when the remaining per-node checks cannot run safely.
bool CheckWiring(const Dag& dag, NodeId id,
                 std::vector<VerifierDiagnostic>* diags) {
  const Node& n = dag.node(id);
  bool ok = true;
  for (NodeId in : n.inputs) {
    if (in < 0 || in >= id) {
      Emit(diags, rules::kDagInputId, id,
           "input v" + std::to_string(in) +
               " is not an earlier node (ids must be topological)");
      ok = false;
    }
  }
  const int arity = static_cast<int>(n.inputs.size());
  if (arity != ExpectedArity(n.kind)) {
    Emit(diags, rules::kDagArity, id,
         std::string(OpKindName(n.kind)) + " expects " +
             std::to_string(ExpectedArity(n.kind)) + " inputs, has " +
             std::to_string(arity));
    ok = false;
  }
  return ok;
}

/// Re-derives node `id`'s shape from its (already wiring-checked) inputs.
/// Returns false when the operands themselves are incompatible, in which
/// case a diagnostic was emitted and `rows`/`cols` are unset.
bool RederiveShape(const Dag& dag, NodeId id, std::int64_t* rows,
                   std::int64_t* cols,
                   std::vector<VerifierDiagnostic>* diags) {
  const Node& n = dag.node(id);
  switch (n.kind) {
    case OpKind::kInput:
      if (n.rows <= 0 || n.cols <= 0) {
        Emit(diags, rules::kDagShape, id,
             "input must have positive dimensions, has " +
                 Shape(n.rows, n.cols));
        return false;
      }
      *rows = n.rows;
      *cols = n.cols;
      return true;
    case OpKind::kScalar:
      *rows = 1;
      *cols = 1;
      return true;
    case OpKind::kUnary: {
      const Node& in = dag.node(n.inputs[0]);
      *rows = in.rows;
      *cols = in.cols;
      return true;
    }
    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      const bool a_scalar = a.kind == OpKind::kScalar;
      const bool b_scalar = b.kind == OpKind::kScalar;
      if (a_scalar && b_scalar) return false;  // kDagOperandKind's domain
      if (!a_scalar && !b_scalar &&
          (a.rows != b.rows || a.cols != b.cols)) {
        Emit(diags, rules::kDagShape, id,
             "element-wise operand shapes differ: " + Shape(a.rows, a.cols) +
                 " vs " + Shape(b.rows, b.cols));
        return false;
      }
      const Node& m = a_scalar ? b : a;
      *rows = m.rows;
      *cols = m.cols;
      return true;
    }
    case OpKind::kMatMul: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      if (a.cols != b.rows) {
        Emit(diags, rules::kDagShape, id,
             "matmul inner dimensions differ: " + Shape(a.rows, a.cols) +
                 " x " + Shape(b.rows, b.cols));
        return false;
      }
      *rows = a.rows;
      *cols = b.cols;
      return true;
    }
    case OpKind::kUnaryAgg: {
      const Node& in = dag.node(n.inputs[0]);
      switch (n.agg_axis) {
        case AggAxis::kAll:
          *rows = 1;
          *cols = 1;
          break;
        case AggAxis::kRow:
          *rows = in.rows;
          *cols = 1;
          break;
        case AggAxis::kCol:
          *rows = 1;
          *cols = in.cols;
          break;
      }
      return true;
    }
    case OpKind::kTranspose: {
      const Node& in = dag.node(n.inputs[0]);
      *rows = in.cols;
      *cols = in.rows;
      return true;
    }
  }
  return false;
}

/// Re-derives node `id`'s nnz estimate from its inputs with the same
/// estimators Dag::Add* used.  Returns -1 when no estimate applies.
std::int64_t RederiveNnz(const Dag& dag, NodeId id) {
  const Node& n = dag.node(id);
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kScalar:
      return -1;  // leaves carry caller-provided sparsity
    case OpKind::kUnary: {
      const Node& in = dag.node(n.inputs[0]);
      return EstimateUnaryNnz(n.unary_fn, in.rows, in.cols, in.nnz);
    }
    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      const bool a_scalar = a.kind == OpKind::kScalar;
      const bool b_scalar = b.kind == OpKind::kScalar;
      if (a_scalar || b_scalar) {
        const Node& m = a_scalar ? b : a;
        const Node& s = a_scalar ? a : b;
        return EstimateEwiseScalarNnz(n.binary_fn, m.rows, m.cols, m.nnz,
                                      s.scalar, /*scalar_left=*/a_scalar);
      }
      return EstimateEwiseBinaryNnz(n.binary_fn, a.rows, a.cols, a.nnz,
                                    b.nnz);
    }
    case OpKind::kMatMul: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      return EstimateMatMulNnz(a.rows, a.cols, b.cols, a.nnz, b.nnz);
    }
    case OpKind::kUnaryAgg:
      return n.rows * n.cols;
    case OpKind::kTranspose:
      return dag.node(n.inputs[0]).nnz;
  }
  return -1;
}

}  // namespace

std::vector<VerifierDiagnostic> PlanVerifier::VerifyDagImpl(
    const Dag& dag) const {
  std::vector<VerifierDiagnostic> diags;
  for (NodeId id : dag.TopologicalOrder()) {
    const Node& n = dag.node(id);
    if (!CheckWiring(dag, id, &diags)) continue;

    // Operand kinds: matrix operators reject scalar operands the same way
    // the Dag builders do.
    bool operands_ok = true;
    if (n.kind == OpKind::kUnary || n.kind == OpKind::kUnaryAgg ||
        n.kind == OpKind::kTranspose || n.kind == OpKind::kMatMul) {
      for (NodeId in : n.inputs) {
        if (!dag.node(in).is_matrix()) {
          Emit(&diags, rules::kDagOperandKind, id,
               std::string(OpKindName(n.kind)) +
                   " requires matrix operands, v" + std::to_string(in) +
                   " is a scalar");
          operands_ok = false;
        }
      }
    } else if (n.kind == OpKind::kBinary) {
      if (dag.node(n.inputs[0]).kind == OpKind::kScalar &&
          dag.node(n.inputs[1]).kind == OpKind::kScalar) {
        Emit(&diags, rules::kDagOperandKind, id,
             "binary operator on two scalars (should be folded)");
        operands_ok = false;
      }
    }
    if (!operands_ok) continue;

    std::int64_t rows = 0;
    std::int64_t cols = 0;
    if (!RederiveShape(dag, id, &rows, &cols, &diags)) continue;
    if (n.rows != rows || n.cols != cols) {
      Emit(&diags, rules::kDagShape, id,
           "inferred shape " + Shape(n.rows, n.cols) +
               " does not match re-derived " + Shape(rows, cols));
      continue;  // nnz bounds/estimates are relative to the true shape
    }

    if (n.is_matrix() && (n.nnz < 0 || n.nnz > n.rows * n.cols)) {
      Emit(&diags, rules::kDagNnz, id,
           "nnz " + std::to_string(n.nnz) + " outside [0, " +
               std::to_string(n.rows * n.cols) + "]");
      continue;
    }
    const std::int64_t nnz = RederiveNnz(dag, id);
    if (nnz >= 0 && n.nnz != nnz) {
      Emit(&diags, rules::kDagSparsity, id,
           "nnz estimate " + std::to_string(n.nnz) +
               " does not match re-derived " + std::to_string(nnz));
    }
  }
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyPlanImpl(
    const Dag& dag, const PartialPlan& plan, bool require_matmul) const {
  std::vector<VerifierDiagnostic> diags;
  const std::vector<NodeId>& members = plan.members();

  // Member ids must be in range before anything dereferences them.
  std::set<NodeId> valid;
  for (NodeId m : members) {
    if (m < 0 || m >= dag.num_nodes()) {
      Emit(&diags, rules::kPlanMemberId, m,
           "member id outside the DAG (num_nodes=" +
               std::to_string(dag.num_nodes()) + ")");
    } else {
      valid.insert(m);
    }
  }

  const NodeId root = plan.root();
  if (!valid.contains(root) || !plan.Contains(root)) {
    Emit(&diags, rules::kPlanRoot, root,
         "root is not a valid member of the plan");
    return diags;  // every remaining check keys off the root
  }

  for (NodeId m : valid) {
    const Node& n = dag.node(m);
    if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) {
      Emit(&diags, rules::kPlanMemberKind, m,
           "plan members must be operators, v" + std::to_string(m) +
               " is a leaf (" + n.Label() + ")");
    }
  }

  // Connectivity: every member must be reachable from the root through
  // member-to-member input edges (the plan is one fused region, not two).
  std::set<NodeId> reached;
  std::queue<NodeId> frontier;
  frontier.push(root);
  reached.insert(root);
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop();
    for (NodeId in : dag.node(id).inputs) {
      if (valid.contains(in) && reached.insert(in).second) {
        frontier.push(in);
      }
    }
  }
  for (NodeId m : valid) {
    if (!reached.contains(m)) {
      Emit(&diags, rules::kPlanConnected, m,
           "member is not reachable from root v" + std::to_string(root));
    }
  }

  // Termination operators (multi-consumer nodes, shuffle aggregations) end
  // fusion regions: they may only appear as the root (paper §4.1).
  for (NodeId m : valid) {
    if (m == root) continue;
    const Node& n = dag.node(m);
    if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
    if (IsTerminationOperator(dag, m)) {
      Emit(&diags, rules::kPlanInternalTermination, m,
           std::string(dag.FanOut(m) > 1 ? "multi-consumer node"
                                         : "shuffle aggregation") +
               " fused below the root (termination operators must end the "
               "region)");
    }
  }

  // Member matmuls with sound wiring (2 in-range matrix-node inputs).
  std::vector<NodeId> matmuls;
  for (NodeId m : valid) {
    const Node& n = dag.node(m);
    if (n.kind != OpKind::kMatMul) continue;
    if (n.inputs.size() == 2 && n.inputs[0] >= 0 && n.inputs[0] < m &&
        n.inputs[1] >= 0 && n.inputs[1] < m) {
      matmuls.push_back(m);
    }
  }
  if (require_matmul && matmuls.empty()) {
    Emit(&diags, rules::kPlanNoMatMul, root,
         "CFG candidate contains no matrix multiplication seed");
  }
  if (matmuls.empty()) return diags;

  // Main matmul: largest I·J·K voxel count, ties to the most downstream
  // (same rule as PartialPlan::MainMatMul, re-derived independently).
  NodeId main_mm = kInvalidNode;
  std::int64_t best_voxels = -1;
  for (NodeId mm : matmuls) {
    const Node& n = dag.node(mm);
    const std::int64_t voxels =
        n.rows * n.cols * dag.node(n.inputs[0]).cols;
    if (voxels >= best_voxels) {
      best_voxels = voxels;
      main_mm = mm;
    }
  }

  // Subspace uniqueness: flooding the member subtrees under the main
  // matmul's lhs and rhs must not claim the same member twice (a member
  // feeding both sides would be consolidated under two different
  // partitionings at once).
  auto flood = [&](NodeId start) {
    std::set<NodeId> space;
    if (!valid.contains(start)) return space;
    std::queue<NodeId> work;
    work.push(start);
    space.insert(start);
    while (!work.empty()) {
      const NodeId id = work.front();
      work.pop();
      for (NodeId in : dag.node(id).inputs) {
        if (valid.contains(in) && in != main_mm &&
            space.insert(in).second) {
          work.push(in);
        }
      }
    }
    return space;
  };
  const Node& mm_node = dag.node(main_mm);
  const std::set<NodeId> l_space = flood(mm_node.inputs[0]);
  const std::set<NodeId> r_space = flood(mm_node.inputs[1]);
  for (NodeId m : l_space) {
    if (r_space.contains(m)) {
      Emit(&diags, rules::kPlanSubspaceUnique, m,
           "member lies in both the L and R subspaces of main matmul v" +
               std::to_string(main_mm));
    }
  }

  // Axis consistency: every member matmul's operands must span a coherent
  // i×j×k space — lhs i×k against rhs k×j producing i×j.
  for (NodeId mm : matmuls) {
    const Node& n = dag.node(mm);
    const Node& lhs = dag.node(n.inputs[0]);
    const Node& rhs = dag.node(n.inputs[1]);
    if (lhs.cols != rhs.rows) {
      Emit(&diags, rules::kPlanSubspaceAxes, mm,
           "k axis disagrees: lhs " + Shape(lhs.rows, lhs.cols) +
               " vs rhs " + Shape(rhs.rows, rhs.cols));
    } else if (n.rows != lhs.rows || n.cols != rhs.cols) {
      Emit(&diags, rules::kPlanSubspaceAxes, mm,
           "output " + Shape(n.rows, n.cols) +
               " does not span the i×j plane of " +
               Shape(lhs.rows, lhs.cols) + " x " +
               Shape(rhs.rows, rhs.cols));
    }
  }
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyPlanSetImpl(
    const Dag& dag, const FusionPlanSet& set, bool require_coverage) const {
  std::vector<VerifierDiagnostic> diags;

  std::map<NodeId, int> cover_count;
  std::set<NodeId> roots;
  for (const PartialPlan& plan : set.plans) {
    for (NodeId m : plan.members()) ++cover_count[m];
    roots.insert(plan.root());
  }
  for (const auto& [id, count] : cover_count) {
    if (count > 1) {
      Emit(&diags, rules::kPlanSetOverlap, id,
           "node belongs to " + std::to_string(count) +
               " plans (plans must partition the operators)");
    }
  }

  if (require_coverage) {
    for (NodeId id : dag.TopologicalOrder()) {
      const Node& n = dag.node(id);
      if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
      if (!cover_count.contains(id)) {
        Emit(&diags, rules::kPlanSetCoverage, id,
             "operator node " + n.Label() + " is not covered by any plan");
      }
    }
  }

  for (NodeId out : dag.outputs()) {
    if (out < 0 || out >= dag.num_nodes()) continue;
    const Node& n = dag.node(out);
    if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
    if (!roots.contains(out)) {
      Emit(&diags, rules::kPlanSetOutput, out,
           "query output is not the root of any plan (it would never "
           "materialize)");
    }
  }
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyStageGraphImpl(
    const Dag& dag, const FusionPlanSet& set) const {
  std::vector<VerifierDiagnostic> diags;

  // Commit keys: the engine materializes each stage's output under its
  // plan root id, so duplicate roots would silently drop a result.
  std::set<NodeId> all_roots;
  for (const PartialPlan& plan : set.plans) {
    if (!all_roots.insert(plan.root()).second) {
      Emit(&diags, rules::kStageDuplicateRoot, plan.root(),
           "two stages commit their output under the same root id");
    }
  }

  std::set<NodeId> available;  // roots of stages already executed
  for (const PartialPlan& plan : set.plans) {
    // Plans with out-of-range members are reported by VerifyPlan and
    // cannot be walked safely here.
    const bool walkable = std::all_of(
        plan.members().begin(), plan.members().end(),
        [&](NodeId m) { return m >= 0 && m < dag.num_nodes(); });
    if (!walkable) continue;
    for (NodeId ext : plan.ExternalInputs()) {
      if (ext < 0 || ext >= dag.num_nodes()) continue;
      const Node& n = dag.node(ext);
      if (n.kind == OpKind::kInput || n.kind == OpKind::kScalar) continue;
      if (available.contains(ext)) continue;
      if (all_roots.contains(ext)) {
        Emit(&diags, rules::kStageOrder, ext,
             "stage " + plan.ToString() +
                 " consumes v" + std::to_string(ext) +
                 " before the stage producing it has run");
      } else {
        Emit(&diags, rules::kStageMissingInput, ext,
             "stage " + plan.ToString() + " consumes operator v" +
                 std::to_string(ext) +
                 " that no stage produces and no leaf provides");
      }
    }
    available.insert(plan.root());
  }
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyCuboidImpl(
    const PartialPlan& plan, const Cuboid& c) const {
  std::vector<VerifierDiagnostic> diags;
  const NodeId root = plan.root();

  if (model_ != nullptr) {
    const GridDims g = model_->Grid(plan);
    if (c.P < 1 || c.P > g.I || c.Q < 1 || c.Q > g.J || c.R < 1 ||
        c.R > g.K || c.W < 1 || c.W > g.K) {
      Emit(&diags, rules::kCuboidBounds, root,
           c.ToString() + " outside the plan's " + std::to_string(g.I) +
               "x" + std::to_string(g.J) + "x" + std::to_string(g.K) +
               " block grid");
      return diags;  // MemEst on an out-of-grid cuboid is meaningless
    }
  } else if (c.P < 1 || c.Q < 1 || c.R < 1 || c.W < 1) {
    Emit(&diags, rules::kCuboidBounds, root,
         c.ToString() + " has a non-positive axis");
    return diags;
  }

  if (c.R > 1 && !CuboidSupportsKSplit(plan)) {
    Emit(&diags, rules::kCuboidKSplit, root,
         c.ToString() + " splits the common dimension but the plan's "
         "O-space reshapes the matmul output (partials cannot merge)");
  }

  if (model_ != nullptr) {
    const double mem = model_->MemEst(c, plan);
    const double budget =
        static_cast<double>(model_->config().task_memory_budget);
    if (mem > budget) {
      Emit(&diags, rules::kCuboidMemory, root,
           c.ToString() + " needs " + std::to_string(mem) +
               " bytes per task, over the " + std::to_string(budget) +
               "-byte budget the optimizer selected under");
    }
  }
  return diags;
}

void PlanVerifier::set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

// Each public entry point wraps its Impl so every check lands in
// fuseme_verifier_checks_total{artifact=...} and every diagnostic in
// fuseme_verifier_diagnostics_total{rule=...}.
void PlanVerifier::Record(
    const char* artifact,
    const std::vector<VerifierDiagnostic>& diags) const {
  if (metrics_ == nullptr) return;
  metrics_->GetCounter(metric_names::kVerifierChecks, {{"artifact", artifact}})
      ->Increment();
  for (const VerifierDiagnostic& diag : diags) {
    metrics_->GetCounter(metric_names::kVerifierDiagnostics,
                         {{"rule", diag.rule}})
        ->Increment();
  }
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyDag(const Dag& dag) const {
  std::vector<VerifierDiagnostic> diags = VerifyDagImpl(dag);
  Record("dag", diags);
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyPlan(
    const Dag& dag, const PartialPlan& plan, bool require_matmul) const {
  std::vector<VerifierDiagnostic> diags =
      VerifyPlanImpl(dag, plan, require_matmul);
  Record("plan", diags);
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyPlanSet(
    const Dag& dag, const FusionPlanSet& set, bool require_coverage) const {
  std::vector<VerifierDiagnostic> diags =
      VerifyPlanSetImpl(dag, set, require_coverage);
  Record("plan_set", diags);
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyStageGraph(
    const Dag& dag, const FusionPlanSet& set) const {
  std::vector<VerifierDiagnostic> diags = VerifyStageGraphImpl(dag, set);
  Record("stage_graph", diags);
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::VerifyCuboid(
    const PartialPlan& plan, const Cuboid& c) const {
  std::vector<VerifierDiagnostic> diags = VerifyCuboidImpl(plan, c);
  Record("cuboid", diags);
  return diags;
}

std::vector<VerifierDiagnostic> PlanVerifier::Verify(
    const Dag& dag, const FusionPlanSet& set, VerifyLevel level) const {
  std::vector<VerifierDiagnostic> diags;
  if (level == VerifyLevel::kOff) return diags;
  diags = VerifyDag(dag);
  for (const PartialPlan& plan : set.plans) {
    std::vector<VerifierDiagnostic> plan_diags = VerifyPlan(dag, plan);
    diags.insert(diags.end(), plan_diags.begin(), plan_diags.end());
  }
  std::vector<VerifierDiagnostic> more = VerifyPlanSet(dag, set);
  diags.insert(diags.end(), more.begin(), more.end());
  more = VerifyStageGraph(dag, set);
  diags.insert(diags.end(), more.begin(), more.end());
  return diags;
}

}  // namespace fuseme
