// fuseme_lint — repo-invariant linter (DESIGN.md section 16).
//
// A standalone, dependency-free static checker for invariants that
// clang-tidy cannot express because they span files or name repo-local
// conventions.  It does line/token-based scanning (a mini-lexer strips
// comments and string literals; no libclang), in the same spirit as the
// ValidatePrometheusText checker in the telemetry layer.
//
// Rules (stable ids, referenced from DESIGN.md section 16):
//
//   lint-raw-sync       No raw std::mutex / std::lock_guard /
//                       std::unique_lock / std::condition_variable (and
//                       friends) outside src/common/synchronization.h.
//                       Everything else must use the capability-annotated
//                       wrappers so Clang's -Wthread-safety sees it.
//   lint-metric-literal Every "fuseme_..." string literal in src/ is
//                       declared in src/telemetry/metric_names.h — no
//                       inline metric names bypassing the catalogue.
//   lint-metric-dead    Every catalogue entry in metric_names.h is
//                       referenced (by its kIdentifier) somewhere in src/
//                       outside the catalogue itself.
//   lint-event-literal  Every flight-recorder event id ("fuseme.x.y",
//                       two-plus dotted segments after the prefix) in
//                       src/ is declared in src/telemetry/event_names.h.
//   lint-event-dead     Every catalogue entry in event_names.h is
//                       referenced (by its kIdentifier) somewhere in src/
//                       outside the catalogue itself.
//   lint-solver-literal Every stage-solver id ("solver.x", one-plus
//                       dotted segments after the prefix) in src/ is
//                       declared in src/engine/solver_names.h — solver
//                       identity is a stable artifact/registry contract.
//   lint-rule-id-dup    Verifier rule-id string constants declared in
//                       src/verify/ are unique — ids are a stable public
//                       contract and must never be reused.
//   lint-design-ref     Every "DESIGN.md section N" (or "DESIGN.md §N")
//                       reference in the tree points at an existing
//                       "## N." heading in DESIGN.md.
//   lint-todo-tag       No TODO without an issue tag: TODO(#123).
//
// Usage:
//   fuseme_lint [--root DIR] [path...]
//
// Paths are files or directories, resolved relative to --root (default
// ".").  Directories are walked recursively for *.h / *.cc / *.cpp /
// *.hpp; directories named "fixtures" or "build" are skipped so the
// linter's own negative test fixtures do not fail a whole-tree scan.
// The metric catalogue, src/verify/ and DESIGN.md are located relative
// to --root, which lets the self-tests point --root at miniature fixture
// trees.  Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;   // as given/relative to root, for stable output
  int line = 0;       // 1-based
  std::string rule;   // stable rule id
  std::string message;
};

struct StringLiteral {
  int line = 0;  // 1-based line of the opening quote
  std::string value;
};

/// One scanned translation unit, split by the mini-lexer.
struct FileView {
  std::string display_path;       // relative to root
  std::string raw;                // the file as read
  std::string code;               // comments + literal bodies blanked
  std::vector<StringLiteral> strings;
};

/// Strips comments and string/char literals from C++ source.  Literal
/// and comment bodies are replaced with spaces (newlines preserved), so
/// byte offsets and line numbers in `code` match `raw`.  Handles //,
/// /* */, "...", '...', and R"delim(...)delim" raw strings; that is
/// enough for this repo's sources, which the lint only ever scans for
/// identifiers and include directives.
void Lex(const std::string& raw, std::string* code,
         std::vector<StringLiteral>* strings) {
  code->assign(raw.size(), ' ');
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\n') (*code)[i] = '\n';
  }
  enum State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = kCode;
  std::string raw_delim;          // for kRawString: the )delim" terminator
  StringLiteral current;
  int line = 1;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '\n') ++line;
    switch (state) {
      case kCode:
        if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
          state = kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
          state = kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < raw.size() && raw[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   raw[i - 1])) &&
                               raw[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t paren = raw.find('(', i + 2);
          if (paren == std::string::npos) { (*code)[i] = c; break; }
          raw_delim = ")" + raw.substr(i + 2, paren - (i + 2)) + "\"";
          current = StringLiteral{line, ""};
          state = kRawString;
          i = paren;  // skip past the opening paren
        } else if (c == '"') {
          current = StringLiteral{line, ""};
          state = kString;
        } else if (c == '\'') {
          state = kChar;
        } else {
          (*code)[i] = c;
        }
        break;
      case kLineComment:
        if (c == '\n') state = kCode;
        break;
      case kBlockComment:
        if (c == '*' && i + 1 < raw.size() && raw[i + 1] == '/') {
          state = kCode;
          ++i;
        }
        break;
      case kString:
        if (c == '\\' && i + 1 < raw.size()) {
          current.value += raw[i + 1];
          ++i;
        } else if (c == '"') {
          strings->push_back(current);
          state = kCode;
        } else {
          current.value += c;
        }
        break;
      case kChar:
        if (c == '\\' && i + 1 < raw.size()) {
          ++i;
        } else if (c == '\'') {
          state = kCode;
        }
        break;
      case kRawString:
        if (c == ')' && raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          strings->push_back(current);
          i += raw_delim.size() - 1;
          state = kCode;
        } else {
          current.value += c;
        }
        break;
    }
  }
  if (state == kString || state == kRawString) strings->push_back(current);
}

int LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string Relative(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

// --- rule: lint-raw-sync -------------------------------------------------

const char* const kRawSyncTokens[] = {
    "std::mutex",          "std::recursive_mutex",
    "std::timed_mutex",    "std::recursive_timed_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::shared_lock",
    "std::condition_variable", "std::condition_variable_any",
};

bool IsSynchronizationHeader(const std::string& display_path) {
  return display_path == "src/common/synchronization.h" ||
         (display_path.size() > 24 &&
          display_path.compare(display_path.size() - 24, 24,
                               "common/synchronization.h") == 0);
}

void CheckRawSync(const FileView& f, std::vector<Finding>* findings) {
  if (IsSynchronizationHeader(f.display_path)) return;
  for (const char* token : kRawSyncTokens) {
    const std::string needle = token;
    std::size_t pos = 0;
    while ((pos = f.code.find(needle, pos)) != std::string::npos) {
      // Reject identifier-continuation on the right (std::mutex_x).
      const std::size_t end = pos + needle.size();
      const char next = end < f.code.size() ? f.code[end] : ' ';
      if (!std::isalnum(static_cast<unsigned char>(next)) && next != '_') {
        findings->push_back(
            {f.display_path, LineOfOffset(f.code, pos), "lint-raw-sync",
             "raw " + needle +
                 " outside src/common/synchronization.h; use the "
                 "capability-annotated fuseme::Mutex/MutexLock/CondVar"});
      }
      pos = end;
    }
  }
  static const std::regex include_re(
      R"(#\s*include\s*<(mutex|shared_mutex|condition_variable)>)");
  for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(),
                                      include_re);
       it != std::sregex_iterator(); ++it) {
    findings->push_back(
        {f.display_path,
         LineOfOffset(f.code, static_cast<std::size_t>(it->position())),
         "lint-raw-sync",
         "#include <" + (*it)[1].str() +
             "> outside src/common/synchronization.h; include "
             "common/synchronization.h instead"});
  }
}

// --- rules: lint-metric-literal / lint-metric-dead -----------------------

struct CatalogueEntry {
  std::string identifier;  // kEngineRuns
  std::string name;        // fuseme_engine_runs_total
  int line = 0;
};

/// Parses `inline constexpr char kX[] = "...";` declarations (the value
/// may sit on the following line) out of a catalogue-style header.
std::vector<CatalogueEntry> ParseCharConstants(const std::string& raw) {
  std::vector<CatalogueEntry> entries;
  static const std::regex decl_re(
      R"re(constexpr\s+char\s+(k\w+)\s*\[\]\s*=\s*"([^"]*)")re");
  for (auto it = std::sregex_iterator(raw.begin(), raw.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    entries.push_back({(*it)[1].str(), (*it)[2].str(),
                       LineOfOffset(raw, static_cast<std::size_t>(
                                             it->position()))});
  }
  return entries;
}

bool UnderDir(const std::string& display_path, const char* prefix) {
  return display_path.rfind(prefix, 0) == 0;
}

bool IsMetricCatalogue(const std::string& display_path) {
  return display_path == "src/telemetry/metric_names.h";
}

void CheckMetricLiterals(const FileView& f,
                         const std::set<std::string>& catalogue,
                         std::vector<Finding>* findings) {
  if (!UnderDir(f.display_path, "src/") || IsMetricCatalogue(f.display_path))
    return;
  for (const StringLiteral& s : f.strings) {
    if (s.value.rfind("fuseme_", 0) != 0) continue;
    if (catalogue.count(s.value) == 0) {
      findings->push_back(
          {f.display_path, s.line, "lint-metric-literal",
           "inline metric name \"" + s.value +
               "\" not declared in src/telemetry/metric_names.h"});
    }
  }
}

// --- rules: lint-event-literal / lint-event-dead --------------------------

bool IsEventCatalogue(const std::string& display_path) {
  return display_path == "src/telemetry/event_names.h";
}

/// A flight-recorder event id: "fuseme." followed by at least two more
/// lowercase dotted segments ("fuseme.engine.run_start").  The two-segment
/// floor keeps ordinary strings that merely start with "fuseme." — the
/// facade include "fuseme.h" above all — out of the rule.
bool IsEventId(const std::string& value) {
  static const std::regex id_re(R"(^fuseme(\.[a-z0-9_]+){2,}$)");
  return std::regex_match(value, id_re);
}

void CheckEventLiterals(const FileView& f,
                        const std::set<std::string>& catalogue,
                        std::vector<Finding>* findings) {
  if (!UnderDir(f.display_path, "src/") || IsEventCatalogue(f.display_path))
    return;
  for (const StringLiteral& s : f.strings) {
    if (!IsEventId(s.value)) continue;
    if (catalogue.count(s.value) == 0) {
      findings->push_back(
          {f.display_path, s.line, "lint-event-literal",
           "inline event id \"" + s.value +
               "\" not declared in src/telemetry/event_names.h"});
    }
  }
}

// --- rule: lint-solver-literal --------------------------------------------

bool IsSolverCatalogue(const std::string& display_path) {
  return display_path == "src/engine/solver_names.h";
}

/// A stage-solver id: "solver" followed by at least one lowercase dotted
/// segment ("solver.cfo.spmm").  Plain "solver" — the ubiquitous metric
/// label key — is not an id.
bool IsSolverId(const std::string& value) {
  static const std::regex id_re(R"(^solver(\.[a-z0-9_]+)+$)");
  return std::regex_match(value, id_re);
}

void CheckSolverLiterals(const FileView& f,
                         const std::set<std::string>& catalogue,
                         std::vector<Finding>* findings) {
  if (!UnderDir(f.display_path, "src/") || IsSolverCatalogue(f.display_path))
    return;
  for (const StringLiteral& s : f.strings) {
    if (!IsSolverId(s.value)) continue;
    if (catalogue.count(s.value) == 0) {
      findings->push_back(
          {f.display_path, s.line, "lint-solver-literal",
           "inline solver id \"" + s.value +
               "\" not declared in src/engine/solver_names.h"});
    }
  }
}

// --- rule: lint-rule-id-dup ----------------------------------------------

void CheckRuleIdDuplicates(const std::vector<FileView>& files,
                           std::vector<Finding>* findings) {
  std::map<std::string, std::pair<std::string, int>> seen;  // id -> site
  for (const FileView& f : files) {
    if (!UnderDir(f.display_path, "src/verify/")) continue;
    for (const CatalogueEntry& e : ParseCharConstants(f.raw)) {
      auto [it, inserted] =
          seen.emplace(e.name, std::make_pair(f.display_path, e.line));
      if (!inserted) {
        findings->push_back(
            {f.display_path, e.line, "lint-rule-id-dup",
             "verifier rule id \"" + e.name + "\" already declared at " +
                 it->second.first + ":" + std::to_string(it->second.second)});
      }
    }
  }
}

// --- rule: lint-design-ref -----------------------------------------------

std::set<int> ParseDesignSections(const std::string& design_md) {
  std::set<int> sections;
  static const std::regex heading_re(R"(^## (\d+)\.)");
  std::istringstream in(design_md);
  std::string line;
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, heading_re)) {
      sections.insert(std::stoi(m[1].str()));
    }
  }
  return sections;
}

void CheckDesignRefs(const FileView& f, const std::set<int>& sections,
                     bool have_design_md, std::vector<Finding>* findings) {
  static const std::regex ref_re(
      R"(DESIGN\.md\s+(?:section|§)\s*(\d+))");
  for (auto it = std::sregex_iterator(f.raw.begin(), f.raw.end(), ref_re);
       it != std::sregex_iterator(); ++it) {
    const int section = std::stoi((*it)[1].str());
    const int line =
        LineOfOffset(f.raw, static_cast<std::size_t>(it->position()));
    if (!have_design_md) {
      findings->push_back({f.display_path, line, "lint-design-ref",
                           "reference to DESIGN.md section " +
                               std::to_string(section) +
                               " but DESIGN.md was not found at the root"});
    } else if (sections.count(section) == 0) {
      findings->push_back({f.display_path, line, "lint-design-ref",
                           "DESIGN.md section " + std::to_string(section) +
                               " does not exist (no \"## " +
                               std::to_string(section) + ".\" heading)"});
    }
  }
}

// --- rule: lint-todo-tag -------------------------------------------------

void CheckTodoTags(const FileView& f, std::vector<Finding>* findings) {
  static const std::regex todo_re(R"(\bTODO\b)");
  static const std::regex tagged_re(R"(\bTODO\(#\d+\))");
  for (auto it = std::sregex_iterator(f.raw.begin(), f.raw.end(), todo_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    // Accept only TODO(#N) at this exact position.
    std::smatch m;
    const std::string tail = f.raw.substr(pos, 64);
    if (std::regex_search(tail, m, tagged_re) && m.position() == 0) continue;
    findings->push_back({f.display_path, LineOfOffset(f.raw, pos),
                         "lint-todo-tag",
                         "TODO without an issue tag; write TODO(#123)"});
  }
}

// --- driver ---------------------------------------------------------------

bool SkipDir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "fixtures" || name == "build" || name == ".git";
}

void CollectFiles(const fs::path& p, std::vector<fs::path>* out) {
  if (fs::is_directory(p)) {
    for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
      if (it->is_directory() && SkipDir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        out->push_back(it->path());
      }
    }
  } else if (fs::is_regular_file(p)) {
    out->push_back(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> path_args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuseme_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: fuseme_lint [--root DIR] [path...]\n");
      return 0;
    } else {
      path_args.push_back(arg);
    }
  }
  if (path_args.empty()) path_args = {"src", "tests", "bench", "examples"};
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fuseme_lint: root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& arg : path_args) {
    fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (!fs::exists(p)) {
      std::fprintf(stderr, "fuseme_lint: no such path: %s\n",
                   p.string().c_str());
      return 2;
    }
    CollectFiles(p, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileView> views;
  views.reserve(files.size());
  for (const fs::path& p : files) {
    FileView v;
    v.display_path = Relative(p, root);
    if (!ReadFile(p, &v.raw)) {
      std::fprintf(stderr, "fuseme_lint: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    Lex(v.raw, &v.code, &v.strings);
    views.push_back(std::move(v));
  }

  // Shared inputs: the metric catalogue and DESIGN.md, relative to root.
  std::set<std::string> catalogue_names;
  std::vector<CatalogueEntry> catalogue_entries;
  bool scanned_catalogue = false;
  for (const FileView& v : views) {
    if (IsMetricCatalogue(v.display_path)) {
      scanned_catalogue = true;
      catalogue_entries = ParseCharConstants(v.raw);
      for (const CatalogueEntry& e : catalogue_entries) {
        catalogue_names.insert(e.name);
      }
    }
  }
  std::set<std::string> event_catalogue_names;
  std::vector<CatalogueEntry> event_catalogue_entries;
  bool scanned_event_catalogue = false;
  for (const FileView& v : views) {
    if (IsEventCatalogue(v.display_path)) {
      scanned_event_catalogue = true;
      event_catalogue_entries = ParseCharConstants(v.raw);
      for (const CatalogueEntry& e : event_catalogue_entries) {
        event_catalogue_names.insert(e.name);
      }
    }
  }
  std::set<std::string> solver_catalogue_names;
  bool scanned_solver_catalogue = false;
  for (const FileView& v : views) {
    if (IsSolverCatalogue(v.display_path)) {
      scanned_solver_catalogue = true;
      for (const CatalogueEntry& e : ParseCharConstants(v.raw)) {
        solver_catalogue_names.insert(e.name);
      }
    }
  }
  std::string design_md;
  const bool have_design_md = ReadFile(root / "DESIGN.md", &design_md);
  const std::set<int> design_sections =
      have_design_md ? ParseDesignSections(design_md) : std::set<int>{};

  std::vector<Finding> findings;
  for (const FileView& v : views) {
    CheckRawSync(v, &findings);
    if (scanned_catalogue) CheckMetricLiterals(v, catalogue_names, &findings);
    if (scanned_event_catalogue) {
      CheckEventLiterals(v, event_catalogue_names, &findings);
    }
    if (scanned_solver_catalogue) {
      CheckSolverLiterals(v, solver_catalogue_names, &findings);
    }
    CheckDesignRefs(v, design_sections, have_design_md, &findings);
    CheckTodoTags(v, &findings);
  }
  CheckRuleIdDuplicates(views, &findings);

  // lint-metric-dead is a whole-catalogue rule: it only runs when the
  // scan actually included the catalogue (i.e. src/ was scanned), so
  // linting a single file never produces spurious dead-entry findings.
  if (scanned_catalogue) {
    for (const CatalogueEntry& e : catalogue_entries) {
      bool used = false;
      for (const FileView& v : views) {
        if (IsMetricCatalogue(v.display_path) ||
            !UnderDir(v.display_path, "src/")) {
          continue;
        }
        const std::regex use_re("\\b" + e.identifier + "\\b");
        if (std::regex_search(v.code, use_re)) {
          used = true;
          break;
        }
      }
      if (!used) {
        findings.push_back(
            {"src/telemetry/metric_names.h", e.line, "lint-metric-dead",
             "catalogue entry " + e.identifier + " (\"" + e.name +
                 "\") is never referenced from src/"});
      }
    }
  }

  // lint-event-dead mirrors lint-metric-dead for the event catalogue.
  if (scanned_event_catalogue) {
    for (const CatalogueEntry& e : event_catalogue_entries) {
      bool used = false;
      for (const FileView& v : views) {
        if (IsEventCatalogue(v.display_path) ||
            !UnderDir(v.display_path, "src/")) {
          continue;
        }
        const std::regex use_re("\\b" + e.identifier + "\\b");
        if (std::regex_search(v.code, use_re)) {
          used = true;
          break;
        }
      }
      if (!used) {
        findings.push_back(
            {"src/telemetry/event_names.h", e.line, "lint-event-dead",
             "catalogue entry " + e.identifier + " (\"" + e.name +
                 "\") is never referenced from src/"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("fuseme_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
