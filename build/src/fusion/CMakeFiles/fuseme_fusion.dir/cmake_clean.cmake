file(REMOVE_RECURSE
  "CMakeFiles/fuseme_fusion.dir/partial_plan.cc.o"
  "CMakeFiles/fuseme_fusion.dir/partial_plan.cc.o.d"
  "CMakeFiles/fuseme_fusion.dir/sparsity_analysis.cc.o"
  "CMakeFiles/fuseme_fusion.dir/sparsity_analysis.cc.o.d"
  "libfuseme_fusion.a"
  "libfuseme_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
