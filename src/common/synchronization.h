// Capability-annotated synchronization primitives (DESIGN.md section 16).
//
// Every mutex in the repo is one of these wrappers, never a raw
// std::mutex — `fuseme_lint` (tools/fuseme_lint.cc, rule lint-raw-sync)
// enforces that this header is the only file naming the std primitives.
// The wrappers carry Clang thread-safety capability attributes, so a
// Clang build with -Wthread-safety (enabled automatically, see the root
// CMakeLists.txt) proves at compile time that:
//
//  * every field marked GUARDED_BY(mu) is only touched with mu held;
//  * every helper marked REQUIRES(mu) is only called with mu held;
//  * every MutexLock scope that releases mid-scope re-acquires before
//    the scope ends.
//
// On non-Clang compilers the attribute macros expand to nothing and the
// wrappers are zero-cost shims over std::mutex /
// std::condition_variable, so GCC builds (and TSan/ASan/UBSan builds)
// see the exact same synchronization the annotations describe.
//
// Waiting convention: CondVar has no predicate overload on purpose.
// Predicates arrive as lambdas, which the analysis checks as separate
// functions that do not inherit the caller's held capabilities — a
// predicate reading a GUARDED_BY field would warn.  Write the loop in
// the caller instead, where the analysis can see the lock:
//
//   MutexLock lock(mu_);
//   while (!done_) cv_.Wait(mu_);   // done_ is GUARDED_BY(mu_)

#ifndef FUSEME_COMMON_SYNCHRONIZATION_H_
#define FUSEME_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- Clang thread-safety attribute macros -------------------------------
// The canonical set from the Clang thread-safety-analysis documentation.
// They expand to nothing on other compilers, so annotated code builds
// everywhere and is *verified* wherever Clang is the compiler.

#if defined(__clang__)
#define FUSEME_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define FUSEME_TSA_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (e.g. CAPABILITY("mutex") Mutex).
#define CAPABILITY(x) FUSEME_TSA_ATTRIBUTE(capability(x))
/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY FUSEME_TSA_ATTRIBUTE(scoped_lockable)
/// Field accessible only with the given capability held.
#define GUARDED_BY(x) FUSEME_TSA_ATTRIBUTE(guarded_by(x))
/// Pointer field whose *pointee* requires the capability.
#define PT_GUARDED_BY(x) FUSEME_TSA_ATTRIBUTE(pt_guarded_by(x))
/// Function callable only with the capabilities held (and still held on
/// return).
#define REQUIRES(...) FUSEME_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Function that acquires the capabilities (caller must not hold them).
#define ACQUIRE(...) FUSEME_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// Function that releases the capabilities (caller must hold them).
#define RELEASE(...) FUSEME_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `x`.
#define TRY_ACQUIRE(...) \
  FUSEME_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// Function the caller must NOT hold the capabilities around (deadlock
/// documentation: e.g. SetGlobalThreadPoolThreads EXCLUDES the pool).
#define EXCLUDES(...) FUSEME_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Declares static lock-ordering edges for deadlock detection.
#define ACQUIRED_BEFORE(...) FUSEME_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FUSEME_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))
/// Function returning a reference to the capability guarding its class.
#define RETURN_CAPABILITY(x) FUSEME_TSA_ATTRIBUTE(lock_returned(x))
/// Escape hatch: function body is not analyzed.  Every use needs a
/// comment explaining why the analysis cannot see the protocol.
#define NO_THREAD_SAFETY_ANALYSIS \
  FUSEME_TSA_ATTRIBUTE(no_thread_safety_analysis)

namespace fuseme {

class CondVar;

/// Annotated exclusive mutex.  Prefer the RAII MutexLock; the manual
/// Lock/Unlock pair exists for the wrapper types and for protocols an
/// RAII scope cannot express.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over a Mutex.  Unlike std::lock_guard it may release
/// and re-acquire mid-scope (Unlock/Lock) — the analysis then proves the
/// scope ends re-acquired, because the destructor unconditionally
/// releases.  A scope that Unlock()s and returns without Lock()ing is a
/// compile error under -Wthread-safety (and undefined behavior at
/// runtime), by design: every wait/relock protocol in the repo ends its
/// scope held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex; pair with Lock() before scope end.
  void Unlock() RELEASE() { mu_.Unlock(); }
  void Lock() ACQUIRE() { mu_.Lock(); }

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex.  Wait atomically releases the
/// mutex and re-acquires it before returning, so from the analysis'
/// point of view the capability is held across the call (REQUIRES) —
/// guarded state may have changed, which is why waits are loops.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible; loop on the
  /// guarded condition).  The caller must hold `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native handle for the duration of the wait;
    // release() hands it back un-dropped so ownership stays with the
    // caller's MutexLock scope.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until notified or `seconds` elapsed; returns false on
  /// timeout.  Same capability contract as Wait — the caller holds `mu`
  /// across the call and loops on the guarded condition (a periodic
  /// worker like the telemetry sampler loops on its stop flag, waking
  /// each period).
  bool WaitFor(Mutex& mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::duration<double>(seconds));
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fuseme

#endif  // FUSEME_COMMON_SYNCHRONIZATION_H_
