// Random matrix generators for tests, examples, and benchmarks.
//
// The paper's synthetic datasets are "randomly and uniformly distributed
// non-zero elements" (§6.1); RandomSparse reproduces that.

#ifndef FUSEME_MATRIX_GENERATORS_H_
#define FUSEME_MATRIX_GENERATORS_H_

#include <cstdint>

#include "matrix/blocked_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace fuseme {

/// Dense matrix with i.i.d. uniform values in [lo, hi].
DenseMatrix RandomDense(std::int64_t rows, std::int64_t cols,
                        std::uint64_t seed, double lo = 0.0, double hi = 1.0);

/// Sparse matrix with ~density fraction of cells set to uniform values in
/// (lo, hi]; values are never exactly zero so nnz is deterministic per cell.
SparseMatrix RandomSparse(std::int64_t rows, std::int64_t cols,
                          double density, std::uint64_t seed, double lo = 0.0,
                          double hi = 1.0);

/// Blocked convenience wrappers.
BlockedMatrix RandomDenseBlocked(std::int64_t rows, std::int64_t cols,
                                 std::int64_t block_size, std::uint64_t seed,
                                 double lo = 0.0, double hi = 1.0);
BlockedMatrix RandomSparseBlocked(std::int64_t rows, std::int64_t cols,
                                  double density, std::int64_t block_size,
                                  std::uint64_t seed, double lo = 0.0,
                                  double hi = 1.0);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_GENERATORS_H_
