#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace fuseme {

namespace {

// Reads until CRLFCRLF (end of headers), EOF, or the byte cap.  The
// exporter ignores headers, so the return value is just the first line;
// draining the rest keeps clients from seeing a reset before the
// response.
Result<std::string> ReadRequestLine(int fd, std::size_t max_bytes) {
  std::string buffer;
  char chunk[512];
  while (buffer.find("\r\n") == std::string::npos) {
    if (buffer.size() > max_bytes) {
      return Status::InvalidArgument("request line exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;  // peer closed before finishing the line
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string::npos) {
    return Status::InvalidArgument("connection closed before request line");
  }
  return buffer.substr(0, eol);
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " "
      << HttpStatusReason(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  return out.str();
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
  }
  return "Unknown";
}

Result<HttpRequest> ParseHttpRequest(const std::string& request_line,
                                     std::size_t max_line_bytes) {
  if (request_line.size() > max_line_bytes) {
    return Status::InvalidArgument("request line exceeds " +
                                   std::to_string(max_line_bytes) + " bytes");
  }
  std::istringstream in(request_line);
  HttpRequest request;
  std::string version;
  if (!(in >> request.method >> request.path >> version)) {
    return Status::InvalidArgument("malformed request line: \"" +
                                   request_line + "\"");
  }
  if (version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("malformed HTTP version: \"" + version +
                                   "\"");
  }
  if (request.path.empty() || request.path[0] != '/') {
    return Status::InvalidArgument("malformed request path: \"" +
                                   request.path + "\"");
  }
  // The exporter's endpoints take no parameters; strip any query string
  // so "/metrics?x=1" still routes.
  const std::size_t query = request.path.find('?');
  if (query != std::string::npos) request.path.resize(query);
  return request;
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(options), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  MutexLock lock(mu_);
  FUSEME_CHECK(!running_);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind port " + std::to_string(options_.port) +
                            ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname: " + err);
  }

  listen_fd_ = fd;
  bound_port_ = static_cast<int>(ntohs(addr.sin_port));
  running_ = true;
  thread_ = std::thread(&HttpServer::AcceptLoop, this);
  return Status::OK();
}

void HttpServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    // shutdown() wakes the accept thread out of its blocking accept();
    // the close happens only after join, so the loop can't race a
    // close/reuse of the descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  thread_.join();
  MutexLock lock(mu_);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

int HttpServer::port() const {
  MutexLock lock(mu_);
  return bound_port_;
}

void HttpServer::AcceptLoop() {
  int fd;
  {
    MutexLock lock(mu_);
    fd = listen_fd_;
  }
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // Stop() shut the socket down (or a fatal accept error)
    }
    // A slow or stuck client must not wedge the (single) accept thread.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(client);
    // Graceful close: the request may not be fully read (431 cuts the
    // line short; headers can trail the first CRLF), and close() with
    // unread data RSTs the connection, which can destroy the response
    // before the client reads it.  Signal end-of-response, then drain a
    // bounded amount until the client closes its side.
    ::shutdown(client, SHUT_WR);
    char drain[1024];
    for (int i = 0; i < 64 && ::recv(client, drain, sizeof(drain), 0) > 0; ++i) {
    }
    ::close(client);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  HttpResponse response;
  Result<std::string> line =
      ReadRequestLine(client_fd, options_.max_request_bytes);
  if (!line.ok()) {
    response.status =
        line.status().message().find("exceeds") != std::string::npos ? 431
                                                                     : 400;
    response.body = line.status().message() + "\n";
    SendAll(client_fd, RenderResponse(response));
    return;
  }
  Result<HttpRequest> request =
      ParseHttpRequest(*line, options_.max_request_bytes);
  if (!request.ok()) {
    response.status = 400;
    response.body = request.status().message() + "\n";
    SendAll(client_fd, RenderResponse(response));
    return;
  }
  if (request->method != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
    SendAll(client_fd, RenderResponse(response));
    return;
  }
  SendAll(client_fd, RenderResponse(handler_(*request)));
}

Result<std::string> HttpGet(int port, const std::string& path,
                            double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeout_seconds);
  tv.tv_usec = static_cast<long>((timeout_seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port) +
                            ": " + err);
  }

  SendAll(fd, "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
              "Connection: close\r\n\r\n");

  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("recv: " + err);
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t status_eol = raw.find("\r\n");
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (status_eol == std::string::npos || header_end == std::string::npos) {
    return Status::Internal("malformed HTTP response");
  }
  const std::string status_line = raw.substr(0, status_eol);
  // "HTTP/1.1 200 OK" — the second token is the status code.
  std::istringstream in(status_line);
  std::string version;
  int status = 0;
  if (!(in >> version >> status)) {
    return Status::Internal("malformed status line: \"" + status_line + "\"");
  }
  if (status < 200 || status >= 300) {
    return Status::Internal("HTTP error: " + status_line);
  }
  return raw.substr(header_end + 4);
}

}  // namespace fuseme
