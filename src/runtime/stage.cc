#include "runtime/stage.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace fuseme {

TaskAccounting& StageContext::GrowTo(int task) {
  FUSEME_CHECK_GE(task, 0);
  if (task >= static_cast<int>(tasks_.size())) {
    tasks_.resize(task + 1);
  }
  return tasks_[task];
}

void StageContext::ChargeConsolidation(int task, std::int64_t bytes) {
  GrowTo(task).consolidation_bytes += bytes;
}

void StageContext::ChargeAggregation(int task, std::int64_t bytes) {
  GrowTo(task).aggregation_bytes += bytes;
}

void StageContext::ChargeFlops(int task, std::int64_t flops) {
  GrowTo(task).flops += flops;
}

Status StageContext::ChargeMemory(int task, std::int64_t bytes) {
  TaskAccounting& acct = GrowTo(task);
  acct.memory_used += bytes;
  acct.memory_peak = std::max(acct.memory_peak, acct.memory_used);
  if (acct.memory_used > config_.task_memory_budget) {
    return Status::OutOfMemory(
        label_ + ": task " + std::to_string(task) + " needs " +
        HumanBytes(static_cast<double>(acct.memory_used)) +
        " > budget " +
        HumanBytes(static_cast<double>(config_.task_memory_budget)));
  }
  return Status::OK();
}

void StageContext::ReleaseMemory(int task, std::int64_t bytes) {
  TaskAccounting& acct = GrowTo(task);
  acct.memory_used -= bytes;
  FUSEME_CHECK_GE(acct.memory_used, 0);
}

const TaskAccounting& StageContext::task(int task_id) const {
  static const TaskAccounting kEmpty;
  if (task_id < 0 || task_id >= static_cast<int>(tasks_.size())) {
    return kEmpty;
  }
  return tasks_[task_id];
}

StageStats StageContext::Finalize() const {
  StageStats stats;
  stats.label = label_;
  stats.num_tasks = static_cast<int>(tasks_.size());
  for (const TaskAccounting& t : tasks_) {
    stats.consolidation_bytes += t.consolidation_bytes;
    stats.aggregation_bytes += t.aggregation_bytes;
    stats.flops += t.flops;
    stats.max_task_memory = std::max(stats.max_task_memory, t.memory_peak);
  }
  return stats;
}

}  // namespace fuseme
