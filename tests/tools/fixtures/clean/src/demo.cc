// Clean fixture source (DESIGN.md section 1): every lint rule passes.
//
// TODO(#42): tagged fixture item — lint-todo-tag accepts it.

#include "telemetry/event_names.h"
#include "telemetry/metric_names.h"

namespace fuseme {

const char* DemoMetricName() { return metric_names::kDemo; }

const char* DemoEventName() { return event_names::kDemo; }

}  // namespace fuseme
