// Per-stage accounting: every distributed operator executes as one stage
// (matrix consolidation -> local operation -> matrix aggregation, §2.2) and
// records, per task, the bytes it received, the bytes it emitted into the
// aggregation shuffle, the FLOPs it executed, and its peak memory.

#ifndef FUSEME_RUNTIME_STAGE_H_
#define FUSEME_RUNTIME_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/cluster_config.h"

namespace fuseme {

/// Accumulators for one logical task within a stage.
struct TaskAccounting {
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t memory_used = 0;
  std::int64_t memory_peak = 0;
};

/// Aggregated result of a finished stage.
struct StageStats {
  std::string label;
  int num_tasks = 0;
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t max_task_memory = 0;
  double elapsed_seconds = 0.0;  // filled in by the Simulator

  std::int64_t total_bytes() const {
    return consolidation_bytes + aggregation_bytes;
  }
};

/// Mutable accounting context handed to a physical operator while it runs.
/// Task ids are logical (0..num_tasks-1 for the stage); the context grows on
/// demand.  Memory charges are validated against the per-task budget so an
/// operator that over-replicates reports OutOfMemory exactly like the
/// paper's failed BFO/RFO runs.
class StageContext {
 public:
  StageContext(std::string label, const ClusterConfig& config)
      : label_(std::move(label)), config_(config) {}

  const ClusterConfig& config() const { return config_; }

  void ChargeConsolidation(int task, std::int64_t bytes);
  void ChargeAggregation(int task, std::int64_t bytes);
  void ChargeFlops(int task, std::int64_t flops);

  /// Charges `bytes` of live memory on `task`; fails with OutOfMemory when
  /// the running total would exceed the task budget.
  Status ChargeMemory(int task, std::int64_t bytes);
  /// Releases previously charged memory (peak is retained).
  void ReleaseMemory(int task, std::int64_t bytes);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const TaskAccounting& task(int task_id) const;

  /// Rolls the per-task accumulators into a StageStats (elapsed not set).
  StageStats Finalize() const;

 private:
  TaskAccounting& GrowTo(int task);

  std::string label_;
  ClusterConfig config_;
  std::vector<TaskAccounting> tasks_;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_STAGE_H_
