#include "ops/evaluator.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "matrix/block_ops.h"
#include "matrix/sparse_kernels.h"

namespace fuseme {

KernelEvaluator::KernelEvaluator(const PartialPlan* plan,
                                 std::int64_t block_size,
                                 BlockFetcher fetcher)
    : plan_(plan), block_size_(block_size), fetcher_(std::move(fetcher)) {
  FUSEME_CHECK(plan_ != nullptr);
  FUSEME_CHECK_GT(block_size_, 0);
}

void KernelEvaluator::RestrictK(NodeId mm, std::int64_t k_begin,
                                std::int64_t k_end) {
  restricted_mm_ = mm;
  k_begin_ = k_begin;
  k_end_ = k_end;
}

void KernelEvaluator::Inject(NodeId node, std::int64_t bi, std::int64_t bj,
                             Block block) {
  injected_[{node, bi, bj}] = std::move(block);
}

void KernelEvaluator::ClearCache() { cache_.clear(); }

NodeGrid KernelEvaluator::Grid(NodeId node) const {
  const Node& n = plan_->dag().node(node);
  return NodeGrid{n.rows, n.cols, block_size_};
}

void KernelEvaluator::EnumerateFetches(NodeId node, std::int64_t bi,
                                       std::int64_t bj, std::set<Key>* seen,
                                       std::vector<FetchTarget>* out) const {
  // Per-call memo over plan members so shared sub-DAGs are walked once;
  // `seen` dedups the external targets across the whole pipeline.
  std::set<Key> visited;
  std::function<void(NodeId, std::int64_t, std::int64_t)> walk =
      [&](NodeId id, std::int64_t wbi, std::int64_t wbj) {
        const Key key{id, wbi, wbj};
        if (injected_.contains(key)) return;  // pre-bound: never fetched
        const Dag& dag = plan_->dag();
        const Node& n = dag.node(id);
        if (!plan_->Contains(id)) {
          if (n.kind == OpKind::kScalar) return;  // consumed inline
          // Memoized external blocks were fetched by an earlier Eval.
          if (cache_.contains(key)) return;
          if (seen->insert(key).second) out->push_back({id, wbi, wbj});
          return;
        }
        // A memoized plan member re-fetches nothing below it.
        if (cache_.contains(key)) return;
        if (!visited.insert(key).second) return;
        switch (n.kind) {
          case OpKind::kInput:
          case OpKind::kScalar:
            return;
          case OpKind::kUnary:
          case OpKind::kUnaryAgg:
            walk(n.inputs[0], wbi, wbj);
            return;
          case OpKind::kBinary: {
            // Covers the sparse-driver masked path too: its element walk
            // touches a subset of the blocks the generic path evaluates.
            if (dag.node(n.inputs[0]).kind != OpKind::kScalar) {
              walk(n.inputs[0], wbi, wbj);
            }
            if (dag.node(n.inputs[1]).kind != OpKind::kScalar) {
              walk(n.inputs[1], wbi, wbj);
            }
            return;
          }
          case OpKind::kMatMul: {
            const Node& lhs = dag.node(n.inputs[0]);
            const NodeGrid lhs_grid{lhs.rows, lhs.cols, block_size_};
            std::int64_t k0 = 0, k1 = lhs_grid.grid_cols();
            if (id == restricted_mm_) {
              k0 = k_begin_;
              k1 = k_end_;
            }
            for (std::int64_t kk = k0; kk < k1; ++kk) {
              walk(n.inputs[0], wbi, kk);
              walk(n.inputs[1], kk, wbj);
            }
            return;
          }
          case OpKind::kTranspose:
            walk(n.inputs[0], wbj, wbi);
            return;
        }
      };
  walk(node, bi, bj);
}

Result<Block> KernelEvaluator::Eval(NodeId node, std::int64_t bi,
                                    std::int64_t bj) {
  const Key key{node, bi, bj};
  if (auto it = injected_.find(key); it != injected_.end()) {
    return it->second;
  }
  if (auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  Result<Block> result = EvalUncached(node, bi, bj);
  if (result.ok()) {
    cache_[key] = *result;
  }
  return result;
}

Result<Block> KernelEvaluator::EvalUncached(NodeId node, std::int64_t bi,
                                            std::int64_t bj) {
  const Dag& dag = plan_->dag();
  const Node& n = dag.node(node);

  // Nodes outside the plan (leaf matrices or other plans' materialized
  // outputs) come from the fetcher.
  if (!plan_->Contains(node)) {
    FUSEME_CHECK(n.kind != OpKind::kScalar)
        << "scalar nodes are consumed inline";
    return fetcher_(node, bi, bj);
  }

  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kScalar:
      return Status::Internal("leaf cannot be a plan member");

    case OpKind::kUnary: {
      FUSEME_ASSIGN_OR_RETURN(Block in, Eval(n.inputs[0], bi, bj));
      return Unary(n.unary_fn, in, &flops_);
    }

    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      if (a.kind == OpKind::kScalar) {
        FUSEME_ASSIGN_OR_RETURN(Block rhs, Eval(n.inputs[1], bi, bj));
        return EwiseScalar(n.binary_fn, rhs, a.scalar, /*scalar_left=*/true,
                           &flops_);
      }
      if (b.kind == OpKind::kScalar) {
        FUSEME_ASSIGN_OR_RETURN(Block lhs, Eval(n.inputs[0], bi, bj));
        return EwiseScalar(n.binary_fn, lhs, b.scalar, /*scalar_left=*/false,
                           &flops_);
      }
      // Sparse-driver fast path: mask * f(...MM...).
      if (driver_.found() && node == driver_.mul_node) {
        return EvalMaskedMul(n, bi, bj);
      }
      FUSEME_ASSIGN_OR_RETURN(Block lhs, Eval(n.inputs[0], bi, bj));
      FUSEME_ASSIGN_OR_RETURN(Block rhs, Eval(n.inputs[1], bi, bj));
      return EwiseBinary(n.binary_fn, lhs, rhs, &flops_);
    }

    case OpKind::kMatMul: {
      const Node& lhs = dag.node(n.inputs[0]);
      const NodeGrid lhs_grid{lhs.rows, lhs.cols, block_size_};
      std::int64_t k0 = 0, k1 = lhs_grid.grid_cols();
      if (node == restricted_mm_) {
        k0 = k_begin_;
        k1 = k_end_;
      }
      const NodeGrid out = Grid(node);
      DenseMatrix acc(out.TileRows(bi), out.TileCols(bj));
      bool all_meta_inputs = false;
      Block meta_result;
      std::int64_t mm_flops = 0;
      // Aᵀ·B fusion: when the lhs is an in-plan transpose of a sparse
      // input, feed the *untransposed* block (kk, bi) straight into the
      // transpose-SpMM kernel instead of materializing the transpose.
      // Contributions per output element still arrive in ascending-k
      // order, so the result is bitwise-identical; skipped when the
      // transposed block is already injected or memoized (reuse is
      // cheaper than recomputing).
      const bool lhs_is_transpose =
          plan_->Contains(n.inputs[0]) &&
          dag.node(n.inputs[0]).kind == OpKind::kTranspose;
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        if (lhs_is_transpose && !injected_.contains({n.inputs[0], bi, kk}) &&
            !cache_.contains({n.inputs[0], bi, kk})) {
          const NodeId pre = dag.node(n.inputs[0]).inputs[0];
          FUSEME_ASSIGN_OR_RETURN(Block araw, Eval(pre, kk, bi));
          if (araw.kind() == Block::Kind::kSparse) {
            FUSEME_ASSIGN_OR_RETURN(Block b, Eval(n.inputs[1], kk, bj));
            if (b.is_real()) {
              TransposeSpmmAcc(&acc, araw.sparse(), b, &mm_flops);
              continue;
            }
          }
        }
        FUSEME_ASSIGN_OR_RETURN(Block a, Eval(n.inputs[0], bi, kk));
        FUSEME_ASSIGN_OR_RETURN(Block b, Eval(n.inputs[1], kk, bj));
        if (a.is_meta() || b.is_meta()) {
          // Simulated data: accumulate descriptors instead of numbers.
          FUSEME_ASSIGN_OR_RETURN(Block partial, MatMul(a, b, &mm_flops));
          if (!all_meta_inputs) {
            meta_result = partial;
            all_meta_inputs = true;
          } else {
            FUSEME_ASSIGN_OR_RETURN(
                meta_result,
                MergeAgg(AggFn::kSum, meta_result, partial, nullptr));
          }
          continue;
        }
        FUSEME_RETURN_IF_ERROR(MatMulAcc(&acc, a, b, &mm_flops));
      }
      flops_ += mm_flops;
      gemm_flops_ += mm_flops;
      if (all_meta_inputs) return meta_result;
      Block dense = Block::FromDense(std::move(acc));
      if (dense.nnz() == 0) return Block::Zero(dense.rows(), dense.cols());
      if (dense.density() < kDenseStorageThreshold) {
        ++dense_to_sparse_;
        return Block::FromSparse(SparseMatrix::FromDense(dense.dense()));
      }
      return dense;
    }

    case OpKind::kUnaryAgg: {
      // Per-block partial aggregation; the distributed operator merges
      // partials across blocks and tasks.
      FUSEME_ASSIGN_OR_RETURN(Block in, Eval(n.inputs[0], bi, bj));
      switch (n.agg_axis) {
        case AggAxis::kAll:
          return FullAgg(n.agg_fn, in, &flops_);
        case AggAxis::kRow:
          return RowAgg(n.agg_fn, in, &flops_);
        case AggAxis::kCol:
          return ColAgg(n.agg_fn, in, &flops_);
      }
      return Status::Internal("unknown agg axis");
    }

    case OpKind::kTranspose: {
      FUSEME_ASSIGN_OR_RETURN(Block in, Eval(n.inputs[0], bj, bi));
      return Transpose(in, &flops_);
    }
  }
  return Status::Internal("unknown node kind");
}

Result<bool> KernelEvaluator::TrySddmm(NodeId node, const Block& mask,
                                       std::int64_t bi, std::int64_t bj,
                                       std::vector<double>* vals) {
  const Dag& dag = plan_->dag();
  const Node& n = dag.node(node);
  if (n.kind != OpKind::kMatMul) return false;
  const NodeId lhs_id = n.inputs[0];
  const NodeId rhs_id = n.inputs[1];
  // Restricted to external operands: the element path evaluates in-plan
  // operands per element (charging per element), which blockwise kernels
  // cannot reproduce charge-for-charge.
  if (plan_->Contains(lhs_id) || plan_->Contains(rhs_id)) return false;
  if (mask.kind() != Block::Kind::kSparse) return false;

  const Node& lhs = dag.node(lhs_id);
  const NodeGrid lhs_grid{lhs.rows, lhs.cols, block_size_};
  std::int64_t k0 = 0, k1 = lhs_grid.grid_cols();
  if (node == restricted_mm_) {
    k0 = k_begin_;
    k1 = k_end_;
  }
  std::vector<Block> a_blocks, b_blocks;
  a_blocks.reserve(k1 - k0);
  b_blocks.reserve(k1 - k0);
  for (std::int64_t kk = k0; kk < k1; ++kk) {
    FUSEME_ASSIGN_OR_RETURN(Block a, Eval(lhs_id, bi, kk));
    FUSEME_ASSIGN_OR_RETURN(Block b, Eval(rhs_id, kk, bj));
    if (a.is_meta() || b.is_meta()) return false;  // simulated data
    a_blocks.push_back(std::move(a));
    b_blocks.push_back(std::move(b));
  }

  vals->assign(static_cast<std::size_t>(mask.nnz()), 0.0);
  std::int64_t span = 0;       // total element-level k width
  std::int64_t kernel_flops = 0;  // kernel-layer charge, superseded below
  for (std::size_t idx = 0; idx < a_blocks.size(); ++idx) {
    SddmmAcc(mask.sparse(), a_blocks[idx], b_blocks[idx], vals,
             &kernel_flops);
    span += a_blocks[idx].cols();
  }
  // Charge exactly what the element path would: 2·span per mask non-zero,
  // all of it GEMM work.  (The kernel's own tally equals this; charging
  // from `span` keeps the equivalence explicit.)
  flops_ += 2 * span * mask.nnz();
  gemm_flops_ += 2 * span * mask.nnz();
  return true;
}

Result<Block> KernelEvaluator::EvalMaskedMul(const Node& n, std::int64_t bi,
                                             std::int64_t bj) {
  const bool mask_left = n.inputs[0] == driver_.sparse_input;
  const NodeId mask_id = driver_.sparse_input;
  const NodeId other_id = mask_left ? n.inputs[1] : n.inputs[0];

  FUSEME_ASSIGN_OR_RETURN(Block mask, Eval(mask_id, bi, bj));
  if (mask.is_zero()) return Block::Zero(mask.rows(), mask.cols());
  if (mask.is_meta() || mask.kind() == Block::Kind::kDense) {
    // No exploitable pattern at runtime (meta blocks can't be iterated and
    // dense masks don't pay off): fall back to the block path.
    FUSEME_ASSIGN_OR_RETURN(Block lhs, Eval(n.inputs[0], bi, bj));
    FUSEME_ASSIGN_OR_RETURN(Block rhs, Eval(n.inputs[1], bi, bj));
    return EwiseBinary(n.binary_fn, lhs, rhs, &flops_);
  }

  const std::int64_t gi0 = bi * block_size_;
  const std::int64_t gj0 = bj * block_size_;
  std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
  triplets.reserve(mask.nnz());
  // SDDMM fast path when the masked operand is a bare matmul: blockwise
  // dot kernels over the mask pattern, bitwise- and charge-identical to
  // the per-element recursion below.
  std::vector<double> dots;
  if (plan_->Contains(other_id)) {
    FUSEME_ASSIGN_OR_RETURN(bool sddmm,
                            TrySddmm(other_id, mask, bi, bj, &dots));
    if (sddmm) {
      std::int64_t p = 0;
      mask.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
        const double other = dots[static_cast<std::size_t>(p++)];
        const double out = mask_left ? v * other : other * v;
        if (out != 0.0) triplets.emplace_back(i, j, out);
      });
      flops_ += mask.nnz();
      SparseMatrix result = SparseMatrix::FromTriplets(
          mask.rows(), mask.cols(), std::move(triplets));
      if (result.nnz() == 0) return Block::Zero(mask.rows(), mask.cols());
      if (result.density() >= kDenseStorageThreshold) {
        ++sparse_to_dense_;
        return Block::FromDense(result.ToDense());
      }
      return Block::FromSparse(std::move(result));
    }
  }
  Status element_status = Status::OK();
  mask.sparse().ForEach([&](std::int64_t i, std::int64_t j, double v) {
    if (!element_status.ok()) return;
    Result<double> other = EvalElement(other_id, gi0 + i, gj0 + j);
    if (!other.ok()) {
      element_status = other.status();
      return;
    }
    const double out = mask_left ? v * *other : *other * v;
    if (out != 0.0) triplets.emplace_back(i, j, out);
  });
  FUSEME_RETURN_IF_ERROR(element_status);
  flops_ += mask.nnz();
  SparseMatrix result = SparseMatrix::FromTriplets(mask.rows(), mask.cols(),
                                                   std::move(triplets));
  if (result.nnz() == 0) return Block::Zero(mask.rows(), mask.cols());
  if (result.density() >= kDenseStorageThreshold) {
    ++sparse_to_dense_;
    return Block::FromDense(result.ToDense());
  }
  return Block::FromSparse(std::move(result));
}

Result<Block> KernelEvaluator::EvalMaskedNode(NodeId value_node,
                                              NodeId mask_node,
                                              std::int64_t bi,
                                              std::int64_t bj) {
  FUSEME_ASSIGN_OR_RETURN(Block mask, Eval(mask_node, bi, bj));
  if (mask.is_zero()) {
    const NodeGrid out = Grid(value_node);
    return Block::Zero(out.TileRows(bi), out.TileCols(bj));
  }
  if (!mask.is_real() || mask.kind() == Block::Kind::kDense) {
    return Eval(value_node, bi, bj);
  }
  const std::int64_t gi0 = bi * block_size_;
  const std::int64_t gj0 = bj * block_size_;
  std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
  triplets.reserve(mask.nnz());
  // The R>1 first phase masks the bare matmul itself — the SDDMM hot
  // path.  Blockwise dots replace the per-element recursion when they can
  // reproduce it exactly.
  if (plan_->Contains(value_node)) {
    std::vector<double> dots;
    FUSEME_ASSIGN_OR_RETURN(bool sddmm,
                            TrySddmm(value_node, mask, bi, bj, &dots));
    if (sddmm) {
      std::int64_t p = 0;
      mask.sparse().ForEach([&](std::int64_t i, std::int64_t j, double) {
        const double v = dots[static_cast<std::size_t>(p++)];
        if (v != 0.0) triplets.emplace_back(i, j, v);
      });
      SparseMatrix result = SparseMatrix::FromTriplets(
          mask.rows(), mask.cols(), std::move(triplets));
      if (result.nnz() == 0) return Block::Zero(mask.rows(), mask.cols());
      return Block::FromSparse(std::move(result));
    }
  }
  Status element_status = Status::OK();
  mask.sparse().ForEach([&](std::int64_t i, std::int64_t j, double) {
    if (!element_status.ok()) return;
    Result<double> value = EvalElement(value_node, gi0 + i, gj0 + j);
    if (!value.ok()) {
      element_status = value.status();
      return;
    }
    if (*value != 0.0) triplets.emplace_back(i, j, *value);
  });
  FUSEME_RETURN_IF_ERROR(element_status);
  SparseMatrix result = SparseMatrix::FromTriplets(mask.rows(), mask.cols(),
                                                   std::move(triplets));
  if (result.nnz() == 0) return Block::Zero(mask.rows(), mask.cols());
  return Block::FromSparse(std::move(result));
}

Result<double> KernelEvaluator::EvalElement(NodeId node, std::int64_t gi,
                                            std::int64_t gj) {
  const Dag& dag = plan_->dag();
  const Node& n = dag.node(node);
  const std::int64_t bi = gi / block_size_, bj = gj / block_size_;
  const std::int64_t li = gi % block_size_, lj = gj % block_size_;

  if (!plan_->Contains(node)) {
    if (n.kind == OpKind::kScalar) return n.scalar;
    FUSEME_ASSIGN_OR_RETURN(Block block, Eval(node, bi, bj));
    if (!block.is_real()) {
      return Status::Internal("element access on meta block");
    }
    return block.At(li, lj);
  }

  // Injected (aggregated) values take precedence — the R>1 second phase
  // reads the matmul's combined partials here.
  if (auto it = injected_.find({node, bi, bj}); it != injected_.end()) {
    return it->second.At(li, lj);
  }

  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kScalar:
      return Status::Internal("leaf cannot be a plan member");
    case OpKind::kUnary: {
      FUSEME_ASSIGN_OR_RETURN(double x, EvalElement(n.inputs[0], gi, gj));
      flops_ += 1;
      return ApplyUnary(n.unary_fn, x);
    }
    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      double x, y;
      if (a.kind == OpKind::kScalar) {
        x = a.scalar;
      } else {
        FUSEME_ASSIGN_OR_RETURN(x, EvalElement(n.inputs[0], gi, gj));
      }
      if (b.kind == OpKind::kScalar) {
        y = b.scalar;
      } else {
        FUSEME_ASSIGN_OR_RETURN(y, EvalElement(n.inputs[1], gi, gj));
      }
      flops_ += 1;
      return ApplyBinary(n.binary_fn, x, y);
    }
    case OpKind::kTranspose:
      return EvalElement(n.inputs[0], gj, gi);
    case OpKind::kMatMul: {
      const Node& lhs = dag.node(n.inputs[0]);
      std::int64_t gk0 = 0, gk1 = lhs.cols;
      if (node == restricted_mm_) {
        gk0 = k_begin_ * block_size_;
        gk1 = std::min(lhs.cols, k_end_ * block_size_);
      }
      double acc = 0.0;
      for (std::int64_t gk = gk0; gk < gk1; ++gk) {
        FUSEME_ASSIGN_OR_RETURN(double a, EvalElement(n.inputs[0], gi, gk));
        FUSEME_ASSIGN_OR_RETURN(double b, EvalElement(n.inputs[1], gk, gj));
        acc += a * b;
      }
      flops_ += 2 * (gk1 - gk0);
      gemm_flops_ += 2 * (gk1 - gk0);
      return acc;
    }
    case OpKind::kUnaryAgg:
      return Status::Internal(
          "aggregation cannot appear under a sparse driver");
  }
  return Status::Internal("unknown node kind");
}

}  // namespace fuseme
