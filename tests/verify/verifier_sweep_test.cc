// Paranoid-level verification sweep: every workload query, a batch of
// parsed expressions, and a pile of random DAGs run through every system
// policy with VerifyLevel::kParanoid — none may produce a verifier
// diagnostic.  Legitimate resource failures (O.O.M./T.O. table cells) are
// allowed; kInternal (the verifier's failure code) never is.

#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "ir/parser.h"
#include "verify/plan_verifier.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr SystemMode kAllModes[] = {
    SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
    SystemMode::kDistMe, SystemMode::kTensorFlow};

/// Runs `dag` analytically under every system policy at kParanoid and
/// asserts the verifier stayed silent.  Also checks each mode's plan set
/// directly against the standalone PlanVerifier.
void SweepDag(const Dag& dag, const std::string& label,
              ClusterConfig cluster = {}) {
  for (SystemMode mode : kAllModes) {
    EngineOptions options;
    options.system = mode;
    options.cluster = cluster;
    options.analytic = true;
    options.verify = VerifyLevel::kParanoid;
    Engine engine(options);

    FusionPlanSet plans = engine.MakePlans(dag);
    EXPECT_TRUE(plans.diagnostics.empty())
        << label << " / " << SystemModeName(mode) << ": "
        << FormatDiagnostics(plans.diagnostics);

    PlanVerifier verifier(&engine.cost_model());
    const auto diags = verifier.Verify(dag, plans, VerifyLevel::kParanoid);
    EXPECT_TRUE(diags.empty()) << label << " / " << SystemModeName(mode)
                               << ": " << FormatDiagnostics(diags);

    auto run = engine.Run(dag, {});
    EXPECT_TRUE(run.report.verifier_diagnostics.empty())
        << label << " / " << SystemModeName(mode) << ": "
        << FormatDiagnostics(run.report.verifier_diagnostics);
    // O.O.M./T.O. are legitimate policy outcomes at paper scale; an
    // Internal status would mean the verifier (or the engine) tripped.
    EXPECT_NE(run.report.status.code(), StatusCode::kInternal)
        << label << " / " << SystemModeName(mode) << ": "
        << run.report.status.ToString();
  }
}

TEST(VerifierSweepTest, WorkloadQueries) {
  SweepDag(BuildGnmf(48000, 17700, 200, 1004805).dag, "gnmf-amazon");
  SweepDag(BuildGnmf(4000, 1800, 200, 400000).dag, "gnmf-small");
  SweepDag(BuildGnmf(4000, 1800, 200, 400000, /*matrix_chain_opt=*/false)
               .dag,
           "gnmf-no-chain-opt");
  SweepDag(BuildNmfPattern(48000, 17700, 200, 1004805).dag, "nmf-pattern");
  SweepDag(BuildAlsLoss(48000, 17700, 200, 1004805).dag, "als-loss");
  SweepDag(BuildKlLoss(48000, 17700, 200, 1004805).dag, "kl-loss");
  SweepDag(BuildPcaPattern(48000, 1000).dag, "pca-pattern");
  SweepDag(BuildFig1c(48000, 17700, 200, 1004805).dag, "fig1c");
}

TEST(VerifierSweepTest, ParsedExpressions) {
  const std::map<std::string, MatrixShape> symbols = {
      {"X", {4000, 1800, 400000}},
      {"U", {4000, 200, -1}},
      {"V", {200, 1800, -1}},
  };
  const std::vector<std::string> queries = {
      "X * log(U %*% V + 1e-8)",
      "sum((X != 0) * (X - U %*% V)^2)",
      "t(U) %*% (X * (U %*% V))",
      "colSums(X * (U %*% V)) + t(rowSums(t(X) * t(U %*% V)))",
      "(U %*% V) * (U %*% V != 0)",
  };
  for (const std::string& text : queries) {
    auto parsed = ParseQuery(text, symbols);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    SweepDag(*parsed->dag, text);
  }
}

// --- Random metadata-only DAGs -------------------------------------------

/// Random valid DAG builder (metadata only — analytic mode synthesizes
/// descriptors for the leaves, so no numeric data is needed).
Dag MakeRandomDag(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  Dag dag;
  struct Entry {
    NodeId id;
    std::int64_t rows, cols;
  };
  std::vector<Entry> pool;

  const int num_leaves = static_cast<int>(pick(2, 4));
  std::vector<std::int64_t> dims = {40, 56, 96, 130, 72};
  for (int i = 0; i < num_leaves; ++i) {
    const std::int64_t rows = dims[pick(0, 4)];
    const std::int64_t cols = dims[pick(0, 4)];
    const bool sparse = pick(0, 2) == 0;
    const NodeId id = *dag.AddInput("L" + std::to_string(i), rows, cols,
                                    sparse ? rows * cols / 8 : -1);
    pool.push_back({id, rows, cols});
  }

  const int num_ops = static_cast<int>(pick(6, 14));
  for (int i = 0; i < num_ops; ++i) {
    const int kind = static_cast<int>(pick(0, 5));
    const Entry a = pool[pick(0, static_cast<std::int64_t>(pool.size()) - 1)];
    Result<NodeId> made = Status::Internal("skip");
    switch (kind) {
      case 0: {
        const UnaryFn fns[] = {UnaryFn::kSquare, UnaryFn::kAbs,
                               UnaryFn::kSigmoid, UnaryFn::kRelu,
                               UnaryFn::kNotZero};
        made = dag.AddUnary(fns[pick(0, 4)], a.id);
        break;
      }
      case 1: {
        std::vector<Entry> compatible;
        for (const Entry& e : pool) {
          if (e.rows == a.rows && e.cols == a.cols) compatible.push_back(e);
        }
        if (compatible.empty()) continue;
        const Entry b = compatible[pick(
            0, static_cast<std::int64_t>(compatible.size()) - 1)];
        const BinaryFn fns[] = {BinaryFn::kAdd, BinaryFn::kSub,
                                BinaryFn::kMul, BinaryFn::kMin,
                                BinaryFn::kMax};
        made = dag.AddBinary(fns[pick(0, 4)], a.id, b.id);
        break;
      }
      case 2: {
        const NodeId s = *dag.AddScalar(0.25 + 0.5 * pick(0, 3));
        made = dag.AddBinary(
            pick(0, 1) == 0 ? BinaryFn::kMul : BinaryFn::kAdd, a.id, s);
        break;
      }
      case 3: {
        std::vector<Entry> compatible;
        for (const Entry& e : pool) {
          if (e.rows == a.cols) compatible.push_back(e);
        }
        if (compatible.empty()) continue;
        const Entry b = compatible[pick(
            0, static_cast<std::int64_t>(compatible.size()) - 1)];
        made = dag.AddMatMul(a.id, b.id);
        break;
      }
      case 4:
        made = dag.AddTranspose(a.id);
        break;
      case 5: {
        const AggAxis axes[] = {AggAxis::kAll, AggAxis::kRow, AggAxis::kCol};
        made = dag.AddUnaryAgg(AggFn::kSum, axes[pick(0, 2)], a.id);
        break;
      }
    }
    if (!made.ok()) continue;
    const Node& n = dag.node(*made);
    pool.push_back({*made, n.rows, n.cols});
  }

  for (const Entry& e : pool) {
    if (dag.node(e.id).kind == OpKind::kInput) continue;
    if (dag.Consumers(e.id).empty()) dag.MarkOutput(e.id);
  }
  return dag;
}

class VerifierRandomSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(VerifierRandomSweep, NoDiagnosticsOnValidDags) {
  Dag dag = MakeRandomDag(GetParam());
  if (dag.outputs().empty()) GTEST_SKIP() << "degenerate query";
  ClusterConfig small;
  small.num_nodes = 2;
  small.tasks_per_node = 3;
  small.block_size = 16;
  SweepDag(dag, "seed-" + std::to_string(GetParam()), small);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace fuseme
