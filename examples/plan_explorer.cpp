// Plan explorer: prints the fusion plans each system's planner generates
// for the paper's queries, reproducing the shapes of Fig. 10.
//
//   $ ./build/examples/plan_explorer

#include <cstdio>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

namespace {

void ShowPlans(const Dag& dag, const CostModel& model) {
  struct Entry {
    const char* name;
    FusionPlanSet set;
  };
  CfgPlanner cfg(&model);
  Entry entries[] = {
      {"FuseME/CFG", cfg.Plan(dag)},
      {"SystemDS/GEN", GenPlanner().Plan(dag)},
      {"MatFast/Folded", FoldedPlanner().Plan(dag)},
      {"DistME/NoFusion", NoFusionPlanner().Plan(dag)},
  };
  for (const Entry& e : entries) {
    std::printf("  %-16s %zu stage(s):\n", e.name, e.set.plans.size());
    for (const PartialPlan& plan : e.set.plans) {
      std::printf("    %s", plan.ToString().c_str());
      if (plan.size() > 1 || !plan.MatMuls().empty()) {
        PqrOptimizer opt(&model);
        PqrChoice choice = opt.Pruned(plan);
        if (choice.feasible) {
          std::printf("   (P*,Q*,R*)=%s", choice.c.ToString().c_str());
        }
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  ClusterConfig cluster;  // paper defaults: 8 nodes, 12 tasks, 10 GB, 1000
  CostModel model(cluster);

  {
    std::printf("=== GNMF update step (Eq. 6, Fig. 10) ===\n");
    GnmfQuery q = BuildGnmf(480000, 17700, 200, /*x_nnz=*/100480507);
    std::printf("%s\n", DagToString(q.dag).c_str());
    ShowPlans(q.dag, model);
    std::printf(
        "\n  Note how CFG fuses the matmul chains while GEN only folds the\n"
        "  element-wise pairs, and how the exploitation phase split off the\n"
        "  distant Vᵀ×V / U×Uᵀ products — exactly Fig. 10(b).\n\n");
  }
  {
    std::printf("=== Weighted squared loss (Fig. 1(a)) ===\n");
    AlsLossQuery q =
        BuildAlsLoss(100000, 20000, 200, /*x_nnz=*/20000000);
    std::printf("%s\n", DagToString(q.dag).c_str());
    ShowPlans(q.dag, model);
    std::printf("\n");
  }
  {
    std::printf("=== (X×Vᵀ*U)/(U×(V×Vᵀ)) (Fig. 1(c)) ===\n");
    Fig1cQuery q = BuildFig1c(100000, 100000, 100, /*x_nnz=*/10000000);
    std::printf("%s\n", DagToString(q.dag).c_str());
    ShowPlans(q.dag, model);
  }
  return 0;
}
