// Policy-level behaviours added on top of the basic engine tests: the
// cpmm fallback, narrow-dependency accounting, the TensorFlow mode, and
// the GNMF matrix-chain variants.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/reference.h"
#include "matrix/generators.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions SmallOptions(SystemMode mode) {
  EngineOptions options;
  options.system = mode;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  return options;
}

TEST(CpmmTest, ForcedCpmmMatchesReference) {
  // A plain matmul executed as a (1,1,R) k-partitioned shuffle.
  Dag dag;
  NodeId a = *dag.AddInput("A", 10, 40);
  NodeId b = *dag.AddInput("B", 40, 12);
  NodeId mm = *dag.AddMatMul(a, b);
  dag.MarkOutput(mm);
  DenseMatrix av = RandomDense(10, 40, 1, 0.5, 1.5);
  DenseMatrix bv = RandomDense(40, 12, 2, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[a] = BlockedMatrix::FromDense(av, kBs);
  inputs[b] = BlockedMatrix::FromDense(bv, kBs);
  auto expected = ReferenceEval(dag, mm, {{a, av}, {b, bv}});
  ASSERT_TRUE(expected.ok());

  FusionPlanSet plans;
  plans.plans.emplace_back(&dag, std::vector<NodeId>{mm}, mm);
  Engine engine(SmallOptions(SystemMode::kSystemDs));
  auto run = engine.RunWithPlans(dag, plans, inputs, OperatorKind::kCpmm);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_LE(DenseMatrix::MaxAbsDiff(run.outputs.at(mm).blocks().ToDense(),
                                    *expected),
            1e-10);
  EXPECT_NE(run.report.stages[0].label.find("[cpmm]"), std::string::npos);
}

TEST(CpmmTest, AnalyticSystemDsSurvivesHugeSides) {
  // YahooMusic k=1000 regime: neither broadcast (14.6 GB side) nor
  // replication (whole lhs per task) fits; cpmm must carry the stage.
  GnmfQuery q = BuildGnmf(1823179, 136736, 1000, 717872016);
  EngineOptions options;
  options.system = SystemMode::kSystemDs;
  options.analytic = true;
  Engine engine(options);
  auto run = engine.Run(q.dag, {});
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  bool used_cpmm = false;
  for (const StageStats& s : run.report.stages) {
    if (s.label.find("[cpmm]") != std::string::npos) used_cpmm = true;
  }
  EXPECT_TRUE(used_cpmm);
}

TEST(NarrowDependencyTest, CoPartitionedEwiseStageIsShuffleFree) {
  // X * U with both inputs grid-partitioned: zero consolidation traffic.
  Dag dag;
  NodeId x = *dag.AddInput("X", 32, 32, 100);
  NodeId u = *dag.AddInput("U", 32, 32);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, u);
  dag.MarkOutput(mul);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[x] = BlockedMatrix::FromSparse(RandomSparse(32, 32, 0.1, 3), kBs);
  inputs[u] = BlockedMatrix::FromDense(RandomDense(32, 32, 4), kBs);
  Engine engine(SmallOptions(SystemMode::kFuseMe));
  auto run = engine.Run(dag, inputs);
  ASSERT_TRUE(run.report.ok());
  EXPECT_EQ(run.report.consolidation_bytes, 0)
      << "co-partitioned element-wise inputs must not shuffle";
}

TEST(NarrowDependencyTest, TransposeStageStillShuffles) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 32, 16);
  NodeId t = *dag.AddTranspose(x);
  dag.MarkOutput(t);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[x] = BlockedMatrix::FromDense(RandomDense(32, 16, 5), kBs);
  Engine engine(SmallOptions(SystemMode::kFuseMe));
  auto run = engine.Run(dag, inputs);
  ASSERT_TRUE(run.report.ok());
  EXPECT_GT(run.report.consolidation_bytes, 0)
      << "reorganization is a wide dependency";
}

TEST(TensorFlowModeTest, MatchesReferenceOnNmf) {
  NmfPattern q = BuildNmfPattern(26, 22, 10, /*x_nnz=*/57);
  SparseMatrix x = RandomSparse(26, 22, 0.1, 71, 1.0, 2.0);
  DenseMatrix u = RandomDense(26, 10, 72, 0.5, 1.5);
  DenseMatrix v = RandomDense(22, 10, 73, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.mul,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  Engine engine(SmallOptions(SystemMode::kTensorFlow));
  auto run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_LE(DenseMatrix::MaxAbsDiff(run.outputs.at(q.mul).blocks().ToDense(),
                                    *expected),
            1e-9);
}

TEST(GnmfChainTest, BothAssociationsAgreeNumerically) {
  const std::int64_t m = 26, n = 20, k = 6;
  SparseMatrix x = RandomSparse(m, n, 0.2, 81, 1.0, 5.0);
  DenseMatrix v = RandomDense(m, k, 82, 0.5, 1.5);
  DenseMatrix u = RandomDense(k, n, 83, 0.5, 1.5);
  DenseMatrix expected;
  for (bool chain_opt : {true, false}) {
    GnmfQuery q = BuildGnmf(m, n, k, x.nnz(), chain_opt);
    auto v_next = ReferenceEval(
        q.dag, q.b5, {{q.X, x.ToDense()}, {q.V, v}, {q.U, u}});
    ASSERT_TRUE(v_next.ok());
    if (chain_opt) {
      expected = *v_next;
    } else {
      EXPECT_LE(DenseMatrix::MaxAbsDiff(*v_next, expected), 1e-9);
    }
  }
}

TEST(GnmfChainTest, UnoptimizedChainCostsMoreAnalytically) {
  const RatingDataset d{"Netflix", 480189, 17770, 100480507};
  double costs[2];
  for (bool chain_opt : {true, false}) {
    GnmfQuery q = BuildGnmf(d.users, d.items, 200, d.ratings, chain_opt);
    EngineOptions options;
    options.analytic = true;
    options.system = SystemMode::kMatFast;
    Engine engine(options);
    auto run = engine.Run(q.dag, {});
    ASSERT_TRUE(run.report.ok()) << run.report.status;
    costs[chain_opt ? 0 : 1] = run.report.elapsed_seconds;
  }
  EXPECT_GT(costs[1], 2.0 * costs[0]);
}

TEST(AggBytesTest, MaskedPartialsShrinkAggregation) {
  ClusterConfig cluster;
  CostModel model(cluster);
  NmfPattern sparse_q = BuildNmfPattern(50000, 50000, 4000, 2500000);
  NmfPattern dense_q =
      BuildNmfPattern(50000, 50000, 4000, 2500000000LL);
  PartialPlan sparse_plan(&sparse_q.dag,
                          {sparse_q.vT, sparse_q.mm, sparse_q.add,
                           sparse_q.log, sparse_q.mul},
                          sparse_q.mul);
  PartialPlan dense_plan(&dense_q.dag,
                         {dense_q.vT, dense_q.mm, dense_q.add, dense_q.log,
                          dense_q.mul},
                         dense_q.mul);
  const Cuboid c{4, 4, 4};
  EXPECT_LT(model.AggBytes(c, sparse_plan),
            model.AggBytes(c, dense_plan) / 100.0);
}

TEST(ForcedOperatorTest, CpmmOnFusedPlanMatchesOthers) {
  NmfPattern q = BuildNmfPattern(26, 22, 18, /*x_nnz=*/57);
  SparseMatrix x = RandomSparse(26, 22, 0.1, 91, 1.0, 2.0);
  DenseMatrix u = RandomDense(26, 18, 92, 0.5, 1.5);
  DenseMatrix v = RandomDense(22, 18, 93, 0.5, 1.5);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.mul,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  Engine engine(SmallOptions(SystemMode::kFuseMe));
  auto run = engine.RunWithPlans(q.dag, full, inputs, OperatorKind::kCpmm);
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_LE(DenseMatrix::MaxAbsDiff(run.outputs.at(q.mul).blocks().ToDense(),
                                    *expected),
            1e-9);
}

}  // namespace
}  // namespace fuseme
