// AutoEncoder training (paper §6.5): run mini-batch gradient descent where
// every step — forward, loss, backward — is one engine execution of the
// fused DAG.  The reconstruction loss should fall steadily.
//
//   $ ./build/examples/autoencoder_training

#include <cstdio>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

namespace {

void ApplyGradient(DenseMatrix* w, const DenseMatrix& grad, double lr) {
  for (std::int64_t i = 0; i < w->size(); ++i) {
    w->data()[i] -= lr * grad.data()[i];
  }
}

}  // namespace

int main() {
  const std::int64_t batch = 32, features = 48, h1 = 16, h2 = 4;
  const std::int64_t block = 16;
  const int steps = 12;
  const double lr = 0.5;

  AutoEncoderQuery q = BuildAutoEncoder(batch, features, h1, h2);
  DenseMatrix w1 = RandomDense(h1, features, /*seed=*/21, -0.3, 0.3);
  DenseMatrix w2 = RandomDense(h2, h1, /*seed=*/22, -0.3, 0.3);
  DenseMatrix w3 = RandomDense(h1, h2, /*seed=*/23, -0.3, 0.3);
  DenseMatrix w4 = RandomDense(features, h1, /*seed=*/24, -0.3, 0.3);

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 4;
  options.cluster.block_size = block;
  Engine engine(options);

  std::printf("training a %lld-%lld-%lld-%lld-%lld autoencoder, batch %lld\n",
              static_cast<long long>(features), static_cast<long long>(h1),
              static_cast<long long>(h2), static_cast<long long>(h1),
              static_cast<long long>(features),
              static_cast<long long>(batch));
  std::printf("%-6s %-12s %s\n", "step", "loss", "modeled step time");

  for (int step = 0; step < steps; ++step) {
    DenseMatrix x =
        RandomDense(batch, features, /*seed=*/100 + step, 0.0, 1.0);
    std::map<NodeId, BlockedMatrix> inputs;
    inputs[q.X] = BlockedMatrix::FromDense(x, block);
    inputs[q.W1] = BlockedMatrix::FromDense(w1, block);
    inputs[q.W2] = BlockedMatrix::FromDense(w2, block);
    inputs[q.W3] = BlockedMatrix::FromDense(w3, block);
    inputs[q.W4] = BlockedMatrix::FromDense(w4, block);

    Engine::RunResult run = engine.Run(q.dag, inputs);
    if (!run.report.ok()) {
      std::printf("step %d failed: %s\n", step, run.report.Summary().c_str());
      return 1;
    }
    const double loss = run.outputs.at(q.loss).blocks().ToDense()(0, 0);
    ApplyGradient(&w1, run.outputs.at(q.gW1).blocks().ToDense(), lr);
    ApplyGradient(&w2, run.outputs.at(q.gW2).blocks().ToDense(), lr);
    ApplyGradient(&w3, run.outputs.at(q.gW3).blocks().ToDense(), lr);
    ApplyGradient(&w4, run.outputs.at(q.gW4).blocks().ToDense(), lr);
    std::printf("%-6d %-12.4f %.3f sec\n", step + 1, loss,
                run.report.elapsed_seconds);
  }
  return 0;
}
