#include "matrix/blocked_matrix.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"

namespace fuseme {

namespace {

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Conversions below this many cells run serially; the per-tile work is a
// memcpy-like scan, so small matrices don't amortize a fork/join.
constexpr std::int64_t kParallelConvertCells = 1 << 20;

/// Runs fn(bi, bj) over every tile, in parallel for large matrices.  Tiles
/// touch disjoint state, so scheduling does not affect the result.
void ForEachTile(std::int64_t grid_rows, std::int64_t grid_cols,
                 std::int64_t total_cells,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t tiles = grid_rows * grid_cols;
  auto body = [&](std::int64_t t) { fn(t / grid_cols, t % grid_cols); };
  if (tiles > 1 && total_cells >= kParallelConvertCells &&
      GlobalParallelism() > 1) {
    GlobalThreadPool()->ParallelFor(0, tiles, body);
  } else {
    for (std::int64_t t = 0; t < tiles; ++t) body(t);
  }
}

}  // namespace

BlockedMatrix::BlockedMatrix(std::int64_t rows, std::int64_t cols,
                             std::int64_t block_size)
    : rows_(rows), cols_(cols), block_size_(block_size) {
  FUSEME_CHECK_GT(block_size, 0);
  FUSEME_CHECK_GE(rows, 0);
  FUSEME_CHECK_GE(cols, 0);
  grid_rows_ = rows == 0 ? 0 : CeilDiv(rows, block_size);
  grid_cols_ = cols == 0 ? 0 : CeilDiv(cols, block_size);
  blocks_.reserve(grid_rows_ * grid_cols_);
  for (std::int64_t bi = 0; bi < grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < grid_cols_; ++bj) {
      blocks_.push_back(Block::Zero(TileRows(bi), TileCols(bj)));
    }
  }
}

std::int64_t BlockedMatrix::TileRows(std::int64_t bi) const {
  FUSEME_CHECK(bi >= 0 && bi < grid_rows_);
  return std::min(block_size_, rows_ - bi * block_size_);
}

std::int64_t BlockedMatrix::TileCols(std::int64_t bj) const {
  FUSEME_CHECK(bj >= 0 && bj < grid_cols_);
  return std::min(block_size_, cols_ - bj * block_size_);
}

void BlockedMatrix::set_block(std::int64_t bi, std::int64_t bj, Block block) {
  FUSEME_CHECK_EQ(block.rows(), TileRows(bi));
  FUSEME_CHECK_EQ(block.cols(), TileCols(bj));
  blocks_[Index(bi, bj)] = std::move(block);
}

BlockedMatrix BlockedMatrix::FromDense(const DenseMatrix& dense,
                                       std::int64_t block_size) {
  BlockedMatrix out(dense.rows(), dense.cols(), block_size);
  // Each tile writes only its own grid slot, so extraction parallelizes.
  ForEachTile(out.grid_rows_, out.grid_cols_, dense.size(),
              [&](std::int64_t bi, std::int64_t bj) {
                const std::int64_t r0 = bi * block_size,
                                   c0 = bj * block_size;
                DenseMatrix tile(out.TileRows(bi), out.TileCols(bj));
                for (std::int64_t i = 0; i < tile.rows(); ++i) {
                  for (std::int64_t j = 0; j < tile.cols(); ++j) {
                    tile(i, j) = dense(r0 + i, c0 + j);
                  }
                }
                if (tile.CountNonZeros() > 0) {
                  out.set_block(bi, bj, Block::FromDense(std::move(tile)));
                }
              });
  return out;
}

BlockedMatrix BlockedMatrix::FromSparse(const SparseMatrix& sparse,
                                        std::int64_t block_size) {
  BlockedMatrix out(sparse.rows(), sparse.cols(), block_size);
  // Bucket triplets per tile, then build CSR tiles.
  std::vector<std::vector<std::tuple<std::int64_t, std::int64_t, double>>>
      buckets(out.num_blocks());
  sparse.ForEach([&](std::int64_t i, std::int64_t j, double v) {
    const std::int64_t bi = i / block_size, bj = j / block_size;
    buckets[out.Index(bi, bj)].emplace_back(i - bi * block_size,
                                            j - bj * block_size, v);
  });
  // Bucketing above is a sequential scan; tile construction is per-bucket
  // independent work.
  ForEachTile(out.grid_rows_, out.grid_cols_, sparse.nnz(),
              [&](std::int64_t bi, std::int64_t bj) {
                auto& bucket = buckets[out.Index(bi, bj)];
                if (bucket.empty()) return;
                SparseMatrix tile = SparseMatrix::FromTriplets(
                    out.TileRows(bi), out.TileCols(bj), std::move(bucket));
                if (tile.density() >= kDenseStorageThreshold) {
                  out.set_block(bi, bj, Block::FromDense(tile.ToDense()));
                } else {
                  out.set_block(bi, bj, Block::FromSparse(std::move(tile)));
                }
              });
  return out;
}

BlockedMatrix BlockedMatrix::MakeMeta(std::int64_t rows, std::int64_t cols,
                                      std::int64_t nnz,
                                      std::int64_t block_size) {
  BlockedMatrix out(rows, cols, block_size);
  FUSEME_CHECK_LE(nnz, rows * cols);
  const double density =
      rows * cols == 0 ? 0.0 : static_cast<double>(nnz) / (rows * cols);
  for (std::int64_t bi = 0; bi < out.grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < out.grid_cols_; ++bj) {
      const std::int64_t cells = out.TileRows(bi) * out.TileCols(bj);
      const auto tile_nnz =
          static_cast<std::int64_t>(density * static_cast<double>(cells));
      out.set_block(bi, bj,
                    Block::Meta(out.TileRows(bi), out.TileCols(bj),
                                std::min(tile_nnz, cells)));
    }
  }
  return out;
}

std::int64_t BlockedMatrix::nnz() const {
  std::int64_t total = 0;
  for (const Block& b : blocks_) total += b.nnz();
  return total;
}

std::int64_t BlockedMatrix::SizeBytes() const {
  std::int64_t total = 0;
  for (const Block& b : blocks_) total += b.SizeBytes();
  return total;
}

bool BlockedMatrix::IsReal() const {
  for (const Block& b : blocks_) {
    if (!b.is_real()) return false;
  }
  return true;
}

DenseMatrix BlockedMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  // Each tile fills a disjoint rectangle of the output.
  ForEachTile(grid_rows_, grid_cols_, rows_ * cols_,
              [&](std::int64_t bi, std::int64_t bj) {
                const Block& b = block(bi, bj);
                FUSEME_CHECK(b.is_real()) << "ToDense on meta matrix";
                const std::int64_t r0 = bi * block_size_,
                                   c0 = bj * block_size_;
                if (b.is_zero()) return;
                DenseMatrix tile = b.ToDense();
                for (std::int64_t i = 0; i < tile.rows(); ++i) {
                  for (std::int64_t j = 0; j < tile.cols(); ++j) {
                    out(r0 + i, c0 + j) = tile(i, j);
                  }
                }
              });
  return out;
}

}  // namespace fuseme
