// Expr: fluent query-construction API over Dag.
//
//   Dag dag;
//   Expr X = Expr::Input(&dag, "X", 1000, 1000, /*nnz=*/5000);
//   Expr U = Expr::Input(&dag, "U", 1000, 100);
//   Expr V = Expr::Input(&dag, "V", 100, 1000);
//   Expr loss = Sum(NotZero(X) * Square(X - MatMul(U, V)));
//   loss.MarkOutput();
//
// Shape errors CHECK-fail at construction (queries are author-written code,
// so malformed shapes are programming errors); the underlying Dag::Add*
// methods return Status for callers that need recoverable validation.

#ifndef FUSEME_IR_EXPR_H_
#define FUSEME_IR_EXPR_H_

#include <string>

#include "common/logging.h"
#include "ir/dag.h"

namespace fuseme {

class Expr {
 public:
  Expr() : dag_(nullptr), id_(kInvalidNode) {}
  Expr(Dag* dag, NodeId id) : dag_(dag), id_(id) {}

  static Expr Input(Dag* dag, std::string name, std::int64_t rows,
                    std::int64_t cols, std::int64_t nnz = -1);
  static Expr Scalar(Dag* dag, double value);

  Dag* dag() const { return dag_; }
  NodeId id() const { return id_; }
  const Node& node() const { return dag_->node(id_); }
  bool valid() const { return dag_ != nullptr && id_ != kInvalidNode; }

  /// Marks this expression as a query output; returns *this for chaining.
  Expr MarkOutput() const {
    dag_->MarkOutput(id_);
    return *this;
  }

 private:
  Dag* dag_;
  NodeId id_;
};

// --- element-wise binary operators ---------------------------------------
Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);
Expr operator+(const Expr& a, double s);
Expr operator+(double s, const Expr& b);
Expr operator-(const Expr& a, double s);
Expr operator-(double s, const Expr& b);
Expr operator*(const Expr& a, double s);
Expr operator*(double s, const Expr& b);
Expr operator/(const Expr& a, double s);
Expr operator/(double s, const Expr& b);
Expr Min(const Expr& a, const Expr& b);
Expr Max(const Expr& a, const Expr& b);
Expr Pow(const Expr& a, const Expr& b);
Expr NotEqual(const Expr& a, const Expr& b);

// --- element-wise unary --------------------------------------------------
Expr Exp(const Expr& a);
Expr Log(const Expr& a);
Expr Sqrt(const Expr& a);
Expr Square(const Expr& a);
Expr Abs(const Expr& a);
Expr Sigmoid(const Expr& a);
Expr Relu(const Expr& a);
Expr NotZero(const Expr& a);
Expr Neg(const Expr& a);

// --- structural ------------------------------------------------------------
Expr MatMul(const Expr& a, const Expr& b);
Expr T(const Expr& a);  // transpose

// --- aggregations ----------------------------------------------------------
Expr Sum(const Expr& a);
Expr RowSums(const Expr& a);
Expr ColSums(const Expr& a);
Expr MinAgg(const Expr& a);
Expr MaxAgg(const Expr& a);

}  // namespace fuseme

#endif  // FUSEME_IR_EXPR_H_
