# Empty dependencies file for blocked_matrix_test.
# This may be replaced when dependencies are built.
