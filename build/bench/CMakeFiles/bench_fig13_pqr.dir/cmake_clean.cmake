file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pqr.dir/bench_fig13_pqr.cc.o"
  "CMakeFiles/bench_fig13_pqr.dir/bench_fig13_pqr.cc.o.d"
  "bench_fig13_pqr"
  "bench_fig13_pqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
