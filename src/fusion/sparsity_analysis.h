// Sparsity-exploitation analysis (paper Fig. 1(a), "Outer" pattern, §2.1).
//
// When a plan's O-space multiplies the matmul result element-wise by a
// sparse external matrix X — possibly through a chain of element-wise
// operators, as in (X != 0) * (X - U×V)^2 — the fused operator only needs
// to evaluate the matmul (and the chain) at the non-zero positions of X.
// This analysis finds that pattern so the cost model can scale the compute
// estimate and the executor can take the per-element kernel path.

#ifndef FUSEME_FUSION_SPARSITY_ANALYSIS_H_
#define FUSEME_FUSION_SPARSITY_ANALYSIS_H_

#include <vector>

#include "fusion/partial_plan.h"

namespace fuseme {

struct SparseDriver {
  /// The masking element-wise multiplication b(*).
  NodeId mul_node = kInvalidNode;
  /// The sparse external input providing the mask.
  NodeId sparse_input = kInvalidNode;
  /// Nodes on the path main_mm -> mul_node (inclusive) whose work scales
  /// with the mask density instead of the full cell count.
  std::vector<NodeId> scaled_nodes;
  /// Density of the mask.
  double density = 1.0;

  bool found() const { return mul_node != kInvalidNode; }
};

/// Density below which a mask is worth exploiting.
inline constexpr double kSparseDriverDensityThreshold = 0.25;

/// Walks upward from `main_mm` through element-wise members looking for a
/// b(*) whose other operand is a sparse external input of matching shape.
SparseDriver FindSparseDriver(
    const PartialPlan& plan, NodeId main_mm,
    double density_threshold = kSparseDriverDensityThreshold);

}  // namespace fuseme

#endif  // FUSEME_FUSION_SPARSITY_ANALYSIS_H_
