# Empty compiler generated dependencies file for fuseme_cost.
# This may be replaced when dependencies are built.
