#include "cost/optimizer.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "fusion/sparsity_analysis.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

void PqrOptimizer::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    searches_ = evaluations_ = pruned_ = infeasible_ = nullptr;
    return;
  }
  searches_ = metrics->GetCounter(metric_names::kOptimizerSearches);
  evaluations_ = metrics->GetCounter(metric_names::kOptimizerEvaluations);
  pruned_ = metrics->GetCounter(metric_names::kOptimizerCuboidsPruned);
  infeasible_ = metrics->GetCounter(metric_names::kOptimizerInfeasible);
}

void PqrOptimizer::RecordSearch(const PqrChoice& best,
                                std::int64_t grid_volume) const {
  if (searches_ == nullptr) return;
  searches_->Increment();
  evaluations_->Add(best.evaluations);
  pruned_->Add(std::max<std::int64_t>(0, grid_volume - best.evaluations));
  if (!best.feasible) infeasible_->Increment();
}

namespace {

/// Deterministic preference among (near-)equal-cost choices: lower cost,
/// then less network traffic, then smaller volume (fewer replicas), then
/// smaller R (cheaper aggregation), then smaller W (more task parallelism
/// on the k-axis), then lexicographic (P, Q).  The final tie-break makes
/// this a total order over distinct cuboids, so Exhaustive and Pruned pick
/// the SAME cuboid among equal-cost candidates even though they enumerate
/// the grid in different axis orders.
bool Better(const PqrChoice& a, const PqrChoice& b) {
  constexpr double kEps = 1e-12;
  if (a.cost + kEps < b.cost) return true;
  if (b.cost + kEps < a.cost) return false;
  if (a.net_bytes + kEps < b.net_bytes) return true;
  if (b.net_bytes + kEps < a.net_bytes) return false;
  if (a.c.volume() != b.c.volume()) return a.c.volume() < b.c.volume();
  if (a.c.R != b.c.R) return a.c.R < b.c.R;
  if (a.c.W != b.c.W) return a.c.W < b.c.W;
  return std::tie(a.c.P, a.c.Q) < std::tie(b.c.P, b.c.Q);
}

/// Candidate k-slice grouping factors for a given R.  W only pays when the
/// mask-replication / aggregation terms exist — i.e. the plan has a sparse
/// driver and R > 1 — so otherwise the search stays on the W = 1 plane and
/// reproduces the historical (P,Q,R) enumeration exactly.  Powers of two
/// up to R keep the extra dimension logarithmic.
std::vector<std::int64_t> WCandidates(std::int64_t r, bool sparse_plan) {
  std::vector<std::int64_t> ws = {1};
  if (!sparse_plan || r <= 1) return ws;
  for (std::int64_t w = 2; w < r; w *= 2) ws.push_back(w);
  ws.push_back(r);
  return ws;
}

}  // namespace

bool PqrOptimizer::Consider(const PartialPlan& plan, const Cuboid& c,
                            PqrChoice* best) const {
  ++best->evaluations;
  const CostModel::Estimates est = model_->Estimate(c, plan);
  if (est.mem_per_task > static_cast<double>(
                             model_->config().task_memory_budget)) {
    return false;
  }
  PqrChoice candidate;
  candidate.c = c;
  candidate.mem_per_task = est.mem_per_task;
  candidate.net_bytes = est.net_bytes;
  candidate.agg_bytes = est.agg_bytes;
  candidate.flops = est.flops;
  const double n = static_cast<double>(model_->config().num_nodes);
  candidate.cost = std::max(
      (est.net_bytes + est.agg_bytes) / (n * model_->config().net_bandwidth),
      est.flops / (n * model_->config().compute_bandwidth));
  candidate.feasible = true;
  if (!best->feasible || Better(candidate, *best)) {
    const std::int64_t evals = best->evaluations;
    *best = candidate;
    best->evaluations = evals;
  }
  return true;
}

PqrChoice PqrOptimizer::Exhaustive(const PartialPlan& plan,
                                   std::int64_t max_r) const {
  GridDims g = model_->Grid(plan);
  if (max_r > 0) g.K = std::min(g.K, max_r);
  const std::int64_t min_volume = model_->config().total_tasks();
  const bool sparse_plan = FindSparseDriver(plan, plan.MainMatMul()).found();
  PqrChoice best;
  if (g.I * g.J * g.K < min_volume) {
    // The grid cannot fill the cluster: use the largest partitioning
    // (grouping can still pay by cutting mask/aggregation traffic).
    for (std::int64_t w : WCandidates(g.K, sparse_plan)) {
      Consider(plan, Cuboid{g.I, g.J, g.K, w}, &best);
    }
    if (!best.feasible) best.c = Cuboid{g.I, g.J, g.K};
    RecordSearch(best, 1);
    return best;
  }
  for (std::int64_t p = 1; p <= g.I; ++p) {
    for (std::int64_t q = 1; q <= g.J; ++q) {
      for (std::int64_t r = 1; r <= g.K; ++r) {
        for (std::int64_t w : WCandidates(r, sparse_plan)) {
          const Cuboid c{p, q, r, w};
          // Schedulable tasks are the leader count, so the cluster-filling
          // floor applies to the effective volume.
          if (c.effective_volume() < min_volume) continue;
          Consider(plan, c, &best);
        }
      }
    }
  }
  if (!best.feasible) best.c = Cuboid{g.I, g.J, g.K};
  RecordSearch(best, g.I * g.J * g.K);
  return best;
}

PqrChoice PqrOptimizer::Pruned(const PartialPlan& plan,
                               std::int64_t max_r) const {
  GridDims g = model_->Grid(plan);
  if (max_r > 0) g.K = std::min(g.K, max_r);
  const std::int64_t min_volume = model_->config().total_tasks();
  const bool sparse_plan = FindSparseDriver(plan, plan.MainMatMul()).found();
  PqrChoice best;
  if (g.I * g.J * g.K < min_volume) {
    for (std::int64_t w : WCandidates(g.K, sparse_plan)) {
      Consider(plan, Cuboid{g.I, g.J, g.K, w}, &best);
    }
    if (!best.feasible) best.c = Cuboid{g.I, g.J, g.K};
    RecordSearch(best, 1);
    return best;
  }
  for (std::int64_t q = 1; q <= g.J; ++q) {
    for (std::int64_t r = 1; r <= g.K; ++r) {
      for (std::int64_t w : WCandidates(r, sparse_plan)) {
        const std::int64_t groups = Cuboid{1, 1, r, w}.groups();
        // Smallest P that fills the cluster with leader tasks; cost is
        // nondecreasing in P for fixed (q, r, w), so scan upward and stop
        // at the first memory-feasible point.
        std::int64_t p0 = (min_volume + q * groups - 1) / (q * groups);
        p0 = std::max<std::int64_t>(p0, 1);
        if (p0 > g.I) continue;
        for (std::int64_t p = p0; p <= g.I; ++p) {
          // First memory-feasible P wins this (q, r, w) column: NetEst and
          // ComEst are nondecreasing in P while volume strictly grows, so
          // every larger P compares worse under Better() (infeasible
          // points must still be skipped — MemEst shrinks with P).
          if (Consider(plan, Cuboid{p, q, r, w}, &best)) break;
        }
      }
    }
  }
  if (!best.feasible) best.c = Cuboid{g.I, g.J, g.K};
  RecordSearch(best, g.I * g.J * g.K);
  return best;
}

}  // namespace fuseme
