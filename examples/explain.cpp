// Explain: run a query with full telemetry and print, side by side, what
// the cost model predicted for every stage and what the runtime actually
// charged — plus a Chrome trace of the stage/work-item timeline.
//
//   $ ./build/examples/explain
//
// Output: the chosen fusion plan per stage (with its (P,Q,R) cuboid), the
// predicted-vs-actual table (net / agg / flops / mem with per-dimension
// ratios), and explain_trace.json for chrome://tracing or
// https://ui.perfetto.dev.  The query is the paper's running example,
// O = X * log(U × Vᵀ + eps).

#include <cstdio>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

int main() {
  // --- 1. The query: O = X * log(U x V^T + eps), sparse X. ---------------
  const std::int64_t n = 160, k = 32, block = 16;
  Dag dag;
  Expr X = Expr::Input(&dag, "X", n, n, /*nnz=*/n * n / 10);
  Expr U = Expr::Input(&dag, "U", n, k);
  Expr V = Expr::Input(&dag, "V", n, k);
  Expr O = (X * Log(MatMul(U, T(V)) + 1e-8)).MarkOutput();

  std::printf("Query: %s\n", ExprToString(dag, O.id()).c_str());

  std::map<NodeId, BlockedMatrix> inputs;
  inputs[X.id()] = BlockedMatrix::FromSparse(
      RandomSparse(n, n, 0.1, /*seed=*/1, 1.0, 5.0), block);
  inputs[U.id()] = BlockedMatrix::FromDense(
      RandomDense(n, k, /*seed=*/2, 0.5, 1.5), block);
  inputs[V.id()] = BlockedMatrix::FromDense(
      RandomDense(n, k, /*seed=*/3, 0.5, 1.5), block);

  // --- 2. Run in real mode with a tracer attached. -----------------------
  Tracer tracer;
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = block;
  options.tracer = &tracer;
  Engine engine(options);

  // Describe shows every registered solver's verdict per stage — the
  // decision Compile freezes — without running anything.
  const PlanDescription described = engine.Describe(dag);
  std::printf("\nSolver table:\n%s", described.ToString().c_str());

  Result<CompiledPlan> compiled = engine.Compile(dag);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("\nChosen plan (%s):\n", compiled->description().c_str());
  for (const CompiledStage& stage : compiled->stages()) {
    if (stage.prediction_status.ok()) {
      std::printf("  solver=%-18s %s cuboid=%s  modeled=%s\n",
                  stage.solver_id.c_str(),
                  stage.prediction.operator_kind.c_str(),
                  stage.prediction.cuboid.ToString().c_str(),
                  HumanSeconds(stage.prediction.cost_seconds).c_str());
    } else {
      std::printf("  solver=%-18s (no feasible cuboid: %s)\n",
                  stage.solver_id.c_str(),
                  stage.prediction_status.ToString().c_str());
    }
  }

  Engine::RunResult run = engine.Execute(*compiled, inputs);
  std::printf("\nExecution: %s\n", run.report.Summary().c_str());
  if (!run.report.ok()) return 1;

  // --- 3. Predicted vs actual, per stage. --------------------------------
  std::printf("\n%s", FormatPredictionTable(run.report.telemetry).c_str());

  const PredictionReport report =
      BuildPredictionReport(run.report.telemetry);
  std::printf(
      "\nworst drift across %zu stage(s): max |log2(actual/predicted)| = "
      "%.3f (%s within 4x)\n",
      report.stages.size(), report.max_abs_log2,
      report.WithinFactor(4.0) ? "all ratios" : "NOT all ratios");

  // --- 4. Export the span timeline. --------------------------------------
  if (tracer.WriteChromeJson("explain_trace.json")) {
    std::printf(
        "\nwrote explain_trace.json (%zu spans) — open with "
        "chrome://tracing or https://ui.perfetto.dev\n",
        tracer.size());
  }
  return 0;
}
