// Fixture solver catalogue for the inline-literal negative case.
#ifndef FIXTURE_SOLVER_LITERAL_SOLVER_NAMES_H_
#define FIXTURE_SOLVER_LITERAL_SOLVER_NAMES_H_

namespace fuseme::solver_names {

inline constexpr char kDemo[] = "solver.demo";

}  // namespace fuseme::solver_names

#endif  // FIXTURE_SOLVER_LITERAL_SOLVER_NAMES_H_
