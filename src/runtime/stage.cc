#include "runtime/stage.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace fuseme {

namespace {

Status OverBudget(const std::string& label, int task, std::int64_t used,
                  std::int64_t budget) {
  return Status::OutOfMemory(
      label + ": task " + std::to_string(task) + " needs " +
      HumanBytes(static_cast<double>(used)) + " > budget " +
      HumanBytes(static_cast<double>(budget)));
}

}  // namespace

TaskAccounting& StageContext::GrowTo(int task) {
  FUSEME_CHECK_GE(task, 0);
  if (task >= static_cast<int>(tasks_.size())) {
    tasks_.resize(task + 1);
  }
  return tasks_[task];
}

void StageContext::ChargeConsolidation(int task, std::int64_t bytes) {
  MutexLock lock(merge_mu_);
  GrowTo(task).consolidation_bytes += bytes;
}

void StageContext::ChargeAggregation(int task, std::int64_t bytes) {
  MutexLock lock(merge_mu_);
  GrowTo(task).aggregation_bytes += bytes;
}

void StageContext::ChargeFlops(int task, std::int64_t flops) {
  MutexLock lock(merge_mu_);
  GrowTo(task).flops += flops;
}

Status StageContext::ChargeMemory(int task, std::int64_t bytes) {
  MutexLock lock(merge_mu_);
  TaskAccounting& acct = GrowTo(task);
  acct.memory_used += bytes;
  acct.memory_peak = std::max(acct.memory_peak, acct.memory_used);
  if (acct.memory_used > config_.task_memory_budget) {
    return OverBudget(label_, task, acct.memory_used,
                      config_.task_memory_budget);
  }
  return Status::OK();
}

void StageContext::ReleaseMemory(int task, std::int64_t bytes) {
  MutexLock lock(merge_mu_);
  TaskAccounting& acct = GrowTo(task);
  acct.memory_used -= bytes;
  FUSEME_CHECK_GE(acct.memory_used, 0);
}

Status StageContext::MergeTask(int task, const TaskAccounting& local) {
  MutexLock lock(merge_mu_);
  TaskAccounting& acct = GrowTo(task);
  acct.consolidation_bytes += local.consolidation_bytes;
  acct.aggregation_bytes += local.aggregation_bytes;
  acct.flops += local.flops;
  acct.memory_peak =
      std::max(acct.memory_peak, acct.memory_used + local.memory_peak);
  acct.memory_used += local.memory_used;
  if (acct.memory_used > config_.task_memory_budget) {
    return OverBudget(label_, task, acct.memory_used,
                      config_.task_memory_budget);
  }
  return Status::OK();
}

void StageContext::ConfigureRecovery(const FaultInjector* injector,
                                     int stage_ordinal,
                                     const RetryPolicy& retry) {
  injector_ = injector;
  stage_ordinal_ = stage_ordinal;
  retry_ = retry;
}

void StageContext::RecordItemRecovery(int attempts, int injected_failures,
                                      double backoff_seconds,
                                      bool exhausted) {
  MutexLock lock(merge_mu_);
  recovery_.attempts += attempts;
  recovery_.retries += std::max(attempts - 1, 0);
  recovery_.injected_failures += injected_failures;
  recovery_.backoff_seconds += backoff_seconds;
  if (exhausted) ++recovery_.exhausted_items;
}

StageRecovery StageContext::recovery() const {
  MutexLock lock(merge_mu_);
  return recovery_;
}

void StageContext::RecordItemPipeline(const StagePipeline& item) {
  MutexLock lock(merge_mu_);
  pipeline_.prefetch_issued += item.prefetch_issued;
  pipeline_.prefetch_ready += item.prefetch_ready;
  pipeline_.prefetch_waited += item.prefetch_waited;
  pipeline_.prefetch_stolen += item.prefetch_stolen;
  pipeline_.prefetch_cancelled += item.prefetch_cancelled;
  pipeline_.prefetch_misses += item.prefetch_misses;
  pipeline_.fetch_wait_seconds += item.fetch_wait_seconds;
  pipeline_.compute_busy_seconds += item.compute_busy_seconds;
}

StagePipeline StageContext::pipeline() const {
  MutexLock lock(merge_mu_);
  return pipeline_;
}

int StageContext::Parallelism() const {
  return config_.local_threads > 0 ? config_.local_threads
                                   : GlobalParallelism();
}

int StageContext::num_tasks() const {
  MutexLock lock(merge_mu_);
  return static_cast<int>(tasks_.size());
}

TaskAccounting StageContext::task(int task_id) const {
  MutexLock lock(merge_mu_);
  if (task_id < 0 || task_id >= static_cast<int>(tasks_.size())) {
    return TaskAccounting{};
  }
  return tasks_[task_id];
}

StageStats StageContext::Finalize() const {
  MutexLock lock(merge_mu_);
  StageStats stats;
  stats.label = label_;
  stats.num_tasks = static_cast<int>(tasks_.size());
  for (const TaskAccounting& t : tasks_) {
    stats.consolidation_bytes += t.consolidation_bytes;
    stats.aggregation_bytes += t.aggregation_bytes;
    stats.flops += t.flops;
    stats.max_task_memory = std::max(stats.max_task_memory, t.memory_peak);
  }
  return stats;
}

void LocalStageAccounting::ChargeConsolidation(int task, std::int64_t bytes) {
  tasks_[task].consolidation_bytes += bytes;
}

void LocalStageAccounting::ChargeAggregation(int task, std::int64_t bytes) {
  tasks_[task].aggregation_bytes += bytes;
}

void LocalStageAccounting::ChargeFlops(int task, std::int64_t flops) {
  tasks_[task].flops += flops;
}

Status LocalStageAccounting::ChargeMemory(int task, std::int64_t bytes) {
  TaskAccounting& acct = tasks_[task];
  acct.memory_used += bytes;
  acct.memory_peak = std::max(acct.memory_peak, acct.memory_used);
  if (acct.memory_used > config().task_memory_budget) {
    return OverBudget(parent_->label(), task, acct.memory_used,
                      config().task_memory_budget);
  }
  return Status::OK();
}

void LocalStageAccounting::ReleaseMemory(int task, std::int64_t bytes) {
  TaskAccounting& acct = tasks_[task];
  acct.memory_used -= bytes;
  FUSEME_CHECK_GE(acct.memory_used, 0);
}

Status LocalStageAccounting::Flush() {
  Status first;
  for (const auto& [task, acct] : tasks_) {
    Status s = parent_->MergeTask(task, acct);
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  tasks_.clear();
  return first;
}

}  // namespace fuseme
