
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dag.cc" "src/ir/CMakeFiles/fuseme_ir.dir/dag.cc.o" "gcc" "src/ir/CMakeFiles/fuseme_ir.dir/dag.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/fuseme_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/fuseme_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/fuseme_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/fuseme_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/fuseme_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/fuseme_ir.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/fuseme_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
