// Binary matrix persistence — the engine's analogue of the paper's
// parquet-on-HDFS matrix storage (§5).
//
// Format (little-endian, versioned):
//   header: magic "FMEM", u32 version, i64 rows, cols, block_size,
//           i64 block_count
//   per block: i64 bi, bj, u8 kind (0 zero, 1 dense, 2 sparse),
//              payload (dense: row-major doubles; sparse: nnz, then
//              row_ptr/col_idx/values arrays)
//
// Meta (descriptor-only) matrices are not serializable.

#ifndef FUSEME_MATRIX_MATRIX_IO_H_
#define FUSEME_MATRIX_MATRIX_IO_H_

#include <string>

#include "common/result.h"
#include "matrix/blocked_matrix.h"

namespace fuseme {

/// Writes `matrix` to `path`, overwriting.  Fails on meta blocks or I/O
/// errors.
Status SaveMatrix(const BlockedMatrix& matrix, const std::string& path);

/// Reads a matrix written by SaveMatrix.
Result<BlockedMatrix> LoadMatrix(const std::string& path);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_MATRIX_IO_H_
