// Negative compile fixture: calls a REQUIRES(mu_) helper without holding
// the mutex.  Under Clang with -Wthread-safety -Werror this must NOT
// compile ("calling function 'RetireLocked' requires holding mutex
// 'mu_'").

#include "common/synchronization.h"

namespace fixture {

class Queue {
 public:
  void Retire() {
    RetireLocked();  // BUG: caller never acquired mu_.
  }

 private:
  void RetireLocked() REQUIRES(mu_) { ++retired_; }

  fuseme::Mutex mu_;
  int retired_ GUARDED_BY(mu_) = 0;
};

void Drive() {
  Queue queue;
  queue.Retire();
}

}  // namespace fixture
