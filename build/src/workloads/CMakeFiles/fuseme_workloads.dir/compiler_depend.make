# Empty compiler generated dependencies file for fuseme_workloads.
# This may be replaced when dependencies are built.
