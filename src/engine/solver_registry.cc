#include "engine/solver_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/solver_names.h"
#include "fusion/sparsity_analysis.h"
#include "telemetry/event_journal.h"
#include "telemetry/event_names.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {

namespace {

/// Eq. 2 for estimates assembled outside the cost model's Cost().
double Eq2Seconds(const ClusterConfig& cluster, double bytes, double flops) {
  const double n = static_cast<double>(cluster.num_nodes);
  return std::max(bytes / (n * cluster.net_bandwidth),
                  flops / (n * cluster.compute_bandwidth));
}

void FillEstimates(const Cuboid& c, const CostModel::Estimates& est,
                   const ClusterConfig& cluster, StagePrediction* pred) {
  pred->cuboid = c;
  // W-grouped k-slices share a leader task, so schedulable tasks are the
  // effective volume P·Q·⌈R/W⌉ (= P·Q·R when W = 1).
  pred->num_tasks = static_cast<int>(
      std::min<std::int64_t>(c.effective_volume(), 1 << 24));
  pred->net_bytes = est.net_bytes;
  pred->agg_bytes = est.agg_bytes;
  pred->flops = est.flops;
  pred->mem_per_task = est.mem_per_task;
  pred->cost_seconds =
      Eq2Seconds(cluster, est.net_bytes + est.agg_bytes, est.flops);
}

/// (P,Q,R) search under the configured budget scaled by `budget_factor`
/// (< 1 models a tighter budget, steering the search toward finer cuboids
/// with smaller per-task footprints).
PqrChoice OptimizeCuboid(const SolverEnv& env, const PartialPlan& plan,
                         double budget_factor) {
  // Plans whose O-space reshapes the matmul output cannot split the
  // common dimension (no coordinate-wise partial merge is possible).
  const std::int64_t max_r = CuboidSupportsKSplit(plan) ? 0 : 1;
  auto search = [&](const CostModel* model) {
    PqrOptimizer optimizer(model);
    optimizer.set_metrics(env.metrics);
    return env.pruned_search ? optimizer.Pruned(plan, max_r)
                             : optimizer.Exhaustive(plan, max_r);
  };
  PqrChoice choice;
  if (budget_factor == 1.0) {
    choice = search(env.model);
  } else {
    const CostModel tight = env.model->WithBudgetFactor(budget_factor);
    choice = search(&tight);
  }
  if (env.journal != nullptr) {
    if (choice.feasible) {
      env.journal->Emit(LogLevel::kInfo, event_names::kOptimizerChoice,
                        {{"plan", plan.ToString()},
                         {"cuboid", choice.c.ToString()},
                         {"cost_seconds", std::to_string(choice.cost)}});
    } else {
      env.journal->Emit(LogLevel::kWarning, event_names::kOptimizerChoice,
                        {{"plan", plan.ToString()}, {"feasible", "false"}});
    }
  }
  return choice;
}

/// Shared empty-region precondition: fused operators iterate member
/// operator nodes, so an empty plan has nothing to execute.
Status RequireMembers(std::string_view solver_id, const PartialPlan& plan) {
  if (plan.members().empty()) {
    return Status::InvalidArgument(
        std::string(solver_id) +
        " requires a fused region with at least one member operator; the "
        "plan is empty");
  }
  return Status::OK();
}

// --- CFO family ------------------------------------------------------------

Result<StagePrediction> CfoPredictBase(const SolverEnv& env,
                                       const PartialPlan& plan,
                                       double budget_factor) {
  StagePrediction pred;
  pred.present = true;
  pred.operator_kind = "CFO";
  const PqrChoice choice = OptimizeCuboid(env, plan, budget_factor);
  if (!choice.feasible) {
    return Status::OutOfMemory(
        "no feasible (P,Q,R) for plan " + plan.ToString() +
        " within the per-task budget" +
        (budget_factor == 1.0
             ? ""
             : " (degraded to " + std::to_string(budget_factor) + "x)"));
  }
  CostModel::Estimates est;
  est.mem_per_task = choice.mem_per_task;
  est.net_bytes = choice.net_bytes;
  est.agg_bytes = choice.agg_bytes;
  est.flops = choice.flops;
  FillEstimates(choice.c, est, env.cluster(), &pred);
  pred.cost_seconds = choice.cost;
  return pred;
}

class CfoSolver : public StageSolver {
 public:
  std::string_view id() const override { return solver_names::kCfo; }
  OperatorKind kind() const override { return OperatorKind::kCfo; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    (void)env;
    return RequireMembers(id(), plan);
  }

  Result<StagePrediction> PredictBase(const SolverEnv& env,
                                      const PartialPlan& plan,
                                      double budget_factor) const override {
    return CfoPredictBase(env, plan, budget_factor);
  }

  void RefinePrediction(const SolverEnv& env, const PartialPlan& plan,
                        const FusedInputs* inputs,
                        StagePrediction* pred) const override {
    RefineCellStagePrediction(env, plan, inputs, pred);
  }

  Result<DistributedMatrix> Run(const SolverEnv& env, const PartialPlan& plan,
                                const StagePrediction& pred,
                                const FusedInputs& inputs,
                                StageContext* ctx) const override {
    CuboidOptions cuboid_options;
    cuboid_options.balance_sparsity = env.balance_sparsity;
    return CuboidFusedOperator::Execute(plan, pred.cuboid, inputs, ctx,
                                        cuboid_options);
  }
};

/// Refinements share the base CFO's prediction and execution — the sparse
/// kernel dispatch lives inside CuboidFusedOperator / the evaluator — so
/// resolving to one changes the recorded identity and telemetry, never
/// the numbers.  Their preconditions state when the sparse paths engage.
class CfoSpmmSolver : public CfoSolver {
 public:
  std::string_view id() const override { return solver_names::kCfoSpmm; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    (void)env;
    FUSEME_RETURN_IF_ERROR(RequireMembers(id(), plan));
    if (plan.MatMuls().empty()) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires a member matrix multiplication to drive the sparse "
          "kernels; the plan has none");
    }
    const SparseDriver driver = FindSparseDriver(plan, plan.MainMatMul());
    if (!driver.found()) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires an element-wise sparse mask (density < " +
          std::to_string(kSparseDriverDensityThreshold) +
          ") over the matrix product; no sparse driver found");
    }
    return Status::OK();
  }
};

class CfoSddmmSolver : public CfoSolver {
 public:
  std::string_view id() const override { return solver_names::kCfoSddmm; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    (void)env;
    FUSEME_RETURN_IF_ERROR(RequireMembers(id(), plan));
    if (plan.MatMuls().empty()) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires a member matrix multiplication to evaluate at the "
          "mask's stored positions; the plan has none");
    }
    const NodeId main_mm = plan.MainMatMul();
    const SparseDriver driver = FindSparseDriver(plan, main_mm);
    if (!driver.found()) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires an element-wise sparse mask (density < " +
          std::to_string(kSparseDriverDensityThreshold) +
          ") over the matrix product; no sparse driver found");
    }
    const Node& mul = plan.dag().node(driver.mul_node);
    const bool masks_matmul_directly =
        std::find(mul.inputs.begin(), mul.inputs.end(), main_mm) !=
        mul.inputs.end();
    if (!masks_matmul_directly) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires the sparse mask to multiply the matrix product "
          "directly (SDDMM); the mask applies through an element-wise "
          "chain");
    }
    return Status::OK();
  }
};

// --- BFO -------------------------------------------------------------------

class BfoSolver : public StageSolver {
 public:
  std::string_view id() const override { return solver_names::kBfo; }
  OperatorKind kind() const override { return OperatorKind::kBfo; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    FUSEME_RETURN_IF_ERROR(RequireMembers(id(), plan));
    const InputSplit split = SplitPlanInputs(plan);
    const std::int64_t budget = env.cluster().task_memory_budget;
    if (split.side_bytes > budget) {
      return Status::InvalidArgument(
          std::string(id()) + " must broadcast " +
          HumanBytes(static_cast<double>(split.side_bytes)) +
          " of side matrices to every task, exceeding the per-task memory "
          "budget (" +
          HumanBytes(static_cast<double>(budget)) + ")");
    }
    return Status::OK();
  }

  Result<StagePrediction> PredictBase(const SolverEnv& env,
                                      const PartialPlan& plan,
                                      double budget_factor) const override {
    (void)budget_factor;  // BFO has no cuboid to shrink.
    const Dag& dag = plan.dag();
    const ClusterConfig& cluster = env.cluster();
    StagePrediction pred;
    pred.present = true;
    pred.operator_kind = "BFO";
    const InputSplit split = SplitPlanInputs(plan);
    std::int64_t num_tasks = cluster.total_tasks();
    if (split.main != kInvalidNode) {
      const Node& main = dag.node(split.main);
      const std::int64_t bs = cluster.block_size;
      const std::int64_t blocks =
          ((main.rows + bs - 1) / bs) * ((main.cols + bs - 1) / bs);
      num_tasks = std::min<std::int64_t>(
          num_tasks, EstimateSparkPartitions(split.main_bytes, blocks));
    }
    num_tasks = std::max<std::int64_t>(num_tasks, 1);
    pred.cuboid = Cuboid{1, 1, 1};
    pred.num_tasks = static_cast<int>(num_tasks);
    pred.net_bytes =
        static_cast<double>(split.main_bytes + num_tasks * split.side_bytes);
    pred.agg_bytes = 0;
    // Side-space work repeats on every task (the paper's "BFO executes
    // the transpose T times"): the cost model at (T, T, 1) captures it.
    pred.flops = env.model->ComEst(Cuboid{num_tasks, num_tasks, 1}, plan);
    pred.mem_per_task =
        static_cast<double>(split.main_bytes) / num_tasks +
        static_cast<double>(split.side_bytes) +
        static_cast<double>(SizeOf(dag, plan.root())) / num_tasks;
    pred.cost_seconds = Eq2Seconds(cluster, pred.net_bytes, pred.flops);
    return pred;
  }

  Result<DistributedMatrix> Run(const SolverEnv& env, const PartialPlan& plan,
                                const StagePrediction& pred,
                                const FusedInputs& inputs,
                                StageContext* ctx) const override {
    (void)env;
    (void)pred;
    return BroadcastFusedOperator::Execute(plan, inputs, ctx);
  }
};

// --- RFO -------------------------------------------------------------------

class RfoSolver : public StageSolver {
 public:
  std::string_view id() const override { return solver_names::kRfo; }
  OperatorKind kind() const override { return OperatorKind::kRfo; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    FUSEME_RETURN_IF_ERROR(RequireMembers(id(), plan));
    const GridDims g = env.model->Grid(plan);
    const double mem = env.model->MemEst(Cuboid{g.I, g.J, 1}, plan);
    const std::int64_t budget = env.cluster().task_memory_budget;
    if (mem > static_cast<double>(budget)) {
      return Status::InvalidArgument(
          std::string(id()) + " replicates " + HumanBytes(mem) +
          " per task at (I,J,1), exceeding the per-task memory budget (" +
          HumanBytes(static_cast<double>(budget)) + ")");
    }
    return Status::OK();
  }

  Result<StagePrediction> PredictBase(const SolverEnv& env,
                                      const PartialPlan& plan,
                                      double budget_factor) const override {
    (void)budget_factor;  // RFO's cuboid is fixed at (I,J,1).
    StagePrediction pred;
    pred.present = true;
    pred.operator_kind = "RFO";
    const GridDims g = env.model->Grid(plan);
    const Cuboid c{g.I, g.J, 1};
    FillEstimates(c, env.model->Estimate(c, plan), env.cluster(), &pred);
    return pred;
  }

  Result<DistributedMatrix> Run(const SolverEnv& env, const PartialPlan& plan,
                                const StagePrediction& pred,
                                const FusedInputs& inputs,
                                StageContext* ctx) const override {
    (void)env;
    return CuboidFusedOperator::Execute(plan, pred.cuboid, inputs, ctx);
  }
};

// --- cpmm ------------------------------------------------------------------

class CpmmSolver : public StageSolver {
 public:
  std::string_view id() const override { return solver_names::kCpmm; }
  OperatorKind kind() const override { return OperatorKind::kCpmm; }

  Status IsApplicable(const SolverEnv& env,
                      const PartialPlan& plan) const override {
    FUSEME_RETURN_IF_ERROR(RequireMembers(id(), plan));
    if (plan.MatMuls().empty()) {
      return Status::InvalidArgument(
          std::string(id()) +
          " requires a member matrix multiplication to split along the "
          "common dimension; the plan has none");
    }
    if (!CuboidSupportsKSplit(plan)) {
      return Status::InvalidArgument(
          std::string(id()) +
          " cannot split the common dimension: the plan's O-space reshapes "
          "the matmul output, so partial results have no coordinate-wise "
          "merge");
    }
    if (MinFeasibleCpmmR(*env.model, plan) < 0) {
      return Status::InvalidArgument(
          std::string(id()) +
          " found no (1,1,R) cuboid within the per-task memory budget");
    }
    return Status::OK();
  }

  Result<StagePrediction> PredictBase(const SolverEnv& env,
                                      const PartialPlan& plan,
                                      double budget_factor) const override {
    (void)budget_factor;  // The smallest feasible R is already minimal.
    StagePrediction pred;
    pred.present = true;
    pred.operator_kind = "cpmm";
    const std::int64_t r = MinFeasibleCpmmR(*env.model, plan);
    if (r < 0) {
      return Status::OutOfMemory("cpmm cannot fit " + plan.ToString() +
                                 " within the per-task budget");
    }
    const Cuboid c{1, 1, r};
    FillEstimates(c, env.model->Estimate(c, plan), env.cluster(), &pred);
    // One (p,q) pair but R k-slices: parallelism R.
    pred.num_tasks = static_cast<int>(r);
    return pred;
  }

  Result<DistributedMatrix> Run(const SolverEnv& env, const PartialPlan& plan,
                                const StagePrediction& pred,
                                const FusedInputs& inputs,
                                StageContext* ctx) const override {
    (void)env;
    return CuboidFusedOperator::Execute(plan, pred.cuboid, inputs, ctx);
  }
};

}  // namespace

Result<StagePrediction> StageSolver::Predict(const SolverEnv& env,
                                             const PartialPlan& plan,
                                             const FusedInputs* inputs,
                                             double budget_factor) const {
  FUSEME_ASSIGN_OR_RETURN(StagePrediction pred,
                          PredictBase(env, plan, budget_factor));
  RefinePrediction(env, plan, inputs, &pred);
  return pred;
}

double StageSolver::Cost(const SolverEnv& env, const PartialPlan& plan) const {
  const Result<StagePrediction> pred =
      Predict(env, plan, /*inputs=*/nullptr, /*budget_factor=*/1.0);
  return pred.ok() ? pred->cost_seconds
                   : std::numeric_limits<double>::infinity();
}

SolverRegistry::SolverRegistry() {
  // Refined-first within each kind; the base solver must come last so
  // Resolve's fallback lands on it.
  solvers_.push_back(std::make_unique<CfoSddmmSolver>());
  solvers_.push_back(std::make_unique<CfoSpmmSolver>());
  solvers_.push_back(std::make_unique<CfoSolver>());
  solvers_.push_back(std::make_unique<BfoSolver>());
  solvers_.push_back(std::make_unique<RfoSolver>());
  solvers_.push_back(std::make_unique<CpmmSolver>());
  view_.reserve(solvers_.size());
  for (const auto& solver : solvers_) view_.push_back(solver.get());
}

const SolverRegistry& SolverRegistry::Global() {
  static const SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

const StageSolver* SolverRegistry::Find(std::string_view id) const {
  for (const StageSolver* solver : view_) {
    if (solver->id() == id) return solver;
  }
  return nullptr;
}

std::vector<const StageSolver*> SolverRegistry::ForKind(
    OperatorKind kind) const {
  std::vector<const StageSolver*> out;
  for (const StageSolver* solver : view_) {
    if (solver->kind() == kind) out.push_back(solver);
  }
  return out;
}

const StageSolver* SolverRegistry::Resolve(const SolverEnv& env,
                                           OperatorKind kind,
                                           const PartialPlan& plan) const {
  const std::vector<const StageSolver*> candidates = ForKind(kind);
  if (candidates.empty()) return nullptr;
  const StageSolver* chosen = nullptr;
  for (const StageSolver* solver : candidates) {
    const Status applicable = solver->IsApplicable(env, plan);
    if (applicable.ok()) {
      chosen = solver;
      break;
    }
    if (env.metrics != nullptr) {
      env.metrics
          ->GetCounter(metric_names::kSolverRejections,
                       {{"solver", std::string(solver->id())}})
          ->Increment();
    }
  }
  // Every refinement rejected: the base solver still runs the stage the
  // way the pre-registry engine did (and surfaces its own OOM/estimate
  // failures), so resolution never changes *whether* a stage executes.
  if (chosen == nullptr) chosen = candidates.back();
  if (env.metrics != nullptr) {
    env.metrics
        ->GetCounter(metric_names::kSolverResolutions,
                     {{"solver", std::string(chosen->id())}})
        ->Increment();
  }
  return chosen;
}

void RefineCellStagePrediction(const SolverEnv& env, const PartialPlan& plan,
                               const FusedInputs* inputs,
                               StagePrediction* pred) {
  if (!plan.MatMuls().empty()) return;
  const Dag& dag = plan.dag();
  const ClusterConfig& cluster = env.cluster();
  // Cell stage: same-shaped grid-partitioned inputs are narrow
  // dependencies (no shuffle) where their owner task coincides with this
  // stage's round-robin task; only the misaligned remainder and reshaping
  // inputs (vectors, transposes) move, and an aggregation root ships its
  // per-task partials.  The executor behaves this way, so the prediction
  // must too.
  //
  // Both sides assign tile idx round-robin, so owner(idx) =
  // idx % producer_tasks matches task(idx) = idx % num_tasks on min/lcm
  // of the tiles (e.g. a single-partition BFO output feeding a 6-task
  // cell stage aligns on 1/6 of them).
  auto aligned_fraction = [](std::int64_t consumer, std::int64_t producer) {
    if (consumer <= 0 || producer <= 0) return 0.0;
    const std::int64_t g = std::gcd(consumer, producer);
    const std::int64_t lcm = consumer / g * producer;
    return static_cast<double>(std::min(consumer, producer)) /
           static_cast<double>(lcm);
  };
  const Node& root = dag.node(plan.root());
  const bool agg_root = root.kind == OpKind::kUnaryAgg;
  const Node& grid_node = agg_root ? dag.node(root.inputs[0]) : root;
  const double base_net = pred->net_bytes;
  double net = 0;
  for (NodeId ext : plan.ExternalInputs()) {
    const Node& n = dag.node(ext);
    if (!n.is_matrix()) continue;
    const double bytes = static_cast<double>(SizeOf(dag, ext));
    if (n.rows == grid_node.rows && n.cols == grid_node.cols) {
      std::int64_t producer_tasks = cluster.total_tasks();
      if (inputs != nullptr) {
        auto it = inputs->find(ext);
        if (it != inputs->end()) {
          producer_tasks = it->second->scheme() == PartitionScheme::kGrid
                               ? it->second->num_tasks()
                               : 0;  // row/col layouts never align
        }
      }
      net += bytes * (1.0 - aligned_fraction(pred->num_tasks, producer_tasks));
      continue;
    }
    net += bytes;
  }
  pred->net_bytes = net;
  if (agg_root) {
    pred->agg_bytes =
        std::min(base_net, static_cast<double>(pred->num_tasks) *
                               static_cast<double>(SizeOf(dag, plan.root())));
  }
  pred->cost_seconds = Eq2Seconds(
      cluster, pred->net_bytes + pred->agg_bytes, pred->flops);
}

InputSplit SplitPlanInputs(const PartialPlan& plan) {
  const Dag& dag = plan.dag();
  InputSplit split;
  std::int64_t total = 0;
  std::int64_t main_cells = -1;
  for (NodeId ext : plan.ExternalInputs()) {
    const Node& n = dag.node(ext);
    if (!n.is_matrix()) continue;
    const std::int64_t bytes = SizeOf(dag, ext);
    total += bytes;
    // Paper §2.2: the main matrix is the one with the most elements.
    const std::int64_t cells = n.rows * n.cols;
    if (cells > main_cells) {
      main_cells = cells;
      split.main = ext;
      split.main_bytes = bytes;
    }
  }
  split.side_bytes = total - split.main_bytes;
  return split;
}

std::int64_t MinFeasibleCpmmR(const CostModel& model,
                              const PartialPlan& plan) {
  const GridDims g = model.Grid(plan);
  for (std::int64_t r = 1; r <= g.K; ++r) {
    if (model.MemEst(Cuboid{1, 1, r}, plan) <=
        static_cast<double>(model.config().task_memory_budget)) {
      return r;
    }
  }
  return -1;
}

std::string PlanDescription::ToString() const {
  std::string out = "planner: " + planner + "\n";
  for (const StageDescription& stage : stages) {
    out += "stage " + stage.label + " [" +
           std::string(OperatorKindName(stage.kind)) + "]\n";
    for (const SolverCandidate& c : stage.candidates) {
      out += c.chosen ? "  * " : "    ";
      out += c.solver_id;
      if (!c.applicability.ok()) {
        out += "  rejected: " + c.applicability.message();
      } else if (c.feasible) {
        out += "  cost " + std::to_string(c.cost_seconds) + "s";
      } else {
        out += "  infeasible";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace fuseme
