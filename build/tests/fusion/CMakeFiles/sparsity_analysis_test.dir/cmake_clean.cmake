file(REMOVE_RECURSE
  "CMakeFiles/sparsity_analysis_test.dir/sparsity_analysis_test.cc.o"
  "CMakeFiles/sparsity_analysis_test.dir/sparsity_analysis_test.cc.o.d"
  "sparsity_analysis_test"
  "sparsity_analysis_test.pdb"
  "sparsity_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
