// Positive compile fixture: the locked twins of the two violation
// fixtures.  Must compile cleanly under the exact flags that reject
// them, proving the harness fails for the right reason (the analysis)
// and not for an unrelated one (missing include path, bad flag).

#include "common/synchronization.h"

namespace fixture {

class Counter {
 public:
  void Increment() {
    fuseme::MutexLock lock(mu_);
    ++value_;
  }

 private:
  fuseme::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class Queue {
 public:
  void Retire() {
    fuseme::MutexLock lock(mu_);
    RetireLocked();
  }

 private:
  void RetireLocked() REQUIRES(mu_) { ++retired_; }

  fuseme::Mutex mu_;
  int retired_ GUARDED_BY(mu_) = 0;
};

void Drive() {
  Counter counter;
  counter.Increment();
  Queue queue;
  queue.Retire();
}

}  // namespace fixture
