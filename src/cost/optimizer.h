// (P*, Q*, R*) search (paper §3.3).
//
// The optimizer picks the cuboid parameters with the minimum Cost() (Eq. 2)
// subject to MemEst ≤ theta_t, over 1 ≤ P ≤ I, 1 ≤ Q ≤ J, 1 ≤ R ≤ K (block
// grid dims of the plan's main matmul).  Parameter sets whose volume would
// under-use the cluster (P·Q·R < N·Tc) are pruned unless the whole grid is
// smaller than the cluster, in which case the largest partitioning is used.
//
// Two strategies are provided: the exhaustive scan (DistME's approach) and
// the paper's pruning search, which exploits that for fixed (Q, R) both
// NetEst and ComEst are nondecreasing in P while MemEst is nonincreasing —
// so the smallest feasible P is optimal for that (Q, R) and every larger P
// can be skipped (and symmetrically for the other axes).

#ifndef FUSEME_COST_OPTIMIZER_H_
#define FUSEME_COST_OPTIMIZER_H_

#include <cstdint>
#include <limits>

#include "cost/cost_model.h"

namespace fuseme {

class MetricsRegistry;
class Counter;

struct PqrChoice {
  Cuboid c;
  double cost = std::numeric_limits<double>::infinity();
  double mem_per_task = 0;
  double net_bytes = 0;   // consolidation
  double agg_bytes = 0;   // R>1 partial-aggregation shuffle
  double flops = 0;
  bool feasible = false;
  /// Number of (P,Q,R) points whose estimates were evaluated — the search
  /// effort compared in Fig. 13(d).
  std::int64_t evaluations = 0;
};

class PqrOptimizer {
 public:
  explicit PqrOptimizer(const CostModel* model) : model_(model) {}

  /// Full scan of the (P,Q,R) grid.  `max_r` > 0 caps the R axis (used
  /// when the executor cannot split the common dimension for a plan, e.g.
  /// when the O-space reshapes the matmul output).
  PqrChoice Exhaustive(const PartialPlan& plan,
                       std::int64_t max_r = 0) const;

  /// Monotonicity-based pruning search (the paper's method).
  PqrChoice Pruned(const PartialPlan& plan, std::int64_t max_r = 0) const;

  /// Optional instrumentation: every search bumps the
  /// fuseme_optimizer_* counters (see telemetry/metric_names.h).  Null
  /// disables; the registry is not owned and must outlive the optimizer.
  void set_metrics(MetricsRegistry* metrics);

 private:
  /// Folds one finished search into the counters (no-op when detached).
  void RecordSearch(const PqrChoice& best, std::int64_t grid_volume) const;

  /// Evaluates one parameter point; updates `best` if feasible and better.
  /// Returns whether the point was memory-feasible (used by Pruned to stop
  /// scanning an axis at the first feasible point).
  bool Consider(const PartialPlan& plan, const Cuboid& c,
                PqrChoice* best) const;

  const CostModel* model_;
  Counter* searches_ = nullptr;
  Counter* evaluations_ = nullptr;
  Counter* pruned_ = nullptr;
  Counter* infeasible_ = nullptr;
};

}  // namespace fuseme

#endif  // FUSEME_COST_OPTIMIZER_H_
