file(REMOVE_RECURSE
  "CMakeFiles/partial_plan_test.dir/partial_plan_test.cc.o"
  "CMakeFiles/partial_plan_test.dir/partial_plan_test.cc.o.d"
  "partial_plan_test"
  "partial_plan_test.pdb"
  "partial_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
