# CMake generated Testfile for 
# Source directory: /root/repo/tests/fusion
# Build directory: /root/repo/build/tests/fusion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fusion/partial_plan_test[1]_include.cmake")
include("/root/repo/build/tests/fusion/sparsity_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/fusion/planners_test[1]_include.cmake")
