file(REMOVE_RECURSE
  "CMakeFiles/fuseme_workloads.dir/autoencoder.cc.o"
  "CMakeFiles/fuseme_workloads.dir/autoencoder.cc.o.d"
  "CMakeFiles/fuseme_workloads.dir/datasets.cc.o"
  "CMakeFiles/fuseme_workloads.dir/datasets.cc.o.d"
  "CMakeFiles/fuseme_workloads.dir/queries.cc.o"
  "CMakeFiles/fuseme_workloads.dir/queries.cc.o.d"
  "libfuseme_workloads.a"
  "libfuseme_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
