// Figure 15: AutoEncoder (2-layer encoder/decoder) — elapsed time of one
// epoch for SystemDS, TensorFlow(XLA), and FuseME:
//  (a) input n×n sweep at batch 1024, (h1,h2) = (500,2);
//  (b) the same at batch 512;
//  (c) batch-size sweep on the 10K×10K input;
//  (d) (h1,h2) parameter sweep at batch 1024.
//
// One epoch = (n / batch) identical mini-batch steps; each step executes
// the full forward+backward DAG.

#include <array>
#include <cstdio>

#include "bench_util.h"
#include "workloads/autoencoder.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

Tracer g_tracer;  // stage spans; exported to TRACE_fig15_autoencoder.json

std::string EpochCell(SystemMode mode, std::int64_t n, std::int64_t batch,
                      std::int64_t h1, std::int64_t h2) {
  AutoEncoderQuery q = BuildAutoEncoder(batch, n, h1, h2);
  EngineOptions options;
  options.system = mode;
  options.analytic = true;
  options.tracer = &g_tracer;
  Engine engine(options);
  ExecutionReport report = engine.Run(q.dag, {}).report;
  if (report.status.IsOutOfMemory()) return "O.O.M.";
  if (report.status.IsTimedOut()) return "T.O.";
  if (!report.ok()) return "ERR";
  const double steps =
      static_cast<double>(n) / static_cast<double>(batch);
  const double epoch_seconds = report.elapsed_seconds * steps;
  if (epoch_seconds > engine.options().cluster.timeout_seconds) {
    return "T.O.";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", epoch_seconds);
  return buf;
}

void Sweep(const char* title,
           const std::vector<std::array<std::int64_t, 4>>& points,
           const char* x_name) {
  std::printf("--- %s ---\n", title);
  PrintRow({x_name, "SystemDS", "TensorFlow", "FuseME"});
  PrintRule(4);
  for (const auto& [n, batch, h1, h2] : points) {
    std::string label;
    if (std::string(x_name) == "n") {
      label = std::to_string(n / 1000) + "K";
    } else if (std::string(x_name) == "batch") {
      label = std::to_string(batch);
    } else {
      label = "(" + std::to_string(h1) + "," + std::to_string(h2) + ")";
    }
    PrintRow({label, EpochCell(SystemMode::kSystemDs, n, batch, h1, h2),
              EpochCell(SystemMode::kTensorFlow, n, batch, h1, h2),
              EpochCell(SystemMode::kFuseMe, n, batch, h1, h2)});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 15: AutoEncoder, one-epoch elapsed (sec) ===\n\n");
  Sweep("Fig 15(a): input n x n, batch 1024, h1=500, h2=2",
        {{{1000, 1024, 500, 2}},
         {{10000, 1024, 500, 2}},
         {{100000, 1024, 500, 2}}},
        "n");
  Sweep("Fig 15(b): input n x n, batch 512, h1=500, h2=2",
        {{{1000, 512, 500, 2}},
         {{10000, 512, 500, 2}},
         {{100000, 512, 500, 2}}},
        "n");
  Sweep("Fig 15(c): batch sweep, input 10K x 10K, h1=500, h2=2",
        {{{10000, 512, 500, 2}},
         {{10000, 1024, 500, 2}},
         {{10000, 2048, 500, 2}},
         {{10000, 4096, 500, 2}}},
        "batch");
  Sweep("Fig 15(d): (h1,h2) sweep, input 10K x 10K, batch 1024",
        {{{10000, 1024, 500, 2}},
         {{10000, 1024, 1000, 4}},
         {{10000, 1024, 2000, 8}},
         {{10000, 1024, 5000, 20}}},
        "(h1,h2)");
  WriteTraceJson("fig15_autoencoder", g_tracer);
  return 0;
}
