// Stage-solver identity catalogue (DESIGN.md section 18).
//
// Every stage solver registered in engine/solver_registry.h carries one of
// these stable ids.  The ids are machine-readable: they key the
// fuseme_solver_* metric families, the fuseme.solver.chosen journal event,
// and the "solver" field of serialized CompiledPlan artifacts, so they must
// never change once released.  fuseme_lint's lint-solver-literal rule
// enforces that any "solver.*" string literal in the tree resolves to an
// entry in this catalogue.
//
// Naming shape: `solver.<operator>[.<refinement>]` — refinements are more
// specific variants of the base operator (the registry resolves
// refined-first, falling back to the base id).

#ifndef FUSEME_ENGINE_SOLVER_NAMES_H_
#define FUSEME_ENGINE_SOLVER_NAMES_H_

namespace fuseme {
namespace solver_names {

/// Cuboid-based fused operator with an optimizer-chosen (P,Q,R) — the
/// paper's CFO and the engine's default stage solver.
inline constexpr char kCfo[] = "solver.cfo";

/// CFO refinement: a sparse mask drives the fused matmul through the SpMM
/// kernels (paper Fig. 1(a) "Outer" pattern; fusion/sparsity_analysis.h).
inline constexpr char kCfoSpmm[] = "solver.cfo.spmm";

/// CFO refinement: the sparse mask multiplies the matrix product directly,
/// so the SDDMM dot-product kernel evaluates only stored positions.
inline constexpr char kCfoSddmm[] = "solver.cfo.sddmm";

/// Broadcast fused operator: side matrices ship whole to every task
/// (MatFast / XLA data-parallel matmul, SystemDS mapmm).
inline constexpr char kBfo[] = "solver.bfo";

/// Replication fused operator: the (I,J,1) cuboid — every lhs row-panel
/// meets every rhs column-panel (SystemDS rmm).
inline constexpr char kRfo[] = "solver.rfo";

/// k-partitioned shuffle matmul: the (1,1,R) cuboid with the smallest
/// memory-feasible R (SystemDS cpmm; the OOM ladder's last rung).
inline constexpr char kCpmm[] = "solver.cpmm";

}  // namespace solver_names
}  // namespace fuseme

#endif  // FUSEME_ENGINE_SOLVER_NAMES_H_
