// Dataset descriptors for the paper's evaluation (Table 2) and synthetic
// dataset specs (Table 3 / §6.2).

#ifndef FUSEME_WORKLOADS_DATASETS_H_
#define FUSEME_WORKLOADS_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fuseme {

/// A rating-matrix dataset: users × items with nnz ratings.
struct RatingDataset {
  std::string name;
  std::int64_t users = 0;
  std::int64_t items = 0;
  std::int64_t ratings = 0;

  double density() const {
    return static_cast<double>(ratings) /
           (static_cast<double>(users) * static_cast<double>(items));
  }
};

/// Paper Table 2: MovieLens (small), Netflix (medium), YahooMusic (large).
/// The raw rating files are proprietary/offline; experiments use these
/// exact shapes with uniformly distributed non-zeros (the paper itself
/// uses uniform synthetic data for §6.2/§6.3).
const std::vector<RatingDataset>& PaperDatasets();

/// Looks up a paper dataset by name ("MovieLens", "Netflix", "YahooMusic").
const RatingDataset* FindDataset(const std::string& name);

/// Synthetic dataset spec for the §6.2 operator comparison: X is i×j with
/// the given density, U is i×k and V is j×k dense.
struct SyntheticSpec {
  std::string label;
  std::int64_t i = 0;
  std::int64_t j = 0;
  std::int64_t k = 0;
  double density = 1.0;

  std::int64_t x_nnz() const {
    return static_cast<std::int64_t>(density * static_cast<double>(i) *
                                     static_cast<double>(j));
  }
};

/// The three §6.2 sweeps: two large dimensions (n×2K×n), a common large
/// dimension (100K×n×100K), and density (100K×2K×100K).
std::vector<SyntheticSpec> VaryTwoLargeDimensions();
std::vector<SyntheticSpec> VaryCommonDimension();
std::vector<SyntheticSpec> VaryDensity();

}  // namespace fuseme

#endif  // FUSEME_WORKLOADS_DATASETS_H_
