file(REMOVE_RECURSE
  "CMakeFiles/fuseme_ops.dir/evaluator.cc.o"
  "CMakeFiles/fuseme_ops.dir/evaluator.cc.o.d"
  "CMakeFiles/fuseme_ops.dir/fused_operator.cc.o"
  "CMakeFiles/fuseme_ops.dir/fused_operator.cc.o.d"
  "libfuseme_ops.a"
  "libfuseme_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
