// Stable flight-recorder event-id catalogue (see DESIGN.md section 17).
//
// Every event the engine emits into an EventJournal uses one of these
// ids, the same contract metric_names.h gives instruments and the
// verifier gives rule ids — dashboards, tests, and the /flightz endpoint
// reference them without string drift, and `fuseme_lint` (rules
// lint-event-literal / lint-event-dead) rejects inline ids and dead
// catalogue entries.  Ids follow the shape `fuseme.<subsystem>.<event>`
// (lowercase, dot-separated, at least two segments after the prefix);
// the dotted prefix keeps them disjoint from the `fuseme_` metric
// namespace.

#ifndef FUSEME_TELEMETRY_EVENT_NAMES_H_
#define FUSEME_TELEMETRY_EVENT_NAMES_H_

namespace fuseme::event_names {

// --- Engine lifecycle ---
/// A Run/RunWithPlans invocation started; payload: system, mode, plans.
inline constexpr char kRunStart[] = "fuseme.engine.run_start";
/// The run returned; payload: status, elapsed_seconds, stages.
inline constexpr char kRunFinish[] = "fuseme.engine.run_finish";

// --- Planner / optimizer decisions ---
/// MakePlans produced its final plan set; payload: planner, plans.
inline constexpr char kPlannerPlans[] = "fuseme.planner.plans_ready";
/// The (P,Q,R) search chose a cuboid for a plan; payload: plan, cuboid,
/// cost_seconds (or feasible=false when nothing fit the budget).
inline constexpr char kOptimizerChoice[] = "fuseme.optimizer.cuboid_chosen";

// --- Stage-solver registry ---
/// Engine::Compile resolved a stage to a registry solver; payload:
/// stage, solver, operator, cost_seconds (absent when the compile-time
/// prediction failed).
inline constexpr char kSolverChosen[] = "fuseme.solver.chosen";

// --- Verifier ---
/// A plan-verification diagnostic failed the run; one event per
/// diagnostic, payload: rule, detail.
inline constexpr char kVerifierDiagnostic[] = "fuseme.verifier.diagnostic";

// --- Stages ---
/// A stage committed into the simulator's timeline; payload: stage,
/// ordinal, operator, tasks, elapsed_seconds.
inline constexpr char kStageCommit[] = "fuseme.stage.commit";

// --- Fault path ---
/// The fault schedule killed a stage attempt with a synthetic OOM;
/// payload: stage, ordinal.
inline constexpr char kFaultInjectedOom[] = "fuseme.fault.injected_oom";
/// A work item was re-launched past its first attempt; payload: stage,
/// attempts, injected_failures, exhausted.
inline constexpr char kTaskRetry[] = "fuseme.fault.task_retry";
/// A stage took one rung down the OOM degradation ladder; payload:
/// stage, from, to, cause.
inline constexpr char kStageDegraded[] = "fuseme.fault.degradation";
/// The simulator launched speculative copies against stragglers;
/// payload: stage, copies.
inline constexpr char kSpeculation[] = "fuseme.fault.speculation";

// --- Prefetch pipeline ---
/// A consumer stalled on an in-flight staged copy (the "waited"
/// outcome); payload: node, bi, bj, wait_seconds.
inline constexpr char kPrefetchStall[] = "fuseme.prefetch.stall";

}  // namespace fuseme::event_names

#endif  // FUSEME_TELEMETRY_EVENT_NAMES_H_
