// FuseME public facade: the one header applications include.
//
//   #include "fuseme.h"
//
//   fuseme::EngineOptions options;  // or EngineOptions::Builder()...
//   FUSEME_ASSIGN_OR_RETURN(fuseme::Engine engine,
//                           fuseme::Engine::Create(options));
//   auto result = engine.Run(dag, inputs);
//   std::cout << result.Summary() << "\n";
//
// Everything re-exported here is the supported user-facing API: query
// parsing and DAG construction (ir/), matrix generation and I/O
// (matrix/), the engine with its planners, cost model, fault injection
// and recovery knobs (engine/, cost/, fusion/, runtime/), observability
// (telemetry/), and the paper's workloads (workloads/).  Internal layers
// — kernels, physical operators, the verifier's rule internals — stay
// behind their own headers on purpose; depend on them only from tests.

#ifndef FUSEME_FUSEME_H_
#define FUSEME_FUSEME_H_

// Status/Result error handling, logging, formatting helpers.
#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

// Cost model and the (P,Q,R) cuboid optimizer (paper §3).
#include "cost/cost_model.h"
#include "cost/optimizer.h"

// The engine facade itself plus the single-node reference executor.
#include "engine/engine.h"
#include "engine/reference.h"

// Fusion planners (CFG and the compared systems' strategies, paper §4).
#include "fusion/planners.h"

// Expression IR: builder DSL, parser, DAG, pretty-printer.
#include "ir/dag.h"
#include "ir/expr.h"
#include "ir/parser.h"
#include "ir/printer.h"

// Matrix generation and I/O.
#include "matrix/generators.h"
#include "matrix/matrix_io.h"

// Runtime vocabulary: cluster shape, fault schedules, the simulator.
#include "runtime/cluster_config.h"
#include "runtime/fault_injector.h"
#include "runtime/simulator.h"

// Observability: metrics, tracing, predicted-vs-actual telemetry, and
// the live plane (flight recorder, sampler, HTTP exporter — DESIGN.md
// section 17).
#include "telemetry/event_journal.h"
#include "telemetry/event_names.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "telemetry/observability.h"
#include "telemetry/prediction.h"
#include "telemetry/run_report.h"
#include "telemetry/sampler.h"
#include "telemetry/tracer.h"

// Paper workloads and dataset descriptions (§6.1).
#include "workloads/autoencoder.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

#endif  // FUSEME_FUSEME_H_
