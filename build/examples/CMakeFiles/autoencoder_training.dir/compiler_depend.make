# Empty compiler generated dependencies file for autoencoder_training.
# This may be replaced when dependencies are built.
