// IR node vocabulary: the paper's five basic operator types (§2.1) plus
// leaf inputs and scalar literals.

#ifndef FUSEME_IR_NODE_H_
#define FUSEME_IR_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/scalar_ops.h"

namespace fuseme {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Operator kinds.  kMatMul is the paper's "binary aggregation" operator
/// (ba(×)); kTranspose is the reorganization operator (r(T)).
enum class OpKind {
  kInput,      // leaf matrix
  kScalar,     // scalar literal
  kUnary,      // u(f): element-wise unary
  kBinary,     // b(f): element-wise binary (either side may be a scalar)
  kMatMul,     // ba(×): matrix multiplication
  kUnaryAgg,   // ua(f): sum / rowSums / colSums / min / max
  kTranspose,  // r(T)
};

std::string_view OpKindName(OpKind kind);

/// Aggregation direction for kUnaryAgg.
enum class AggAxis {
  kAll,  // -> 1×1
  kRow,  // rowAgg: I×J -> I×1
  kCol,  // colAgg: I×J -> 1×J
};

std::string_view AggAxisName(AggAxis axis);

/// One vertex of the query DAG.  Shape and nnz are inferred at build time.
struct Node {
  NodeId id = kInvalidNode;
  OpKind kind = OpKind::kInput;

  UnaryFn unary_fn = UnaryFn::kIdentity;    // kUnary
  BinaryFn binary_fn = BinaryFn::kAdd;      // kBinary
  AggFn agg_fn = AggFn::kSum;               // kUnaryAgg
  AggAxis agg_axis = AggAxis::kAll;         // kUnaryAgg

  std::vector<NodeId> inputs;

  std::string name;      // leaf name, e.g. "X"; empty for operators
  double scalar = 0.0;   // kScalar literal value

  // Inferred metadata.
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;  // estimated non-zeros

  bool is_matrix() const { return kind != OpKind::kScalar; }
  double density() const {
    return rows * cols == 0 ? 0.0
                            : static_cast<double>(nnz) / (rows * cols);
  }

  /// Short label, e.g. "X", "b(*)", "ba(x)", "ua(colSum)".
  std::string Label() const;
};

}  // namespace fuseme

#endif  // FUSEME_IR_NODE_H_
