// Single-node reference evaluation of a query DAG — the correctness oracle
// for the distributed operators, and a convenient way for examples to
// sanity-check small results.

#ifndef FUSEME_ENGINE_REFERENCE_H_
#define FUSEME_ENGINE_REFERENCE_H_

#include <map>

#include "common/result.h"
#include "ir/dag.h"
#include "matrix/dense_matrix.h"

namespace fuseme {

/// Evaluates node `target` of `dag` on one machine, with leaves bound by
/// `inputs`.  Every intermediate is materialized densely; this is O(cells)
/// in memory and intended for test-sized data.
Result<DenseMatrix> ReferenceEval(
    const Dag& dag, NodeId target,
    const std::map<NodeId, DenseMatrix>& inputs);

}  // namespace fuseme

#endif  // FUSEME_ENGINE_REFERENCE_H_
