#include "matrix/sparsity.h"

#include <algorithm>
#include <cmath>

namespace fuseme {

namespace {

std::int64_t Clamp(double nnz, std::int64_t cells) {
  if (nnz < 0.0) return 0;
  if (nnz > static_cast<double>(cells)) return cells;
  return static_cast<std::int64_t>(std::llround(nnz));
}

}  // namespace

std::int64_t EstimateEwiseBinaryNnz(BinaryFn fn, std::int64_t rows,
                                    std::int64_t cols, std::int64_t nnz_a,
                                    std::int64_t nnz_b) {
  const std::int64_t cells = rows * cols;
  if (cells == 0) return 0;
  const double da = static_cast<double>(nnz_a) / cells;
  const double db = static_cast<double>(nnz_b) / cells;
  switch (fn) {
    case BinaryFn::kMul:
      return Clamp(da * db * cells, cells);
    case BinaryFn::kAdd:
    case BinaryFn::kSub:
      return Clamp((da + db - da * db) * cells, cells);
    case BinaryFn::kMin:
    case BinaryFn::kMax:
      // min/max of two non-negative-ish supports: union is a safe estimate.
      return Clamp((da + db - da * db) * cells, cells);
    default:
      return cells;  // div, pow, comparisons: assume dense output
  }
}

std::int64_t EstimateEwiseScalarNnz(BinaryFn fn, std::int64_t rows,
                                    std::int64_t cols, std::int64_t nnz,
                                    double scalar, bool scalar_left) {
  const std::int64_t cells = rows * cols;
  if (cells == 0) return 0;
  // Zero-preserving iff fn(0, scalar) == 0 (matrix on the left) or
  // fn(scalar, 0) == 0 (scalar on the left).
  const double probe = scalar_left ? ApplyBinary(fn, scalar, 0.0)
                                   : ApplyBinary(fn, 0.0, scalar);
  if (probe == 0.0) return nnz;
  return cells;
}

std::int64_t EstimateUnaryNnz(UnaryFn fn, std::int64_t rows,
                              std::int64_t cols, std::int64_t nnz) {
  return UnaryPreservesZero(fn) ? nnz : rows * cols;
}

std::int64_t EstimateMatMulNnz(std::int64_t m, std::int64_t k, std::int64_t n,
                               std::int64_t nnz_a, std::int64_t nnz_b) {
  if (m == 0 || k == 0 || n == 0) return 0;
  const double da = static_cast<double>(nnz_a) / (m * k);
  const double db = static_cast<double>(nnz_b) / (k * n);
  const double d_out = 1.0 - std::pow(1.0 - da * db, static_cast<double>(k));
  return Clamp(d_out * m * n, m * n);
}

std::int64_t EstimateMatMulFlops(std::int64_t m, std::int64_t k,
                                 std::int64_t n, std::int64_t nnz_a,
                                 std::int64_t nnz_b) {
  const std::int64_t dense_a = m * k;
  const std::int64_t dense_b = k * n;
  // 2 flops (mul + add) per scalar product actually formed.
  const double frac_a =
      dense_a == 0 ? 0.0 : static_cast<double>(nnz_a) / dense_a;
  const double frac_b =
      dense_b == 0 ? 0.0 : static_cast<double>(nnz_b) / dense_b;
  const double products = 2.0 * frac_a * frac_b * static_cast<double>(m) *
                          static_cast<double>(k) * static_cast<double>(n);
  return static_cast<std::int64_t>(products);
}

}  // namespace fuseme
