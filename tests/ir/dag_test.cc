#include "ir/dag.h"

#include <gtest/gtest.h>

namespace fuseme {
namespace {

TEST(DagTest, AddInputInfersDenseNnz) {
  Dag dag;
  auto x = dag.AddInput("X", 10, 20);
  ASSERT_TRUE(x.ok());
  const Node& n = dag.node(*x);
  EXPECT_EQ(n.kind, OpKind::kInput);
  EXPECT_EQ(n.rows, 10);
  EXPECT_EQ(n.cols, 20);
  EXPECT_EQ(n.nnz, 200);
  EXPECT_EQ(n.name, "X");
}

TEST(DagTest, AddInputWithSparsity) {
  Dag dag;
  auto x = dag.AddInput("X", 100, 100, 50);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(dag.node(*x).nnz, 50);
  EXPECT_DOUBLE_EQ(dag.node(*x).density(), 0.005);
}

TEST(DagTest, AddInputRejectsNonPositiveDims) {
  Dag dag;
  EXPECT_TRUE(dag.AddInput("X", 0, 5).status().IsInvalidArgument());
  EXPECT_TRUE(dag.AddInput("X", 5, -1).status().IsInvalidArgument());
}

TEST(DagTest, BinaryShapeMismatchRejected) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 3, 4);
  NodeId b = *dag.AddInput("B", 4, 3);
  EXPECT_TRUE(
      dag.AddBinary(BinaryFn::kAdd, a, b).status().IsInvalidArgument());
}

TEST(DagTest, BinaryWithScalarBroadcasts) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 3, 4, 2);
  NodeId s = *dag.AddScalar(2.0);
  auto mul = dag.AddBinary(BinaryFn::kMul, a, s);
  ASSERT_TRUE(mul.ok());
  EXPECT_EQ(dag.node(*mul).rows, 3);
  EXPECT_EQ(dag.node(*mul).cols, 4);
  EXPECT_EQ(dag.node(*mul).nnz, 2);  // x*2 preserves sparsity

  auto add = dag.AddBinary(BinaryFn::kAdd, a, *dag.AddScalar(1.0));
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(dag.node(*add).nnz, 12);  // x+1 densifies
}

TEST(DagTest, TwoScalarsRejected) {
  Dag dag;
  NodeId s1 = *dag.AddScalar(1.0);
  NodeId s2 = *dag.AddScalar(2.0);
  EXPECT_TRUE(
      dag.AddBinary(BinaryFn::kAdd, s1, s2).status().IsInvalidArgument());
}

TEST(DagTest, MatMulShapeInference) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 3, 4);
  NodeId b = *dag.AddInput("B", 4, 5);
  auto mm = dag.AddMatMul(a, b);
  ASSERT_TRUE(mm.ok());
  EXPECT_EQ(dag.node(*mm).rows, 3);
  EXPECT_EQ(dag.node(*mm).cols, 5);
  EXPECT_EQ(dag.node(*mm).kind, OpKind::kMatMul);
}

TEST(DagTest, MatMulInnerMismatchRejected) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 3, 4);
  NodeId b = *dag.AddInput("B", 5, 6);
  EXPECT_TRUE(dag.AddMatMul(a, b).status().IsInvalidArgument());
}

TEST(DagTest, UnaryAggShapes) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 7, 9);
  EXPECT_EQ(dag.node(*dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, a)).rows,
            1);
  auto row = dag.AddUnaryAgg(AggFn::kSum, AggAxis::kRow, a);
  EXPECT_EQ(dag.node(*row).rows, 7);
  EXPECT_EQ(dag.node(*row).cols, 1);
  auto col = dag.AddUnaryAgg(AggFn::kSum, AggAxis::kCol, a);
  EXPECT_EQ(dag.node(*col).rows, 1);
  EXPECT_EQ(dag.node(*col).cols, 9);
}

TEST(DagTest, TransposeSwapsShape) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 7, 9, 5);
  auto t = dag.AddTranspose(a);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(dag.node(*t).rows, 9);
  EXPECT_EQ(dag.node(*t).cols, 7);
  EXPECT_EQ(dag.node(*t).nnz, 5);
}

TEST(DagTest, ConsumersAndFanOut) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 4, 4);
  NodeId u = *dag.AddUnary(UnaryFn::kSquare, x);
  NodeId v = *dag.AddUnary(UnaryFn::kExp, x);
  NodeId s = *dag.AddBinary(BinaryFn::kAdd, u, v);
  dag.MarkOutput(s);

  auto consumers = dag.Consumers(x);
  EXPECT_EQ(consumers.size(), 2u);
  EXPECT_EQ(dag.FanOut(x), 2);
  EXPECT_EQ(dag.FanOut(u), 1);
  EXPECT_EQ(dag.FanOut(s), 1);  // output edge counts
  dag.MarkOutput(u);
  EXPECT_EQ(dag.FanOut(u), 2);
}

TEST(DagTest, SelfMulCountsTwoEdges) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 4, 4);
  NodeId sq = *dag.AddBinary(BinaryFn::kMul, x, x);
  (void)sq;
  EXPECT_EQ(dag.FanOut(x), 2);
}

TEST(DagTest, MarkOutputIsIdempotent) {
  Dag dag;
  NodeId x = *dag.AddInput("X", 2, 2);
  dag.MarkOutput(x);
  dag.MarkOutput(x);
  EXPECT_EQ(dag.outputs().size(), 1u);
}

TEST(DagTest, MatMulNodesLists) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 3, 3);
  NodeId b = *dag.AddInput("B", 3, 3);
  NodeId m1 = *dag.AddMatMul(a, b);
  NodeId m2 = *dag.AddMatMul(m1, b);
  auto mms = dag.MatMulNodes();
  ASSERT_EQ(mms.size(), 2u);
  EXPECT_EQ(mms[0], m1);
  EXPECT_EQ(mms[1], m2);
}

TEST(DagTest, TopologicalOrderIsConstructionOrder) {
  Dag dag;
  NodeId a = *dag.AddInput("A", 2, 2);
  NodeId u = *dag.AddUnary(UnaryFn::kExp, a);
  auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], u);
}

TEST(DagTest, UnknownIdRejected) {
  Dag dag;
  EXPECT_TRUE(dag.AddUnary(UnaryFn::kExp, 7).status().IsInvalidArgument());
  EXPECT_TRUE(dag.AddUnary(UnaryFn::kExp, -1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace fuseme
