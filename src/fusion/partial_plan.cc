#include "fusion/partial_plan.h"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace fuseme {

std::string_view SpaceName(PartialPlan::Space space) {
  switch (space) {
    case PartialPlan::Space::kL:
      return "L";
    case PartialPlan::Space::kR:
      return "R";
    case PartialPlan::Space::kMM:
      return "MM";
    case PartialPlan::Space::kO:
      return "O";
    case PartialPlan::Space::kNone:
      return "-";
  }
  return "?";
}

PartialPlan::PartialPlan(const Dag* dag, std::vector<NodeId> members,
                         NodeId root)
    : dag_(dag), members_(std::move(members)), root_(root) {
  FUSEME_CHECK(dag_ != nullptr);
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  FUSEME_CHECK(Contains(root)) << "root must be a member";
  for (NodeId id : members_) {
    const Node& n = dag_->node(id);
    FUSEME_CHECK(n.kind != OpKind::kInput && n.kind != OpKind::kScalar)
        << "plan members must be operators, got leaf v" << id;
  }
}

PartialPlan PartialPlan::UncheckedForTest(const Dag* dag,
                                          std::vector<NodeId> members,
                                          NodeId root) {
  PartialPlan plan;
  plan.dag_ = dag;
  plan.members_ = std::move(members);
  // Contains() binary-searches, so keep the sorted representation; every
  // validity check is deliberately skipped.
  std::sort(plan.members_.begin(), plan.members_.end());
  plan.root_ = root;
  return plan;
}

bool PartialPlan::Contains(NodeId id) const {
  return std::binary_search(members_.begin(), members_.end(), id);
}

std::vector<NodeId> PartialPlan::MatMuls() const {
  std::vector<NodeId> out;
  for (NodeId id : members_) {
    if (dag_->node(id).kind == OpKind::kMatMul) out.push_back(id);
  }
  return out;
}

NodeId PartialPlan::MainMatMul() const {
  NodeId best = kInvalidNode;
  std::int64_t best_voxels = -1;
  for (NodeId id : MatMuls()) {
    const Node& n = dag_->node(id);
    const Node& lhs = dag_->node(n.inputs[0]);
    // I·J·K voxel count: output I×J with common dimension K = lhs.cols.
    const std::int64_t voxels = n.rows * n.cols * lhs.cols;
    // >= so that ties resolve to the matmul closest to the root (ids are
    // topological, so later means downstream).
    if (voxels >= best_voxels) {
      best_voxels = voxels;
      best = id;
    }
  }
  return best;
}

std::vector<NodeId> PartialPlan::ExternalInputs() const {
  std::vector<NodeId> out;
  std::set<NodeId> seen;
  for (NodeId id : members_) {
    for (NodeId in : dag_->node(id).inputs) {
      if (!Contains(in) && seen.insert(in).second) {
        out.push_back(in);
      }
    }
  }
  return out;
}

NodeId PartialPlan::ParentOf(NodeId id) const {
  FUSEME_CHECK(Contains(id));
  for (NodeId candidate : members_) {
    const Node& n = dag_->node(candidate);
    if (std::find(n.inputs.begin(), n.inputs.end(), id) != n.inputs.end()) {
      return candidate;
    }
  }
  return kInvalidNode;
}

std::map<NodeId, PartialPlan::Space> PartialPlan::ClassifySpaces(
    NodeId main_mm) const {
  FUSEME_CHECK(Contains(main_mm));
  FUSEME_CHECK(dag_->node(main_mm).kind == OpKind::kMatMul);
  std::map<NodeId, Space> spaces;
  for (NodeId id : members_) spaces[id] = Space::kO;
  spaces[main_mm] = Space::kMM;

  // Flood the member subtree under each side of the matmul.
  auto flood = [&](NodeId start, Space space) {
    if (!Contains(start)) return;
    std::queue<NodeId> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId id = frontier.front();
      frontier.pop();
      spaces[id] = space;
      for (NodeId in : dag_->node(id).inputs) {
        if (Contains(in)) frontier.push(in);
      }
    }
  };
  flood(dag_->node(main_mm).inputs[0], Space::kL);
  flood(dag_->node(main_mm).inputs[1], Space::kR);
  return spaces;
}

int PartialPlan::Distance(NodeId a, NodeId b) const {
  FUSEME_CHECK(Contains(a) && Contains(b));
  if (a == b) return 0;
  // BFS over the undirected member tree.
  std::map<NodeId, int> dist;
  std::queue<NodeId> frontier;
  dist[a] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    NodeId id = frontier.front();
    frontier.pop();
    if (id == b) return dist[id];
    std::vector<NodeId> neighbors;
    for (NodeId in : dag_->node(id).inputs) {
      if (Contains(in)) neighbors.push_back(in);
    }
    NodeId parent = ParentOf(id);
    if (parent != kInvalidNode) neighbors.push_back(parent);
    for (NodeId next : neighbors) {
      if (dist.emplace(next, dist[id] + 1).second) {
        frontier.push(next);
      }
    }
  }
  FUSEME_CHECK(false) << "members are not connected";
  return -1;
}

std::pair<PartialPlan, PartialPlan> PartialPlan::SplitAt(NodeId v) const {
  FUSEME_CHECK(Contains(v));
  FUSEME_CHECK_NE(v, root_);
  // F_i: v plus every member in its subtree.
  std::set<NodeId> subtree;
  std::queue<NodeId> frontier;
  frontier.push(v);
  while (!frontier.empty()) {
    NodeId id = frontier.front();
    frontier.pop();
    if (!subtree.insert(id).second) continue;
    for (NodeId in : dag_->node(id).inputs) {
      if (Contains(in)) frontier.push(in);
    }
  }
  std::vector<NodeId> fi_members(subtree.begin(), subtree.end());
  std::vector<NodeId> fm_members;
  for (NodeId id : members_) {
    if (!subtree.contains(id)) fm_members.push_back(id);
  }
  FUSEME_CHECK(!fm_members.empty());
  return {PartialPlan(dag_, std::move(fm_members), root_),
          PartialPlan(dag_, std::move(fi_members), v)};
}

std::string PartialPlan::ToString() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) os << ",";
    os << "v" << members_[i];
  }
  os << "} root=v" << root_;
  return os.str();
}

}  // namespace fuseme
