#include "matrix/matrix_io.h"
#include <unistd.h>
#include <cstring>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace fuseme {

namespace {

constexpr char kMagic[4] = {'F', 'M', 'E', 'M'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
Status WriteOne(std::FILE* f, const T& value) {
  if (std::fwrite(&value, sizeof(T), 1, f) != 1) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

template <typename T>
Status WriteArray(std::FILE* f, const T* data, std::size_t count) {
  if (count == 0) return Status::OK();
  if (std::fwrite(data, sizeof(T), count, f) != count) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadOne(std::FILE* f, T* value) {
  if (std::fread(value, sizeof(T), 1, f) != 1) {
    return Status::Internal("short read (truncated file?)");
  }
  return Status::OK();
}

template <typename T>
Status ReadArray(std::FILE* f, T* data, std::size_t count) {
  if (count == 0) return Status::OK();
  if (std::fread(data, sizeof(T), count, f) != count) {
    return Status::Internal("short read (truncated file?)");
  }
  return Status::OK();
}

}  // namespace

Status SaveMatrix(const BlockedMatrix& matrix, const std::string& path) {
  if (!matrix.IsReal()) {
    return Status::InvalidArgument(
        "meta (descriptor-only) matrices cannot be saved");
  }
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  std::FILE* f = file.get();
  if (std::fwrite(kMagic, 1, 4, f) != 4) {
    return Status::Internal("short write");
  }
  FUSEME_RETURN_IF_ERROR(WriteOne(f, kVersion));
  FUSEME_RETURN_IF_ERROR(WriteOne(f, matrix.rows()));
  FUSEME_RETURN_IF_ERROR(WriteOne(f, matrix.cols()));
  FUSEME_RETURN_IF_ERROR(WriteOne(f, matrix.block_size()));

  // Count non-zero blocks (zero tiles are implicit).
  std::int64_t block_count = 0;
  for (std::int64_t bi = 0; bi < matrix.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < matrix.grid_cols(); ++bj) {
      if (!matrix.block(bi, bj).is_zero()) ++block_count;
    }
  }
  FUSEME_RETURN_IF_ERROR(WriteOne(f, block_count));

  for (std::int64_t bi = 0; bi < matrix.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < matrix.grid_cols(); ++bj) {
      const Block& b = matrix.block(bi, bj);
      if (b.is_zero()) continue;
      FUSEME_RETURN_IF_ERROR(WriteOne(f, bi));
      FUSEME_RETURN_IF_ERROR(WriteOne(f, bj));
      const std::uint8_t kind = b.kind() == Block::Kind::kDense ? 1 : 2;
      FUSEME_RETURN_IF_ERROR(WriteOne(f, kind));
      if (kind == 1) {
        const DenseMatrix& d = b.dense();
        FUSEME_RETURN_IF_ERROR(
            WriteArray(f, d.data(), static_cast<std::size_t>(d.size())));
      } else {
        const SparseMatrix& s = b.sparse();
        FUSEME_RETURN_IF_ERROR(WriteOne(f, s.nnz()));
        FUSEME_RETURN_IF_ERROR(WriteArray(f, s.row_ptr().data(),
                                          s.row_ptr().size()));
        FUSEME_RETURN_IF_ERROR(WriteArray(f, s.col_idx().data(),
                                          s.col_idx().size()));
        FUSEME_RETURN_IF_ERROR(WriteArray(f, s.values().data(),
                                          s.values().size()));
      }
    }
  }
  if (std::fflush(f) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<BlockedMatrix> LoadMatrix(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::FILE* f = file.get();
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a FuseME matrix");
  }
  std::uint32_t version = 0;
  FUSEME_RETURN_IF_ERROR(ReadOne(f, &version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported matrix file version " +
                                   std::to_string(version));
  }
  std::int64_t rows = 0, cols = 0, block_size = 0, block_count = 0;
  FUSEME_RETURN_IF_ERROR(ReadOne(f, &rows));
  FUSEME_RETURN_IF_ERROR(ReadOne(f, &cols));
  FUSEME_RETURN_IF_ERROR(ReadOne(f, &block_size));
  FUSEME_RETURN_IF_ERROR(ReadOne(f, &block_count));
  if (rows < 0 || cols < 0 || block_size <= 0 || block_count < 0) {
    return Status::InvalidArgument("corrupt matrix header");
  }
  BlockedMatrix out(rows, cols, block_size);
  for (std::int64_t i = 0; i < block_count; ++i) {
    std::int64_t bi = 0, bj = 0;
    std::uint8_t kind = 0;
    FUSEME_RETURN_IF_ERROR(ReadOne(f, &bi));
    FUSEME_RETURN_IF_ERROR(ReadOne(f, &bj));
    FUSEME_RETURN_IF_ERROR(ReadOne(f, &kind));
    if (bi < 0 || bi >= out.grid_rows() || bj < 0 ||
        bj >= out.grid_cols()) {
      return Status::InvalidArgument("corrupt block coordinates");
    }
    const std::int64_t tr = out.TileRows(bi), tc = out.TileCols(bj);
    if (kind == 1) {
      std::vector<double> data(static_cast<std::size_t>(tr * tc));
      FUSEME_RETURN_IF_ERROR(ReadArray(f, data.data(), data.size()));
      out.set_block(bi, bj,
                    Block::FromDense(DenseMatrix(tr, tc, std::move(data))));
    } else if (kind == 2) {
      std::int64_t nnz = 0;
      FUSEME_RETURN_IF_ERROR(ReadOne(f, &nnz));
      if (nnz < 0 || nnz > tr * tc) {
        return Status::InvalidArgument("corrupt block nnz");
      }
      std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(tr + 1));
      std::vector<std::int64_t> col_idx(static_cast<std::size_t>(nnz));
      std::vector<double> values(static_cast<std::size_t>(nnz));
      FUSEME_RETURN_IF_ERROR(ReadArray(f, row_ptr.data(), row_ptr.size()));
      FUSEME_RETURN_IF_ERROR(ReadArray(f, col_idx.data(), col_idx.size()));
      FUSEME_RETURN_IF_ERROR(ReadArray(f, values.data(), values.size()));
      // Rebuild through triplets to re-validate the CSR invariants.
      std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets;
      triplets.reserve(values.size());
      for (std::int64_t r = 0; r < tr; ++r) {
        if (row_ptr[r] > row_ptr[r + 1] || row_ptr[r + 1] > nnz) {
          return Status::InvalidArgument("corrupt CSR row pointers");
        }
        for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
          if (col_idx[p] < 0 || col_idx[p] >= tc) {
            return Status::InvalidArgument("corrupt CSR column index");
          }
          triplets.emplace_back(r, col_idx[p], values[p]);
        }
      }
      out.set_block(bi, bj,
                    Block::FromSparse(SparseMatrix::FromTriplets(
                        tr, tc, std::move(triplets))));
    } else {
      return Status::InvalidArgument("corrupt block kind");
    }
  }
  return out;
}

}  // namespace fuseme
