#include "runtime/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fuseme {

double Simulator::EstimateStageSeconds(const StageStats& stats) const {
  if (stats.num_tasks == 0) return 0.0;
  const int slots = config_.total_tasks();

  // Work is spread evenly across the stage's tasks; tasks run in waves of
  // at most `slots`.  A wave's duration is bounded by its compute (one
  // task's FLOPs per slot) and its share of the network traffic, so a
  // 3-wave stage costs three busy windows, not one — waves cannot overlap
  // (a wave's tasks must finish before the next wave's launch).
  const double per_task_bytes = static_cast<double>(stats.total_bytes()) /
                                static_cast<double>(stats.num_tasks);
  const double per_task_flops = static_cast<double>(stats.flops) /
                                static_cast<double>(stats.num_tasks);

  auto wave_seconds = [&](int tasks_in_wave) {
    const int used_nodes = std::min(
        (tasks_in_wave + config_.tasks_per_node - 1) / config_.tasks_per_node,
        config_.num_nodes);
    const double net_time =
        per_task_bytes * static_cast<double>(tasks_in_wave) /
        (static_cast<double>(used_nodes) * config_.net_bandwidth);
    const double comp_time = per_task_flops / config_.per_task_compute();
    // Network transfers burn CPU on the shuffle path; when communication
    // dominates, the cores it occupies stretch the wave beyond pure
    // max(net, comp).
    const double stretched_net =
        net_time * (1.0 + config_.shuffle_cpu_factor);
    // Compute/communication overlap (DESIGN.md section 14): with overlap
    // factor f, the overlappable fraction of the shorter phase hides
    // behind the longer one.  f = 1 (the default) gives the classic
    // max(net, comp) wave; f = 0 is a fully serial net + comp pipeline.
    const double f =
        std::clamp(config_.overlap_factor, 0.0, 1.0);
    const double hi = std::max(stretched_net, comp_time);
    const double lo = std::min(stretched_net, comp_time);
    return hi + (1.0 - f) * lo;
  };

  const int full_waves = stats.num_tasks / slots;
  const int tail_tasks = stats.num_tasks % slots;
  double busy = static_cast<double>(full_waves) * wave_seconds(slots);
  if (tail_tasks > 0) busy += wave_seconds(tail_tasks);

  const int waves = full_waves + (tail_tasks > 0 ? 1 : 0);
  return busy + static_cast<double>(waves) * config_.task_launch_overhead;
}

double Simulator::RecoveryOverheadSeconds(
    const StageStats& stats, const StageFaultEffects& effects,
    std::int64_t* speculative_tasks) const {
  if (speculative_tasks != nullptr) *speculative_tasks = 0;

  // Retry backoff serializes on the stage's critical path, and every
  // re-launch (work-item retry or stage-level degradation rung) costs one
  // scheduling round trip.
  double extra = effects.backoff_seconds;
  extra += static_cast<double>(effects.retries + effects.stage_relaunches) *
           config_.task_launch_overhead;

  // Straggler tail: the slowest task stretches its wave beyond the
  // modeled per-wave duration.  With speculation, a copy launches once
  // the straggler runs `launch_factor` past the wave duration and takes
  // one more wave duration to finish; the first finisher wins.
  if (effects.stragglers > 0 && effects.straggler_factor > 1.0 &&
      stats.num_tasks > 0) {
    const int slots = config_.total_tasks();
    const int waves = stats.num_tasks / slots +
                      (stats.num_tasks % slots > 0 ? 1 : 0);
    const double busy = EstimateStageSeconds(stats) -
                        static_cast<double>(waves) *
                            config_.task_launch_overhead;
    const double per_wave = waves > 0 ? busy / static_cast<double>(waves)
                                      : 0.0;
    const double straggle_tail = per_wave * (effects.straggler_factor - 1.0);
    const double speculate_tail =
        per_wave * effects.speculation_launch_factor +
        config_.task_launch_overhead;
    if (effects.speculation && speculate_tail < straggle_tail) {
      extra += speculate_tail;
      if (speculative_tasks != nullptr) {
        *speculative_tasks = effects.stragglers;
      }
    } else {
      extra += straggle_tail;
    }
  }
  return extra;
}

Status Simulator::CompleteStage(StageStats stats,
                                const StageFaultEffects* effects,
                                std::int64_t* speculative_tasks) {
  stats.elapsed_seconds = EstimateStageSeconds(stats);
  if (effects != nullptr) {
    stats.elapsed_seconds +=
        RecoveryOverheadSeconds(stats, *effects, speculative_tasks);
  } else if (speculative_tasks != nullptr) {
    *speculative_tasks = 0;
  }
  elapsed_seconds_ += stats.elapsed_seconds;
  stages_.push_back(std::move(stats));
  if (elapsed_seconds_ > config_.timeout_seconds) {
    return Status::TimedOut(
        "simulated elapsed " + HumanSeconds(elapsed_seconds_) +
        " exceeded horizon " + HumanSeconds(config_.timeout_seconds));
  }
  return Status::OK();
}

std::int64_t Simulator::total_bytes() const {
  std::int64_t total = 0;
  for (const StageStats& s : stages_) total += s.total_bytes();
  return total;
}

std::int64_t Simulator::total_flops() const {
  std::int64_t total = 0;
  for (const StageStats& s : stages_) total += s.flops;
  return total;
}

}  // namespace fuseme
