#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "fusion/sparsity_analysis.h"
#include "matrix/block.h"
#include "matrix/sparsity.h"

namespace fuseme {

std::string Cuboid::ToString() const {
  std::string s = "(" + std::to_string(P) + "," + std::to_string(Q) + "," +
                  std::to_string(R);
  // The W component is printed only when it differs from the default so
  // plain (P,Q,R) plans keep their historical rendering.
  if (W > 1) s += "," + std::to_string(W);
  return s + ")";
}

std::int64_t NumOp(const Dag& dag, NodeId id) {
  const Node& n = dag.node(id);
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kScalar:
      return 0;
    case OpKind::kUnary: {
      const Node& in = dag.node(n.inputs[0]);
      return UnaryPreservesZero(n.unary_fn) ? in.nnz : in.rows * in.cols;
    }
    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      if (n.binary_fn == BinaryFn::kMul) {
        return std::min(a.is_matrix() ? a.nnz : b.nnz,
                        b.is_matrix() ? b.nnz : a.nnz);
      }
      return n.rows * n.cols;
    }
    case OpKind::kMatMul: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      return EstimateMatMulFlops(a.rows, a.cols, b.cols, a.nnz, b.nnz);
    }
    case OpKind::kUnaryAgg: {
      const Node& in = dag.node(n.inputs[0]);
      return in.nnz;
    }
    case OpKind::kTranspose:
      return n.nnz;
  }
  return 0;
}

std::int64_t SizeOf(const Dag& dag, NodeId id) {
  const Node& n = dag.node(id);
  if (!n.is_matrix()) return 8;
  return Block::EstimateSizeBytes(n.rows, n.cols, n.nnz);
}

GridDims CostModel::Grid(const PartialPlan& plan) const {
  const std::int64_t bs = config_.block_size;
  auto blocks = [bs](std::int64_t dim) {
    return std::max<std::int64_t>(1, (dim + bs - 1) / bs);
  };
  GridDims g;
  NodeId mm = plan.MainMatMul();
  if (mm == kInvalidNode) {
    const Node& root = plan.dag().node(plan.root());
    g.I = blocks(root.rows);
    g.J = blocks(root.cols);
    g.K = 1;
    return g;
  }
  const Node& n = plan.dag().node(mm);
  const Node& lhs = plan.dag().node(n.inputs[0]);
  g.I = blocks(n.rows);
  g.J = blocks(n.cols);
  g.K = blocks(lhs.cols);
  return g;
}

void CostModel::ChargeExternal(const Dag& dag, NodeId input, double rep,
                               double div, Accum* acc) const {
  const Node& n = dag.node(input);
  if (!n.is_matrix()) return;  // scalars ride along with task metadata
  const double bytes = static_cast<double>(SizeOf(dag, input));
  acc->net += rep * bytes;
  acc->mem += bytes / std::max(1.0, div);
}

namespace {

/// Collects the members of `plan` lying in `subset` that are reachable
/// backwards from `start` (the subtree of `start` restricted to `subset`).
std::vector<NodeId> SubtreeWithin(const Dag& dag,
                                  const std::set<NodeId>& subset,
                                  NodeId start) {
  std::vector<NodeId> out;
  std::vector<NodeId> frontier = {start};
  std::set<NodeId> seen;
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    if (!subset.contains(id) || !seen.insert(id).second) continue;
    out.push_back(id);
    for (NodeId in : dag.node(id).inputs) frontier.push_back(in);
  }
  return out;
}

/// Largest matmul (by I·J·K voxels) among `candidates`, or kInvalidNode.
NodeId LargestMatMul(const Dag& dag, const std::vector<NodeId>& candidates) {
  NodeId best = kInvalidNode;
  std::int64_t best_voxels = -1;
  for (NodeId id : candidates) {
    const Node& n = dag.node(id);
    if (n.kind != OpKind::kMatMul) continue;
    const std::int64_t voxels =
        n.rows * n.cols * dag.node(n.inputs[0]).cols;
    // >= : ties resolve to the downstream matmul (ids are topological).
    if (voxels >= best_voxels) {
      best_voxels = voxels;
      best = id;
    }
  }
  return best;
}

}  // namespace

void CostModel::Walk(const PartialPlan& plan, const SparseDriver& driver,
                     const std::vector<NodeId>& subset, NodeId out_root,
                     const Cuboid& c, double rep, double div,
                     Accum* acc) const {
  if (subset.empty()) return;
  const Dag& dag = plan.dag();
  std::set<NodeId> subset_set(subset.begin(), subset.end());

  // Compute scaling from sparsity exploitation: nodes between the plan's
  // main matmul and a sparse mask only evaluate at the mask's non-zeros.
  auto compute_scale = [&](NodeId id) {
    if (!driver.found()) return 1.0;
    for (NodeId scaled : driver.scaled_nodes) {
      if (scaled == id) return driver.density;
    }
    return 1.0;
  };

  const NodeId mm = LargestMatMul(dag, subset);
  if (mm == kInvalidNode) {
    // Flat space: element-wise / reorganization / aggregation operators all
    // share the space's partitioning; work replicates `rep` times.
    for (NodeId id : subset) {
      acc->com += rep * compute_scale(id) *
                  static_cast<double>(NumOp(dag, id));
      for (NodeId in : dag.node(id).inputs) {
        if (subset_set.contains(in)) continue;   // in-space flow
        if (plan.Contains(in)) continue;          // fused flow across spaces
        ChargeExternal(dag, in, rep, div, acc);
      }
    }
    return;
  }

  // The space's main matmul: computed once per replica of this space.
  acc->com +=
      rep * compute_scale(mm) * static_cast<double>(NumOp(dag, mm));

  const Node& mm_node = dag.node(mm);
  // Nested spaces inherit the k-axis (R and its grouping W); the O space
  // has no k-axis.  Partition divisors use groups(): a W-group leader task
  // holds the W k-slices it processes, so per-task memory divides by the
  // number of groups, not the number of slices.  Total shipped bytes are
  // unchanged by W (the same slices travel, to fewer tasks).
  const Cuboid c_l{c.P, 1, c.R, c.W};
  const Cuboid c_r{1, c.Q, c.R, c.W};
  const Cuboid c_o{c.P, c.Q, 1, 1};

  std::set<NodeId> consumed = {mm};

  // L side.
  const NodeId lhs = mm_node.inputs[0];
  if (subset_set.contains(lhs)) {
    std::vector<NodeId> l_set = SubtreeWithin(dag, subset_set, lhs);
    consumed.insert(l_set.begin(), l_set.end());
    Walk(plan, driver, l_set, lhs, c_l, rep * static_cast<double>(c.Q),
         static_cast<double>(c.P * c.groups()), acc);
  } else if (!plan.Contains(lhs)) {
    ChargeExternal(dag, lhs, rep * static_cast<double>(c.Q),
                   static_cast<double>(c.P * c.groups()), acc);
  }

  // R side.
  const NodeId rhs = mm_node.inputs[1];
  if (subset_set.contains(rhs)) {
    std::vector<NodeId> r_set = SubtreeWithin(dag, subset_set, rhs);
    consumed.insert(r_set.begin(), r_set.end());
    Walk(plan, driver, r_set, rhs, c_r, rep * static_cast<double>(c.P),
         static_cast<double>(c.Q * c.groups()), acc);
  } else if (!plan.Contains(rhs)) {
    ChargeExternal(dag, rhs, rep * static_cast<double>(c.P),
                   static_cast<double>(c.Q * c.groups()), acc);
  }

  // O space: whatever remains (ancestors of mm and their side branches).
  // With the two-phase execution the O-space evaluation happens once per
  // (p,q) pair on the r=0 tasks, so — unlike Eq. 4/5, which replicate the
  // whole O-space R times — only the sparse mask (which every k-slice
  // needs for masked partials) pays the extra R-1 copies; Estimate() adds
  // that term separately.
  std::vector<NodeId> o_set;
  for (NodeId id : subset) {
    if (!consumed.contains(id)) o_set.push_back(id);
  }
  if (!o_set.empty()) {
    Walk(plan, driver, o_set, out_root, c_o, rep,
         static_cast<double>(c.P * c.Q), acc);
  }
}

double CostModel::AggBytes(const Cuboid& c, const PartialPlan& plan) const {
  // A W-group merges its slices' partials locally inside the leader task,
  // so only one partial per *group* (beyond the group holding r = 0)
  // crosses the network.
  if (c.groups() <= 1) return 0.0;
  const NodeId mm = plan.MainMatMul();
  if (mm == kInvalidNode) return 0.0;
  const Dag& dag = plan.dag();
  const Node& mm_node = dag.node(mm);
  std::int64_t partial_nnz = mm_node.rows * mm_node.cols;
  const SparseDriver driver = FindSparseDriver(plan, mm);
  if (driver.found()) {
    partial_nnz = std::min(partial_nnz, dag.node(driver.sparse_input).nnz);
  }
  return static_cast<double>(c.groups() - 1) *
         static_cast<double>(Block::EstimateSizeBytes(
             mm_node.rows, mm_node.cols, partial_nnz));
}

CostModel::Estimates CostModel::Estimate(const Cuboid& c,
                                         const PartialPlan& plan) const {
  Accum acc;
  const SparseDriver driver = FindSparseDriver(plan, plan.MainMatMul());
  // Top-level divisor: a flat (no-matmul) plan partitions its inputs the
  // same way as its output, P·Q ways.  (When a matmul exists the recursion
  // replaces this with the per-space divisors before it is ever used.)
  Walk(plan, driver, plan.members(), plan.root(), c, 1.0,
       static_cast<double>(c.P * c.Q), &acc);
  // Output partition of the fused operator (the |O|/T term of Table 1).
  acc.mem += static_cast<double>(SizeOf(plan.dag(), plan.root())) /
             static_cast<double>(std::max<std::int64_t>(1, c.P * c.Q));
  // Masked partial evaluation ships the sparse mask once per k-slice
  // *group* (the W slices of a group share the leader's fetched copy).
  if (driver.found() && c.groups() > 1 &&
      !plan.Contains(driver.sparse_input)) {
    acc.net += static_cast<double>(c.groups() - 1) *
               static_cast<double>(SizeOf(plan.dag(), driver.sparse_input));
  }
  Estimates est;
  est.mem_per_task = acc.mem;
  est.net_bytes = acc.net;
  est.agg_bytes = AggBytes(c, plan);
  est.flops = acc.com;
  return est;
}

double CostModel::MemEst(const Cuboid& c, const PartialPlan& plan) const {
  return Estimate(c, plan).mem_per_task;
}

double CostModel::NetEst(const Cuboid& c, const PartialPlan& plan) const {
  return Estimate(c, plan).net_bytes;
}

double CostModel::ComEst(const Cuboid& c, const PartialPlan& plan) const {
  return Estimate(c, plan).flops;
}

double CostModel::Cost(const Cuboid& c, const PartialPlan& plan) const {
  const Estimates est = Estimate(c, plan);
  const double n = static_cast<double>(config_.num_nodes);
  const double net_time =
      (est.net_bytes + est.agg_bytes) / (n * config_.net_bandwidth);
  const double com_time = est.flops / (n * config_.compute_bandwidth);
  return std::max(net_time, com_time);
}

}  // namespace fuseme
