// SparseMatrix: CSR (compressed sparse row) double matrix.

#ifndef FUSEME_MATRIX_SPARSE_MATRIX_H_
#define FUSEME_MATRIX_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "matrix/dense_matrix.h"

namespace fuseme {

/// CSR sparse matrix.  Column indices within each row are strictly
/// increasing; explicitly stored zeros are allowed but discouraged.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}
  SparseMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from triplets (i, j, v); duplicates are summed.
  static SparseMatrix FromTriplets(
      std::int64_t rows, std::int64_t cols,
      std::vector<std::tuple<std::int64_t, std::int64_t, double>> triplets);

  /// Converts a dense matrix, dropping exact zeros.
  static SparseMatrix FromDense(const DenseMatrix& dense);

  /// Adopts already-built CSR arrays without re-sorting (for kernels that
  /// emit rows in order, e.g. merge-joins).  row_ptr must be monotone with
  /// row_ptr[0] == 0 and row_ptr[rows] == col_idx.size(); column indices
  /// must be strictly increasing within each row.
  static SparseMatrix FromCsr(std::int64_t rows, std::int64_t cols,
                              std::vector<std::int64_t> row_ptr,
                              std::vector<std::int64_t> col_idx,
                              std::vector<double> values);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values_.size());
  }
  double density() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) / (rows_ * cols_);
  }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Element lookup by binary search within the row: O(log nnz(row)).
  double At(std::int64_t i, std::int64_t j) const;

  DenseMatrix ToDense() const;
  SparseMatrix Transposed() const;

  /// Visits each stored entry in row-major order.
  template <typename Fn>  // Fn(int64 i, int64 j, double v)
  void ForEach(Fn&& fn) const {
    for (std::int64_t i = 0; i < rows_; ++i) {
      for (std::int64_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        fn(i, col_idx_[p], values_[p]);
      }
    }
  }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace fuseme

#endif  // FUSEME_MATRIX_SPARSE_MATRIX_H_
