#include "cost/optimizer.h"

#include <gtest/gtest.h>
#include <cmath>
#include <random>

#include "workloads/queries.h"

namespace fuseme {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 4;     // T = 8
  config.block_size = 100;
  config.task_memory_budget = 512LL * 1024 * 1024;
  return config;
}

PartialPlan NmfPlan(const NmfPattern& q) {
  return PartialPlan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
}

TEST(OptimizerTest, PrunedMatchesExhaustive) {
  NmfPattern q = BuildNmfPattern(2000, 1600, 300, /*x_nnz=*/64000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice ex = opt.Exhaustive(plan);
  PqrChoice pr = opt.Pruned(plan);
  ASSERT_TRUE(ex.feasible);
  ASSERT_TRUE(pr.feasible);
  EXPECT_NEAR(pr.cost, ex.cost, ex.cost * 1e-9);
  EXPECT_EQ(pr.c, ex.c);
}

TEST(OptimizerTest, PrunedEvaluatesFarFewerPoints) {
  NmfPattern q = BuildNmfPattern(5000, 5000, 500, /*x_nnz=*/250000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice ex = opt.Exhaustive(plan);
  PqrChoice pr = opt.Pruned(plan);
  EXPECT_NEAR(pr.cost, ex.cost, ex.cost * 1e-9);
  EXPECT_LT(pr.evaluations, ex.evaluations / 10);
}

TEST(OptimizerTest, RespectsParallelismFloor) {
  NmfPattern q = BuildNmfPattern(2000, 1600, 300, 64000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice choice = opt.Pruned(plan);
  ASSERT_TRUE(choice.feasible);
  EXPECT_GE(choice.c.volume(), SmallCluster().total_tasks());
}

TEST(OptimizerTest, SmallGridUsesLargestPartitioning) {
  // Grid 2x2x1 < T=8: parameters become (I, J, K).
  NmfPattern q = BuildNmfPattern(200, 150, 80, 3000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice choice = opt.Pruned(plan);
  EXPECT_EQ(choice.c.P, 2);
  EXPECT_EQ(choice.c.Q, 2);
  EXPECT_EQ(choice.c.R, 1);
}

TEST(OptimizerTest, InfeasibleWhenBudgetTiny) {
  ClusterConfig config = SmallCluster();
  config.task_memory_budget = 1024;  // 1 KB: nothing fits
  NmfPattern q = BuildNmfPattern(2000, 1600, 300, 64000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(config);
  PqrOptimizer opt(&model);
  PqrChoice choice = opt.Pruned(plan);
  EXPECT_FALSE(choice.feasible);
  // Alg. 3: infeasible plans report (I, J, K) and infinite cost.
  EXPECT_EQ(choice.c.P, 20);
  EXPECT_EQ(choice.c.Q, 16);
  EXPECT_EQ(choice.c.R, 3);
  EXPECT_TRUE(std::isinf(choice.cost));
}

TEST(OptimizerTest, TighterBudgetNeverLowersCost) {
  NmfPattern q = BuildNmfPattern(4000, 4000, 400, /*x_nnz=*/1600000);
  PartialPlan plan = NmfPlan(q);
  double prev_cost = 0.0;
  for (std::int64_t budget_mb : {4096, 512, 128}) {
    ClusterConfig config = SmallCluster();
    config.task_memory_budget = budget_mb * 1024 * 1024;
    CostModel model(config);
    PqrOptimizer opt(&model);
    PqrChoice choice = opt.Pruned(plan);
    if (!choice.feasible) break;
    EXPECT_GE(choice.cost, prev_cost);
    EXPECT_LE(choice.mem_per_task,
              static_cast<double>(config.task_memory_budget));
    prev_cost = choice.cost;
  }
}

TEST(OptimizerTest, ChosenPointIsGridMinimum) {
  // Sweep the whole feasible grid by hand and verify the optimizer's pick
  // is never beaten (the Fig. 13(a-c) property).
  NmfPattern q = BuildNmfPattern(1000, 900, 200, 45000);
  PartialPlan plan = NmfPlan(q);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice choice = opt.Pruned(plan);
  ASSERT_TRUE(choice.feasible);
  GridDims g = model.Grid(plan);
  for (std::int64_t p = 1; p <= g.I; ++p) {
    for (std::int64_t q2 = 1; q2 <= g.J; ++q2) {
      for (std::int64_t r = 1; r <= g.K; ++r) {
        Cuboid c{p, q2, r};
        if (c.volume() < SmallCluster().total_tasks()) continue;
        if (model.MemEst(c, plan) >
            static_cast<double>(SmallCluster().task_memory_budget)) {
          continue;
        }
        EXPECT_GE(model.Cost(c, plan) + 1e-12, choice.cost)
            << c.ToString();
      }
    }
  }
}

TEST(OptimizerTest, PrunedMatchesExhaustiveRandomized) {
  // Cross-check over randomized shapes, densities, and cluster configs:
  // the pruning search must land on the exact cuboid the exhaustive scan
  // picks (Better() is a total order, so equal-cost ties break the same
  // way regardless of enumeration order), with the same cost to within
  // epsilon and the same feasibility verdict.
  std::mt19937_64 rng(20260807);
  std::uniform_int_distribution<std::int64_t> dim(300, 3000);
  std::uniform_int_distribution<std::int64_t> kdim(100, 600);
  std::uniform_real_distribution<double> dens(0.001, 0.2);
  std::uniform_int_distribution<int> nodes(1, 4);
  std::uniform_int_distribution<int> tasks(2, 6);
  std::uniform_int_distribution<std::int64_t> budget_mb(32, 2048);

  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t i = dim(rng), j = dim(rng), k = kdim(rng);
    const std::int64_t nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(i * j) *
                                     dens(rng)));
    NmfPattern q = BuildNmfPattern(i, j, k, nnz);
    PartialPlan plan = NmfPlan(q);

    ClusterConfig config;
    config.num_nodes = nodes(rng);
    config.tasks_per_node = tasks(rng);
    config.block_size = 100;
    config.task_memory_budget = budget_mb(rng) * 1024 * 1024;
    CostModel model(config);
    PqrOptimizer opt(&model);

    const PqrChoice ex = opt.Exhaustive(plan);
    const PqrChoice pr = opt.Pruned(plan);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                 std::to_string(i) + "x" + std::to_string(j) + " k=" +
                 std::to_string(k) + " nnz=" + std::to_string(nnz) +
                 " nodes=" + std::to_string(config.num_nodes) + " tasks=" +
                 std::to_string(config.tasks_per_node) + " budget=" +
                 std::to_string(config.task_memory_budget));
    EXPECT_EQ(pr.feasible, ex.feasible);
    if (!ex.feasible || !pr.feasible) continue;
    EXPECT_NEAR(pr.cost, ex.cost, ex.cost * 1e-9);
    EXPECT_EQ(pr.c, ex.c);
    EXPECT_LE(pr.evaluations, ex.evaluations);
  }
}

TEST(OptimizerTest, GnmfPlanOptimizes) {
  GnmfQuery q = BuildGnmf(3000, 2500, 200, /*x_nnz=*/150000);
  PartialPlan f1(&q.dag, {q.a1, q.a2, q.a3, q.a4, q.a5}, q.a5);
  CostModel model(SmallCluster());
  PqrOptimizer opt(&model);
  PqrChoice choice = opt.Pruned(f1);
  ASSERT_TRUE(choice.feasible);
  EXPECT_GT(choice.cost, 0.0);
  EXPECT_GT(choice.evaluations, 0);
}

}  // namespace
}  // namespace fuseme
