#include "telemetry/tracer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json_util.h"

namespace fuseme {

std::int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::CurrentThreadId() {
  const std::thread::id self = std::this_thread::get_id();
  MutexLock lock(mu_);
  auto it = thread_ids_.find(self);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(self, static_cast<int>(thread_ids_.size()))
             .first;
  }
  return it->second;
}

void Tracer::SetThreadName(int tid, std::string name) {
  MutexLock lock(mu_);
  thread_names_[tid] = std::move(name);
}

void Tracer::SetProcessName(std::string name) {
  MutexLock lock(mu_);
  process_name_ = std::move(name);
}

void Tracer::NameCurrentThread(std::string name) {
  SetThreadName(CurrentThreadId(), std::move(name));
}

std::map<int, std::string> Tracer::thread_names() const {
  MutexLock lock(mu_);
  return thread_names_;
}

std::string Tracer::process_name() const {
  MutexLock lock(mu_);
  return process_name_;
}

void Tracer::Record(TraceSpan span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::spans() const {
  std::vector<TraceSpan> out;
  {
    MutexLock lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              // Spans beginning in the same microsecond: the enclosing
              // span (the one ending later) sorts first, so nesting
              // order survives a coarse clock.
              return std::tuple(a.begin_us, -a.end_us, a.tid, a.name) <
                     std::tuple(b.begin_us, -b.end_us, b.tid, b.name);
            });
  return out;
}

std::size_t Tracer::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
}

std::string Tracer::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  // Metadata ("M") records lead: process name, then each named thread,
  // so viewers label tracks before any span references them.
  {
    MutexLock lock(mu_);
    out << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": 0, \"args\": {\"name\": \""
        << JsonEscape(process_name_) << "\"}}";
    first = false;
    for (const auto& [tid, name] : thread_names_) {
      out << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
             "\"tid\": "
          << tid << ", \"args\": {\"name\": \"" << JsonEscape(name) << "\"}}";
    }
  }
  const std::vector<TraceSpan> sorted = spans();
  for (const TraceSpan& s : sorted) {
    out << (first ? "" : ",") << "\n  {\"name\": \"" << JsonEscape(s.name)
        << "\", \"cat\": \"" << JsonEscape(s.category)
        << "\", \"ph\": \"X\", \"ts\": " << s.begin_us
        << ", \"dur\": " << s.duration_us() << ", \"pid\": 0, \"tid\": "
        << s.tid << ", \"args\": {";
    first = false;
    for (std::size_t a = 0; a < s.args.size(); ++a) {
      out << (a == 0 ? "" : ", ") << "\"" << JsonEscape(s.args[a].first)
          << "\": \"" << JsonEscape(s.args[a].second) << "\"";
    }
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << ToChromeJson();
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name,
                       std::string category)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.tid = tracer_->CurrentThreadId();
  span_.begin_us = tracer_->NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  span_.end_us = tracer_->NowMicros();
  tracer_->Record(std::move(span_));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  span_.args.emplace_back(std::move(key), std::move(value));
}

namespace {

/// One raw trace event: the span fields plus the phase, so the caller
/// can route "X" to spans and "M" to metadata.
Result<TraceSpan> ReadEvent(JsonReader* r, std::string* phase) {
  TraceSpan span;
  *phase = "X";
  double ts = 0, dur = 0, tid = 0;
  FUSEME_RETURN_IF_ERROR(r->Expect('{'));
  if (!r->TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r->ReadString());
      FUSEME_RETURN_IF_ERROR(r->Expect(':'));
      if (key == "name") {
        FUSEME_ASSIGN_OR_RETURN(span.name, r->ReadString());
      } else if (key == "cat") {
        FUSEME_ASSIGN_OR_RETURN(span.category, r->ReadString());
      } else if (key == "ph") {
        FUSEME_ASSIGN_OR_RETURN(*phase, r->ReadString());
      } else if (key == "ts") {
        FUSEME_ASSIGN_OR_RETURN(ts, r->ReadNumber());
      } else if (key == "dur") {
        FUSEME_ASSIGN_OR_RETURN(dur, r->ReadNumber());
      } else if (key == "tid") {
        FUSEME_ASSIGN_OR_RETURN(tid, r->ReadNumber());
      } else if (key == "args") {
        FUSEME_RETURN_IF_ERROR(r->Expect('{'));
        if (!r->TryConsume('}')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(std::string arg_key, r->ReadString());
            FUSEME_RETURN_IF_ERROR(r->Expect(':'));
            FUSEME_ASSIGN_OR_RETURN(std::string arg_val, r->ReadString());
            span.args.emplace_back(std::move(arg_key), std::move(arg_val));
          } while (r->TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r->Expect('}'));
        }
      } else {
        FUSEME_RETURN_IF_ERROR(r->SkipValue());
      }
    } while (r->TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r->Expect('}'));
  }
  span.begin_us = static_cast<std::int64_t>(ts);
  span.end_us = static_cast<std::int64_t>(ts + dur);
  span.tid = static_cast<int>(tid);
  return span;
}

/// The "name" arg of a metadata record, or "" when absent.
std::string MetadataName(const TraceSpan& event) {
  for (const auto& [key, value] : event.args) {
    if (key == "name") return value;
  }
  return {};
}

}  // namespace

Result<ParsedChromeTrace> ParseChromeTraceFull(const std::string& json) {
  JsonReader r(json, "trace JSON");
  ParsedChromeTrace out;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  bool saw_events = false;
  if (!r.TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r.ReadString());
      FUSEME_RETURN_IF_ERROR(r.Expect(':'));
      if (key == "traceEvents") {
        saw_events = true;
        FUSEME_RETURN_IF_ERROR(r.Expect('['));
        if (!r.TryConsume(']')) {
          do {
            std::string phase;
            FUSEME_ASSIGN_OR_RETURN(TraceSpan event, ReadEvent(&r, &phase));
            if (phase == "X") {
              out.spans.push_back(std::move(event));
            } else if (phase == "M") {
              if (event.name == "thread_name") {
                out.thread_names[event.tid] = MetadataName(event);
              } else if (event.name == "process_name") {
                out.process_name = MetadataName(event);
              }
            }
          } while (r.TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r.Expect(']'));
        }
      } else {
        FUSEME_RETURN_IF_ERROR(r.SkipValue());
      }
    } while (r.TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  }
  if (!saw_events) return r.Error("missing traceEvents");
  if (!r.AtEnd()) return r.Error("trailing content");
  return out;
}

Result<std::vector<TraceSpan>> ParseChromeTrace(const std::string& json) {
  FUSEME_ASSIGN_OR_RETURN(ParsedChromeTrace parsed, ParseChromeTraceFull(json));
  return std::move(parsed.spans);
}

}  // namespace fuseme
