#!/usr/bin/env bash
# Builds fuseme_lint and runs it over the tree (src/ tests/ bench/
# examples/), exiting non-zero on any finding.
#
# Degradation story: unlike run_tidy.sh (which skips when clang-tidy is
# not installed), this gate has NO skip path — fuseme_lint is a plain
# C++ target with no dependency beyond the baked-in toolchain, so if the
# repo builds at all, the lint runs.  The only external inputs are the
# repo's own files (metric catalogue, DESIGN.md), read relative to the
# repo root.
# Usage: scripts/run_lint.sh [extra fuseme_lint args]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuseme_lint >/dev/null

"$BUILD_DIR"/tools/fuseme_lint --root . src tests bench examples "$@"
echo "run_lint.sh: tree is lint-clean"
