#include "matrix/block.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(BlockTest, ZeroBlock) {
  Block b = Block::Zero(3, 4);
  EXPECT_EQ(b.kind(), Block::Kind::kZero);
  EXPECT_TRUE(b.is_zero());
  EXPECT_TRUE(b.is_real());
  EXPECT_EQ(b.nnz(), 0);
  EXPECT_EQ(b.At(2, 3), 0.0);
  EXPECT_TRUE(b.ToDense() == DenseMatrix(3, 4));
}

TEST(BlockTest, DenseBlockCountsNnz) {
  DenseMatrix m(2, 2, {1, 0, 0, 4});
  Block b = Block::FromDense(m);
  EXPECT_EQ(b.kind(), Block::Kind::kDense);
  EXPECT_EQ(b.nnz(), 2);
  EXPECT_EQ(b.At(0, 0), 1.0);
  EXPECT_EQ(b.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(b.density(), 0.5);
}

TEST(BlockTest, SparseBlock) {
  SparseMatrix s = SparseMatrix::FromTriplets(3, 3, {{0, 0, 1.0},
                                                     {2, 1, 2.0}});
  Block b = Block::FromSparse(s);
  EXPECT_EQ(b.kind(), Block::Kind::kSparse);
  EXPECT_EQ(b.nnz(), 2);
  EXPECT_EQ(b.At(2, 1), 2.0);
  EXPECT_TRUE(b.ToDense() == s.ToDense());
}

TEST(BlockTest, MetaBlockCarriesDescriptor) {
  Block b = Block::Meta(1000, 1000, 5000);
  EXPECT_TRUE(b.is_meta());
  EXPECT_FALSE(b.is_real());
  EXPECT_EQ(b.rows(), 1000);
  EXPECT_EQ(b.nnz(), 5000);
  EXPECT_DOUBLE_EQ(b.density(), 0.005);
}

TEST(BlockTest, ConstantBlock) {
  Block b = Block::Constant(2, 3, 7.0);
  EXPECT_EQ(b.kind(), Block::Kind::kDense);
  EXPECT_EQ(b.nnz(), 6);
  EXPECT_EQ(b.At(1, 2), 7.0);
  // Zero constant degrades to the zero representation.
  EXPECT_TRUE(Block::Constant(2, 3, 0.0).is_zero());
}

TEST(BlockTest, SizeBytesDense) {
  Block b = Block::FromDense(DenseMatrix(10, 10));
  EXPECT_EQ(b.SizeBytes(), 800);
}

TEST(BlockTest, SizeBytesSparse) {
  SparseMatrix s = SparseMatrix::FromTriplets(10, 10, {{0, 0, 1.0},
                                                       {5, 5, 2.0}});
  Block b = Block::FromSparse(s);
  EXPECT_EQ(b.SizeBytes(), 12 * 2 + 8 * 10);
}

TEST(BlockTest, MetaSizePicksFormatByDensity) {
  // Sparse descriptor: 1% density.
  Block sparse_meta = Block::Meta(100, 100, 100);
  EXPECT_EQ(sparse_meta.SizeBytes(), 12 * 100 + 8 * 100);
  // Dense descriptor: above the storage threshold.
  Block dense_meta = Block::Meta(100, 100, 5000);
  EXPECT_EQ(dense_meta.SizeBytes(), 8 * 100 * 100);
}

TEST(BlockTest, CopyIsShallowAndCheap) {
  Block a = Block::FromDense(RandomDense(50, 50, 1));
  Block b = a;  // shared payload
  EXPECT_EQ(&a.dense(), &b.dense());
}

}  // namespace
}  // namespace fuseme
