file(REMOVE_RECURSE
  "libfuseme_matrix.a"
)
