# Empty compiler generated dependencies file for fuseme_fusion.
# This may be replaced when dependencies are built.
