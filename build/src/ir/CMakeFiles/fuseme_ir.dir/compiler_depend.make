# Empty compiler generated dependencies file for fuseme_ir.
# This may be replaced when dependencies are built.
