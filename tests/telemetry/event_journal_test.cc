// Flight-recorder journal: sequencing, ring overwrite semantics, the
// multi-threaded emission contract, and the JSON dump round-trip.

#include "telemetry/event_journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/event_names.h"

namespace fuseme {
namespace {

TEST(EventJournalTest, EmitAndSnapshotPreservesOrderAndPayload) {
  EventJournal journal(/*capacity=*/64);
  journal.Emit(LogLevel::kInfo, event_names::kRunStart, {{"mode", "real"}});
  journal.Emit(LogLevel::kWarning, event_names::kPrefetchStall,
               {{"node", "3"}, {"wait_seconds", "0.25"}});
  journal.Emit(LogLevel::kError, event_names::kRunFinish);

  const std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[0].id, event_names::kRunStart);
  EXPECT_EQ(events[0].severity, LogLevel::kInfo);
  ASSERT_EQ(events[0].payload.size(), 1u);
  EXPECT_EQ(events[0].payload[0].first, "mode");
  EXPECT_EQ(events[0].payload[0].second, "real");
  EXPECT_EQ(events[1].seq, 1);
  EXPECT_EQ(events[1].severity, LogLevel::kWarning);
  ASSERT_EQ(events[1].payload.size(), 2u);
  EXPECT_EQ(events[2].seq, 2);
  EXPECT_EQ(events[2].severity, LogLevel::kError);
  EXPECT_GE(events[0].t_us, 0);
  EXPECT_EQ(journal.total_emitted(), 3);
  EXPECT_EQ(journal.overwritten(), 0);
}

TEST(EventJournalTest, CapacityRoundsUpToShardMultiple) {
  // 8 shards need at least one slot each; odd capacities round up.
  EXPECT_EQ(EventJournal(1).capacity(), 8);
  EXPECT_EQ(EventJournal(9).capacity(), 16);
  EXPECT_EQ(EventJournal(16).capacity(), 16);
}

TEST(EventJournalTest, FullRingOverwritesOldestFirst) {
  EventJournal journal(/*capacity=*/16);
  constexpr std::int64_t kEmitted = 100;
  for (std::int64_t i = 0; i < kEmitted; ++i) {
    journal.Emit(LogLevel::kInfo, event_names::kStageCommit,
                 {{"ordinal", std::to_string(i)}});
  }
  EXPECT_EQ(journal.total_emitted(), kEmitted);
  EXPECT_EQ(journal.overwritten(), kEmitted - 16);

  const std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Exactly the newest 16 sequences survive, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, kEmitted - 16 + static_cast<std::int64_t>(i));
  }
}

// Acceptance criterion: 8 emitting threads, ring far smaller than the
// emission count; the journal must never block, never duplicate a
// sequence, and a final snapshot is strictly ordered within capacity.
TEST(EventJournalHammerTest, EightThreadsWraparound) {
  EventJournal journal(/*capacity=*/64);
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        journal.Emit(LogLevel::kInfo, event_names::kTaskRetry,
                     {{"thread", std::to_string(t)}, {"i", std::to_string(i)}});
        if (i % 64 == 0) {
          // Concurrent readers must not block or tear events.
          const std::vector<JournalEvent> mid = journal.Snapshot();
          for (std::size_t k = 1; k < mid.size(); ++k) {
            ASSERT_LT(mid[k - 1].seq, mid[k].seq);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(journal.total_emitted(), kThreads * kPerThread);
  const std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LT(events[i - 1].seq, events[i].seq);
  }
  // The retained window is the tail of the sequence space.
  EXPECT_GE(events.front().seq, kThreads * kPerThread - 64 - kThreads);
  EXPECT_EQ(events.back().seq, kThreads * kPerThread - 1);
}

TEST(EventJournalTest, DumpJsonRoundTrips) {
  EventJournal journal(/*capacity=*/16);
  journal.Emit(LogLevel::kInfo, event_names::kRunStart,
               {{"system", "FuseME"}, {"plans", "3"}});
  journal.Emit(LogLevel::kWarning, event_names::kStageDegraded,
               {{"from", "fused"}, {"to", "materialized"}});
  journal.Emit(LogLevel::kError, event_names::kVerifierDiagnostic,
               {{"detail", "quoted \"text\" with\nnewline"}});

  const std::string json = journal.DumpJson();
  Result<std::vector<JournalEvent>> parsed = ParseJournalJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, journal.Snapshot());
}

TEST(EventJournalTest, ParseJournalJsonRejectsGarbage) {
  EXPECT_FALSE(ParseJournalJson("not json").ok());
  EXPECT_FALSE(ParseJournalJson("{\"events\": 7}").ok());
}

TEST(EventJournalTest, CrashDumpAttachDetach) {
  EventJournal journal(/*capacity=*/16);
  journal.Emit(LogLevel::kInfo, event_names::kRunStart);
  // Attach/detach must be safe to do repeatedly; the hook itself only
  // fires on a fatal log, which this test does not trigger.
  AttachJournalCrashDump(&journal);
  AttachJournalCrashDump(&journal);
  AttachJournalCrashDump(nullptr);
}

}  // namespace
}  // namespace fuseme
