// Negative fixture: an inline "solver.x" stage-solver id that bypasses
// the catalogue.  fuseme_lint must flag it (lint-solver-literal) while
// accepting the catalogued id used right next to it.  The bare "solver"
// metric label key below must NOT trip the rule: no dotted segment, not
// a solver id.

#include "engine/solver_names.h"

namespace fixture {

const char* Catalogued() { return fuseme::solver_names::kDemo; }

const char* LabelKey() { return "solver"; }

const char* Rogue() { return "solver.rogue.kernel"; }

}  // namespace fixture
