#include "matrix/block.h"

#include <sstream>

namespace fuseme {

Block Block::FromDense(DenseMatrix dense) {
  Block b(Kind::kDense, dense.rows(), dense.cols(), dense.CountNonZeros());
  b.dense_ = std::make_shared<const DenseMatrix>(std::move(dense));
  return b;
}

Block Block::FromSparse(SparseMatrix sparse) {
  Block b(Kind::kSparse, sparse.rows(), sparse.cols(), sparse.nnz());
  b.sparse_ = std::make_shared<const SparseMatrix>(std::move(sparse));
  return b;
}

Block Block::Meta(std::int64_t rows, std::int64_t cols, std::int64_t nnz) {
  FUSEME_CHECK_LE(nnz, rows * cols);
  return Block(Kind::kMeta, rows, cols, nnz);
}

Block Block::Constant(std::int64_t rows, std::int64_t cols, double value) {
  if (value == 0.0) return Zero(rows, cols);
  DenseMatrix m(rows, cols);
  m.Fill(value);
  return FromDense(std::move(m));
}

double Block::At(std::int64_t i, std::int64_t j) const {
  FUSEME_CHECK(is_real());
  FUSEME_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  switch (kind_) {
    case Kind::kZero:
      return 0.0;
    case Kind::kDense:
      return (*dense_)(i, j);
    case Kind::kSparse:
      return sparse_->At(i, j);
    case Kind::kMeta:
      break;
  }
  FUSEME_CHECK(false) << "At() on meta block";
  return 0.0;
}

DenseMatrix Block::ToDense() const {
  FUSEME_CHECK(is_real());
  switch (kind_) {
    case Kind::kZero:
      return DenseMatrix(rows_, cols_);
    case Kind::kDense:
      return *dense_;
    case Kind::kSparse:
      return sparse_->ToDense();
    case Kind::kMeta:
      break;
  }
  FUSEME_CHECK(false) << "ToDense() on meta block";
  return DenseMatrix();
}

std::int64_t Block::SizeBytes() const {
  switch (kind_) {
    case Kind::kZero:
      return 16;  // header only
    case Kind::kDense:
      return 8 * rows_ * cols_;
    case Kind::kSparse:
      // CSR on the wire: 8-byte value + 4-byte column index per entry
      // (indices fit 32 bits at block granularity) + one 8-byte row extent
      // per row.
      return 12 * nnz_ + 8 * rows_;
    case Kind::kMeta:
      return EstimateSizeBytes(rows_, cols_, nnz_);
  }
  return 0;
}

std::int64_t Block::EstimateSizeBytes(std::int64_t rows, std::int64_t cols,
                                      std::int64_t nnz) {
  if (nnz == 0) return 16;
  double density =
      rows * cols == 0 ? 0.0 : static_cast<double>(nnz) / (rows * cols);
  if (density >= kDenseStorageThreshold) return 8 * rows * cols;
  return 12 * nnz + 8 * rows;
}

std::string Block::ToString() const {
  std::ostringstream os;
  const char* kind_name = "?";
  switch (kind_) {
    case Kind::kZero:
      kind_name = "zero";
      break;
    case Kind::kDense:
      kind_name = "dense";
      break;
    case Kind::kSparse:
      kind_name = "sparse";
      break;
    case Kind::kMeta:
      kind_name = "meta";
      break;
  }
  os << "Block[" << kind_name << " " << rows_ << "x" << cols_
     << " nnz=" << nnz_ << "]";
  return os.str();
}

}  // namespace fuseme
