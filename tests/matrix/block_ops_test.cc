// Block-kernel correctness: every kernel is checked against a plain dense
// reference over all representation combinations (zero/dense/sparse), and
// meta blocks are checked for descriptor propagation.

#include "matrix/block_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "matrix/generators.h"
#include "matrix/sparsity.h"

namespace fuseme {
namespace {

// Builds the same logical matrix in a given representation.
enum class Repr { kZero, kDense, kSparse };

Block MakeRepr(const DenseMatrix& value, Repr repr) {
  switch (repr) {
    case Repr::kZero:
      return Block::Zero(value.rows(), value.cols());
    case Repr::kDense:
      return Block::FromDense(value);
    case Repr::kSparse:
      return Block::FromSparse(SparseMatrix::FromDense(value));
  }
  return Block();
}

DenseMatrix ValueFor(Repr repr, std::int64_t rows, std::int64_t cols,
                     std::uint64_t seed, double density = 0.3) {
  if (repr == Repr::kZero) return DenseMatrix(rows, cols);
  if (repr == Repr::kSparse) {
    return RandomSparse(rows, cols, density, seed, 0.5, 2.0).ToDense();
  }
  return RandomDense(rows, cols, seed, 0.5, 2.0);
}

class EwiseBinaryAllReprs
    : public ::testing::TestWithParam<std::tuple<Repr, Repr, BinaryFn>> {};

TEST_P(EwiseBinaryAllReprs, MatchesDenseReference) {
  auto [ra, rb, fn] = GetParam();
  DenseMatrix va = ValueFor(ra, 6, 5, 10);
  DenseMatrix vb = ValueFor(rb, 6, 5, 20);
  Block a = MakeRepr(va, ra);
  Block b = MakeRepr(vb, rb);

  std::int64_t flops = 0;
  auto result = EwiseBinary(fn, a, b, &flops);
  ASSERT_TRUE(result.ok()) << result.status();

  DenseMatrix expected(6, 5);
  bool expect_nan_possible = false;
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      expected(i, j) = ApplyBinary(fn, va(i, j), vb(i, j));
      if (std::isnan(expected(i, j))) expect_nan_possible = true;
    }
  }
  if (expect_nan_possible) {
    // NaN-aware comparison.
    DenseMatrix got = result->ToDense();
    for (std::int64_t i = 0; i < 6; ++i) {
      for (std::int64_t j = 0; j < 5; ++j) {
        if (std::isnan(expected(i, j))) {
          EXPECT_TRUE(std::isnan(got(i, j)));
        } else {
          EXPECT_DOUBLE_EQ(got(i, j), expected(i, j));
        }
      }
    }
  } else {
    EXPECT_LE(DenseMatrix::MaxAbsDiff(result->ToDense(), expected), 1e-12);
  }
  if (!(a.is_zero() && b.is_zero())) {
    EXPECT_GE(flops, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, EwiseBinaryAllReprs,
    ::testing::Combine(
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(BinaryFn::kAdd, BinaryFn::kSub, BinaryFn::kMul,
                          BinaryFn::kDiv, BinaryFn::kMin, BinaryFn::kMax,
                          BinaryFn::kNotEqual)));

TEST(EwiseBinaryTest, ShapeMismatchIsInvalidArgument) {
  Block a = Block::Zero(2, 3);
  Block b = Block::Zero(3, 2);
  auto result = EwiseBinary(BinaryFn::kAdd, a, b);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EwiseBinaryTest, SparseMulKeepsSparsity) {
  Block sparse =
      Block::FromSparse(RandomSparse(20, 20, 0.05, 7, 1.0, 2.0));
  Block dense = Block::FromDense(RandomDense(20, 20, 8, 1.0, 2.0));
  auto result = EwiseBinary(BinaryFn::kMul, sparse, dense);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nnz(), sparse.nnz());
  EXPECT_NE(result->kind(), Block::Kind::kDense);
}

TEST(EwiseBinaryTest, MulFlopsProportionalToSparseNnz) {
  Block sparse = Block::FromSparse(RandomSparse(30, 30, 0.1, 3, 1.0, 2.0));
  Block dense = Block::FromDense(RandomDense(30, 30, 4, 1.0, 2.0));
  std::int64_t flops = 0;
  ASSERT_TRUE(EwiseBinary(BinaryFn::kMul, sparse, dense, &flops).ok());
  EXPECT_EQ(flops, sparse.nnz());  // sparsity exploitation at block level
}

TEST(EwiseBinaryTest, MetaPropagatesEstimate) {
  Block a = Block::Meta(100, 100, 1000);
  Block b = Block::Meta(100, 100, 2000);
  auto result = EwiseBinary(BinaryFn::kMul, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_meta());
  EXPECT_EQ(result->nnz(),
            EstimateEwiseBinaryNnz(BinaryFn::kMul, 100, 100, 1000, 2000));
}

TEST(EwiseBinaryTest, MetaMixedWithRealStaysMeta) {
  Block a = Block::Meta(10, 10, 50);
  Block b = Block::FromDense(RandomDense(10, 10, 1));
  auto result = EwiseBinary(BinaryFn::kAdd, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_meta());
}

class EwiseScalarTest
    : public ::testing::TestWithParam<std::tuple<Repr, BinaryFn, bool>> {};

TEST_P(EwiseScalarTest, MatchesDenseReference) {
  auto [repr, fn, scalar_left] = GetParam();
  const double scalar = 1.5;
  DenseMatrix v = ValueFor(repr, 5, 4, 9);
  Block a = MakeRepr(v, repr);
  auto result = EwiseScalar(fn, a, scalar, scalar_left);
  ASSERT_TRUE(result.ok());
  DenseMatrix got = result->ToDense();
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      double expected = scalar_left ? ApplyBinary(fn, scalar, v(i, j))
                                    : ApplyBinary(fn, v(i, j), scalar);
      EXPECT_DOUBLE_EQ(got(i, j), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, EwiseScalarTest,
    ::testing::Combine(
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(BinaryFn::kAdd, BinaryFn::kMul, BinaryFn::kDiv,
                          BinaryFn::kPow),
        ::testing::Bool()));

class UnaryAllReprs
    : public ::testing::TestWithParam<std::tuple<Repr, UnaryFn>> {};

TEST_P(UnaryAllReprs, MatchesDenseReference) {
  auto [repr, fn] = GetParam();
  DenseMatrix v = ValueFor(repr, 6, 6, 13);
  Block a = MakeRepr(v, repr);
  auto result = Unary(fn, a);
  ASSERT_TRUE(result.ok());
  DenseMatrix got = result->ToDense();
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      double expected = ApplyUnary(fn, v(i, j));
      if (std::isnan(expected) || std::isinf(expected)) {
        EXPECT_EQ(std::isnan(got(i, j)), std::isnan(expected));
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, UnaryAllReprs,
    ::testing::Combine(
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(UnaryFn::kExp, UnaryFn::kSquare, UnaryFn::kAbs,
                          UnaryFn::kNotZero, UnaryFn::kSigmoid,
                          UnaryFn::kRelu, UnaryFn::kNeg)));

TEST(UnaryTest, NonZeroPreservingOnZeroBlockIsConstant) {
  Block z = Block::Zero(3, 3);
  auto result = Unary(UnaryFn::kExp, z);  // exp(0) == 1
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(1, 1), 1.0);
  EXPECT_EQ(result->nnz(), 9);
}

class MatMulAllReprs
    : public ::testing::TestWithParam<std::tuple<Repr, Repr>> {};

TEST_P(MatMulAllReprs, MatchesDenseReference) {
  auto [ra, rb] = GetParam();
  DenseMatrix va = ValueFor(ra, 6, 4, 31);
  DenseMatrix vb = ValueFor(rb, 4, 5, 32);
  Block a = MakeRepr(va, ra);
  Block b = MakeRepr(vb, rb);
  std::int64_t flops = 0;
  auto result = MatMul(a, b, &flops);
  ASSERT_TRUE(result.ok());

  DenseMatrix expected(6, 5);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      double acc = 0;
      for (std::int64_t k = 0; k < 4; ++k) acc += va(i, k) * vb(k, j);
      expected(i, j) = acc;
    }
  }
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->ToDense(), expected), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MatMulAllReprs,
    ::testing::Combine(
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse)));

TEST(MatMulTest, InnerDimMismatchIsInvalidArgument) {
  Block a = Block::Zero(2, 3);
  Block b = Block::Zero(4, 2);
  EXPECT_TRUE(MatMul(a, b).status().IsInvalidArgument());
}

TEST(MatMulTest, DenseFlopsAre2MKN) {
  Block a = Block::FromDense(RandomDense(3, 4, 1, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(4, 5, 2, 1.0, 2.0));
  std::int64_t flops = 0;
  ASSERT_TRUE(MatMul(a, b, &flops).ok());
  EXPECT_EQ(flops, 2 * 3 * 4 * 5);
}

TEST(MatMulTest, SparseFlopsScaleWithNnz) {
  Block a = Block::FromSparse(RandomSparse(10, 10, 0.1, 5, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(10, 10, 6, 1.0, 2.0));
  std::int64_t flops = 0;
  ASSERT_TRUE(MatMul(a, b, &flops).ok());
  EXPECT_EQ(flops, 2 * a.nnz() * 10);
}

TEST(MatMulTest, MetaProducesEstimatedDescriptor) {
  Block a = Block::Meta(100, 50, 500);
  Block b = Block::Meta(50, 80, 4000);  // dense
  std::int64_t flops = 0;
  auto result = MatMul(a, b, &flops);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_meta());
  EXPECT_EQ(result->rows(), 100);
  EXPECT_EQ(result->cols(), 80);
  EXPECT_EQ(result->nnz(), EstimateMatMulNnz(100, 50, 80, 500, 4000));
  EXPECT_EQ(flops, EstimateMatMulFlops(100, 50, 80, 500, 4000));
}

TEST(MatMulAccTest, AccumulatesAcrossCalls) {
  DenseMatrix acc(3, 3);
  Block a = Block::FromDense(RandomDense(3, 2, 41, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(2, 3, 42, 1.0, 2.0));
  ASSERT_TRUE(MatMulAcc(&acc, a, b).ok());
  ASSERT_TRUE(MatMulAcc(&acc, a, b).ok());
  auto once = MatMul(a, b);
  ASSERT_TRUE(once.ok());
  DenseMatrix twice = once->ToDense();
  for (std::int64_t i = 0; i < twice.size(); ++i) {
    twice.data()[i] *= 2.0;
  }
  EXPECT_LE(DenseMatrix::MaxAbsDiff(acc, twice), 1e-10);
}

TEST(MatMulAccTest, MetaBlocksAreInvalidArgument) {
  // Meta blocks are analytic descriptors with no values; accumulating them
  // is a caller bug, not an engine failure.
  DenseMatrix acc(3, 5);
  Block a = Block::Meta(3, 4, 6);
  Block b = Block::Meta(4, 5, 10);
  Status st = MatMulAcc(&acc, a, b);
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
  EXPECT_NE(st.message().find("3x4"), std::string::npos) << st;
  EXPECT_NE(st.message().find("4x5"), std::string::npos) << st;

  // Mixed meta x real is just as invalid.
  Block real = Block::FromDense(RandomDense(4, 5, 7, 1.0, 2.0));
  EXPECT_TRUE(MatMulAcc(&acc, a, real).IsInvalidArgument());
}

TEST(MatMulAccTest, InnerDimMismatchIsInvalidArgument) {
  DenseMatrix acc(2, 2);
  Block a = Block::FromDense(RandomDense(2, 3, 8, 1.0, 2.0));
  Block b = Block::FromDense(RandomDense(4, 2, 9, 1.0, 2.0));
  Status st = MatMulAcc(&acc, a, b);
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
  EXPECT_NE(st.message().find("2x3"), std::string::npos) << st;
}

// The dense GEMM is cache-blocked (64-row slabs, 256x256 panels).  Odd
// shapes that straddle every tile boundary must match the naive triple
// loop bitwise: the tiling reorders the loop nest but keeps each output
// element's k-ascending accumulation order.
TEST(MatMulAccTest, TiledGemmMatchesNaiveBitwise) {
  const std::int64_t m = 150, k = 300, n = 280;
  DenseMatrix da = RandomDense(m, k, 71, -1.0, 1.0);
  DenseMatrix db = RandomDense(k, n, 72, -1.0, 1.0);

  DenseMatrix naive(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double va = da(i, kk);
      for (std::int64_t j = 0; j < n; ++j) {
        naive(i, j) += va * db(kk, j);
      }
    }
  }

  DenseMatrix acc(m, n);
  std::int64_t flops = 0;
  ASSERT_TRUE(
      MatMulAcc(&acc, Block::FromDense(da), Block::FromDense(db), &flops)
          .ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(acc, naive), 0.0);
  EXPECT_EQ(flops, 2 * m * k * n);
}

class TransposeAllReprs : public ::testing::TestWithParam<Repr> {};

TEST_P(TransposeAllReprs, MatchesDenseReference) {
  Repr repr = GetParam();
  DenseMatrix v = ValueFor(repr, 5, 7, 55);
  auto result = Transpose(MakeRepr(v, repr));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ToDense() == v.Transposed());
}

INSTANTIATE_TEST_SUITE_P(AllReprs, TransposeAllReprs,
                         ::testing::Values(Repr::kZero, Repr::kDense,
                                           Repr::kSparse));

TEST(TransposeTest, MetaSwapsDims) {
  auto result = Transpose(Block::Meta(30, 20, 77));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows(), 20);
  EXPECT_EQ(result->cols(), 30);
  EXPECT_EQ(result->nnz(), 77);
}

class AggAllReprs
    : public ::testing::TestWithParam<std::tuple<Repr, AggFn>> {};

TEST_P(AggAllReprs, FullRowColMatchReference) {
  auto [repr, fn] = GetParam();
  DenseMatrix v = ValueFor(repr, 4, 6, 77);
  Block a = MakeRepr(v, repr);

  auto fold = [fn](double acc, double x) {
    switch (fn) {
      case AggFn::kSum:
        return acc + x;
      case AggFn::kMin:
        return std::min(acc, x);
      case AggFn::kMax:
        return std::max(acc, x);
    }
    return acc;
  };

  auto full = FullAgg(fn, a);
  ASSERT_TRUE(full.ok());
  double expect_full = v(0, 0);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      if (i == 0 && j == 0) {
        expect_full = fn == AggFn::kSum ? v(0, 0) : v(0, 0);
        if (fn == AggFn::kSum) expect_full = v(0, 0);
        continue;
      }
      expect_full = fold(expect_full, v(i, j));
    }
  }
  EXPECT_NEAR(full->At(0, 0), expect_full, 1e-10);

  auto row = RowAgg(fn, a);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->rows(), 4);
  EXPECT_EQ(row->cols(), 1);
  for (std::int64_t i = 0; i < 4; ++i) {
    double expected = v(i, 0);
    for (std::int64_t j = 1; j < 6; ++j) expected = fold(expected, v(i, j));
    EXPECT_NEAR(row->At(i, 0), expected, 1e-10);
  }

  auto col = ColAgg(fn, a);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->rows(), 1);
  EXPECT_EQ(col->cols(), 6);
  for (std::int64_t j = 0; j < 6; ++j) {
    double expected = v(0, j);
    for (std::int64_t i = 1; i < 4; ++i) expected = fold(expected, v(i, j));
    EXPECT_NEAR(col->At(0, j), expected, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AggAllReprs,
    ::testing::Combine(
        ::testing::Values(Repr::kZero, Repr::kDense, Repr::kSparse),
        ::testing::Values(AggFn::kSum, AggFn::kMin, AggFn::kMax)));

TEST(AggTest, SparseMinObservesImplicitZeros) {
  // All stored values are positive, but implicit zeros exist, so the min
  // must be 0, not the smallest stored value.
  Block sparse = Block::FromSparse(
      SparseMatrix::FromTriplets(3, 3, {{0, 0, 5.0}, {1, 1, 2.0}}));
  auto result = FullAgg(AggFn::kMin, sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0), 0.0);
}

TEST(MergeAggTest, SumMergesPartials) {
  Block a = Block::FromDense(DenseMatrix(2, 2, {1, 2, 3, 4}));
  Block b = Block::FromDense(DenseMatrix(2, 2, {10, 20, 30, 40}));
  auto result = MergeAgg(AggFn::kSum, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(1, 1), 44.0);
}

TEST(MergeAggTest, MaxMergesPartials) {
  Block a = Block::FromDense(DenseMatrix(1, 2, {5, 1}));
  Block b = Block::FromDense(DenseMatrix(1, 2, {2, 9}));
  auto result = MergeAgg(AggFn::kMax, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0), 5.0);
  EXPECT_EQ(result->At(0, 1), 9.0);
}

}  // namespace
}  // namespace fuseme
