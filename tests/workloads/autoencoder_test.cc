#include "workloads/autoencoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/reference.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(AutoEncoderTest, ShapesAndOutputs) {
  AutoEncoderQuery q = BuildAutoEncoder(/*batch=*/64, /*features=*/100,
                                        /*h1=*/20, /*h2=*/4);
  EXPECT_EQ(q.dag.node(q.Xhat).rows, 64);
  EXPECT_EQ(q.dag.node(q.Xhat).cols, 100);
  EXPECT_EQ(q.dag.node(q.loss).rows, 1);
  EXPECT_EQ(q.dag.node(q.gW1).rows, 20);
  EXPECT_EQ(q.dag.node(q.gW1).cols, 100);
  EXPECT_EQ(q.dag.node(q.gW2).rows, 4);
  EXPECT_EQ(q.dag.node(q.gW2).cols, 20);
  EXPECT_EQ(q.dag.node(q.gW3).rows, 20);
  EXPECT_EQ(q.dag.node(q.gW3).cols, 4);
  EXPECT_EQ(q.dag.node(q.gW4).rows, 100);
  EXPECT_EQ(q.dag.node(q.gW4).cols, 20);
  EXPECT_EQ(q.dag.outputs().size(), 5u);  // loss + four gradients
}

TEST(AutoEncoderTest, GradientMatchesFiniteDifference) {
  // Check dloss/dW2[0][0] against a central finite difference.
  const std::int64_t batch = 6, features = 8, h1 = 4, h2 = 2;
  AutoEncoderQuery q = BuildAutoEncoder(batch, features, h1, h2);
  DenseMatrix x = RandomDense(batch, features, /*seed=*/101, 0.0, 1.0);
  DenseMatrix w1 = RandomDense(h1, features, /*seed=*/102, -0.5, 0.5);
  DenseMatrix w2 = RandomDense(h2, h1, /*seed=*/103, -0.5, 0.5);
  DenseMatrix w3 = RandomDense(h1, h2, /*seed=*/104, -0.5, 0.5);
  DenseMatrix w4 = RandomDense(features, h1, /*seed=*/105, -0.5, 0.5);

  auto bind = [&](const DenseMatrix& w2v) {
    return std::map<NodeId, DenseMatrix>{
        {q.X, x}, {q.W1, w1}, {q.W2, w2v}, {q.W3, w3}, {q.W4, w4}};
  };
  DenseMatrix grad = *ReferenceEval(q.dag, q.gW2, bind(w2));

  const double eps = 1e-5;
  DenseMatrix w2_plus = w2, w2_minus = w2;
  w2_plus(0, 0) += eps;
  w2_minus(0, 0) -= eps;
  double loss_plus = (*ReferenceEval(q.dag, q.loss, bind(w2_plus)))(0, 0);
  double loss_minus = (*ReferenceEval(q.dag, q.loss, bind(w2_minus)))(0, 0);
  const double fd = (loss_plus - loss_minus) / (2 * eps);
  // Our gW2 = dloss/dW2 up to the conventional factor 2 from d(e^2)=2e.
  EXPECT_NEAR(2.0 * grad(0, 0), fd, 1e-5 * std::max(1.0, std::fabs(fd)));
}

TEST(AutoEncoderTest, DistributedExecutionMatchesReference) {
  const std::int64_t batch = 16, features = 24, h1 = 10, h2 = 4;
  AutoEncoderQuery q = BuildAutoEncoder(batch, features, h1, h2);
  DenseMatrix x = RandomDense(batch, features, /*seed=*/111, 0.0, 1.0);
  DenseMatrix w1 = RandomDense(h1, features, /*seed=*/112, -0.5, 0.5);
  DenseMatrix w2 = RandomDense(h2, h1, /*seed=*/113, -0.5, 0.5);
  DenseMatrix w3 = RandomDense(h1, h2, /*seed=*/114, -0.5, 0.5);
  DenseMatrix w4 = RandomDense(features, h1, /*seed=*/115, -0.5, 0.5);
  std::map<NodeId, DenseMatrix> dense = {
      {q.X, x}, {q.W1, w1}, {q.W2, w2}, {q.W3, w3}, {q.W4, w4}};

  EngineOptions options;
  options.cluster.block_size = 8;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 2;
  std::map<NodeId, BlockedMatrix> inputs;
  for (const auto& [id, m] : dense) {
    inputs[id] = BlockedMatrix::FromDense(m, 8);
  }
  for (SystemMode mode : {SystemMode::kFuseMe, SystemMode::kTensorFlow,
                          SystemMode::kSystemDs}) {
    options.system = mode;
    Engine engine(options);
    auto run = engine.Run(q.dag, inputs);
    ASSERT_TRUE(run.report.ok())
        << SystemModeName(mode) << ": " << run.report.status;
    for (NodeId out : {q.loss, q.gW1, q.gW2, q.gW3, q.gW4}) {
      DenseMatrix expected = *ReferenceEval(q.dag, out, dense);
      EXPECT_LE(DenseMatrix::MaxAbsDiff(
                    run.outputs.at(out).blocks().ToDense(), expected),
                1e-8)
          << SystemModeName(mode) << " output v" << out;
    }
  }
}

TEST(AutoEncoderTest, AnalyticPaperScaleRuns) {
  // Fig. 15(a) point: 10K×10K input, h1=500, h2=2.
  AutoEncoderQuery q = BuildAutoEncoder(1024, 10000, 500, 2);
  EngineOptions options;
  options.analytic = true;
  for (SystemMode mode : {SystemMode::kFuseMe, SystemMode::kTensorFlow,
                          SystemMode::kSystemDs}) {
    options.system = mode;
    Engine engine(options);
    auto run = engine.Run(q.dag, {});
    ASSERT_TRUE(run.report.ok())
        << SystemModeName(mode) << ": " << run.report.status;
    EXPECT_GT(run.report.elapsed_seconds, 0);
  }
}

}  // namespace
}  // namespace fuseme
