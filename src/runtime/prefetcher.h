// BlockPrefetcher: asynchronous block consolidation (DESIGN.md section 14).
//
// A fused stage's work item fetches every external input block of an
// output block before it can compute it; synchronously, transfer and
// compute serialize.  The prefetcher decouples them: the operator issues
// the blocks of *upcoming* output blocks as copy tasks on the thread pool
// (double-buffered waves, ClusterConfig::prefetch_depth ahead of the
// consumer), and the work item's fetcher consumes staged copies — so the
// next wave's transfers are in flight while the current block's GEMM or
// elementwise kernel runs.
//
// Determinism (the PR 1/PR 5 invariants) is preserved by charging on
// consumption, not on transfer: the prefetcher never touches stage
// accounting.  The consuming fetcher performs the same dedup and charges
// in the same serial scan order whether a block was staged, stolen, or
// fetched directly, so StageStats are bitwise-identical for every
// prefetch depth and thread count.  Entries hold plain copies of input
// blocks; an unconsumed entry is dropped without observable effect, which
// is what lets the fault injector kill a work-item attempt with
// prefetches still in flight — the destructor cancels queued copies,
// drains running ones, and the retry replays from scratch.
//
// Thread-safety: Prefetch/Take/CancelPending may be called concurrently
// with the pool-side copy tasks.  A Take of a still-queued entry *steals*
// it (runs the copy inline) instead of waiting for a pool slot, so a
// saturated pool degrades to the synchronous path rather than stalling.

#ifndef FUSEME_RUNTIME_PREFETCHER_H_
#define FUSEME_RUNTIME_PREFETCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "ir/node.h"
#include "matrix/block.h"

namespace fuseme {

class MetricsRegistry;  // telemetry/metrics.h; opaque-pointer convention
class EventJournal;     // telemetry/event_journal.h; same convention

/// Identity of one staged transfer: block (bi, bj) of external node `node`.
struct PrefetchKey {
  NodeId node = kInvalidNode;
  std::int64_t bi = 0;
  std::int64_t bj = 0;

  auto operator<=>(const PrefetchKey&) const = default;
};

/// How a consumed (or dropped) entry resolved.
enum class PrefetchOutcome {
  kReady,      ///< staged copy was complete when the consumer asked
  kWaited,     ///< consumer blocked on an in-flight copy
  kStolen,     ///< consumer ran a still-queued copy inline
  kCancelled,  ///< dropped by CancelPending / destruction
};

const char* PrefetchOutcomeName(PrefetchOutcome outcome);

/// What a prefetcher did over its lifetime.  Host wall-clock telemetry —
/// never folded into StageStats (which must stay deterministic).
struct PrefetchCounters {
  std::int64_t issued = 0;
  std::int64_t ready = 0;
  std::int64_t waited = 0;
  std::int64_t stolen = 0;
  std::int64_t cancelled = 0;
  /// Seconds the consumer spent acquiring staged blocks: stall waits on
  /// in-flight copies plus inline stolen copies.
  double fetch_wait_seconds = 0.0;
};

/// Per-work-item staging area for asynchronous block copies.
class BlockPrefetcher {
 public:
  /// Produces the copy of block (bi, bj) of node `key.node` — the modeled
  /// transfer.  Must be safe to call from any thread concurrently (the
  /// operators' source only reads immutable stage inputs).
  using Source = std::function<Result<Block>(const PrefetchKey&)>;

  /// Called on the copying thread when a copy starts; the returned
  /// callback fires when it completes.  Lets the ops layer record tracer
  /// spans without the runtime linking the tracer.  May be null.
  using CopyHook = std::function<std::function<void(PrefetchOutcome)>(
      const PrefetchKey&)>;

  struct Options {
    /// Pool the copies run on.  With zero workers Submit runs inline, so
    /// a serial process degrades to synchronous fetching gracefully.
    ThreadPool* pool = nullptr;
    MetricsRegistry* metrics = nullptr;  ///< optional; not owned
    /// Optional flight recorder; a consumer stall on an in-flight copy
    /// emits fuseme.prefetch.stall.  Not owned.
    EventJournal* journal = nullptr;
    CopyHook copy_hook;                  ///< optional tracer bridge
  };

  BlockPrefetcher(Source source, Options options);
  /// Cancels queued copies and drains in-flight ones before returning, so
  /// no pool task outlives the stage inputs the source reads.
  ~BlockPrefetcher();

  BlockPrefetcher(const BlockPrefetcher&) = delete;
  BlockPrefetcher& operator=(const BlockPrefetcher&) = delete;

  /// Stages the copy of `key` (no-op if already staged or consumed).
  void Prefetch(const PrefetchKey& key);

  /// Consumes the staged copy of `key`: returns the copy if it was issued
  /// (waiting for an in-flight transfer, or running a still-queued one
  /// inline), std::nullopt if it was never issued or was cancelled — the
  /// caller then fetches directly.
  std::optional<Result<Block>> Take(const PrefetchKey& key);

  /// Cancels entries that have not started copying.  In-flight copies
  /// complete (their results stay takeable); queued ones are dropped.
  void CancelPending();

  /// CancelPending, then waits for in-flight copies to finish and drops
  /// every unconsumed entry (counted as cancelled).  After Drain the
  /// source is guaranteed not to be called again — what the destructor
  /// relies on, exposed so callers can snapshot final counters() first.
  void Drain();

  /// Entries staged but not yet consumed (queued + running + ready).
  std::int64_t InFlight() const;

  PrefetchCounters counters() const;

 private:
  struct Entry;
  struct Shared;

  static void RunCopy(const std::shared_ptr<Shared>& shared,
                      const std::shared_ptr<Entry>& entry,
                      const PrefetchKey& key);

  std::shared_ptr<Shared> shared_;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_PREFETCHER_H_
