#include "matrix/blocked_matrix.h"

#include <algorithm>
#include <tuple>
#include <vector>

namespace fuseme {

namespace {

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

BlockedMatrix::BlockedMatrix(std::int64_t rows, std::int64_t cols,
                             std::int64_t block_size)
    : rows_(rows), cols_(cols), block_size_(block_size) {
  FUSEME_CHECK_GT(block_size, 0);
  FUSEME_CHECK_GE(rows, 0);
  FUSEME_CHECK_GE(cols, 0);
  grid_rows_ = rows == 0 ? 0 : CeilDiv(rows, block_size);
  grid_cols_ = cols == 0 ? 0 : CeilDiv(cols, block_size);
  blocks_.reserve(grid_rows_ * grid_cols_);
  for (std::int64_t bi = 0; bi < grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < grid_cols_; ++bj) {
      blocks_.push_back(Block::Zero(TileRows(bi), TileCols(bj)));
    }
  }
}

std::int64_t BlockedMatrix::TileRows(std::int64_t bi) const {
  FUSEME_CHECK(bi >= 0 && bi < grid_rows_);
  return std::min(block_size_, rows_ - bi * block_size_);
}

std::int64_t BlockedMatrix::TileCols(std::int64_t bj) const {
  FUSEME_CHECK(bj >= 0 && bj < grid_cols_);
  return std::min(block_size_, cols_ - bj * block_size_);
}

void BlockedMatrix::set_block(std::int64_t bi, std::int64_t bj, Block block) {
  FUSEME_CHECK_EQ(block.rows(), TileRows(bi));
  FUSEME_CHECK_EQ(block.cols(), TileCols(bj));
  blocks_[Index(bi, bj)] = std::move(block);
}

BlockedMatrix BlockedMatrix::FromDense(const DenseMatrix& dense,
                                       std::int64_t block_size) {
  BlockedMatrix out(dense.rows(), dense.cols(), block_size);
  for (std::int64_t bi = 0; bi < out.grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < out.grid_cols_; ++bj) {
      const std::int64_t r0 = bi * block_size, c0 = bj * block_size;
      DenseMatrix tile(out.TileRows(bi), out.TileCols(bj));
      for (std::int64_t i = 0; i < tile.rows(); ++i) {
        for (std::int64_t j = 0; j < tile.cols(); ++j) {
          tile(i, j) = dense(r0 + i, c0 + j);
        }
      }
      if (tile.CountNonZeros() > 0) {
        out.set_block(bi, bj, Block::FromDense(std::move(tile)));
      }
    }
  }
  return out;
}

BlockedMatrix BlockedMatrix::FromSparse(const SparseMatrix& sparse,
                                        std::int64_t block_size) {
  BlockedMatrix out(sparse.rows(), sparse.cols(), block_size);
  // Bucket triplets per tile, then build CSR tiles.
  std::vector<std::vector<std::tuple<std::int64_t, std::int64_t, double>>>
      buckets(out.num_blocks());
  sparse.ForEach([&](std::int64_t i, std::int64_t j, double v) {
    const std::int64_t bi = i / block_size, bj = j / block_size;
    buckets[out.Index(bi, bj)].emplace_back(i - bi * block_size,
                                            j - bj * block_size, v);
  });
  for (std::int64_t bi = 0; bi < out.grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < out.grid_cols_; ++bj) {
      auto& bucket = buckets[out.Index(bi, bj)];
      if (bucket.empty()) continue;
      SparseMatrix tile = SparseMatrix::FromTriplets(
          out.TileRows(bi), out.TileCols(bj), std::move(bucket));
      if (tile.density() >= kDenseStorageThreshold) {
        out.set_block(bi, bj, Block::FromDense(tile.ToDense()));
      } else {
        out.set_block(bi, bj, Block::FromSparse(std::move(tile)));
      }
    }
  }
  return out;
}

BlockedMatrix BlockedMatrix::MakeMeta(std::int64_t rows, std::int64_t cols,
                                      std::int64_t nnz,
                                      std::int64_t block_size) {
  BlockedMatrix out(rows, cols, block_size);
  FUSEME_CHECK_LE(nnz, rows * cols);
  const double density =
      rows * cols == 0 ? 0.0 : static_cast<double>(nnz) / (rows * cols);
  for (std::int64_t bi = 0; bi < out.grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < out.grid_cols_; ++bj) {
      const std::int64_t cells = out.TileRows(bi) * out.TileCols(bj);
      const auto tile_nnz =
          static_cast<std::int64_t>(density * static_cast<double>(cells));
      out.set_block(bi, bj,
                    Block::Meta(out.TileRows(bi), out.TileCols(bj),
                                std::min(tile_nnz, cells)));
    }
  }
  return out;
}

std::int64_t BlockedMatrix::nnz() const {
  std::int64_t total = 0;
  for (const Block& b : blocks_) total += b.nnz();
  return total;
}

std::int64_t BlockedMatrix::SizeBytes() const {
  std::int64_t total = 0;
  for (const Block& b : blocks_) total += b.SizeBytes();
  return total;
}

bool BlockedMatrix::IsReal() const {
  for (const Block& b : blocks_) {
    if (!b.is_real()) return false;
  }
  return true;
}

DenseMatrix BlockedMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (std::int64_t bi = 0; bi < grid_rows_; ++bi) {
    for (std::int64_t bj = 0; bj < grid_cols_; ++bj) {
      const Block& b = block(bi, bj);
      FUSEME_CHECK(b.is_real()) << "ToDense on meta matrix";
      const std::int64_t r0 = bi * block_size_, c0 = bj * block_size_;
      if (b.is_zero()) continue;
      DenseMatrix tile = b.ToDense();
      for (std::int64_t i = 0; i < tile.rows(); ++i) {
        for (std::int64_t j = 0; j < tile.cols(); ++j) {
          out(r0 + i, c0 + j) = tile(i, j);
        }
      }
    }
  }
  return out;
}

}  // namespace fuseme
