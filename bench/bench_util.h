// Shared helpers for the experiment harnesses: paper-style cell formatting
// (numbers, "O.O.M.", "T.O."), simple aligned tables, and a machine-readable
// JSON result sink (BENCH_<name>.json) for tracking runs over time.

#ifndef FUSEME_BENCH_BENCH_UTIL_H_
#define FUSEME_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace fuseme::bench {

/// Writes `tracer`'s spans to TRACE_<name>.json (Chrome trace-event JSON)
/// in the working directory, next to the BENCH_<name>.json result sink.
/// Open with chrome://tracing or https://ui.perfetto.dev.
inline bool WriteTraceJson(const std::string& bench_name,
                           const Tracer& tracer) {
  const std::string path = "TRACE_" + bench_name + ".json";
  if (!tracer.WriteChromeJson(path)) return false;
  std::printf("wrote %s (%zu spans)\n", path.c_str(), tracer.size());
  return true;
}

/// Formats an execution outcome the way the paper's figures label bars:
/// elapsed seconds, or the failure marker.
inline std::string ElapsedCell(const ExecutionReport& report) {
  if (report.status.IsOutOfMemory()) return "O.O.M.";
  if (report.status.IsTimedOut()) return "T.O.";
  if (!report.status.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", report.elapsed_seconds);
  return buf;
}

/// Same for communication cost in GB.
inline std::string BytesCell(const ExecutionReport& report) {
  if (report.status.IsOutOfMemory()) return "O.O.M.";
  if (report.status.IsTimedOut()) return "T.O.";
  if (!report.status.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(report.total_bytes()) / 1e9);
  return buf;
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(std::size_t cells, int width = 14) {
  std::printf("%s\n",
              std::string(cells * static_cast<std::size_t>(width), '-')
                  .c_str());
}

/// One measured configuration of a benchmark binary.
struct BenchRecord {
  std::string name;  // e.g. "dense_gemm_2048" or "cfo_real_mode"
  /// Free-form configuration key/values (thread count, shapes, mode...).
  std::vector<std::pair<std::string, std::string>> config;
  double elapsed_seconds = 0.0;
  std::int64_t bytes = 0;  // communication (or data touched) in bytes
  std::int64_t flops = 0;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes `records` to BENCH_<bench_name>.json in the working directory:
///   {"benchmark": "...", "results": [{"name": ..., "config": {...},
///    "elapsed_seconds": ..., "bytes": ..., "flops": ...}, ...]}
/// When `metrics_json` is non-empty it must be a pre-rendered JSON value
/// (e.g. MetricsSnapshot::ToJson()) and is embedded verbatim under a
/// trailing "metrics_snapshot" key — and it is *guarded*: the snapshot
/// must parse back and pass CheckMetricsConsistency, so a harness never
/// ships a BENCH_*.json with a corrupt or self-contradictory snapshot.
/// Returns false (after printing the reason) when the file is not
/// writable or the embedded snapshot fails the guard; bench mains
/// propagate that as a non-zero exit.
inline bool WriteBenchJson(const std::string& bench_name,
                           const std::vector<BenchRecord>& records,
                           const std::string& metrics_json = "") {
  const std::string path = "BENCH_" + bench_name + ".json";
  if (!metrics_json.empty()) {
    Result<MetricsSnapshot> snapshot = ParseMetricsJson(metrics_json);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s: embedded metrics snapshot unparsable: %s\n",
                   path.c_str(), snapshot.status().ToString().c_str());
      return false;
    }
    if (Status consistent = CheckMetricsConsistency(*snapshot);
        !consistent.ok()) {
      std::fprintf(stderr, "%s: metrics consistency check failed: %s\n",
                   path.c_str(), consistent.ToString().c_str());
      return false;
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"benchmark\": \"" << JsonEscape(bench_name)
      << "\",\n  \"results\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << JsonEscape(r.name)
        << "\", \"config\": {";
    for (std::size_t c = 0; c < r.config.size(); ++c) {
      out << (c == 0 ? "" : ", ") << "\"" << JsonEscape(r.config[c].first)
          << "\": \"" << JsonEscape(r.config[c].second) << "\"";
    }
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.6f", r.elapsed_seconds);
    out << "}, \"elapsed_seconds\": " << elapsed << ", \"bytes\": " << r.bytes
        << ", \"flops\": " << r.flops << "}";
  }
  out << "\n  ]";
  if (!metrics_json.empty()) {
    out << ",\n  \"metrics_snapshot\": " << metrics_json;
  }
  out << "\n}\n";
  std::printf("wrote %s (%zu results)\n", path.c_str(), records.size());
  return true;
}

/// A BenchRecord for an engine run (elapsed = modeled cluster seconds).
inline BenchRecord RecordFor(
    std::string name, const ExecutionReport& report,
    std::vector<std::pair<std::string, std::string>> config = {}) {
  BenchRecord r;
  r.name = std::move(name);
  r.config = std::move(config);
  r.config.emplace_back("status", report.status.ok()
                                      ? "ok"
                                      : std::string(report.status.ToString()));
  r.elapsed_seconds = report.elapsed_seconds;
  r.bytes = report.total_bytes();
  r.flops = report.flops;
  return r;
}

}  // namespace fuseme::bench

#endif  // FUSEME_BENCH_BENCH_UTIL_H_
