file(REMOVE_RECURSE
  "CMakeFiles/fuseme_engine.dir/engine.cc.o"
  "CMakeFiles/fuseme_engine.dir/engine.cc.o.d"
  "CMakeFiles/fuseme_engine.dir/reference.cc.o"
  "CMakeFiles/fuseme_engine.dir/reference.cc.o.d"
  "libfuseme_engine.a"
  "libfuseme_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
