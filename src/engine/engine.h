// Engine: DAG in, fusion plan + distributed execution + report out.
//
// The engine reproduces four systems' planning/execution policies on one
// runtime (paper §6: SystemDS, MatFast, DistME, FuseME):
//
//   kFuseMe   CFG planner, every plan as a CFO with optimizer-chosen
//             (P,Q,R) — the paper's system.
//   kSystemDs GEN templates; matmul-bearing plans run as BFO or RFO by the
//             §6.2 selection rule (BFO when the main matrix has fewer
//             Spark partitions than its block-grid dimensions).
//   kMatFast  folded element-wise chains; matmuls broadcast the smaller
//             operand.
//   kDistMe   no fusion; matmuls use CuboidMM (a single-node CFO plan),
//             everything else is an operator-at-a-time stage.
//
// Two execution paths share all policy code:
//   real      block-level execution of the physical operators (numeric
//             results, measured communication/flops);
//   analytic  closed-form stage statistics from the cost model — used to
//             run paper-scale experiments in milliseconds.  Matrices are
//             carried as metadata descriptors.
//
// Elapsed time always comes from the Simulator's cluster model; OutOfMemory
// and TimedOut surface in the report exactly like the paper's O.O.M./T.O.
// table cells.

#ifndef FUSEME_ENGINE_ENGINE_H_
#define FUSEME_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/result.h"
#include "cost/optimizer.h"
#include "fusion/planners.h"
#include "ops/fused_operator.h"
#include "runtime/distributed_matrix.h"
#include "runtime/fault_injector.h"
#include "runtime/simulator.h"
#include "telemetry/observability.h"
#include "telemetry/prediction.h"
#include "verify/diagnostic.h"

// Opt-in deprecation surface for the legacy single-shot entry points
// (Run / RunWithPlans — see the migration note in src/fuseme.h).  Off by
// default so existing builds stay warning-clean under -Werror; define
// FUSEME_ENABLE_DEPRECATION_WARNINGS to get [[deprecated]] diagnostics at
// every legacy call site.
#ifdef FUSEME_ENABLE_DEPRECATION_WARNINGS
#define FUSEME_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define FUSEME_DEPRECATED(msg)
#endif

namespace fuseme {

class Tracer;
class MetricsRegistry;  // telemetry/metrics.h

enum class SystemMode {
  kFuseMe,
  kSystemDs,
  kMatFast,
  kDistMe,
  /// TensorFlow with XLA (paper §6.5): element-wise chains fuse (the XLA
  /// fusion pass); matrix multiplications run data-parallel with the
  /// smaller operand broadcast to every instance.
  kTensorFlow,
};
std::string_view SystemModeName(SystemMode mode);

/// Physical operator selection for a plan.  kAuto applies the SystemMode's
/// policy; the explicit values force one operator (used by the Fig. 12
/// benchmark, which compares BFO/RFO/CFO on the same plan).  kCpmm is
/// SystemDS's k-partitioned shuffle matmul — a (1,1,R) cuboid with the
/// smallest memory-feasible R — used when neither broadcast nor
/// replication fits.
enum class OperatorKind { kAuto, kCfo, kBfo, kRfo, kCpmm };
/// Stable display names — "CFO", "BFO", "RFO", "cpmm" ("?" for kAuto) —
/// used by stage labels, trace spans, journal events, and the CompiledPlan
/// JSON schema.
std::string_view OperatorKindName(OperatorKind kind);

/// How the engine recovers from failures (DESIGN.md section 13).  The
/// defaults preserve the paper's semantics: a stage that runs out of
/// memory reports O.O.M. exactly like the experiment tables, and nothing
/// retries unless a fault schedule is active.
struct RecoveryOptions {
  /// Per-work-item attempt budget for injected task failures.  Only
  /// consulted when EngineOptions::faults schedules failures — genuine
  /// statuses are deterministic and never retried at item level.
  RetryPolicy retry;
  /// Climb the OOM degradation ladder instead of failing the run: first
  /// re-optimize the cuboid under a shrinking modeled budget (finer
  /// partitions, less memory per task), then fall back to the (1,1,R)
  /// cpmm shuffle operator.  Off by default so O.O.M. cells reproduce.
  bool degrade_on_oom = false;
  /// Ladder length: rungs tried per stage before the original OutOfMemory
  /// is surfaced unchanged.
  int max_degradations_per_stage = 6;
  /// Launch speculative copies of scheduled stragglers in the simulator's
  /// cluster-time model (Spark's spark.speculation); the first finisher
  /// wins, cutting the straggler tail.
  bool speculative_execution = true;
  /// A copy launches once a straggler runs this factor past the modeled
  /// wave duration.
  double speculation_launch_factor = 1.5;
};

struct EngineOptions {
  SystemMode system = SystemMode::kFuseMe;
  ClusterConfig cluster;
  /// true: metadata-only analytic execution (no numeric block data).
  bool analytic = false;
  /// Use the pruning (P,Q,R) search instead of the exhaustive one.
  bool pruned_search = true;
  /// Skew-aware cuboid splits (see CuboidOptions::balance_sparsity).
  /// Real-mode only: the analytic path models aggregate totals, which
  /// balancing does not change.
  bool balance_sparsity = false;
  /// Optional span sink (not owned): when set, the engine records a span
  /// per stage and the physical operators record spans per work item;
  /// export with Tracer::WriteChromeJson.  See DESIGN.md section 10.
  Tracer* tracer = nullptr;
  /// Optional metrics sink (not owned): when set, the whole pipeline
  /// (parser, planner, optimizer, verifier, runtime, kernels) records
  /// counters/gauges/histograms into it — see telemetry/metric_names.h and
  /// DESIGN.md section 12.  Null disables with no hot-path cost.
  MetricsRegistry* metrics = nullptr;
  /// Optional flight-recorder sink (not owned): when set, the engine and
  /// runtime emit structured events (telemetry/event_names.h) into it —
  /// run lifecycle, planner/optimizer decisions, verifier diagnostics,
  /// stage commits, the fault path, prefetcher stalls.  Null disables at
  /// one pointer test, like tracer/metrics.  Mutually exclusive with
  /// observability.journal_capacity (which makes the engine own one).
  EventJournal* journal = nullptr;
  /// Engine-owned observability plane (DESIGN.md section 17): flight
  /// recorder, background metrics sampler, embedded HTTP exporter.  All
  /// off by default; Engine::Create starts the enabled pieces and stops
  /// them when the last copy of the engine goes away.
  ObservabilityOptions observability;
  /// How much static plan verification runs before/while executing
  /// (verify/plan_verifier.h, DESIGN.md section 11).  kPlanner checks the
  /// DAG, every plan, and the stage graph up front; kParanoid re-checks
  /// each chosen cuboid against the optimizer's own memory estimate
  /// before the stage runs.  Diagnostics fail the run with
  /// StatusCode::kInternal and land in ExecutionReport.
  VerifyLevel verify = VerifyLevel::kPlanner;
  /// Deterministic fault schedule (off by default).  When enabled, work
  /// items are killed / stages OOM / tasks straggle exactly as the seeded
  /// schedule dictates, and `recovery` governs how the engine survives.
  FaultSpec faults;
  /// Recovery policy applied when `faults` is active or a stage genuinely
  /// runs out of memory (see RecoveryOptions).
  RecoveryOptions recovery;

  /// Checks the options for structural validity: cluster shape, budgets,
  /// bandwidths, probabilities, retry/degradation knobs, and contradictory
  /// flags (balance_sparsity in analytic mode).  Engine::Create rejects
  /// invalid options with this status; the legacy Engine constructor
  /// CHECK-fails on it.
  Status Validate() const;

  class Builder;
};

/// Fluent construction for EngineOptions; Build() validates.
///
///   FUSEME_ASSIGN_OR_RETURN(
///       EngineOptions opts,
///       EngineOptions::Builder().System(SystemMode::kFuseMe)
///           .Cluster(cluster).Analytic(true).Build());
class EngineOptions::Builder {
 public:
  Builder& System(SystemMode system);
  Builder& Cluster(const ClusterConfig& cluster);
  Builder& Analytic(bool analytic);
  Builder& PrunedSearch(bool pruned);
  Builder& BalanceSparsity(bool balance);
  Builder& WithTracer(Tracer* tracer);
  Builder& WithMetrics(MetricsRegistry* metrics);
  Builder& WithJournal(EventJournal* journal);
  Builder& Observability(const ObservabilityOptions& observability);
  Builder& Verify(VerifyLevel level);
  Builder& Faults(const FaultSpec& faults);
  Builder& Recovery(const RecoveryOptions& recovery);

  /// Validates and returns the assembled options.
  Result<EngineOptions> Build() const;

 private:
  EngineOptions options_;
};

/// One rung of the OOM degradation ladder actually taken while a stage
/// recovered: the stage moved from the `from` configuration to `to`
/// because of `cause` (the OutOfMemory message that fired).
struct DegradationEvent {
  std::string stage_label;
  std::string from;  // e.g. "CFO (4,3,1)"
  std::string to;    // e.g. "CFO (8,6,1)" or "cpmm (1,1,5)"
  std::string cause;
};

struct ExecutionReport {
  Status status;
  double elapsed_seconds = 0.0;
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t max_task_memory = 0;
  std::vector<StageStats> stages;
  /// Per-stage predicted-vs-actual telemetry (one entry per attempted
  /// stage, in execution order; see telemetry/prediction.h).  Feed to
  /// BuildPredictionReport / FormatPredictionTable.
  std::vector<StageTelemetry> telemetry;
  /// Invariant violations the PlanVerifier found (empty on clean runs).
  /// Non-empty implies status is kInternal and execution never started
  /// (or, at kParanoid, stopped before the offending stage).
  std::vector<VerifierDiagnostic> verifier_diagnostics;
  std::string plan_description;

  // --- Recovery accounting (DESIGN.md section 13; all zero/empty on
  // clean runs, so paper-mode reports are unchanged). ---
  /// Work-item attempts across all stages, first tries included.
  std::int64_t attempts = 0;
  /// Re-launches beyond each item's first attempt, keyed by cause
  /// ("injected_failure", ...).
  std::map<std::string, std::int64_t> retries_by_cause;
  /// OOM degradation rungs taken, in the order they fired.
  std::vector<DegradationEvent> degradations;
  /// Speculative task copies the simulator launched against stragglers.
  std::int64_t speculative_tasks = 0;

  std::int64_t total_retries() const {
    std::int64_t total = 0;
    for (const auto& [cause, n] : retries_by_cause) total += n;
    return total;
  }

  std::int64_t total_bytes() const {
    return consolidation_bytes + aggregation_bytes;
  }
  bool ok() const { return status.ok(); }
  /// One-line outcome: "3.2 min, 17.3 GB shuffled, 12 stages" or the
  /// failure code ("O.O.M." / "T.O.").
  std::string Summary() const;
};

class CompiledPlan;         // engine/compiled_plan.h
struct CompiledStageTable;  // engine/compiled_plan.h
struct PlanDescription;     // engine/solver_registry.h
struct SolverEnv;           // engine/solver_registry.h

class Engine {
 public:
  /// Validated construction — the preferred entry point.  Rejects invalid
  /// options (EngineOptions::Validate) with InvalidArgument instead of
  /// aborting.
  static Result<Engine> Create(EngineOptions options);

  /// Legacy constructor, kept as a checked wrapper around Create:
  /// CHECK-fails on options Create would reject.
  explicit Engine(EngineOptions options);

  const EngineOptions& options() const { return options_; }
  const CostModel& cost_model() const { return model_; }

  /// The effective flight recorder: the external options.journal if one
  /// was supplied, else the engine-owned plane's, else null.
  EventJournal* journal() const { return journal_; }
  /// The engine-owned observability plane, or null when
  /// options.observability enabled nothing.
  const ObservabilityPlane* observability() const { return plane_.get(); }
  /// Bound exporter port (-1 when the exporter is off) — what tests and
  /// the --serve example curl against when exporter_port was 0.
  int exporter_port() const {
    return plane_ != nullptr ? plane_->exporter_port() : -1;
  }

  /// Generates this system's fusion plan set for `dag`.
  FusionPlanSet MakePlans(const Dag& dag) const;

  struct RunResult {
    ExecutionReport report;
    /// Root-node values of dag.outputs() (meta descriptors in analytic
    /// mode).  Empty when execution failed.
    std::map<NodeId, DistributedMatrix> outputs;

    /// Passthroughs to the report, so callers of either Run entry point
    /// read outcomes uniformly.
    bool ok() const { return report.ok(); }
    const Status& status() const { return report.status; }
    std::string Summary() const { return report.Summary(); }
  };

  // --- Compile-once / execute-many facade (DESIGN.md section 18) ---

  /// Runs the full planning pipeline exactly once — planner, verifier,
  /// per-stage solver resolution, base cost-model predictions — and
  /// freezes the result (with an owned copy of the DAG) into a reusable
  /// CompiledPlan.  Compilation itself always succeeds; planning and
  /// verification failures are frozen into the artifact and surface from
  /// Execute exactly as they would from Run.
  Result<CompiledPlan> Compile(const Dag& dag) const;

  /// Compile against a caller-supplied plan set (the compiled counterpart
  /// of RunWithPlans), optionally forcing the physical operator.  The
  /// plans are rebuilt over the artifact's own DAG copy; malformed plans
  /// (out-of-range members, leaf members, roots outside the member set)
  /// are rejected with InvalidArgument instead of aborting.
  Result<CompiledPlan> CompileWithPlans(
      const Dag& dag, const FusionPlanSet& plans,
      OperatorKind forced = OperatorKind::kAuto) const;

  /// Replays a compiled artifact against fresh inputs of the same shape
  /// class: no re-planning, no solver re-resolution, and no redundant
  /// re-verification (kParanoid deliberately re-checks).  Rejects — via
  /// CompiledPlan::CheckCompatible, before any stage runs or any event is
  /// emitted — an artifact compiled for a different system/mode/cluster,
  /// or inputs whose shape/sparsity class differs from what the artifact
  /// was compiled for.  Outputs and stage statistics are bitwise
  /// identical to Run over the same DAG and inputs.
  RunResult Execute(const CompiledPlan& plan,
                    const std::map<NodeId, BlockedMatrix>& inputs) const;

  /// Plans `dag` and reports, per stage, every registered stage solver's
  /// applicability verdict (the precise precondition it rejects on) and
  /// modeled cost — the decision Compile would freeze, without freezing
  /// or executing anything.
  PlanDescription Describe(const Dag& dag) const;

  /// Plans and executes the whole DAG.  `inputs` binds leaf nodes to
  /// matrices; in analytic mode missing leaves are synthesized as
  /// descriptors from the DAG metadata.
  ///
  /// Thin wrapper over the compile/execute pipeline (Compile + Execute
  /// semantics in one call); prefer those when the same DAG runs more
  /// than once.  See the deprecation note in src/fuseme.h.
  FUSEME_DEPRECATED("single-shot entry point; use Compile + Execute")
  RunResult Run(const Dag& dag,
                const std::map<NodeId, BlockedMatrix>& inputs) const;

  /// Executes a caller-supplied plan set (e.g. the single full-query plan
  /// of §6.2), optionally forcing the physical operator.  Thin wrapper
  /// over the compile/execute pipeline, like Run.
  FUSEME_DEPRECATED("single-shot entry point; use CompileWithPlans + Execute")
  RunResult RunWithPlans(const Dag& dag, const FusionPlanSet& plans,
                         const std::map<NodeId, BlockedMatrix>& inputs,
                         OperatorKind forced = OperatorKind::kAuto) const;

  /// Cost-model prediction for running `plan` as `kind`: chosen cuboid
  /// plus NetEst/AggBytes/ComEst/MemEst (telemetry/prediction.h).  Fails
  /// with OutOfMemory when no cuboid fits the task budget (CFO/cpmm) —
  /// exactly the cases where execution could not proceed either.
  /// When the stage's bound `inputs` are available, their partitioning
  /// refines the narrow-dependency model (a same-shaped input only skips
  /// the shuffle where its owner task coincides with the consuming task);
  /// without them, inputs are assumed grid-partitioned over the cluster.
  /// `budget_factor` scales the modeled per-task budget the CFO cuboid
  /// search runs under (the OOM degradation ladder passes < 1 to force
  /// finer partitions); 1.0 is the configured budget.
  Result<StagePrediction> PredictStage(const PartialPlan& plan,
                                       OperatorKind kind,
                                       const FusedInputs* inputs = nullptr,
                                       double budget_factor = 1.0) const;

 private:
  struct ValidatedTag {};
  Engine(ValidatedTag, EngineOptions options);

  /// Builds and starts the options_.observability plane (if anything is
  /// enabled) and resolves the effective journal_ pointer.  Called once
  /// from Create / the legacy constructor after validation.
  Status StartObservability();

  /// Solver-facing view of this engine's configuration.  `silent` drops
  /// the metric/journal sinks: used where a resolution or search merely
  /// probes (PredictStage dispatch, Describe) and must not inflate the
  /// fuseme_solver_* / optimizer accounting.
  SolverEnv MakeSolverEnv(bool silent = false) const;

  /// Operator the current SystemMode uses for `plan`.  `bound_matrices`
  /// are the plan's matrix-valued external input ids, ascending — the id
  /// set any successful run binds, so compile-time selection matches what
  /// the execution path historically chose from its live bindings.
  OperatorKind PickOperator(const PartialPlan& plan,
                            const std::vector<NodeId>& bound_matrices) const;

  /// The compile half shared by Compile / CompileWithPlans / the legacy
  /// wrappers: verification (cached into the table) plus per-stage
  /// operator selection, solver resolution, and base predictions.
  /// Operates on the caller's dag/plans in place, so the legacy wrappers
  /// add no copies (and never rebuild — possibly deliberately corrupted —
  /// test plan sets through the checking constructor).
  CompiledStageTable CompileStages(const Dag& dag, const FusionPlanSet& plans,
                                   OperatorKind forced) const;

  /// The execute half: replays a compiled stage table against `inputs`.
  /// `trust_cached_verification` distinguishes the single-call legacy
  /// path (the table was verified moments ago; trust it even at
  /// kParanoid) from artifact replay (kParanoid re-verifies).
  RunResult ExecuteCompiled(const Dag& dag, const FusionPlanSet& plans,
                            const CompiledStageTable& table,
                            const std::map<NodeId, BlockedMatrix>& inputs,
                            bool trust_cached_verification) const;

  /// Fills `stats` from the prediction's closed forms (plus the engine's
  /// narrow-dependency and output-write adjustments) and returns the
  /// descriptor output.
  Result<DistributedMatrix> RunPlanAnalytic(const PartialPlan& plan,
                                            OperatorKind kind,
                                            const StagePrediction& pred,
                                            StageStats* stats) const;

  /// One rung up the OOM degradation ladder from the failed attempt at
  /// (`kind`, `failed`, `budget_factor`): the next operator/prediction to
  /// try, or the error when the ladder is exhausted (callers then surface
  /// the original OutOfMemory).
  struct DegradationStep {
    OperatorKind kind;
    StagePrediction pred;
    double budget_factor;
    std::string action;  // "shrink_cuboid" | "cpmm"
  };
  Result<DegradationStep> NextDegradation(const PartialPlan& plan,
                                          OperatorKind kind,
                                          const StagePrediction& failed,
                                          const FusedInputs* inputs,
                                          double budget_factor) const;

  EngineOptions options_;
  CostModel model_;
  /// Present iff options_.faults.enabled(); stages consult it for task
  /// kills, synthetic OOMs, and straggler factors.
  std::optional<FaultInjector> injector_;
  /// Engine-owned observability plane (shared so Engine stays copyable;
  /// background threads stop with the last copy).  Null when disabled.
  std::shared_ptr<ObservabilityPlane> plane_;
  /// Effective journal sink: options_.journal, else plane_->journal(),
  /// else null.  Cached so emission sites are one pointer test.
  EventJournal* journal_ = nullptr;
};

}  // namespace fuseme

#endif  // FUSEME_ENGINE_ENGINE_H_
