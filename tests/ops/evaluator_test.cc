#include "ops/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include "engine/reference.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;  // block size for all evaluator tests

/// Fetcher serving blocks out of in-memory BlockedMatrix bindings.
BlockFetcher MapFetcher(const std::map<NodeId, BlockedMatrix>* data) {
  return [data](NodeId id, std::int64_t bi,
                std::int64_t bj) -> Result<Block> {
    auto it = data->find(id);
    if (it == data->end()) {
      return Status::InvalidArgument("no binding for v" + std::to_string(id));
    }
    return it->second.block(bi, bj);
  };
}

DenseMatrix TileOf(const DenseMatrix& full, std::int64_t bi, std::int64_t bj,
                   std::int64_t bs) {
  const std::int64_t r0 = bi * bs, c0 = bj * bs;
  const std::int64_t rows = std::min(bs, full.rows() - r0);
  const std::int64_t cols = std::min(bs, full.cols() - c0);
  DenseMatrix out(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      out(i, j) = full(r0 + i, c0 + j);
    }
  }
  return out;
}

struct NmfFixture {
  NmfPattern q;
  std::map<NodeId, BlockedMatrix> blocked;
  std::map<NodeId, DenseMatrix> dense;
  DenseMatrix expected;

  explicit NmfFixture(std::int64_t i = 20, std::int64_t j = 18,
                      std::int64_t k = 6, double x_density = 0.1)
      : q(BuildNmfPattern(i, j, k,
                          static_cast<std::int64_t>(i * j * x_density))) {
    SparseMatrix x = RandomSparse(i, j, x_density, /*seed=*/1, 1.0, 2.0);
    DenseMatrix u = RandomDense(i, k, /*seed=*/2, 0.5, 1.5);
    DenseMatrix v = RandomDense(j, k, /*seed=*/3, 0.5, 1.5);
    dense[q.X] = x.ToDense();
    dense[q.U] = u;
    dense[q.V] = v;
    blocked[q.X] = BlockedMatrix::FromSparse(x, kBs);
    blocked[q.U] = BlockedMatrix::FromDense(u, kBs);
    blocked[q.V] = BlockedMatrix::FromDense(v, kBs);
    auto ref = ReferenceEval(q.dag, q.mul, dense);
    FUSEME_CHECK(ref.ok());
    expected = *ref;
  }

  PartialPlan Plan() const {
    return PartialPlan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  }
};

TEST(KernelEvaluatorTest, RootBlocksMatchReference) {
  NmfFixture f;
  PartialPlan plan = f.Plan();
  KernelEvaluator eval(&plan, kBs, MapFetcher(&f.blocked));
  const NodeGrid grid = eval.Grid(f.q.mul);
  for (std::int64_t bi = 0; bi < grid.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < grid.grid_cols(); ++bj) {
      auto block = eval.Eval(f.q.mul, bi, bj);
      ASSERT_TRUE(block.ok()) << block.status();
      DenseMatrix expected = TileOf(f.expected, bi, bj, kBs);
      EXPECT_LE(DenseMatrix::MaxAbsDiff(block->ToDense(), expected), 1e-9)
          << "block " << bi << "," << bj;
    }
  }
  EXPECT_GT(eval.flops(), 0);
}

TEST(KernelEvaluatorTest, SparseDriverPathMatchesBlockPath) {
  NmfFixture f(24, 16, 5, /*x_density=*/0.05);
  PartialPlan plan = f.Plan();
  SparseDriver driver = FindSparseDriver(plan, f.q.mm);
  ASSERT_TRUE(driver.found());

  KernelEvaluator with_driver(&plan, kBs, MapFetcher(&f.blocked));
  with_driver.SetSparseDriver(driver);
  KernelEvaluator without(&plan, kBs, MapFetcher(&f.blocked));

  const NodeGrid grid = with_driver.Grid(f.q.mul);
  for (std::int64_t bi = 0; bi < grid.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < grid.grid_cols(); ++bj) {
      auto a = with_driver.Eval(f.q.mul, bi, bj);
      auto b = without.Eval(f.q.mul, bi, bj);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_LE(DenseMatrix::MaxAbsDiff(a->ToDense(), b->ToDense()), 1e-9);
    }
  }
  // The masked path does far less work than the dense evaluation.
  EXPECT_LT(with_driver.flops(), without.flops() / 2);
}

TEST(KernelEvaluatorTest, KRestrictedPartialsSumToFull) {
  NmfFixture f(16, 16, 20, /*x_density=*/1.0);  // K spans 3 blocks
  PartialPlan plan = f.Plan();

  KernelEvaluator full(&plan, kBs, MapFetcher(&f.blocked));
  auto full_mm = full.Eval(f.q.mm, 0, 0);
  ASSERT_TRUE(full_mm.ok());

  // Partial evaluations over k-slices [0,1), [1,2), [2,3).
  DenseMatrix sum(full_mm->rows(), full_mm->cols());
  for (std::int64_t r = 0; r < 3; ++r) {
    KernelEvaluator partial(&plan, kBs, MapFetcher(&f.blocked));
    partial.RestrictK(f.q.mm, r, r + 1);
    auto block = partial.Eval(f.q.mm, 0, 0);
    ASSERT_TRUE(block.ok());
    DenseMatrix d = block->ToDense();
    for (std::int64_t i = 0; i < sum.size(); ++i) {
      sum.data()[i] += d.data()[i];
    }
  }
  EXPECT_LE(DenseMatrix::MaxAbsDiff(sum, full_mm->ToDense()), 1e-9);
}

TEST(KernelEvaluatorTest, InjectedValueShortCircuits) {
  NmfFixture f;
  PartialPlan plan = f.Plan();
  KernelEvaluator eval(&plan, kBs, MapFetcher(&f.blocked));
  // Inject zeros for the matmul: log(0 + eps) * X should result.
  const NodeGrid grid = eval.Grid(f.q.mm);
  for (std::int64_t bi = 0; bi < grid.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < grid.grid_cols(); ++bj) {
      eval.Inject(f.q.mm, bi, bj,
                  Block::Zero(grid.TileRows(bi), grid.TileCols(bj)));
    }
  }
  auto block = eval.Eval(f.q.mul, 0, 0);
  ASSERT_TRUE(block.ok());
  // Expected: X * log(eps) at X's non-zeros within the tile.
  DenseMatrix x_tile = TileOf(f.dense[f.q.X], 0, 0, kBs);
  for (std::int64_t i = 0; i < x_tile.rows(); ++i) {
    for (std::int64_t j = 0; j < x_tile.cols(); ++j) {
      EXPECT_NEAR(block->ToDense()(i, j), x_tile(i, j) * std::log(1e-8),
                  1e-9);
    }
  }
}

TEST(KernelEvaluatorTest, EvalMaskedNodeRestrictedPartials) {
  NmfFixture f(16, 16, 20, /*x_density=*/0.08);
  PartialPlan plan = f.Plan();
  SparseDriver driver = FindSparseDriver(plan, f.q.mm);
  ASSERT_TRUE(driver.found());

  // Masked partials over k-slices must sum to the masked full product.
  KernelEvaluator full(&plan, kBs, MapFetcher(&f.blocked));
  auto mm_full = full.Eval(f.q.mm, 0, 1);
  ASSERT_TRUE(mm_full.ok());

  DenseMatrix summed(mm_full->rows(), mm_full->cols());
  for (std::int64_t r = 0; r < 3; ++r) {
    KernelEvaluator partial(&plan, kBs, MapFetcher(&f.blocked));
    partial.RestrictK(f.q.mm, r, r + 1);
    auto masked = partial.EvalMaskedNode(f.q.mm, driver.sparse_input, 0, 1);
    ASSERT_TRUE(masked.ok());
    DenseMatrix d = masked->ToDense();
    for (std::int64_t i = 0; i < summed.size(); ++i) {
      summed.data()[i] += d.data()[i];
    }
  }
  // At mask non-zeros the sum equals the full product.
  const BlockedMatrix& xb = f.blocked[f.q.X];
  const Block& mask = xb.block(0, 1);
  DenseMatrix full_d = mm_full->ToDense();
  for (std::int64_t i = 0; i < mask.rows(); ++i) {
    for (std::int64_t j = 0; j < mask.cols(); ++j) {
      if (mask.At(i, j) != 0.0) {
        EXPECT_NEAR(summed(i, j), full_d(i, j), 1e-9);
      } else {
        EXPECT_EQ(summed(i, j), 0.0);
      }
    }
  }
}

TEST(KernelEvaluatorTest, FetcherErrorsPropagate) {
  NmfFixture f;
  PartialPlan plan = f.Plan();
  KernelEvaluator eval(&plan, kBs, [](NodeId, std::int64_t, std::int64_t)
                           -> Result<Block> {
    return Status::OutOfMemory("fetch failed");
  });
  auto result = eval.Eval(f.q.mul, 0, 0);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(KernelEvaluatorTest, MetaInputsProduceMetaOutputs) {
  NmfPattern q = BuildNmfPattern(32, 32, 8, 100);
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  std::map<NodeId, BlockedMatrix> data;
  data[q.X] = BlockedMatrix::MakeMeta(32, 32, 100, kBs);
  data[q.U] = BlockedMatrix::MakeMeta(32, 8, 32 * 8, kBs);
  data[q.V] = BlockedMatrix::MakeMeta(32, 8, 32 * 8, kBs);
  KernelEvaluator eval(&plan, kBs, MapFetcher(&data));
  auto block = eval.Eval(q.mul, 0, 0);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_TRUE(block->is_meta());
  EXPECT_GT(eval.flops(), 0);
}

TEST(KernelEvaluatorTest, PcaRowFusionPattern) {
  // (X×S)ᵀ×X with everything fused: exercises transpose + nested matmul.
  PcaPattern q = BuildPcaPattern(20, 12);
  DenseMatrix x = RandomDense(20, 12, /*seed=*/4, 0.1, 1.0);
  DenseMatrix s = RandomDense(12, 1, /*seed=*/5, 0.1, 1.0);
  std::map<NodeId, DenseMatrix> dense = {{q.X, x}, {q.S, s}};
  std::map<NodeId, BlockedMatrix> blocked;
  blocked[q.X] = BlockedMatrix::FromDense(x, kBs);
  blocked[q.S] = BlockedMatrix::FromDense(s, kBs);
  auto expected = ReferenceEval(q.dag, q.mm2, dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&q.dag, {q.mm1, q.t, q.mm2}, q.mm2);
  KernelEvaluator eval(&plan, kBs, MapFetcher(&blocked));
  const NodeGrid grid = eval.Grid(q.mm2);
  DenseMatrix got(1, 12);
  for (std::int64_t bj = 0; bj < grid.grid_cols(); ++bj) {
    auto block = eval.Eval(q.mm2, 0, bj);
    ASSERT_TRUE(block.ok());
    DenseMatrix tile = block->ToDense();
    for (std::int64_t j = 0; j < tile.cols(); ++j) {
      got(0, bj * kBs + j) = tile(0, j);
    }
  }
  EXPECT_LE(DenseMatrix::MaxAbsDiff(got, *expected), 1e-9);
}

}  // namespace
}  // namespace fuseme
