file(REMOVE_RECURSE
  "CMakeFiles/operator_sweep_test.dir/operator_sweep_test.cc.o"
  "CMakeFiles/operator_sweep_test.dir/operator_sweep_test.cc.o.d"
  "operator_sweep_test"
  "operator_sweep_test.pdb"
  "operator_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
