file(REMOVE_RECURSE
  "CMakeFiles/fuseme_matrix.dir/block.cc.o"
  "CMakeFiles/fuseme_matrix.dir/block.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/block_ops.cc.o"
  "CMakeFiles/fuseme_matrix.dir/block_ops.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/blocked_matrix.cc.o"
  "CMakeFiles/fuseme_matrix.dir/blocked_matrix.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/dense_matrix.cc.o"
  "CMakeFiles/fuseme_matrix.dir/dense_matrix.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/generators.cc.o"
  "CMakeFiles/fuseme_matrix.dir/generators.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/matrix_io.cc.o"
  "CMakeFiles/fuseme_matrix.dir/matrix_io.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/scalar_ops.cc.o"
  "CMakeFiles/fuseme_matrix.dir/scalar_ops.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/sparse_matrix.cc.o"
  "CMakeFiles/fuseme_matrix.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/fuseme_matrix.dir/sparsity.cc.o"
  "CMakeFiles/fuseme_matrix.dir/sparsity.cc.o.d"
  "libfuseme_matrix.a"
  "libfuseme_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
