file(REMOVE_RECURSE
  "CMakeFiles/als_sparsity.dir/als_sparsity.cpp.o"
  "CMakeFiles/als_sparsity.dir/als_sparsity.cpp.o.d"
  "als_sparsity"
  "als_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/als_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
