# Empty compiler generated dependencies file for fuseme_planner.
# This may be replaced when dependencies are built.
