// Negative fixture: a dangling design-doc reference.  This fixture's
// DESIGN.md only has section 1, so the comment below must be flagged
// (lint-design-ref).  The section-1 reference above is fine.
//
// See DESIGN.md section 1 for the valid case and DESIGN.md section 9
// for the dangling one.

namespace fixture {

int Unused() { return 0; }

}  // namespace fixture
