
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/distributed_matrix.cc" "src/runtime/CMakeFiles/fuseme_runtime.dir/distributed_matrix.cc.o" "gcc" "src/runtime/CMakeFiles/fuseme_runtime.dir/distributed_matrix.cc.o.d"
  "/root/repo/src/runtime/simulator.cc" "src/runtime/CMakeFiles/fuseme_runtime.dir/simulator.cc.o" "gcc" "src/runtime/CMakeFiles/fuseme_runtime.dir/simulator.cc.o.d"
  "/root/repo/src/runtime/stage.cc" "src/runtime/CMakeFiles/fuseme_runtime.dir/stage.cc.o" "gcc" "src/runtime/CMakeFiles/fuseme_runtime.dir/stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/fuseme_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
