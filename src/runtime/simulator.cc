#include "runtime/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fuseme {

double Simulator::EstimateStageSeconds(const StageStats& stats) const {
  if (stats.num_tasks == 0) return 0.0;
  const int slots = config_.total_tasks();
  const int used_slots = std::min(stats.num_tasks, slots);
  const int used_nodes = std::min(
      (used_slots + config_.tasks_per_node - 1) / config_.tasks_per_node,
      config_.num_nodes);

  const double net_time =
      static_cast<double>(stats.total_bytes()) /
      (static_cast<double>(used_nodes) * config_.net_bandwidth);
  const double comp_time =
      static_cast<double>(stats.flops) /
      (static_cast<double>(used_slots) * config_.per_task_compute());

  // Network transfers burn CPU on the shuffle path; when communication
  // dominates, the cores it occupies stretch the stage beyond pure
  // max(net, comp).
  const double stretched_net = net_time * (1.0 + config_.shuffle_cpu_factor);
  const double busy = std::max(stretched_net, comp_time);

  const int waves = (stats.num_tasks + slots - 1) / slots;
  return busy + static_cast<double>(waves) * config_.task_launch_overhead;
}

Status Simulator::CompleteStage(StageStats stats) {
  stats.elapsed_seconds = EstimateStageSeconds(stats);
  elapsed_seconds_ += stats.elapsed_seconds;
  stages_.push_back(std::move(stats));
  if (elapsed_seconds_ > config_.timeout_seconds) {
    return Status::TimedOut(
        "simulated elapsed " + HumanSeconds(elapsed_seconds_) +
        " exceeded horizon " + HumanSeconds(config_.timeout_seconds));
  }
  return Status::OK();
}

std::int64_t Simulator::total_bytes() const {
  std::int64_t total = 0;
  for (const StageStats& s : stages_) total += s.total_bytes();
  return total;
}

std::int64_t Simulator::total_flops() const {
  std::int64_t total = 0;
  for (const StageStats& s : stages_) total += s.flops;
  return total;
}

}  // namespace fuseme
