#include "ir/printer.h"

#include <gtest/gtest.h>

#include "ir/expr.h"

namespace fuseme {
namespace {

TEST(PrinterTest, DagToStringListsAllNodes) {
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 4, 4, 4);
  Expr U = Expr::Input(&dag, "U", 4, 4);
  Expr out = (X * U).MarkOutput();
  (void)out;
  std::string s = DagToString(dag);
  EXPECT_NE(s.find("v0: X"), std::string::npos);
  EXPECT_NE(s.find("v1: U"), std::string::npos);
  EXPECT_NE(s.find("b(*)"), std::string::npos);
  EXPECT_NE(s.find("(output)"), std::string::npos);
  EXPECT_NE(s.find("<- v0 v1"), std::string::npos);
}

TEST(PrinterTest, DotContainsEdges) {
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 4, 4);
  Expr out = Exp(X).MarkOutput();
  (void)out;
  std::string dot = DagToDot(dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(PrinterTest, ExprRoundTripRendering) {
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 6, 6, 6);
  Expr U = Expr::Input(&dag, "U", 6, 2);
  Expr V = Expr::Input(&dag, "V", 6, 2);
  Expr q = X * Log(MatMul(U, T(V)) + 0.5);
  EXPECT_EQ(ExprToString(dag, q.id()), "(X * log(((U x T(V)) + 0.5)))");
}

TEST(PrinterTest, AggregationNames) {
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 6, 6);
  EXPECT_EQ(ExprToString(dag, RowSums(X).id()), "rowsum(X)");
  EXPECT_EQ(ExprToString(dag, ColSums(X).id()), "colsum(X)");
  EXPECT_EQ(ExprToString(dag, Sum(X).id()), "sum(X)");
}

}  // namespace
}  // namespace fuseme
