// Fixture event catalogue: one entry, referenced from demo.cc.
#ifndef FIXTURE_CLEAN_EVENT_NAMES_H_
#define FIXTURE_CLEAN_EVENT_NAMES_H_

namespace fuseme::event_names {

inline constexpr char kDemo[] = "fuseme.demo.start";

}  // namespace fuseme::event_names

#endif  // FIXTURE_CLEAN_EVENT_NAMES_H_
