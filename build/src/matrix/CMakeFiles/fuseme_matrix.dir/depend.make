# Empty dependencies file for fuseme_matrix.
# This may be replaced when dependencies are built.
