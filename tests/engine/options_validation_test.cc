// EngineOptions::Validate / Builder / Engine::Create: malformed
// configurations must be rejected with InvalidArgument before any engine
// machinery runs, and the RunResult passthroughs must mirror the report.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "matrix/generators.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

EngineOptions SmallValid() {
  EngineOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = 8;
  return options;
}

TEST(OptionsValidationTest, DefaultsValidate) {
  EXPECT_TRUE(EngineOptions{}.Validate().ok());
  EXPECT_TRUE(SmallValid().Validate().ok());
}

TEST(OptionsValidationTest, RejectsZeroNodeCluster) {
  EngineOptions options = SmallValid();
  options.cluster.num_nodes = 0;
  const Status status = options.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("num_nodes"), std::string::npos);
}

TEST(OptionsValidationTest, RejectsBadClusterShape) {
  auto expect_invalid = [](EngineOptions options, const char* what) {
    EXPECT_TRUE(options.Validate().IsInvalidArgument()) << what;
  };
  EngineOptions o = SmallValid();
  o.cluster.tasks_per_node = 0;
  expect_invalid(o, "tasks_per_node");
  o = SmallValid();
  o.cluster.task_memory_budget = 0;
  expect_invalid(o, "zero budget");
  o = SmallValid();
  o.cluster.task_memory_budget = -4096;
  expect_invalid(o, "negative budget");
  o = SmallValid();
  o.cluster.block_size = 0;
  expect_invalid(o, "block_size");
  o = SmallValid();
  o.cluster.net_bandwidth = 0.0;
  expect_invalid(o, "net_bandwidth");
  o = SmallValid();
  o.cluster.compute_bandwidth = -1.0;
  expect_invalid(o, "compute_bandwidth");
  o = SmallValid();
  o.cluster.timeout_seconds = 0.0;
  expect_invalid(o, "timeout");
  o = SmallValid();
  o.cluster.task_launch_overhead = -0.1;
  expect_invalid(o, "launch overhead");
  o = SmallValid();
  o.cluster.shuffle_cpu_factor = -1.0;
  expect_invalid(o, "shuffle factor");
  o = SmallValid();
  o.cluster.local_threads = -2;
  expect_invalid(o, "local_threads");
  o = SmallValid();
  o.cluster.prefetch_depth = -1;
  expect_invalid(o, "prefetch_depth");
  o = SmallValid();
  o.cluster.overlap_factor = 1.5;
  expect_invalid(o, "overlap_factor above 1");
  o = SmallValid();
  o.cluster.overlap_factor = -0.1;
  expect_invalid(o, "overlap_factor below 0");
  o = SmallValid();
  o.cluster.emulated_shuffle_seconds_per_byte = -1e-9;
  expect_invalid(o, "emulated shuffle pace");
}

TEST(OptionsValidationTest, RejectsContradictoryFlags) {
  EngineOptions options = SmallValid();
  options.analytic = true;
  options.balance_sparsity = true;
  const Status status = options.Validate();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("balance_sparsity"), std::string::npos);
  // Each flag alone is fine.
  options.balance_sparsity = false;
  EXPECT_TRUE(options.Validate().ok());
  options.analytic = false;
  options.balance_sparsity = true;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidationTest, RejectsBadFaultSpec) {
  EngineOptions o = SmallValid();
  o.faults.task_failure_probability = 1.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.faults.task_failure_probability = -0.1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.faults.straggler_probability = 2.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.faults.straggler_slowdown = 0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.faults.oom_stages = {-1};
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsValidationTest, RejectsBadRecovery) {
  EngineOptions o = SmallValid();
  o.recovery.retry.max_attempts = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.recovery.retry.backoff_base_seconds = -1.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.recovery.retry.backoff_max_seconds = -1.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.recovery.max_degradations_per_stage = -1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.recovery.speculation_launch_factor = 0.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsValidationTest, RejectsBadObservability) {
  EngineOptions o = SmallValid();
  o.observability.journal_capacity = -1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.observability.sample_period_seconds = -0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.observability.sampler_capacity = 0;
  o.observability.sample_period_seconds = 1.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = SmallValid();
  o.observability.exporter_port = 70000;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  // Sampling needs a registry to sample.
  o = SmallValid();
  o.observability.sample_period_seconds = 1.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  // The exporter needs at least one source.
  o = SmallValid();
  o.observability.exporter_port = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  // Crash dump needs the journal it would dump.
  o = SmallValid();
  o.observability.crash_dump = true;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsValidationTest, AcceptsEnabledObservability) {
  MetricsRegistry registry;
  EngineOptions o = SmallValid();
  o.metrics = &registry;
  o.observability.journal_capacity = 128;
  o.observability.sample_period_seconds = 0.5;
  o.observability.exporter_port = 0;
  o.observability.crash_dump = true;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(OptionsValidationTest, RejectsExternalJournalPlusOwnedJournal) {
  EventJournal journal(/*capacity=*/32);
  EngineOptions o = SmallValid();
  o.journal = &journal;
  o.observability.journal_capacity = 64;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  // Either alone is fine.
  o.observability.journal_capacity = 0;
  EXPECT_TRUE(o.Validate().ok());
  o.journal = nullptr;
  o.observability.journal_capacity = 64;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(OptionsValidationTest, EngineCreateStartsObservabilityPlane) {
  MetricsRegistry registry;
  EngineOptions o = SmallValid();
  o.metrics = &registry;
  o.observability.journal_capacity = 64;
  o.observability.exporter_port = 0;
  Result<Engine> engine = Engine::Create(o);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_NE(engine->journal(), nullptr);
  EXPECT_GT(engine->exporter_port(), 0);

  // Disabled plane: no journal, no exporter.
  Result<Engine> plain = Engine::Create(SmallValid());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->journal(), nullptr);
  EXPECT_EQ(plain->exporter_port(), -1);
}

TEST(OptionsValidationTest, BuilderAssemblesAndValidates) {
  ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.tasks_per_node = 3;
  cluster.block_size = 8;
  FaultSpec faults;
  faults.seed = 9;
  faults.task_failure_probability = 0.1;
  RecoveryOptions recovery;
  recovery.retry.max_attempts = 5;
  ObservabilityOptions observability;
  observability.journal_capacity = 32;

  Result<EngineOptions> built = EngineOptions::Builder()
                                    .System(SystemMode::kSystemDs)
                                    .Cluster(cluster)
                                    .Analytic(true)
                                    .PrunedSearch(false)
                                    .Verify(VerifyLevel::kOff)
                                    .Faults(faults)
                                    .Recovery(recovery)
                                    .Observability(observability)
                                    .Build();
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->system, SystemMode::kSystemDs);
  EXPECT_TRUE(built->analytic);
  EXPECT_FALSE(built->pruned_search);
  EXPECT_EQ(built->verify, VerifyLevel::kOff);
  EXPECT_EQ(built->faults.seed, 9u);
  EXPECT_EQ(built->recovery.retry.max_attempts, 5);
  EXPECT_EQ(built->observability.journal_capacity, 32);
}

TEST(OptionsValidationTest, BuilderRejectsInvalidAssembly) {
  ClusterConfig cluster;
  cluster.num_nodes = 0;
  Result<EngineOptions> built =
      EngineOptions::Builder().Cluster(cluster).Build();
  EXPECT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

TEST(OptionsValidationTest, EngineCreateRejectsInvalidOptions) {
  EngineOptions options = SmallValid();
  options.cluster.num_nodes = 0;
  Result<Engine> engine = Engine::Create(options);
  EXPECT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
}

TEST(OptionsValidationTest, EngineCreateAcceptsValidOptions) {
  Result<Engine> engine = Engine::Create(SmallValid());
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->options().cluster.num_nodes, 2);
}

TEST(OptionsValidationTest, RunResultPassthroughsMirrorReport) {
  GnmfQuery q = BuildGnmf(26, 20, 6, /*x_nnz=*/104);
  SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, 8);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(26, 6, 52), 8);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(6, 20, 53), 8);

  Result<Engine> engine = Engine::Create(SmallValid());
  ASSERT_TRUE(engine.ok());
  Engine::RunResult run = engine->Run(q.dag, inputs);
  EXPECT_EQ(run.ok(), run.report.ok());
  EXPECT_EQ(run.status().code(), run.report.status.code());
  EXPECT_EQ(run.Summary(), run.report.Summary());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run.report.plan_description.empty());
}

TEST(OptionsValidationTest, PlanDescriptionPopulatedOnBothPaths) {
  GnmfQuery q = BuildGnmf(26, 20, 6, /*x_nnz=*/104);
  Engine engine([] {
    EngineOptions o;
    o.analytic = true;
    return o;
  }());

  // Run(): the planner's own description.
  auto planned = engine.Run(q.dag, {});
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_FALSE(planned.report.plan_description.empty());

  // RunWithPlans() with a caller-assembled set and no description: the
  // engine synthesizes one instead of leaving the field empty.
  FusionPlanSet set = engine.MakePlans(q.dag);
  set.description.clear();
  auto supplied = engine.RunWithPlans(q.dag, set, {});
  ASSERT_TRUE(supplied.ok()) << supplied.status();
  EXPECT_NE(supplied.report.plan_description.find("caller-supplied"),
            std::string::npos);
}

}  // namespace
}  // namespace fuseme
