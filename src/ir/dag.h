// Dag: the query plan container (paper §2.1).
//
// Leaves are input matrices / scalar literals; inner vertices are matrix
// operators; edges are matrix flow.  Shape and sparsity are inferred as
// nodes are added, so invalid queries are rejected at construction time.

#ifndef FUSEME_IR_DAG_H_
#define FUSEME_IR_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ir/node.h"

namespace fuseme {

class Dag {
 public:
  Dag() = default;

  /// Leaf matrix with known shape and (estimated) non-zero count.
  /// nnz < 0 means fully dense.
  Result<NodeId> AddInput(std::string name, std::int64_t rows,
                          std::int64_t cols, std::int64_t nnz = -1);

  /// Scalar literal.
  Result<NodeId> AddScalar(double value);

  Result<NodeId> AddUnary(UnaryFn fn, NodeId input);

  /// Element-wise binary; one side may be a scalar node.
  Result<NodeId> AddBinary(BinaryFn fn, NodeId lhs, NodeId rhs);

  /// Matrix multiplication (binary aggregation ba(×)).
  Result<NodeId> AddMatMul(NodeId lhs, NodeId rhs);

  Result<NodeId> AddUnaryAgg(AggFn fn, AggAxis axis, NodeId input);

  Result<NodeId> AddTranspose(NodeId input);

  /// Marks a node as a query output (root).  Multiple outputs are allowed
  /// (multi-aggregation queries).
  void MarkOutput(NodeId id);

  const Node& node(NodeId id) const { return nodes_[id]; }

  /// TEST-ONLY mutation hook: direct access to a node so verifier tests
  /// can corrupt inferred metadata (shape, nnz, wiring) that the Add*
  /// builders would reject.  Production code must never call this — the
  /// whole planning stack assumes nodes are immutable once pushed.
  Node* mutable_node_for_test(NodeId id) { return &nodes_[id]; }
  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Node ids of consumers of `id` (nodes listing it as an input).
  std::vector<NodeId> Consumers(NodeId id) const;

  /// Number of consumers plus 1 if the node is an output (i.e. total
  /// outgoing edges; >1 means the node is a materialization point, §4.1).
  int FanOut(NodeId id) const;

  /// Ids in topological order (inputs before consumers).  Node ids are
  /// already topological by construction, so this is 0..n-1.
  std::vector<NodeId> TopologicalOrder() const;

  /// All kMatMul node ids.
  std::vector<NodeId> MatMulNodes() const;

 private:
  Result<NodeId> Push(Node node);
  Status CheckId(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
};

}  // namespace fuseme

#endif  // FUSEME_IR_DAG_H_
