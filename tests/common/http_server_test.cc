// Embedded HTTP listener: request-line parsing (method, path, version,
// size cap), live round-trips through HttpGet, and the error statuses
// the wire protocol promises (400 / 404 / 405 / 431).

#include "common/http_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

namespace fuseme {
namespace {

TEST(ParseHttpRequestTest, AcceptsSimpleGet) {
  Result<HttpRequest> req = ParseHttpRequest("GET /metrics HTTP/1.1");
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/metrics");
}

TEST(ParseHttpRequestTest, StripsQueryString) {
  Result<HttpRequest> req =
      ParseHttpRequest("GET /seriesz?window=60 HTTP/1.0");
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->path, "/seriesz");
}

TEST(ParseHttpRequestTest, ParsesNonGetMethods) {
  // Parsing succeeds — the *server* maps non-GET to 405.
  Result<HttpRequest> req = ParseHttpRequest("POST /metrics HTTP/1.1");
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->method, "POST");
}

TEST(ParseHttpRequestTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /metrics").ok());
  EXPECT_FALSE(ParseHttpRequest("GET metrics HTTP/1.1").ok());  // no slash
  EXPECT_FALSE(ParseHttpRequest("GET /metrics FTP/1.1").ok());
}

TEST(ParseHttpRequestTest, RejectsOversizedRequestLine) {
  const std::string line =
      "GET /" + std::string(9000, 'a') + " HTTP/1.1";
  const Result<HttpRequest> req = ParseHttpRequest(line);
  ASSERT_FALSE(req.ok());
  EXPECT_NE(req.status().message().find("exceeds"), std::string::npos);
}

// Sends raw bytes to the server and returns everything it answers with —
// for wire-level cases HttpGet (GET-only, well-formed) cannot produce.
std::string RawExchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class HttpServerLive : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServer::Options options;
    options.port = 0;  // ephemeral
    server_ = std::make_unique<HttpServer>(
        options, [](const HttpRequest& req) {
          HttpResponse resp;
          if (req.path == "/hello") {
            resp.body = "hi\n";
          } else {
            resp.status = 404;
            resp.body = "not found\n";
          }
          return resp;
        });
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerLive, ServesHandlerResponse) {
  Result<std::string> body = HttpGet(server_->port(), "/hello");
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(*body, "hi\n");
}

TEST_F(HttpServerLive, UnknownPathIs404) {
  Result<std::string> body = HttpGet(server_->port(), "/nope");
  ASSERT_FALSE(body.ok());
  EXPECT_NE(body.status().message().find("404"), std::string::npos);
}

TEST_F(HttpServerLive, NonGetMethodIs405) {
  const std::string response = RawExchange(
      server_->port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 405", 0), 0u) << response;
}

TEST_F(HttpServerLive, MalformedRequestLineIs400) {
  const std::string response =
      RawExchange(server_->port(), "NONSENSE\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u) << response;
}

TEST_F(HttpServerLive, OversizedRequestLineIs431) {
  const std::string response = RawExchange(
      server_->port(),
      "GET /" + std::string(10000, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 431", 0), 0u) << response;
}

TEST_F(HttpServerLive, StopIsIdempotentAndRestartable) {
  server_->Stop();
  server_->Stop();
  ASSERT_TRUE(server_->Start().ok());
  Result<std::string> body = HttpGet(server_->port(), "/hello");
  ASSERT_TRUE(body.ok()) << body.status();
}

}  // namespace
}  // namespace fuseme
