# Empty dependencies file for fuseme_runtime.
# This may be replaced when dependencies are built.
