#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "matrix/generators.h"
#include "telemetry/metric_names.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

TEST(MetricsTest, CounterSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("fuseme_test_events_total");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Same name resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("fuseme_test_events_total"), c);
}

TEST(MetricsTest, GaugeTracksHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("fuseme_test_level");
  g->Set(8.0);
  g->Set(3.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
  EXPECT_DOUBLE_EQ(g->peak(), 8.0);
  g->Add(10.0);
  EXPECT_DOUBLE_EQ(g->value(), 13.0);
  EXPECT_DOUBLE_EQ(g->peak(), 13.0);
  g->Add(-13.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_DOUBLE_EQ(g->peak(), 13.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("fuseme_test_seconds", {0.1, 1.0, 10.0});
  h->Observe(0.05);   // bucket 0
  h->Observe(0.1);    // bucket 0 (le is inclusive)
  h->Observe(0.5);    // bucket 1
  h->Observe(100.0);  // overflow
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 100.65);
  const std::vector<std::int64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
}

TEST(MetricsTest, LabelFamiliesAreDistinctAndOrderCanonical) {
  MetricsRegistry registry;
  Counter* consolidation = registry.GetCounter(
      metric_names::kStageShuffleBytes, {{"cause", "consolidation"}});
  Counter* aggregation = registry.GetCounter(metric_names::kStageShuffleBytes,
                                             {{"cause", "aggregation"}});
  EXPECT_NE(consolidation, aggregation);
  consolidation->Add(100);
  aggregation->Add(23);

  // Label order does not matter: {a,b} and {b,a} are one instrument.
  Counter* ab =
      registry.GetCounter("fuseme_test_pair_total", {{"a", "1"}, {"b", "2"}});
  Counter* ba =
      registry.GetCounter("fuseme_test_pair_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterTotal(metric_names::kStageShuffleBytes), 123);
  const MetricSample* sample = snap.Find(metric_names::kStageShuffleBytes,
                                         {{"cause", "consolidation"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 100);
}

TEST(MetricsTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_zz_total");
  registry.GetCounter("fuseme_aa_total");
  registry.GetCounter("fuseme_mm_total", {{"k", "b"}});
  registry.GetCounter("fuseme_mm_total", {{"k", "a"}});
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.samples[0].name, "fuseme_aa_total");
  EXPECT_EQ(snap.samples[1].name, "fuseme_mm_total");
  EXPECT_EQ(snap.samples[1].labels[0].second, "a");
  EXPECT_EQ(snap.samples[2].labels[0].second, "b");
  EXPECT_EQ(snap.samples[3].name, "fuseme_zz_total");
}

MetricsSnapshot PopulatedSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("fuseme_events_total")->Add(7);
  registry.GetCounter("fuseme_bytes_total", {{"cause", "shuffle"}})
      ->Add(1 << 20);
  Gauge* g = registry.GetGauge("fuseme_depth");
  g->Set(5.25);
  g->Set(2.5);
  Histogram* h =
      registry.GetHistogram("fuseme_wait_seconds", DefaultTimeBoundaries());
  h->Observe(1e-7);
  h->Observe(0.25);
  h->Observe(1e9);  // overflow bucket
  // A value that needs shortest-round-trip formatting to survive.
  registry.GetGauge("fuseme_ratio")->Set(0.1 + 0.2);
  return registry.Snapshot();
}

TEST(MetricsTest, PrometheusExportValidates) {
  const MetricsSnapshot snap = PopulatedSnapshot();
  const std::string text = snap.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE fuseme_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fuseme_bytes_total{cause=\"shuffle\"} 1048576"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fuseme_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("fuseme_depth_peak 5.25"), std::string::npos);
  EXPECT_NE(text.find("fuseme_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fuseme_wait_seconds_count 3"), std::string::npos);
  ASSERT_TRUE(ValidatePrometheusText(text).ok())
      << ValidatePrometheusText(text).ToString();
}

TEST(MetricsTest, PrometheusValidatorRejectsBrokenText) {
  // Sample without a preceding # TYPE declaration.
  EXPECT_FALSE(ValidatePrometheusText("fuseme_orphan_total 1\n").ok());
  // Histogram whose bucket series is not cumulative.
  const std::string bad =
      "# TYPE fuseme_h histogram\n"
      "fuseme_h_bucket{le=\"1\"} 5\n"
      "fuseme_h_bucket{le=\"+Inf\"} 3\n"
      "fuseme_h_sum 1\n"
      "fuseme_h_count 3\n";
  EXPECT_FALSE(ValidatePrometheusText(bad).ok());
  // Bucket series that never reaches +Inf.
  const std::string no_inf =
      "# TYPE fuseme_h histogram\n"
      "fuseme_h_bucket{le=\"1\"} 5\n"
      "fuseme_h_sum 1\n"
      "fuseme_h_count 5\n";
  EXPECT_FALSE(ValidatePrometheusText(no_inf).ok());
}

TEST(MetricsTest, JsonRoundTripsExactly) {
  const MetricsSnapshot snap = PopulatedSnapshot();
  Result<MetricsSnapshot> reparsed = ParseMetricsJson(snap.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(*reparsed == snap);
}

TEST(MetricsTest, JsonParserRejectsGarbage) {
  EXPECT_FALSE(ParseMetricsJson("not json").ok());
  EXPECT_FALSE(ParseMetricsJson("{\"samples\": [{}]}").ok());
}

TEST(MetricsTest, ConsistencyCheckCatchesViolations) {
  const MetricsSnapshot good = PopulatedSnapshot();
  EXPECT_TRUE(CheckMetricsConsistency(good).ok());

  MetricsSnapshot bad = good;
  for (MetricSample& s : bad.samples) {
    if (s.kind == MetricKind::kHistogram) s.histogram_count += 1;
  }
  EXPECT_FALSE(CheckMetricsConsistency(bad).ok());

  MetricsSnapshot negative = good;
  for (MetricSample& s : negative.samples) {
    if (s.kind == MetricKind::kCounter) s.counter_value = -1;
  }
  EXPECT_FALSE(CheckMetricsConsistency(negative).ok());
}

TEST(MetricsTest, ConcurrentHammerStaysConsistent) {
  // Many threads mutate the same families through the registry while
  // other threads take snapshots; totals must come out exact and every
  // snapshot (including intermediate ones) internally consistent.
  MetricsRegistry registry;
  constexpr std::int64_t kItems = 64;
  constexpr int kPerItem = 500;
  GlobalThreadPool()->ParallelFor(0, kItems, [&](std::int64_t i) {
    Counter* c = registry.GetCounter("fuseme_hammer_total");
    Counter* labeled = registry.GetCounter(
        "fuseme_hammer_labeled_total",
        {{"shard", std::to_string(i % 4)}});
    Gauge* g = registry.GetGauge("fuseme_hammer_depth");
    Histogram* h = registry.GetHistogram("fuseme_hammer_seconds",
                                         DefaultTimeBoundaries());
    for (int k = 0; k < kPerItem; ++k) {
      c->Increment();
      labeled->Add(2);
      g->Set(static_cast<double>(k % 17));
      h->Observe(static_cast<double>(k) * 1e-5);
      if (k % 100 == 0) {
        // Concurrent snapshot: only sanity-check it doesn't tear types.
        const MetricsSnapshot mid = registry.Snapshot();
        for (const MetricSample& s : mid.samples) {
          EXPECT_GE(s.counter_value, 0);
        }
      }
    }
  });
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(CheckMetricsConsistency(snap).ok())
      << CheckMetricsConsistency(snap).ToString();
  EXPECT_EQ(snap.CounterTotal("fuseme_hammer_total"), kItems * kPerItem);
  EXPECT_EQ(snap.CounterTotal("fuseme_hammer_labeled_total"),
            2 * kItems * kPerItem);
  const MetricSample* h = snap.Find("fuseme_hammer_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram_count, kItems * kPerItem);
  const MetricSample* g = snap.Find("fuseme_hammer_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->gauge_peak, 16.0);
}

TEST(MetricsTest, AttachLogMetricsCountsByLevel) {
  MetricsRegistry registry;
  CaptureLogSink capture;  // swallow the test's own log lines
  LogSink* previous_sink = SetLogSink(&capture);
  const LogLevel previous_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  AttachLogMetrics(&registry);

  FUSEME_LOG(Info) << "counted";
  FUSEME_LOG(Warning) << "also counted";
  FUSEME_LOG(Warning) << "twice";

  AttachLogMetrics(nullptr);
  FUSEME_LOG(Error) << "not counted: hook detached";
  SetLogLevel(previous_level);
  SetLogSink(previous_sink);

  const MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* info =
      snap.Find(metric_names::kLogMessages, {{"level", "info"}});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->counter_value, 1);
  const MetricSample* warning =
      snap.Find(metric_names::kLogMessages, {{"level", "warning"}});
  ASSERT_NE(warning, nullptr);
  EXPECT_EQ(warning->counter_value, 2);
  const MetricSample* error =
      snap.Find(metric_names::kLogMessages, {{"level", "error"}});
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->counter_value, 0);
}

// --- Engine integration ---------------------------------------------------

Engine MakeEngine(MetricsRegistry* metrics, bool analytic) {
  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = 16;
  options.analytic = analytic;
  options.metrics = metrics;
  return Engine(options);
}

TEST(MetricsEngineTest, NullRegistryRunsUntouched) {
  // The nullable-pointer convention: a null registry must not be consulted
  // anywhere — the engine runs fully and a bystander registry stays empty.
  MetricsRegistry bystander;
  Engine engine = MakeEngine(nullptr, /*analytic=*/false);
  GnmfQuery q = BuildGnmf(64, 64, 16, 64 * 64 / 10);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = RandomSparseBlocked(64, 64, 0.1, 16, /*seed=*/1, 1.0, 5.0);
  inputs[q.U] = RandomDenseBlocked(16, 64, 16, /*seed=*/2, 0.5, 1.5);
  inputs[q.V] = RandomDenseBlocked(64, 16, 16, /*seed=*/3, 0.5, 1.5);
  Engine::RunResult run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status.ToString();
  EXPECT_TRUE(bystander.Snapshot().samples.empty());
}

TEST(MetricsEngineTest, RealRunPopulatesPipelineFamilies) {
  MetricsRegistry registry;
  Engine engine = MakeEngine(&registry, /*analytic=*/false);
  GnmfQuery q = BuildGnmf(64, 64, 16, 64 * 64 / 10);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = RandomSparseBlocked(64, 64, 0.1, 16, /*seed=*/1, 1.0, 5.0);
  inputs[q.U] = RandomDenseBlocked(16, 64, 16, /*seed=*/2, 0.5, 1.5);
  inputs[q.V] = RandomDenseBlocked(64, 16, 16, /*seed=*/3, 0.5, 1.5);
  Engine::RunResult run = engine.Run(q.dag, inputs);
  ASSERT_TRUE(run.report.ok()) << run.report.status.ToString();

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(CheckMetricsConsistency(snap).ok())
      << CheckMetricsConsistency(snap).ToString();

  // Engine layer.
  EXPECT_EQ(snap.CounterTotal(metric_names::kEngineRuns), 1);
  const MetricSample* ok_runs =
      snap.Find(metric_names::kEngineRuns, {{"status", "ok"}});
  ASSERT_NE(ok_runs, nullptr);
  EXPECT_EQ(ok_runs->counter_value, 1);
  EXPECT_EQ(snap.CounterTotal(metric_names::kStages),
            static_cast<std::int64_t>(run.report.stages.size()));

  // Stage accounting mirrors the execution report exactly.
  const MetricSample* consolidation = snap.Find(
      metric_names::kStageShuffleBytes, {{"cause", "consolidation"}});
  ASSERT_NE(consolidation, nullptr);
  EXPECT_EQ(consolidation->counter_value, run.report.consolidation_bytes);
  const MetricSample* aggregation = snap.Find(
      metric_names::kStageShuffleBytes, {{"cause", "aggregation"}});
  ASSERT_NE(aggregation, nullptr);
  EXPECT_EQ(aggregation->counter_value, run.report.aggregation_bytes);
  EXPECT_EQ(snap.CounterTotal(metric_names::kStageFlops), run.report.flops);
  const MetricSample* task_mem = snap.Find(metric_names::kTaskMemoryBytes);
  ASSERT_NE(task_mem, nullptr);
  EXPECT_GE(task_mem->gauge_peak,
            static_cast<double>(run.report.max_task_memory));

  // Planner and optimizer layers.
  EXPECT_GT(snap.CounterTotal(metric_names::kPlannerExplorationCandidates),
            0);
  EXPECT_GE(snap.CounterTotal(metric_names::kPlannerPlans),
            static_cast<std::int64_t>(run.report.stages.size()));
  EXPECT_GT(snap.CounterTotal(metric_names::kOptimizerSearches), 0);
  EXPECT_GT(snap.CounterTotal(metric_names::kOptimizerEvaluations), 0);
  const MetricSample* plan_wall = snap.Find(metric_names::kPlannerWallSeconds);
  ASSERT_NE(plan_wall, nullptr);
  EXPECT_EQ(plan_wall->histogram_count, 1);

  // Verifier layer (default VerifyLevel::kPlanner checks run).
  EXPECT_GT(snap.CounterTotal(metric_names::kVerifierChecks), 0);
  EXPECT_EQ(snap.CounterTotal(metric_names::kVerifierDiagnostics), 0);

  // Runtime + kernel layers (real mode only).
  EXPECT_GT(snap.CounterTotal(metric_names::kWorkItems), 0);
  const MetricSample* item_seconds =
      snap.Find(metric_names::kWorkItemSeconds);
  ASSERT_NE(item_seconds, nullptr);
  EXPECT_EQ(item_seconds->histogram_count,
            snap.CounterTotal(metric_names::kWorkItems));
  EXPECT_GT(snap.CounterTotal(metric_names::kKernelFlops), 0);
  EXPECT_GT(snap.CounterTotal(metric_names::kKernelGemmFlops), 0);
  EXPECT_LE(snap.CounterTotal(metric_names::kKernelGemmFlops),
            snap.CounterTotal(metric_names::kKernelFlops));
  EXPECT_GT(snap.CounterTotal(metric_names::kKernelOutputCells), 0);
  EXPECT_LE(snap.CounterTotal(metric_names::kKernelOutputNnz),
            snap.CounterTotal(metric_names::kKernelOutputCells));
}

TEST(MetricsEngineTest, WorkloadSweepKeepsRegistryConsistent) {
  // One shared registry across the whole workload suite (analytic mode so
  // paper-scale shapes stay fast): after every run the registry must hold
  // its structural invariants and counters must be monotone.
  MetricsRegistry registry;
  Engine engine = MakeEngine(&registry, /*analytic=*/true);
  std::vector<Dag> dags;
  dags.push_back(BuildGnmf(2000, 2000, 100, 2000 * 200).dag);
  dags.push_back(BuildNmfPattern(2000, 2000, 100, 2000 * 200).dag);
  dags.push_back(BuildAlsLoss(2000, 2000, 100, 2000 * 200).dag);
  dags.push_back(BuildKlLoss(2000, 2000, 100, 2000 * 200).dag);
  dags.push_back(BuildPcaPattern(2000, 2000).dag);

  std::int64_t last_runs = 0, last_stages = 0;
  int completed = 0;
  for (const Dag& dag : dags) {
    Engine::RunResult run = engine.Run(dag, {});
    ASSERT_TRUE(run.report.ok()) << run.report.status.ToString();
    ++completed;
    const MetricsSnapshot snap = registry.Snapshot();
    ASSERT_TRUE(CheckMetricsConsistency(snap).ok())
        << CheckMetricsConsistency(snap).ToString();
    const std::int64_t runs = snap.CounterTotal(metric_names::kEngineRuns);
    const std::int64_t stages = snap.CounterTotal(metric_names::kStages);
    EXPECT_EQ(runs, completed);
    EXPECT_GT(stages, last_stages);
    EXPECT_GT(runs, last_runs);
    last_runs = runs;
    last_stages = stages;
  }
}

}  // namespace
}  // namespace fuseme
