#!/usr/bin/env bash
# One-command correctness gate:
#   1. build with -Werror + run the plain test suite (build/)
#   2. metrics_report end-to-end smoke (Prometheus/JSON export validation)
#      plus the live-exporter smoke (scripts/run_exporter_smoke.sh: serve
#      mode, curl /healthz + /metrics + /flightz, format validation)
#   3. clang-tidy static analysis (skipped with a warning when the tool
#      is not installed — see scripts/run_tidy.sh)
#   4. fuseme_lint repo-invariant scan (scripts/run_lint.sh — never
#      skipped; the linter builds with the repo's own toolchain)
#   5. the whole suite under UndefinedBehaviorSanitizer (build-ubsan/)
#   6. the whole suite under AddressSanitizer (build-asan/)
# With FUSEME_CHECK_BENCH=1, also smoke-runs the measurement harnesses at
# tiny shapes and checks their BENCH_*.json sinks (scripts/run_bench_smoke.sh).
# Usage: scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== plain suite, -Werror (build/) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFUSEME_WERROR=ON
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure)

echo "== metrics_report smoke (GNMF, --check) =="
SMOKE_DIR=$(mktemp -d)
METRICS_REPORT="$PWD/build/examples/metrics_report"
(cd "$SMOKE_DIR" && "$METRICS_REPORT" gnmf --check \
  > metrics_report_log.txt 2>&1) || {
  cat "$SMOKE_DIR/metrics_report_log.txt" >&2
  rm -rf "$SMOKE_DIR"
  echo "FAIL: metrics_report smoke" >&2
  exit 1
}
rm -rf "$SMOKE_DIR"
echo "ok: metrics_report exports validated"

echo "== exporter smoke (metrics_report --serve, curl + validation) =="
scripts/run_exporter_smoke.sh

echo "== fault-injection smoke (quickstart --faults, fixed seed) =="
# The example runs a seeded failure schedule (seed 42, p=0.2) and exits
# non-zero unless retries were absorbed with a bitwise-clean result.
build/examples/quickstart --faults > /dev/null || {
  echo "FAIL: fault-injection smoke" >&2
  exit 1
}
echo "ok: injected failures recovered deterministically"

echo "== prefetch smoke (quickstart, async default vs --prefetch-depth=0) =="
# Both shuffle modes must complete with the same report; the async path is
# the default, depth 0 forces the synchronous legacy fetch.
build/examples/quickstart > /dev/null || {
  echo "FAIL: prefetch smoke (async default)" >&2
  exit 1
}
build/examples/quickstart --prefetch-depth=0 > /dev/null || {
  echo "FAIL: prefetch smoke (synchronous)" >&2
  exit 1
}
echo "ok: async and synchronous shuffle modes both pass"

if [[ "${FUSEME_CHECK_BENCH:-0}" == "1" ]]; then
  echo "== bench smoke (BENCH_*.json + metrics snapshot) =="
  scripts/run_bench_smoke.sh
fi

echo "== clang-tidy =="
scripts/run_tidy.sh

echo "== fuseme_lint (repo invariants) =="
scripts/run_lint.sh

echo "== UndefinedBehaviorSanitizer suite (build-ubsan/) =="
scripts/run_ubsan.sh

echo "== AddressSanitizer suite (build-asan/) =="
scripts/run_asan.sh

echo "== all checks passed =="
