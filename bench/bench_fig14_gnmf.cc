// Figure 14: GNMF (Eq. 6) on MovieLens / Netflix / YahooMusic with factor
// dimension k in {200, 1000}: accumulated elapsed time over 10 iterations
// (a-c, e-g) and data shuffled per iteration (d, h), for MatFast,
// SystemDS, DistME, and FuseME.

#include <cstdio>

#include "bench_util.h"
#include "workloads/datasets.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

namespace {

constexpr int kIterations = 10;

Tracer g_tracer;  // stage spans; exported to TRACE_fig14_gnmf.json

struct Cell {
  ExecutionReport report;  // one iteration
  bool times_out_over_run = false;
};

Cell RunOne(SystemMode mode, const RatingDataset& dataset, std::int64_t k) {
  // MatFast has no matrix-chain optimizer: it evaluates V×U×Uᵀ as written.
  const bool chain_opt = mode != SystemMode::kMatFast;
  GnmfQuery q = BuildGnmf(dataset.users, dataset.items, k, dataset.ratings,
                          chain_opt);
  EngineOptions options;
  options.system = mode;
  options.analytic = true;
  options.tracer = &g_tracer;
  Engine engine(options);
  Cell cell;
  cell.report = engine.Run(q.dag, {}).report;
  if (cell.report.ok() &&
      cell.report.elapsed_seconds * kIterations >
          options.cluster.timeout_seconds) {
    cell.times_out_over_run = true;  // 10 iterations exceed the horizon
  }
  return cell;
}

std::string AccumulatedCell(const Cell& cell) {
  if (cell.report.status.IsOutOfMemory()) return "O.O.M.";
  if (cell.report.status.IsTimedOut() || cell.times_out_over_run) {
    return "T.O.";
  }
  if (!cell.report.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f",
                cell.report.elapsed_seconds * kIterations);
  return buf;
}

std::string PerIterBytesCell(const Cell& cell) {
  if (!cell.report.ok()) return AccumulatedCell(cell);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(cell.report.total_bytes()) / 1e9);
  return buf;
}

}  // namespace

int main() {
  const SystemMode systems[] = {SystemMode::kMatFast, SystemMode::kSystemDs,
                                SystemMode::kDistMe, SystemMode::kFuseMe};
  for (std::int64_t k : {200, 1000}) {
    std::printf(
        "=== Figure 14 (k=%lld): GNMF accumulated elapsed over %d "
        "iterations (sec) ===\n",
        static_cast<long long>(k), kIterations);
    PrintRow({"dataset", "MatFast", "SystemDS", "DistME", "FuseME"});
    PrintRule(5);
    std::vector<std::vector<Cell>> cells;
    for (const RatingDataset& dataset : PaperDatasets()) {
      std::vector<Cell> row;
      for (SystemMode mode : systems) {
        row.push_back(RunOne(mode, dataset, k));
      }
      PrintRow({dataset.name, AccumulatedCell(row[0]),
                AccumulatedCell(row[1]), AccumulatedCell(row[2]),
                AccumulatedCell(row[3])});
      cells.push_back(std::move(row));
    }
    std::printf(
        "\n--- Fig 14(%s): data shuffled per iteration (GB) ---\n",
        k == 200 ? "d" : "h");
    PrintRow({"dataset", "MatFast", "SystemDS", "DistME", "FuseME"});
    PrintRule(5);
    for (std::size_t d = 0; d < cells.size(); ++d) {
      PrintRow({PaperDatasets()[d].name, PerIterBytesCell(cells[d][0]),
                PerIterBytesCell(cells[d][1]), PerIterBytesCell(cells[d][2]),
                PerIterBytesCell(cells[d][3])});
    }
    std::printf("\n");
  }
  WriteTraceJson("fig14_gnmf", g_tracer);
  return 0;
}
