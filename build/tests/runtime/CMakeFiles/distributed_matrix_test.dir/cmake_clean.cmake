file(REMOVE_RECURSE
  "CMakeFiles/distributed_matrix_test.dir/distributed_matrix_test.cc.o"
  "CMakeFiles/distributed_matrix_test.dir/distributed_matrix_test.cc.o.d"
  "distributed_matrix_test"
  "distributed_matrix_test.pdb"
  "distributed_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
