// Analytic-mode execution: paper-scale experiments driven purely from
// metadata, plus consistency checks against real-mode measurements.

#include <gtest/gtest.h>

#include "engine/compiled_plan.h"
#include "engine/engine.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

EngineOptions PaperOptions(SystemMode mode) {
  EngineOptions options;
  options.system = mode;
  options.analytic = true;
  // Paper defaults: 8 nodes, 12 tasks, 10 GB, 1 Gbps, 546 GFLOPS, 1000-block.
  return options;
}

// The compiled counterpart of the historical RunWithPlans calls these
// tests were written against: freeze the caller plan set into an artifact
// once, then execute it.
Engine::RunResult CompileExecute(const Engine& engine, const Dag& dag,
                                 const FusionPlanSet& plans,
                                 const std::map<NodeId, BlockedMatrix>& inputs,
                                 OperatorKind forced) {
  Result<CompiledPlan> compiled = engine.CompileWithPlans(dag, plans, forced);
  if (!compiled.ok()) {
    ADD_FAILURE() << compiled.status();
    Engine::RunResult out;
    out.report.status = compiled.status();
    return out;
  }
  return engine.Execute(*compiled, inputs);
}

TEST(EngineAnalyticTest, RunsWithoutBoundInputs) {
  GnmfQuery q = BuildGnmf(480000, 17700, 200, /*x_nnz=*/100480507);
  Engine engine(PaperOptions(SystemMode::kFuseMe));
  auto run = engine.Run(q.dag, {});
  ASSERT_TRUE(run.report.ok()) << run.report.status;
  EXPECT_GT(run.report.elapsed_seconds, 0.0);
  EXPECT_GT(run.report.consolidation_bytes, 0);
  EXPECT_EQ(run.outputs.size(), 2u);
  // Outputs are descriptors with the right shapes.
  const DistributedMatrix& u_next = run.outputs.at(q.a5);
  EXPECT_EQ(u_next.blocks().rows(), 200);
  EXPECT_EQ(u_next.blocks().cols(), 17700);
  EXPECT_FALSE(u_next.blocks().IsReal());
}

TEST(EngineAnalyticTest, FuseMeBeatsBaselinesOnGnmf) {
  // The Fig. 14 ordering: FuseME < DistME < SystemDS < MatFast in elapsed
  // time and shuffled bytes (MovieLens-scale, k=200).
  GnmfQuery q = BuildGnmf(283228, 58098, 200, /*x_nnz=*/27753444);
  std::map<SystemMode, ExecutionReport> reports;
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe}) {
    Engine engine(PaperOptions(mode));
    auto run = engine.Run(q.dag, {});
    ASSERT_TRUE(run.report.ok())
        << SystemModeName(mode) << ": " << run.report.status;
    reports[mode] = run.report;
  }
  EXPECT_LT(reports[SystemMode::kFuseMe].elapsed_seconds,
            reports[SystemMode::kDistMe].elapsed_seconds);
  EXPECT_LT(reports[SystemMode::kFuseMe].elapsed_seconds,
            reports[SystemMode::kSystemDs].elapsed_seconds);
  EXPECT_LT(reports[SystemMode::kFuseMe].elapsed_seconds,
            reports[SystemMode::kMatFast].elapsed_seconds);
  EXPECT_LT(reports[SystemMode::kFuseMe].total_bytes(),
            reports[SystemMode::kSystemDs].total_bytes());
  EXPECT_LT(reports[SystemMode::kFuseMe].total_bytes(),
            reports[SystemMode::kMatFast].total_bytes());
}

TEST(EngineAnalyticTest, Fig12OperatorOrdering) {
  // X * log(U×Vᵀ+eps) at n=100K, d=0.001 (Fig. 12(a) first group):
  // CFO must beat BFO on elapsed time and communication.
  NmfPattern q =
      BuildNmfPattern(100000, 100000, 2000, /*x_nnz=*/10000000);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  full.description = "single fused operator";

  Engine engine(PaperOptions(SystemMode::kFuseMe));
  auto cfo = CompileExecute(engine, q.dag, full, {}, OperatorKind::kCfo);
  auto bfo = CompileExecute(engine, q.dag, full, {}, OperatorKind::kBfo);
  auto rfo = CompileExecute(engine, q.dag, full, {}, OperatorKind::kRfo);
  ASSERT_TRUE(cfo.report.ok()) << cfo.report.status;
  ASSERT_TRUE(bfo.report.ok()) << bfo.report.status;
  ASSERT_TRUE(rfo.report.ok()) << rfo.report.status;
  EXPECT_LT(cfo.report.total_bytes(), bfo.report.total_bytes());
  EXPECT_LT(cfo.report.total_bytes(), rfo.report.total_bytes());
  EXPECT_LT(cfo.report.elapsed_seconds, bfo.report.elapsed_seconds);
  EXPECT_LT(cfo.report.elapsed_seconds, rfo.report.elapsed_seconds);
}

TEST(EngineAnalyticTest, BfoOomsWhenSidesLarge) {
  // Tall U, V at n=750K with k=2000: broadcasting both sides (~24 GB)
  // exceeds the 10 GB task budget — the Fig. 12(a) T.O./failure regime.
  NmfPattern q =
      BuildNmfPattern(750000, 750000, 2000, /*x_nnz=*/562500000);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  Engine engine(PaperOptions(SystemMode::kFuseMe));
  auto bfo = CompileExecute(engine, q.dag, full, {}, OperatorKind::kBfo);
  EXPECT_TRUE(bfo.report.status.IsOutOfMemory());
  auto cfo = CompileExecute(engine, q.dag, full, {}, OperatorKind::kCfo);
  EXPECT_TRUE(cfo.report.ok()) << "CFO adapts (P,Q,R) and survives";
}

TEST(EngineAnalyticTest, AnalyticTracksRealMeasurement) {
  // On a medium grid the analytic stage statistics should be within a
  // small factor of what the real executor actually charges.
  NmfPattern q = BuildNmfPattern(160, 160, 32, /*x_nnz=*/2560);
  EngineOptions real_options;
  real_options.system = SystemMode::kFuseMe;
  real_options.cluster.num_nodes = 2;
  real_options.cluster.tasks_per_node = 3;
  real_options.cluster.block_size = 8;
  EngineOptions analytic_options = real_options;
  analytic_options.analytic = true;

  SparseMatrix x = RandomSparse(160, 160, 0.1, /*seed=*/81, 1.0, 2.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, 8);
  inputs[q.U] = BlockedMatrix::FromDense(RandomDense(160, 32, 82), 8);
  inputs[q.V] = BlockedMatrix::FromDense(RandomDense(160, 32, 83), 8);

  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  auto real = CompileExecute(Engine(real_options), q.dag, full, inputs,
                             OperatorKind::kCfo);
  auto analytic = CompileExecute(Engine(analytic_options), q.dag, full, {},
                                 OperatorKind::kCfo);
  ASSERT_TRUE(real.report.ok()) << real.report.status;
  ASSERT_TRUE(analytic.report.ok()) << analytic.report.status;
  const double real_bytes =
      static_cast<double>(real.report.total_bytes());
  const double analytic_bytes =
      static_cast<double>(analytic.report.total_bytes());
  EXPECT_LT(std::abs(real_bytes - analytic_bytes) / real_bytes, 1.0)
      << "real=" << real_bytes << " analytic=" << analytic_bytes;
}

TEST(EngineAnalyticTest, MorеNodesFaster) {
  // Fig. 12(d,h): elapsed time decreases as nodes grow 2 -> 4 -> 8.
  NmfPattern q = BuildNmfPattern(100000, 100000, 2000,
                                 /*x_nnz=*/1000000000);  // density 0.1
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  double prev = 1e30;
  for (int nodes : {2, 4, 8}) {
    EngineOptions options = PaperOptions(SystemMode::kFuseMe);
    options.cluster.num_nodes = nodes;
    Engine engine(options);
    auto run = CompileExecute(engine, q.dag, full, {}, OperatorKind::kCfo);
    ASSERT_TRUE(run.report.ok());
    EXPECT_LT(run.report.elapsed_seconds, prev);
    prev = run.report.elapsed_seconds;
  }
}

}  // namespace
}  // namespace fuseme
