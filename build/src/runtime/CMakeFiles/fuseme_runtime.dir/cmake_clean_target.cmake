file(REMOVE_RECURSE
  "libfuseme_runtime.a"
)
