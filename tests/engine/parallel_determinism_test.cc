// Parallel execution must be invisible: for any thread count, real-mode
// operators produce bitwise-identical block values AND bitwise-identical
// per-stage accounting (consolidation/aggregation bytes, flops, peak task
// memory) to the serial run.  See DESIGN.md "Execution runtime".

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "engine/compiled_plan.h"
#include "engine/engine.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions Options(int local_threads,
                      SystemMode mode = SystemMode::kFuseMe) {
  EngineOptions options;
  options.system = mode;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  options.cluster.local_threads = local_threads;
  return options;
}

void ExpectIdenticalRuns(const Engine::RunResult& serial,
                         const Engine::RunResult& parallel) {
  ASSERT_TRUE(serial.report.ok()) << serial.report.status;
  ASSERT_TRUE(parallel.report.ok()) << parallel.report.status;

  // Outputs: bitwise equal (MaxAbsDiff of exactly 0.0, no tolerance).
  ASSERT_EQ(serial.outputs.size(), parallel.outputs.size());
  for (const auto& [id, dm] : serial.outputs) {
    auto it = parallel.outputs.find(id);
    ASSERT_NE(it, parallel.outputs.end());
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(dm.blocks().ToDense(),
                                      it->second.blocks().ToDense()),
              0.0)
        << "output v" << id;
  }

  // Accounting: every stage statistic identical.
  const ExecutionReport& a = serial.report;
  const ExecutionReport& b = parallel.report;
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    SCOPED_TRACE("stage " + a.stages[s].label);
    EXPECT_EQ(a.stages[s].label, b.stages[s].label);
    EXPECT_EQ(a.stages[s].num_tasks, b.stages[s].num_tasks);
    EXPECT_EQ(a.stages[s].consolidation_bytes,
              b.stages[s].consolidation_bytes);
    EXPECT_EQ(a.stages[s].aggregation_bytes, b.stages[s].aggregation_bytes);
    EXPECT_EQ(a.stages[s].flops, b.stages[s].flops);
    EXPECT_EQ(a.stages[s].max_task_memory, b.stages[s].max_task_memory);
  }
  EXPECT_EQ(a.consolidation_bytes, b.consolidation_bytes);
  EXPECT_EQ(a.aggregation_bytes, b.aggregation_bytes);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.max_task_memory, b.max_task_memory);
}

/// Ensures the global pool actually has workers for the parallel runs and
/// restores the previous configuration afterwards.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = GlobalParallelism();
    SetGlobalThreadPoolThreads(8);
  }
  void TearDown() override { SetGlobalThreadPoolThreads(previous_); }

 private:
  int previous_ = 1;
};

struct GnmfFixture {
  GnmfQuery q;
  std::map<NodeId, BlockedMatrix> inputs;

  GnmfFixture() : q(BuildGnmf(26, 20, 6, /*x_nnz=*/104)) {
    SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
    DenseMatrix v = RandomDense(26, 6, /*seed=*/52, 0.5, 1.5);
    DenseMatrix u = RandomDense(6, 20, /*seed=*/53, 0.5, 1.5);
    inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
    inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
    inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  }
};

TEST_F(ParallelDeterminismTest, GnmfIterationAllSystems) {
  GnmfFixture f;
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe}) {
    SCOPED_TRACE(std::string(SystemModeName(mode)));
    Engine serial(Options(/*local_threads=*/1, mode));
    Engine parallel(Options(/*local_threads=*/8, mode));
    ExpectIdenticalRuns(serial.Run(f.q.dag, f.inputs),
                        parallel.Run(f.q.dag, f.inputs));
  }
}

TEST_F(ParallelDeterminismTest, DefaultThreadsMatchesSerial) {
  // local_threads = 0 resolves to the process default (8 here).
  GnmfFixture f;
  Engine serial(Options(/*local_threads=*/1));
  Engine defaulted(Options(/*local_threads=*/0));
  ExpectIdenticalRuns(serial.Run(f.q.dag, f.inputs),
                      defaulted.Run(f.q.dag, f.inputs));
}

TEST_F(ParallelDeterminismTest, ForcedOperatorsOnFusedNmfPlan) {
  // The fused X*log(U x V^T + eps) plan, forced through each physical
  // operator.  kCpmm is a (1,1,R) cuboid with R>1 — it exercises the
  // two-phase k-split path and its deterministic shuffle-merge.
  NmfPattern q = BuildNmfPattern(40, 36, 24, /*x_nnz=*/288);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(
      RandomSparse(40, 36, 0.2, /*seed=*/61, 1.0, 5.0), kBs);
  inputs[q.U] =
      BlockedMatrix::FromDense(RandomDense(40, 24, /*seed=*/62, 0.5, 1.5), kBs);
  inputs[q.V] =
      BlockedMatrix::FromDense(RandomDense(36, 24, /*seed=*/63, 0.5, 1.5), kBs);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  for (OperatorKind kind : {OperatorKind::kCfo, OperatorKind::kBfo,
                            OperatorKind::kRfo, OperatorKind::kCpmm}) {
    SCOPED_TRACE("operator " + std::to_string(static_cast<int>(kind)));
    Engine serial(Options(/*local_threads=*/1));
    Engine parallel(Options(/*local_threads=*/8));
    // One artifact, executed by both engines: local_threads is execution-
    // local, so the same CompiledPlan is compatible with either, and the
    // results must still be bitwise identical.
    auto compiled = serial.CompileWithPlans(q.dag, full, kind);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ExpectIdenticalRuns(serial.Execute(*compiled, inputs),
                        parallel.Execute(*compiled, inputs));
  }
}

TEST_F(ParallelDeterminismTest, SkewBalancedSplitsStayDeterministic) {
  GnmfFixture f;
  EngineOptions serial_opts = Options(1);
  serial_opts.balance_sparsity = true;
  EngineOptions parallel_opts = Options(8);
  parallel_opts.balance_sparsity = true;
  Engine serial(serial_opts);
  Engine parallel(parallel_opts);
  ExpectIdenticalRuns(serial.Run(f.q.dag, f.inputs),
                      parallel.Run(f.q.dag, f.inputs));
}

}  // namespace
}  // namespace fuseme
