file(REMOVE_RECURSE
  "libfuseme_fusion.a"
)
