#include "ir/expr.h"

namespace fuseme {

namespace {

NodeId Unwrap(Result<NodeId> result) {
  FUSEME_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

Expr Binary(BinaryFn fn, const Expr& a, const Expr& b) {
  FUSEME_CHECK(a.valid() && b.valid());
  FUSEME_CHECK_EQ(a.dag(), b.dag());
  return Expr(a.dag(), Unwrap(a.dag()->AddBinary(fn, a.id(), b.id())));
}

Expr BinaryScalarRhs(BinaryFn fn, const Expr& a, double s) {
  Expr scalar = Expr::Scalar(a.dag(), s);
  return Binary(fn, a, scalar);
}

Expr BinaryScalarLhs(BinaryFn fn, double s, const Expr& b) {
  Expr scalar = Expr::Scalar(b.dag(), s);
  return Binary(fn, scalar, b);
}

Expr UnaryOp(UnaryFn fn, const Expr& a) {
  FUSEME_CHECK(a.valid());
  return Expr(a.dag(), Unwrap(a.dag()->AddUnary(fn, a.id())));
}

Expr Agg(AggFn fn, AggAxis axis, const Expr& a) {
  FUSEME_CHECK(a.valid());
  return Expr(a.dag(), Unwrap(a.dag()->AddUnaryAgg(fn, axis, a.id())));
}

}  // namespace

Expr Expr::Input(Dag* dag, std::string name, std::int64_t rows,
                 std::int64_t cols, std::int64_t nnz) {
  FUSEME_CHECK(dag != nullptr);
  return Expr(dag, Unwrap(dag->AddInput(std::move(name), rows, cols, nnz)));
}

Expr Expr::Scalar(Dag* dag, double value) {
  FUSEME_CHECK(dag != nullptr);
  return Expr(dag, Unwrap(dag->AddScalar(value)));
}

Expr operator+(const Expr& a, const Expr& b) {
  return Binary(BinaryFn::kAdd, a, b);
}
Expr operator-(const Expr& a, const Expr& b) {
  return Binary(BinaryFn::kSub, a, b);
}
Expr operator*(const Expr& a, const Expr& b) {
  return Binary(BinaryFn::kMul, a, b);
}
Expr operator/(const Expr& a, const Expr& b) {
  return Binary(BinaryFn::kDiv, a, b);
}
Expr operator+(const Expr& a, double s) {
  return BinaryScalarRhs(BinaryFn::kAdd, a, s);
}
Expr operator+(double s, const Expr& b) {
  return BinaryScalarLhs(BinaryFn::kAdd, s, b);
}
Expr operator-(const Expr& a, double s) {
  return BinaryScalarRhs(BinaryFn::kSub, a, s);
}
Expr operator-(double s, const Expr& b) {
  return BinaryScalarLhs(BinaryFn::kSub, s, b);
}
Expr operator*(const Expr& a, double s) {
  return BinaryScalarRhs(BinaryFn::kMul, a, s);
}
Expr operator*(double s, const Expr& b) {
  return BinaryScalarLhs(BinaryFn::kMul, s, b);
}
Expr operator/(const Expr& a, double s) {
  return BinaryScalarRhs(BinaryFn::kDiv, a, s);
}
Expr operator/(double s, const Expr& b) {
  return BinaryScalarLhs(BinaryFn::kDiv, s, b);
}
Expr Min(const Expr& a, const Expr& b) { return Binary(BinaryFn::kMin, a, b); }
Expr Max(const Expr& a, const Expr& b) { return Binary(BinaryFn::kMax, a, b); }
Expr Pow(const Expr& a, const Expr& b) { return Binary(BinaryFn::kPow, a, b); }
Expr NotEqual(const Expr& a, const Expr& b) {
  return Binary(BinaryFn::kNotEqual, a, b);
}

Expr Exp(const Expr& a) { return UnaryOp(UnaryFn::kExp, a); }
Expr Log(const Expr& a) { return UnaryOp(UnaryFn::kLog, a); }
Expr Sqrt(const Expr& a) { return UnaryOp(UnaryFn::kSqrt, a); }
Expr Square(const Expr& a) { return UnaryOp(UnaryFn::kSquare, a); }
Expr Abs(const Expr& a) { return UnaryOp(UnaryFn::kAbs, a); }
Expr Sigmoid(const Expr& a) { return UnaryOp(UnaryFn::kSigmoid, a); }
Expr Relu(const Expr& a) { return UnaryOp(UnaryFn::kRelu, a); }
Expr NotZero(const Expr& a) { return UnaryOp(UnaryFn::kNotZero, a); }
Expr Neg(const Expr& a) { return UnaryOp(UnaryFn::kNeg, a); }

Expr MatMul(const Expr& a, const Expr& b) {
  FUSEME_CHECK(a.valid() && b.valid());
  FUSEME_CHECK_EQ(a.dag(), b.dag());
  Result<NodeId> result = a.dag()->AddMatMul(a.id(), b.id());
  FUSEME_CHECK(result.ok()) << result.status().ToString();
  return Expr(a.dag(), *result);
}

Expr T(const Expr& a) {
  FUSEME_CHECK(a.valid());
  Result<NodeId> result = a.dag()->AddTranspose(a.id());
  FUSEME_CHECK(result.ok()) << result.status().ToString();
  return Expr(a.dag(), *result);
}

Expr Sum(const Expr& a) { return Agg(AggFn::kSum, AggAxis::kAll, a); }
Expr RowSums(const Expr& a) { return Agg(AggFn::kSum, AggAxis::kRow, a); }
Expr ColSums(const Expr& a) { return Agg(AggFn::kSum, AggAxis::kCol, a); }
Expr MinAgg(const Expr& a) { return Agg(AggFn::kMin, AggAxis::kAll, a); }
Expr MaxAgg(const Expr& a) { return Agg(AggFn::kMax, AggAxis::kAll, a); }

}  // namespace fuseme
