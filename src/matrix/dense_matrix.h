// DenseMatrix: row-major double matrix, the dense local storage format.

#ifndef FUSEME_MATRIX_DENSE_MATRIX_H_
#define FUSEME_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fuseme {

/// Row-major dense matrix of doubles.  Copyable and movable; copies are deep.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    FUSEME_CHECK_GE(rows, 0);
    FUSEME_CHECK_GE(cols, 0);
  }
  DenseMatrix(std::int64_t rows, std::int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    FUSEME_CHECK_EQ(static_cast<std::int64_t>(data_.size()), rows * cols);
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }

  double operator()(std::int64_t i, std::int64_t j) const {
    return data_[i * cols_ + j];
  }
  double& operator()(std::int64_t i, std::int64_t j) {
    return data_[i * cols_ + j];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const double* row(std::int64_t i) const { return data_.data() + i * cols_; }
  double* row(std::int64_t i) { return data_.data() + i * cols_; }

  /// Number of stored non-zero elements (exact scan).
  std::int64_t CountNonZeros() const;

  /// Fills every element with `value`.
  void Fill(double value);

  /// Returns the transpose as a new matrix.
  DenseMatrix Transposed() const;

  /// Max |a_ij - b_ij|; CHECKs shape equality.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<double> data_;
};

}  // namespace fuseme

#endif  // FUSEME_MATRIX_DENSE_MATRIX_H_
