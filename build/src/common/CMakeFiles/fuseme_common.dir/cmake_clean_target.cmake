file(REMOVE_RECURSE
  "libfuseme_common.a"
)
