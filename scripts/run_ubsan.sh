#!/usr/bin/env bash
# Builds the tree with UndefinedBehaviorSanitizer (-fno-sanitize-recover=all,
# so the first finding aborts the test) and runs the full test suite.
# Usage: scripts/run_ubsan.sh [ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-ubsan

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFUSEME_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cd "$BUILD_DIR"
if [[ $# -gt 0 ]]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure
fi
