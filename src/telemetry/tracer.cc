#include "telemetry/tracer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fuseme {

std::int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::CurrentThreadId() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = thread_ids_.find(self);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(self, static_cast<int>(thread_ids_.size()))
             .first;
  }
  return it->second;
}

void Tracer::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return std::tie(a.begin_us, a.tid, a.name) <
                     std::tie(b.begin_us, b.tid, b.name);
            });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  const std::vector<TraceSpan> sorted = spans();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceSpan& s = sorted[i];
    out << (i == 0 ? "" : ",") << "\n  {\"name\": \"" << JsonEscape(s.name)
        << "\", \"cat\": \"" << JsonEscape(s.category)
        << "\", \"ph\": \"X\", \"ts\": " << s.begin_us
        << ", \"dur\": " << s.duration_us() << ", \"pid\": 0, \"tid\": "
        << s.tid << ", \"args\": {";
    for (std::size_t a = 0; a < s.args.size(); ++a) {
      out << (a == 0 ? "" : ", ") << "\"" << JsonEscape(s.args[a].first)
          << "\": \"" << JsonEscape(s.args[a].second) << "\"";
    }
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << ToChromeJson();
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name,
                       std::string category)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.tid = tracer_->CurrentThreadId();
  span_.begin_us = tracer_->NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  span_.end_us = tracer_->NowMicros();
  tracer_->Record(std::move(span_));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  span_.args.emplace_back(std::move(key), std::move(value));
}

// --- Minimal JSON reader for the trace format the exporter emits. ---

namespace {

/// Pull parser over the exporter's subset of JSON: objects, arrays,
/// strings (with the escapes JsonEscape produces), and integer/float
/// numbers.  Positioned errors make schema violations debuggable.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("trace JSON: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ReadString() {
    FUSEME_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The exporter only emits \u00XX control codes; anything wider
          // would need UTF-8 encoding, which this reader doesn't do.
          if (code > 0x7f) return Error("non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    FUSEME_RETURN_IF_ERROR(Expect('"'));
    return out;
  }

  Result<double> ReadNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  /// Skips one value of any supported type (used for ignored keys).
  Status SkipValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("truncated value");
    const char c = text_[pos_];
    if (c == '"') return ReadString().status();
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      FUSEME_RETURN_IF_ERROR(Expect(c));
      if (TryConsume(close)) return Status::OK();
      do {
        if (c == '{') {
          FUSEME_RETURN_IF_ERROR(ReadString().status());
          FUSEME_RETURN_IF_ERROR(Expect(':'));
        }
        FUSEME_RETURN_IF_ERROR(SkipValue());
      } while (TryConsume(','));
      return Expect(close);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return ReadNumber().status();
    }
    for (const char* lit : {"true", "false", "null"}) {
      const std::size_t len = std::char_traits<char>::length(lit);
      if (text_.compare(pos_, len, lit) == 0) {
        pos_ += len;
        return Status::OK();
      }
    }
    return Error("unsupported value");
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<TraceSpan> ReadEvent(JsonReader* r, bool* is_complete) {
  TraceSpan span;
  std::string phase = "X";
  double ts = 0, dur = 0, tid = 0;
  FUSEME_RETURN_IF_ERROR(r->Expect('{'));
  if (!r->TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r->ReadString());
      FUSEME_RETURN_IF_ERROR(r->Expect(':'));
      if (key == "name") {
        FUSEME_ASSIGN_OR_RETURN(span.name, r->ReadString());
      } else if (key == "cat") {
        FUSEME_ASSIGN_OR_RETURN(span.category, r->ReadString());
      } else if (key == "ph") {
        FUSEME_ASSIGN_OR_RETURN(phase, r->ReadString());
      } else if (key == "ts") {
        FUSEME_ASSIGN_OR_RETURN(ts, r->ReadNumber());
      } else if (key == "dur") {
        FUSEME_ASSIGN_OR_RETURN(dur, r->ReadNumber());
      } else if (key == "tid") {
        FUSEME_ASSIGN_OR_RETURN(tid, r->ReadNumber());
      } else if (key == "args") {
        FUSEME_RETURN_IF_ERROR(r->Expect('{'));
        if (!r->TryConsume('}')) {
          do {
            FUSEME_ASSIGN_OR_RETURN(std::string arg_key, r->ReadString());
            FUSEME_RETURN_IF_ERROR(r->Expect(':'));
            FUSEME_ASSIGN_OR_RETURN(std::string arg_val, r->ReadString());
            span.args.emplace_back(std::move(arg_key), std::move(arg_val));
          } while (r->TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r->Expect('}'));
        }
      } else {
        FUSEME_RETURN_IF_ERROR(r->SkipValue());
      }
    } while (r->TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r->Expect('}'));
  }
  span.begin_us = static_cast<std::int64_t>(ts);
  span.end_us = static_cast<std::int64_t>(ts + dur);
  span.tid = static_cast<int>(tid);
  *is_complete = phase == "X";
  return span;
}

}  // namespace

Result<std::vector<TraceSpan>> ParseChromeTrace(const std::string& json) {
  JsonReader r(json);
  std::vector<TraceSpan> out;
  FUSEME_RETURN_IF_ERROR(r.Expect('{'));
  bool saw_events = false;
  if (!r.TryConsume('}')) {
    do {
      FUSEME_ASSIGN_OR_RETURN(std::string key, r.ReadString());
      FUSEME_RETURN_IF_ERROR(r.Expect(':'));
      if (key == "traceEvents") {
        saw_events = true;
        FUSEME_RETURN_IF_ERROR(r.Expect('['));
        if (!r.TryConsume(']')) {
          do {
            bool is_complete = false;
            FUSEME_ASSIGN_OR_RETURN(TraceSpan span,
                                    ReadEvent(&r, &is_complete));
            if (is_complete) out.push_back(std::move(span));
          } while (r.TryConsume(','));
          FUSEME_RETURN_IF_ERROR(r.Expect(']'));
        }
      } else {
        FUSEME_RETURN_IF_ERROR(r.SkipValue());
      }
    } while (r.TryConsume(','));
    FUSEME_RETURN_IF_ERROR(r.Expect('}'));
  }
  if (!saw_events) return r.Error("missing traceEvents");
  if (!r.AtEnd()) return r.Error("trailing content");
  return out;
}

}  // namespace fuseme
