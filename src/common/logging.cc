#include "common/logging.h"

#include <atomic>

namespace fuseme {

namespace {

std::atomic<int> g_log_level{[] {
  // getenv is mt-unsafe only against concurrent setenv; this runs during
  // static initialization, before main can spawn threads or setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("FUSEME_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kWarning);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Sink and counter hook share one mutex: installs and every emitted
// message serialize on it, so an uninstall returning means no thread is
// still inside the old sink/hook.  Mutex wraps std::mutex, whose default
// constructor is constexpr — g_sink_mu is constant-initialized, so
// logging from other translation units' static initializers is safe.
Mutex g_sink_mu;
LogSink* g_sink GUARDED_BY(g_sink_mu) = nullptr;
LogCounterHook g_counter_hook GUARDED_BY(g_sink_mu) = nullptr;
void* g_counter_hook_arg GUARDED_BY(g_sink_mu) = nullptr;

// The fatal hook deliberately does NOT share g_sink_mu: the fatal path
// may fire while any lock (including the sink mutex) is held, so it only
// touches these two atomics.  Install/uninstall before threads that can
// crash are running; the pair is read hook-first, so the worst racing
// uninstall can produce is a null call skipped.
std::atomic<FatalLogHook> g_fatal_hook{nullptr};
std::atomic<void*> g_fatal_hook_arg{nullptr};

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

const char* LogLevelLabel(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

LogSink* SetLogSink(LogSink* sink) {
  MutexLock lock(g_sink_mu);
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

void SetLogCounterHook(LogCounterHook hook, void* arg) {
  MutexLock lock(g_sink_mu);
  g_counter_hook = hook;
  g_counter_hook_arg = arg;
}

void SetFatalLogHook(FatalLogHook hook, void* arg) {
  g_fatal_hook_arg.store(arg);
  g_fatal_hook.store(hook);
}

void CaptureLogSink::Write(LogLevel level, const std::string& line) {
  MutexLock lock(mu_);
  messages_.emplace_back(level, line);
}

std::vector<std::pair<LogLevel, std::string>> CaptureLogSink::messages()
    const {
  MutexLock lock(mu_);
  return messages_;
}

std::size_t CaptureLogSink::CountAt(LogLevel level) const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [msg_level, line] : messages_) {
    if (msg_level == level) ++n;
  }
  return n;
}

void CaptureLogSink::Clear() {
  MutexLock lock(mu_);
  messages_.clear();
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string line = stream_.str();
  MutexLock lock(g_sink_mu);
  if (g_counter_hook != nullptr) g_counter_hook(level_, g_counter_hook_arg);
  if (g_sink != nullptr) {
    g_sink->Write(level_, line);
  } else {
    std::cerr << line << std::endl;
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  if (FatalLogHook hook = g_fatal_hook.load()) {
    hook(g_fatal_hook_arg.load());
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace fuseme
