// Embedded HTTP exporter: the live-observability endpoints (DESIGN.md
// section 17).
//
// Routes, all GET, all computed from a point-in-time snapshot so they
// serve concurrently with a running engine:
//
//   /healthz  200 "ok" while the server is up (liveness probe)
//   /metrics  Prometheus text exposition (MetricsSnapshot::ToPrometheusText)
//   /varz     metrics snapshot as JSON (MetricsSnapshot::ToJson)
//   /flightz  flight-recorder dump (EventJournal::DumpJson)
//   /seriesz  sampler ring series (MetricsSampler::ToJson)
//
// Sources are nullable: an endpoint whose source is absent returns 404,
// so the exporter composes with whatever subset of the plane is enabled.

#ifndef FUSEME_TELEMETRY_HTTP_EXPORTER_H_
#define FUSEME_TELEMETRY_HTTP_EXPORTER_H_

#include <memory>

#include "common/http_server.h"
#include "common/status.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"

namespace fuseme {

/// HTTP server wired to the telemetry sources.  Thread-safe; sources
/// must outlive it.
class HttpExporter {
 public:
  struct Options {
    /// TCP port (loopback only); 0 = ephemeral, read port() after Start.
    int port = 0;
  };

  HttpExporter(Options options, const MetricsRegistry* metrics,
               const EventJournal* journal, const MetricsSampler* sampler);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  Status Start();
  void Stop();

  /// Bound port after a successful Start().
  [[nodiscard]] int port() const { return server_.port(); }

  /// The routing logic, exposed for endpoint unit tests without sockets.
  [[nodiscard]] HttpResponse Handle(const HttpRequest& request) const;

 private:
  const MetricsRegistry* metrics_;
  const EventJournal* journal_;
  const MetricsSampler* sampler_;
  HttpServer server_;
};

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_HTTP_EXPORTER_H_
