// Run reports: one finished engine run folded into a per-stage profile
// (see DESIGN.md section 12).
//
// BuildRunReport takes the pieces an ExecutionReport carries — final
// status, wall time, per-stage StageTelemetry — plus a MetricsSnapshot,
// and distills the profile a human asks for first: where did the time go,
// what moved over the network, how parallel was each stage, and did the
// cost model see it coming.  FormatTable renders the terminal view
// (examples/metrics_report); ToJson the machine-readable one.
//
// This layer deliberately takes decomposed inputs rather than an
// ExecutionReport: the engine links the telemetry library, not the other
// way around.

#ifndef FUSEME_TELEMETRY_RUN_REPORT_H_
#define FUSEME_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/prediction.h"

namespace fuseme {

/// How a stage's realized costs compared to the cost model's prediction,
/// at the factor-of-2 tolerance the prediction tests enforce.
enum class PredictionVerdict { kNone, kWithin2x, kOff };

const char* PredictionVerdictName(PredictionVerdict verdict);

/// One row of the profile table.
struct StageProfile {
  std::string label;
  std::string operator_kind;  // "CFO", "BFO", ... ("" when unpredicted)
  double wall_seconds = 0;
  double time_fraction = 0;  // of the summed stage wall time
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t max_task_memory = 0;
  int num_tasks = 0;
  int threads = 1;
  PredictionVerdict prediction = PredictionVerdict::kNone;
  /// Worst |log2(actual/predicted)| over net/agg/flops/mem (0 when no
  /// prediction was recorded).
  double prediction_error_log2 = 0;
};

struct RunReport {
  Status status;
  double elapsed_seconds = 0;
  std::vector<StageProfile> stages;
  MetricsSnapshot metrics;

  /// Totals over `stages`.
  [[nodiscard]] std::int64_t total_shuffle_bytes() const;
  [[nodiscard]] std::int64_t total_flops() const;

  /// Human-readable per-stage profile table plus a totals footer.
  [[nodiscard]] std::string FormatTable() const;
  /// JSON object: status, elapsed, stage rows, and the full metrics
  /// snapshot under "metrics_snapshot".
  [[nodiscard]] std::string ToJson() const;
};

RunReport BuildRunReport(const Status& status, double elapsed_seconds,
                         const std::vector<StageTelemetry>& stages,
                         MetricsSnapshot metrics);

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_RUN_REPORT_H_
