#include "ir/parser.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "ir/printer.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

const std::map<std::string, MatrixShape>& Symbols() {
  static const auto& symbols = *new std::map<std::string, MatrixShape>{
      {"X", {20, 20, 40}},
      {"U", {20, 4, -1}},
      {"V", {20, 4, -1}},
      {"W", {4, 20, -1}},
  };
  return symbols;
}

TEST(ParserTest, NmfQueryRoundTrips) {
  auto q = ParseQuery("X * log(U %*% t(V) + 1e-8)", Symbols());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ExprToString(*q->dag, q->root),
            "(X * log(((U x T(V)) + 1e-08)))");
  EXPECT_EQ(q->dag->outputs().size(), 1u);
  EXPECT_EQ(q->inputs.size(), 3u);
}

TEST(ParserTest, WeightedLossWithCaretLowersToSquare) {
  auto q = ParseQuery("sum((X != 0) * (X - U %*% W)^2)", Symbols());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ExprToString(*q->dag, q->root),
            "sum(((X != 0) * ^2((X - (U x W)))))");
}

TEST(ParserTest, PrecedenceMatMulBindsTighterThanStar) {
  auto q = ParseQuery("X * U %*% W", Symbols());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ExprToString(*q->dag, q->root), "(X * (U x W))");
}

TEST(ParserTest, UnaryMinusAndScalars) {
  auto q = ParseQuery("-X + 2 * X", Symbols());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ExprToString(*q->dag, q->root), "(neg(X) + (2 * X))");
}

TEST(ParserTest, SharedIdentifierBindsOnce) {
  auto q = ParseQuery("X * X + X", Symbols());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->inputs.size(), 1u);
  // X appears three times but is one leaf node (fanout 3).
  EXPECT_EQ(q->dag->FanOut(q->inputs.at("X")), 3);
}

TEST(ParserTest, FunctionsParse) {
  for (const char* text :
       {"exp(X)", "sqrt(abs(X))", "sigmoid(X)", "relu(X)", "nz(X)",
        "rowSums(X)", "colSums(X)", "min(X, X)", "max(X, X)",
        "pow(X, X)", "sq(X)"}) {
    auto q = ParseQuery(text, Symbols());
    EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  }
}

TEST(ParserTest, Errors) {
  // Unknown identifier.
  EXPECT_TRUE(ParseQuery("Y + 1", Symbols()).status().IsInvalidArgument());
  // Shape mismatch reported with a position.
  auto bad = ParseQuery("X + W", Symbols());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);
  // Syntax errors.
  EXPECT_FALSE(ParseQuery("X +", Symbols()).ok());
  EXPECT_FALSE(ParseQuery("log(X", Symbols()).ok());
  EXPECT_FALSE(ParseQuery("X ** U", Symbols()).ok());
  EXPECT_FALSE(ParseQuery("foo(X)", Symbols()).ok());
  EXPECT_FALSE(ParseQuery("X) ", Symbols()).ok());
  EXPECT_FALSE(ParseQuery("t(X, U)", Symbols()).ok());
  // Pure scalar queries are rejected.
  EXPECT_FALSE(ParseQuery("2", Symbols()).ok());
}

TEST(ParserTest, ParsedQueryEvaluatesLikeHandBuiltDag) {
  auto q = ParseQuery("sum(nz(X) * (X - U %*% W)^2)", Symbols());
  ASSERT_TRUE(q.ok());
  DenseMatrix x = RandomSparse(20, 20, 0.1, 1, 1.0, 2.0).ToDense();
  DenseMatrix u = RandomDense(20, 4, 2, 0.1, 0.9);
  DenseMatrix w = RandomDense(4, 20, 3, 0.1, 0.9);
  auto got = ReferenceEval(*q->dag, q->root,
                           {{q->inputs.at("X"), x},
                            {q->inputs.at("U"), u},
                            {q->inputs.at("W"), w}});
  ASSERT_TRUE(got.ok());
  // Hand-computed oracle.
  double expected = 0;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      if (x(i, j) == 0.0) continue;
      double dot = 0;
      for (int k = 0; k < 4; ++k) dot += u(i, k) * w(k, j);
      expected += (x(i, j) - dot) * (x(i, j) - dot);
    }
  }
  EXPECT_NEAR((*got)(0, 0), expected, 1e-9);
}

TEST(ParserTest, GeneralPowerUsesBinaryPow) {
  auto q = ParseQuery("X ^ 3", Symbols());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(ExprToString(*q->dag, q->root), "(X pow 3)");
}

}  // namespace
}  // namespace fuseme
