// Minimal dependency-free blocking-socket HTTP/1.1 listener (DESIGN.md
// section 17).
//
// Just enough HTTP for the telemetry exporter: GET requests, one
// response per connection (Connection: close), no TLS, no keep-alive,
// no chunked encoding.  A single accept thread serves requests
// sequentially — endpoints are cheap snapshot dumps, and serializing
// them keeps the server a leaf component with no thread pool of its
// own.  Built on POSIX sockets directly so the common layer stays
// dependency-free.
//
// ParseHttpRequest is split out (pure function) so request-line
// handling — bad method, oversized line, missing version — is unit
// tested without sockets.

#ifndef FUSEME_COMMON_HTTP_SERVER_H_
#define FUSEME_COMMON_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/synchronization.h"

namespace fuseme {

/// A parsed request line: method + path (query string stripped).
struct HttpRequest {
  std::string method;
  std::string path;
};

/// What a handler returns; the server adds the status line, Content-Type,
/// Content-Length, and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parses the first line of an HTTP/1.1 request ("GET /path HTTP/1.1").
/// Rejects non-GET methods (405 at the call site), malformed lines, and
/// lines longer than `max_line_bytes`.
Result<HttpRequest> ParseHttpRequest(const std::string& request_line,
                                     std::size_t max_line_bytes = 8192);

/// Reason phrase for the handful of status codes the exporter uses.
const char* HttpStatusReason(int status);

/// Blocking-socket HTTP listener bound to 127.0.0.1.
class HttpServer {
 public:
  struct Options {
    /// TCP port; 0 asks the kernel for an ephemeral port (read the
    /// result from port() after Start()).
    int port = 0;
    /// Request-line cap; longer lines get 431.
    std::size_t max_request_bytes = 8192;
  };

  /// `handler` is invoked on the accept thread for every well-formed GET;
  /// it must be thread-safe with respect to whatever it snapshots.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and launches the accept thread.
  Status Start();
  /// Shuts the listening socket down and joins the accept thread.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves 0 to the kernel's pick).  Valid after a
  /// successful Start().
  [[nodiscard]] int port() const;

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  Options options_;
  Handler handler_;

  mutable Mutex mu_;
  int listen_fd_ GUARDED_BY(mu_) = -1;
  int bound_port_ GUARDED_BY(mu_) = -1;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Tiny blocking HTTP GET client for tests and the smoke script's C++
/// side: fetches http://127.0.0.1:`port``path` and returns the response
/// body (non-2xx statuses come back as an error Status carrying the
/// status line).
Result<std::string> HttpGet(int port, const std::string& path,
                            double timeout_seconds = 5.0);

}  // namespace fuseme

#endif  // FUSEME_COMMON_HTTP_SERVER_H_
