// CompiledPlan (DESIGN.md section 18): compile-once/execute-many replays
// must be bitwise identical to the legacy single-shot Run across dense,
// sparse, and fault-injected schedules; the JSON artifact round-trips;
// and CheckCompatible rejects mismatched shapes, sparsity classes, and
// clusters with precise messages before any stage runs.

#include "engine/compiled_plan.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/solver_names.h"
#include "engine/solver_registry.h"
#include "fusion/partial_plan.h"
#include "matrix/generators.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

EngineOptions Options(SystemMode mode = SystemMode::kFuseMe) {
  EngineOptions options;
  options.system = mode;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  options.cluster.task_memory_budget = 1LL << 40;
  return options;
}

/// Bitwise comparison: outputs, per-stage accounting, and the recovery
/// trace — the same bar the determinism suites hold parallel and
/// prefetched runs to.
void ExpectIdenticalRuns(const Engine::RunResult& base,
                         const Engine::RunResult& other) {
  ASSERT_TRUE(base.report.ok()) << base.report.status;
  ASSERT_TRUE(other.report.ok()) << other.report.status;

  ASSERT_EQ(base.outputs.size(), other.outputs.size());
  for (const auto& [id, dm] : base.outputs) {
    auto it = other.outputs.find(id);
    ASSERT_NE(it, other.outputs.end());
    EXPECT_EQ(DenseMatrix::MaxAbsDiff(dm.blocks().ToDense(),
                                      it->second.blocks().ToDense()),
              0.0)
        << "output v" << id;
  }

  const ExecutionReport& a = base.report;
  const ExecutionReport& b = other.report;
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    SCOPED_TRACE("stage " + a.stages[s].label);
    EXPECT_EQ(a.stages[s].label, b.stages[s].label);
    EXPECT_EQ(a.stages[s].num_tasks, b.stages[s].num_tasks);
    EXPECT_EQ(a.stages[s].consolidation_bytes,
              b.stages[s].consolidation_bytes);
    EXPECT_EQ(a.stages[s].aggregation_bytes, b.stages[s].aggregation_bytes);
    EXPECT_EQ(a.stages[s].flops, b.stages[s].flops);
    EXPECT_EQ(a.stages[s].max_task_memory, b.stages[s].max_task_memory);
    EXPECT_EQ(a.stages[s].elapsed_seconds, b.stages[s].elapsed_seconds);
  }
  EXPECT_EQ(a.consolidation_bytes, b.consolidation_bytes);
  EXPECT_EQ(a.aggregation_bytes, b.aggregation_bytes);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.max_task_memory, b.max_task_memory);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);

  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (std::size_t s = 0; s < a.telemetry.size(); ++s) {
    SCOPED_TRACE("telemetry " + a.telemetry[s].label);
    EXPECT_EQ(a.telemetry[s].recovery.attempts,
              b.telemetry[s].recovery.attempts);
    EXPECT_EQ(a.telemetry[s].recovery.retries,
              b.telemetry[s].recovery.retries);
    EXPECT_EQ(a.telemetry[s].recovery.injected_failures,
              b.telemetry[s].recovery.injected_failures);
    EXPECT_EQ(a.telemetry[s].recovery.exhausted_items,
              b.telemetry[s].recovery.exhausted_items);
  }
}

struct GnmfFixture {
  GnmfQuery q;
  std::map<NodeId, BlockedMatrix> inputs;

  GnmfFixture() : q(BuildGnmf(26, 20, 6, /*x_nnz=*/104)) {
    SparseMatrix x = RandomSparse(26, 20, 0.2, /*seed=*/51, 1.0, 5.0);
    DenseMatrix v = RandomDense(26, 6, /*seed=*/52, 0.5, 1.5);
    DenseMatrix u = RandomDense(6, 20, /*seed=*/53, 0.5, 1.5);
    inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
    inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
    inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  }
};

/// Dense workload: a fully dense mask makes Compile record the base CFO
/// solver instead of the sparse refinements.
struct DenseNmfFixture {
  NmfPattern q;
  std::map<NodeId, BlockedMatrix> inputs;

  DenseNmfFixture() : q(BuildNmfPattern(40, 36, 24, /*x_nnz=*/40 * 36)) {
    inputs[q.X] =
        BlockedMatrix::FromDense(RandomDense(40, 36, /*seed=*/71, 1.0, 5.0),
                                 kBs);
    inputs[q.U] =
        BlockedMatrix::FromDense(RandomDense(40, 24, /*seed=*/72, 0.5, 1.5),
                                 kBs);
    inputs[q.V] =
        BlockedMatrix::FromDense(RandomDense(36, 24, /*seed=*/73, 0.5, 1.5),
                                 kBs);
  }
};

TEST(CompiledPlanTest, CompileRecordsSolverTable) {
  GnmfFixture f;
  Engine engine(Options());
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->system(), SystemMode::kFuseMe);
  EXPECT_EQ(compiled->forced(), OperatorKind::kAuto);
  EXPECT_FALSE(compiled->analytic());
  EXPECT_EQ(compiled->verify(), VerifyLevel::kPlanner);
  EXPECT_TRUE(compiled->table().verified);
  EXPECT_TRUE(compiled->diagnostics().empty());
  ASSERT_FALSE(compiled->stages().empty());
  ASSERT_EQ(compiled->stages().size(), compiled->plans().plans.size());
  for (const CompiledStage& stage : compiled->stages()) {
    EXPECT_NE(stage.kind, OperatorKind::kAuto);
    EXPECT_NE(SolverRegistry::Global().Find(stage.solver_id), nullptr)
        << stage.solver_id;
    ASSERT_TRUE(stage.prediction_status.ok()) << stage.prediction_status;
    EXPECT_TRUE(stage.prediction.present);
    EXPECT_GT(stage.prediction.num_tasks, 0);
  }
}

TEST(CompiledPlanTest, ExecuteMatchesRunOnSparseWorkloadAllSystems) {
  GnmfFixture f;
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe}) {
    SCOPED_TRACE(std::string(SystemModeName(mode)));
    Engine engine(Options(mode));
    const Engine::RunResult base = engine.Run(f.q.dag, f.inputs);
    Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ExpectIdenticalRuns(base, engine.Execute(*compiled, f.inputs));
  }
}

TEST(CompiledPlanTest, ExecuteMatchesRunOnDenseWorkload) {
  DenseNmfFixture f;
  Engine engine(Options());
  const Engine::RunResult base = engine.Run(f.q.dag, f.inputs);
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ExpectIdenticalRuns(base, engine.Execute(*compiled, f.inputs));
}

TEST(CompiledPlanTest, ExecuteMatchesRunUnderFaultSchedules) {
  // The injector's schedule is a pure function of (seed, stage, item,
  // attempt): replaying a compiled artifact must reproduce the same
  // failures, retries, and recovered outputs as the single-shot run.
  GnmfFixture f;
  for (const auto& [seed, probability] :
       std::vector<std::pair<std::uint64_t, double>>{{7, 0.3}, {11, 0.6}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EngineOptions options = Options();
    options.faults.seed = seed;
    options.faults.task_failure_probability = probability;
    options.recovery.retry.max_attempts = 5;
    options.recovery.retry.backoff_base_seconds = 0.0;
    Engine engine(options);
    const Engine::RunResult base = engine.Run(f.q.dag, f.inputs);
    ASSERT_TRUE(base.report.ok()) << base.report.status;
    Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ExpectIdenticalRuns(base, engine.Execute(*compiled, f.inputs));
  }
}

TEST(CompiledPlanTest, RepeatedExecutesAreIdenticalWithoutReResolution) {
  // Compile exactly once: the solver-resolution counters move during
  // Compile and must stay flat across any number of Executes.
  GnmfFixture f;
  MetricsRegistry metrics;
  EngineOptions options = Options();
  options.metrics = &metrics;
  Engine engine(options);
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  auto resolutions = [&] {
    std::map<std::string, std::int64_t> counts;
    for (const char* id :
         {solver_names::kCfo, solver_names::kCfoSpmm, solver_names::kCfoSddmm,
          solver_names::kBfo, solver_names::kRfo, solver_names::kCpmm}) {
      counts[id] = metrics
                       .GetCounter(metric_names::kSolverResolutions,
                                   {{"solver", id}})
                       ->value();
    }
    return counts;
  };
  const auto after_compile = resolutions();
  std::int64_t total = 0;
  for (const auto& [id, count] : after_compile) total += count;
  EXPECT_GT(total, 0) << "Compile records its solver choices";

  const Engine::RunResult first = engine.Execute(*compiled, f.inputs);
  const Engine::RunResult second = engine.Execute(*compiled, f.inputs);
  ExpectIdenticalRuns(first, second);
  EXPECT_EQ(resolutions(), after_compile)
      << "Execute must replay the recorded solvers, not re-resolve";
}

TEST(CompiledPlanTest, JsonRoundTripExecutesIdentically) {
  GnmfFixture f;
  Engine engine(Options());
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const Engine::RunResult base = engine.Execute(*compiled, f.inputs);

  const std::string json = compiled->ToJson();
  Result<CompiledPlan> restored = CompiledPlan::FromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ToJson(), json) << "re-serialization must be stable";
  ASSERT_EQ(restored->stages().size(), compiled->stages().size());
  for (std::size_t i = 0; i < restored->stages().size(); ++i) {
    EXPECT_EQ(restored->stages()[i].solver_id,
              compiled->stages()[i].solver_id);
    EXPECT_EQ(restored->stages()[i].kind, compiled->stages()[i].kind);
  }
  ExpectIdenticalRuns(base, engine.Execute(*restored, f.inputs));
}

TEST(CompiledPlanTest, CheckCompatibleRejectsShapeMismatch) {
  GnmfFixture f;
  Engine engine(Options());
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  std::map<NodeId, BlockedMatrix> wrong = f.inputs;
  wrong[f.q.U] =
      BlockedMatrix::FromDense(RandomDense(10, 10, /*seed=*/91), kBs);
  const Engine::RunResult run = engine.Execute(*compiled, wrong);
  EXPECT_TRUE(run.report.status.IsInvalidArgument()) << run.report.status;
  EXPECT_NE(run.report.status.message().find("of shape"), std::string::npos)
      << run.report.status;
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_TRUE(run.report.stages.empty())
      << "compatibility is checked before any stage runs";
}

TEST(CompiledPlanTest, CheckCompatibleRejectsSparsityClassDrift) {
  // Compiled against a density-0.2 mask; binding a fully dense matrix of
  // the same shape jumps more than one density bucket.
  GnmfFixture f;
  Engine engine(Options());
  Result<CompiledPlan> compiled = engine.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  std::map<NodeId, BlockedMatrix> dense_mask = f.inputs;
  dense_mask[f.q.X] =
      BlockedMatrix::FromDense(RandomDense(26, 20, /*seed=*/92, 1.0, 5.0),
                               kBs);
  const Engine::RunResult run = engine.Execute(*compiled, dense_mask);
  EXPECT_TRUE(run.report.status.IsInvalidArgument()) << run.report.status;
  EXPECT_NE(run.report.status.message().find(
                "re-compile for this sparsity class"),
            std::string::npos)
      << run.report.status;
}

TEST(CompiledPlanTest, CheckCompatibleRejectsForeignClusterAndSystem) {
  GnmfFixture f;
  Engine compiler(Options());
  Result<CompiledPlan> compiled = compiler.Compile(f.q.dag);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  EngineOptions bigger_blocks = Options();
  bigger_blocks.cluster.block_size = 16;
  const Engine::RunResult cluster_run =
      Engine(bigger_blocks).Execute(*compiled, f.inputs);
  EXPECT_TRUE(cluster_run.report.status.IsInvalidArgument())
      << cluster_run.report.status;
  EXPECT_NE(
      cluster_run.report.status.message().find("cluster mismatch: block_size"),
      std::string::npos)
      << cluster_run.report.status;

  const Engine::RunResult system_run =
      Engine(Options(SystemMode::kSystemDs)).Execute(*compiled, f.inputs);
  EXPECT_TRUE(system_run.report.status.IsInvalidArgument())
      << system_run.report.status;
  EXPECT_NE(system_run.report.status.message().find("compiled for system"),
            std::string::npos)
      << system_run.report.status;
}

TEST(CompiledPlanTest, TamperedSolverIdFailsFromJson) {
  // Swap the recorded CFO-family solver for the BFO one: the registry
  // check (verifier rule compiled-solver) must refuse the artifact.
  NmfPattern q = BuildNmfPattern(40, 36, 24, /*x_nnz=*/288);
  FusionPlanSet full;
  full.plans.emplace_back(
      &q.dag, std::vector<NodeId>{q.vT, q.mm, q.add, q.log, q.mul}, q.mul);
  Engine engine(Options());
  Result<CompiledPlan> compiled =
      engine.CompileWithPlans(q.dag, full, OperatorKind::kCfo);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_EQ(compiled->stages().size(), 1u);
  EXPECT_EQ(compiled->stages()[0].solver_id, solver_names::kCfoSpmm);

  std::string json = compiled->ToJson();
  const std::string original =
      std::string("\"solver\":\"") + solver_names::kCfoSpmm + "\"";
  const std::size_t at = json.find(original);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, original.size(),
               std::string("\"solver\":\"") + solver_names::kBfo + "\"");
  Result<CompiledPlan> tampered = CompiledPlan::FromJson(json);
  ASSERT_FALSE(tampered.ok());
  EXPECT_NE(tampered.status().message().find("compiled-solver"),
            std::string::npos)
      << tampered.status();
}

TEST(CompiledPlanTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(CompiledPlan::FromJson("").ok());
  EXPECT_FALSE(CompiledPlan::FromJson("not json at all").ok());
  EXPECT_FALSE(CompiledPlan::FromJson("{\"version\":1}").ok());
}

TEST(CompiledPlanTest, CompileWithPlansRejectsMalformedPlan) {
  NmfPattern q = BuildNmfPattern(40, 36, 24, /*x_nnz=*/288);
  FusionPlanSet bad;
  // Root outside the member set — the checked PartialPlan constructor
  // would refuse this, so CompileWithPlans must too.
  bad.plans.push_back(
      PartialPlan::UncheckedForTest(&q.dag, {q.vT, q.mm}, q.mul));
  Engine engine(Options());
  Result<CompiledPlan> compiled = engine.CompileWithPlans(q.dag, bad);
  ASSERT_FALSE(compiled.ok());
  EXPECT_TRUE(compiled.status().IsInvalidArgument()) << compiled.status();
  EXPECT_NE(compiled.status().message().find("plan #0"), std::string::npos)
      << compiled.status();
}

}  // namespace
}  // namespace fuseme
