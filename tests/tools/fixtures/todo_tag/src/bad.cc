// Negative fixture: an untagged TODO.  fuseme_lint must flag the bare
// one (lint-todo-tag) while accepting the tagged one.

// TODO(#7): tagged — accepted.
// TODO: untagged — flagged.

namespace fixture {

int Unused() { return 0; }

}  // namespace fixture
