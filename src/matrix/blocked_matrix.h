// BlockedMatrix: a logical matrix stored as a grid of Blocks (paper §2.2).

#ifndef FUSEME_MATRIX_BLOCKED_MATRIX_H_
#define FUSEME_MATRIX_BLOCKED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "matrix/block.h"

namespace fuseme {

/// Coordinates of a block within the grid.
struct BlockCoord {
  std::int64_t bi = 0;
  std::int64_t bj = 0;

  bool operator==(const BlockCoord&) const = default;
  bool operator<(const BlockCoord& o) const {
    return bi != o.bi ? bi < o.bi : bj < o.bj;
  }
};

/// A matrix as a grid of fixed-size tiles.  Edge tiles are smaller when the
/// dimensions are not multiples of block_size.  The grid itself lives on one
/// host; DistributedMatrix (runtime/) adds task placement on top.
class BlockedMatrix {
 public:
  BlockedMatrix() : BlockedMatrix(0, 0, 1) {}

  /// Creates an all-zero matrix.
  BlockedMatrix(std::int64_t rows, std::int64_t cols,
                std::int64_t block_size);

  static BlockedMatrix FromDense(const DenseMatrix& dense,
                                 std::int64_t block_size);
  static BlockedMatrix FromSparse(const SparseMatrix& sparse,
                                  std::int64_t block_size);
  /// Descriptor-only matrix with `nnz` spread uniformly over the tiles.
  static BlockedMatrix MakeMeta(std::int64_t rows, std::int64_t cols,
                                std::int64_t nnz, std::int64_t block_size);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t block_size() const { return block_size_; }
  std::int64_t grid_rows() const { return grid_rows_; }
  std::int64_t grid_cols() const { return grid_cols_; }
  std::int64_t num_blocks() const { return grid_rows_ * grid_cols_; }

  /// Row count of tile row `bi` (block_size except possibly the last).
  std::int64_t TileRows(std::int64_t bi) const;
  /// Column count of tile column `bj`.
  std::int64_t TileCols(std::int64_t bj) const;

  const Block& block(std::int64_t bi, std::int64_t bj) const {
    return blocks_[Index(bi, bj)];
  }
  const Block& block(BlockCoord c) const { return block(c.bi, c.bj); }
  void set_block(std::int64_t bi, std::int64_t bj, Block block);

  /// Total stored non-zeros across tiles.
  std::int64_t nnz() const;
  double density() const {
    return rows_ * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) / (rows_ * cols_);
  }
  /// Sum of tile footprints (see Block::SizeBytes).
  std::int64_t SizeBytes() const;
  /// True when every tile carries real values.
  bool IsReal() const;

  DenseMatrix ToDense() const;

 private:
  std::int64_t Index(std::int64_t bi, std::int64_t bj) const {
    FUSEME_CHECK(bi >= 0 && bi < grid_rows_ && bj >= 0 && bj < grid_cols_);
    return bi * grid_cols_ + bj;
  }

  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t block_size_;
  std::int64_t grid_rows_;
  std::int64_t grid_cols_;
  std::vector<Block> blocks_;
};

}  // namespace fuseme

#endif  // FUSEME_MATRIX_BLOCKED_MATRIX_H_
