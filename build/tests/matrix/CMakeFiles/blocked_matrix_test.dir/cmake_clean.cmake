file(REMOVE_RECURSE
  "CMakeFiles/blocked_matrix_test.dir/blocked_matrix_test.cc.o"
  "CMakeFiles/blocked_matrix_test.dir/blocked_matrix_test.cc.o.d"
  "blocked_matrix_test"
  "blocked_matrix_test.pdb"
  "blocked_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
