#include "matrix/blocked_matrix.h"

#include <gtest/gtest.h>

#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(BlockedMatrixTest, GridShapeWithExactMultiple) {
  BlockedMatrix m(8, 6, 2);
  EXPECT_EQ(m.grid_rows(), 4);
  EXPECT_EQ(m.grid_cols(), 3);
  EXPECT_EQ(m.num_blocks(), 12);
  EXPECT_EQ(m.TileRows(3), 2);
  EXPECT_EQ(m.TileCols(2), 2);
}

TEST(BlockedMatrixTest, GridShapeWithRaggedEdge) {
  BlockedMatrix m(7, 5, 3);
  EXPECT_EQ(m.grid_rows(), 3);
  EXPECT_EQ(m.grid_cols(), 2);
  EXPECT_EQ(m.TileRows(0), 3);
  EXPECT_EQ(m.TileRows(2), 1);  // 7 = 3+3+1
  EXPECT_EQ(m.TileCols(1), 2);  // 5 = 3+2
}

TEST(BlockedMatrixTest, FreshMatrixIsAllZero) {
  BlockedMatrix m(4, 4, 2);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.IsReal());
  for (std::int64_t bi = 0; bi < m.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < m.grid_cols(); ++bj) {
      EXPECT_TRUE(m.block(bi, bj).is_zero());
    }
  }
}

TEST(BlockedMatrixTest, DenseRoundTrip) {
  DenseMatrix d = RandomDense(7, 9, /*seed=*/2);
  BlockedMatrix m = BlockedMatrix::FromDense(d, 4);
  EXPECT_TRUE(m.ToDense() == d);
  EXPECT_EQ(m.nnz(), d.CountNonZeros());
}

TEST(BlockedMatrixTest, SparseRoundTrip) {
  SparseMatrix s = RandomSparse(10, 13, 0.15, /*seed=*/3);
  BlockedMatrix m = BlockedMatrix::FromSparse(s, 4);
  EXPECT_TRUE(m.ToDense() == s.ToDense());
  EXPECT_EQ(m.nnz(), s.nnz());
}

TEST(BlockedMatrixTest, SparseTilesAreSparseBlocks) {
  SparseMatrix s = RandomSparse(20, 20, 0.02, /*seed=*/4);
  BlockedMatrix m = BlockedMatrix::FromSparse(s, 10);
  for (std::int64_t bi = 0; bi < m.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < m.grid_cols(); ++bj) {
      const Block& b = m.block(bi, bj);
      EXPECT_TRUE(b.kind() == Block::Kind::kSparse ||
                  b.kind() == Block::Kind::kZero);
    }
  }
}

TEST(BlockedMatrixTest, MetaMatrixDistributesNnz) {
  BlockedMatrix m = BlockedMatrix::MakeMeta(100, 100, 1000, 10);
  EXPECT_FALSE(m.IsReal());
  EXPECT_NEAR(static_cast<double>(m.nnz()), 1000.0, 100.0);
  EXPECT_EQ(m.grid_rows(), 10);
  for (std::int64_t bi = 0; bi < m.grid_rows(); ++bi) {
    for (std::int64_t bj = 0; bj < m.grid_cols(); ++bj) {
      EXPECT_TRUE(m.block(bi, bj).is_meta());
    }
  }
}

TEST(BlockedMatrixTest, SetBlockChecksTileShape) {
  BlockedMatrix m(4, 4, 2);
  m.set_block(0, 0, Block::Constant(2, 2, 1.0));
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DEATH(m.set_block(0, 1, Block::Constant(3, 2, 1.0)), "");
}

TEST(BlockedMatrixTest, SizeBytesSumsTiles) {
  BlockedMatrix m(4, 4, 2);
  EXPECT_EQ(m.SizeBytes(), 4 * 16);  // four zero tiles
  m.set_block(0, 0, Block::Constant(2, 2, 1.0));
  EXPECT_EQ(m.SizeBytes(), 3 * 16 + 8 * 4);
}

TEST(BlockedMatrixTest, BlockSizeOneIsElementGrid) {
  DenseMatrix d = RandomDense(3, 3, /*seed=*/5);
  BlockedMatrix m = BlockedMatrix::FromDense(d, 1);
  EXPECT_EQ(m.num_blocks(), 9);
  EXPECT_TRUE(m.ToDense() == d);
}

}  // namespace
}  // namespace fuseme
