#!/usr/bin/env bash
# Exporter end-to-end smoke: start metrics_report in --serve mode on an
# ephemeral port, hit the live endpoints with curl, and pipe /metrics
# back through the repo's own Prometheus format checker
# (metrics_report --validate-prom).  The server holds until its stdin
# closes, so the whole exchange is deterministic: run finishes, we curl,
# we close the pipe, it exits.
# Usage: scripts/run_exporter_smoke.sh [path/to/metrics_report]
set -euo pipefail

cd "$(dirname "$0")/.."

METRICS_REPORT="${1:-build/examples/metrics_report}"
if [[ ! -x "$METRICS_REPORT" ]]; then
  echo "FAIL: $METRICS_REPORT not built (run cmake --build build first)" >&2
  exit 1
fi
if ! command -v curl > /dev/null; then
  echo "SKIP: curl not installed — exporter smoke not run" >&2
  exit 0
fi
METRICS_REPORT_ABS=$(readlink -f "$METRICS_REPORT")

WORK_DIR=$(mktemp -d)
SERVER_LOG="$WORK_DIR/server_log.txt"
mkfifo "$WORK_DIR/stdin_pipe"

cleanup() {
  exec 3>&- 2> /dev/null || true
  [[ -n "${SERVER_PID:-}" ]] && wait "$SERVER_PID" 2> /dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# Port 0 = ephemeral; the binary prints "serving on port N" once bound.
# Run from WORK_DIR so the .prom/.json sinks land in the scratch dir.
(cd "$WORK_DIR" && exec "$METRICS_REPORT_ABS" gnmf --serve=0 \
  < "$WORK_DIR/stdin_pipe" > "$SERVER_LOG" 2>&1) &
SERVER_PID=$!
exec 3> "$WORK_DIR/stdin_pipe"  # hold the server's stdin open

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^serving on port \([0-9][0-9]*\)$/\1/p' "$SERVER_LOG" \
    | head -n 1)
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVER_PID" 2> /dev/null; then
    cat "$SERVER_LOG" >&2
    echo "FAIL: server exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  cat "$SERVER_LOG" >&2
  echo "FAIL: server never reported its port" >&2
  exit 1
fi

BASE="http://127.0.0.1:$PORT"

HEALTH=$(curl -sf "$BASE/healthz")
if [[ "$HEALTH" != "ok" ]]; then
  echo "FAIL: /healthz returned '$HEALTH', want 'ok'" >&2
  exit 1
fi

# The acceptance gate: the live /metrics exposition must satisfy the
# repo's own Prometheus validator.
curl -sf "$BASE/metrics" | "$METRICS_REPORT" --validate-prom || {
  echo "FAIL: /metrics did not validate" >&2
  exit 1
}

# The flight recorder must serve well-formed JSON with at least one event
# (the run emits fuseme.engine.run_start before anything else).
FLIGHT=$(curl -sf "$BASE/flightz")
case "$FLIGHT" in
  '{"emitted":'*'"events":'*'fuseme.engine.run_start'*) ;;
  *)
    echo "FAIL: /flightz missing run_start event: $FLIGHT" >&2
    exit 1
    ;;
esac

# Unknown paths must 404, not crash the server.
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/no_such_endpoint")
if [[ "$STATUS" != "404" ]]; then
  echo "FAIL: unknown path returned HTTP $STATUS, want 404" >&2
  exit 1
fi

# Close the server's stdin; it should exit cleanly on its own.
exec 3>&-
wait "$SERVER_PID" || {
  cat "$SERVER_LOG" >&2
  echo "FAIL: server exited non-zero" >&2
  exit 1
}
SERVER_PID=""

echo "ok: exporter smoke — /healthz, /metrics (validated), /flightz, 404"
