# CMake generated Testfile for 
# Source directory: /root/repo/tests/matrix
# Build directory: /root/repo/build/tests/matrix
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/matrix/dense_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/sparse_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/block_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/block_ops_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/blocked_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/sparsity_test[1]_include.cmake")
include("/root/repo/build/tests/matrix/matrix_io_test[1]_include.cmake")
