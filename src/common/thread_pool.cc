#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>

namespace fuseme {

namespace {

/// Set while a thread is executing a task for some pool; used to collapse
/// nested ParallelFor calls.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() const { return current_pool == this; }

std::size_t ThreadPool::ApproxQueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline.  packaged_task catches exceptions into the
    // future, so this cannot throw through Enqueue.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn,
                             int max_parallelism) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  std::int64_t helpers = num_threads();
  if (max_parallelism > 0) {
    helpers = std::min<std::int64_t>(helpers, max_parallelism - 1);
  }
  helpers = std::min(helpers, n - 1);
  if (helpers <= 0 || InWorker()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared loop state.  Helpers hold the state via shared_ptr, so a helper
  // that is dequeued late (even after this frame returned — impossible
  // here because we join every future, but cheap insurance) finds the
  // range exhausted instead of touching freed memory.
  struct State {
    std::atomic<std::int64_t> next;
    std::int64_t end = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::exception_ptr error;
    std::int64_t error_index = std::numeric_limits<std::int64_t>::max();
  };
  auto state = std::make_shared<State>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->fn = &fn;

  auto drain = [](const std::shared_ptr<State>& s) {
    while (!s->abort.load(std::memory_order_relaxed)) {
      const std::int64_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->end) return;
      try {
        (*s->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (i < s->error_index) {
          s->error_index = i;
          s->error = std::current_exception();
        }
        s->abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::int64_t h = 0; h < helpers; ++h) {
    futures.push_back(Submit([state, drain]() { drain(state); }));
  }
  drain(state);
  for (std::future<void>& future : futures) future.get();
  // Move the exception out of the shared state before rethrowing: a helper
  // may drop the last State reference on its own thread after we return,
  // and the caller must be able to inspect the caught exception without
  // racing that release.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    error = std::move(state->error);
    state->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::mutex global_pool_mu;
std::unique_ptr<ThreadPool> global_pool;
int global_parallelism = 0;  // 0 = not yet resolved

int DefaultParallelism() {
  if (const char* env = std::getenv("FUSEME_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool* GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(global_pool_mu);
  if (global_pool == nullptr) {
    if (global_parallelism == 0) global_parallelism = DefaultParallelism();
    global_pool = std::make_unique<ThreadPool>(global_parallelism - 1);
  }
  return global_pool.get();
}

int GlobalParallelism() {
  std::lock_guard<std::mutex> lock(global_pool_mu);
  if (global_parallelism == 0) global_parallelism = DefaultParallelism();
  return global_parallelism;
}

void SetGlobalThreadPoolThreads(int num_threads) {
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(global_pool_mu);
    global_parallelism = std::max(num_threads, 1);
    old = std::move(global_pool);  // destroyed (joined) outside the lock
    global_pool = std::make_unique<ThreadPool>(global_parallelism - 1);
  }
}

}  // namespace fuseme
