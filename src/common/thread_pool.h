// Fixed-size thread pool powering the parallel execution runtime.
//
// Two entry points matter:
//
//  * Submit(fn)      — schedules a task, returns a std::future carrying the
//                      result (or the exception fn threw).
//  * ParallelFor     — runs fn(i) over an index range with dynamic
//                      scheduling; the calling thread participates, so the
//                      loop completes even when every worker is busy.  A
//                      ParallelFor issued from inside a worker runs inline
//                      (nested parallelism collapses instead of
//                      deadlocking).
//
// A process-wide pool (GlobalThreadPool) serves both task-level parallelism
// in the distributed operators and kernel-level parallelism in the block
// GEMM: operator work items run on the pool, so the kernels they invoke
// detect they are already on a worker and stay serial — one level of
// parallelism, never oversubscription.
//
// Sizing: GlobalParallelism() defaults to FUSEME_THREADS (env) or
// std::thread::hardware_concurrency(); SetGlobalThreadPoolThreads overrides
// it (1 = fully serial).  The pool owns parallelism-1 workers because the
// caller of ParallelFor is the extra thread.

#ifndef FUSEME_COMMON_THREAD_POOL_H_
#define FUSEME_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/synchronization.h"

namespace fuseme {

class ThreadPool {
 public:
  /// Spawns `num_threads` worker threads (clamped to >= 0).  With zero
  /// workers every Submit/ParallelFor executes inline on the caller.
  explicit ThreadPool(int num_threads);
  /// Drains the queue (pending tasks run, they are not dropped), then
  /// joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of this pool's workers.
  bool InWorker() const;

  /// Current number of queued (not yet started) tasks.  Approximate by
  /// nature — the queue moves while the caller looks — used by telemetry
  /// to sample pool backlog, never for control flow.
  std::size_t ApproxQueueDepth() const;

  /// Schedules `fn` for execution and returns a future for its result;
  /// an exception thrown by `fn` surfaces on future.get().  With zero
  /// workers the task runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [begin, end), blocking until all calls have
  /// completed.  Indices are claimed dynamically; the caller participates.
  /// The first exception (lowest index among those observed) is rethrown
  /// after the loop drains; remaining unclaimed indices are skipped once an
  /// exception occurs.  `max_parallelism` caps the number of threads
  /// working on the loop, caller included (0 = no cap; 1 = inline serial,
  /// in index order).  Nested calls from a worker thread run inline.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn,
                   int max_parallelism = 0);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// Written only by the constructor, before any worker can observe the
  /// pool; read-only afterwards, so unguarded.
  std::vector<std::thread> workers_;
};

/// The process-wide pool, created on first use with GlobalParallelism()-1
/// workers.
ThreadPool* GlobalThreadPool();

/// Total parallelism (workers + the calling thread) the global pool is
/// configured for.  Defaults to the FUSEME_THREADS environment variable,
/// else std::thread::hardware_concurrency(), floored at 1.
int GlobalParallelism();

/// Reconfigures the global pool for `num_threads` total parallelism
/// (1 = serial).  Joins the previous workers first.  Not safe to call while
/// another thread is using the pool; intended for process startup, tests,
/// and benchmark harnesses.
void SetGlobalThreadPoolThreads(int num_threads);

}  // namespace fuseme

#endif  // FUSEME_COMMON_THREAD_POOL_H_
