// Negative fixture: raw std primitives outside synchronization.h.
// fuseme_lint must flag both the include and the declarations
// (lint-raw-sync).

#include <mutex>

namespace fixture {

std::mutex raw_mu;

int GuardedRead(int* value) {
  std::lock_guard<std::mutex> lock(raw_mu);
  return *value;
}

}  // namespace fixture
