// Thread-safe metrics registry (see DESIGN.md section 12).
//
// A MetricsRegistry hands out three instrument kinds — Counter (monotone),
// Gauge (set/add with high-water tracking), and Histogram (fixed
// boundaries) — keyed by a stable name (see metric_names.h) plus an
// optional label set, so one name forms a family
// (`fuseme_stage_shuffle_bytes_total{cause="consolidation"}`, ...).
//
// Concurrency contract: instrument lookups take a sharded lock and may
// allocate; mutation (Increment/Add/Set/Observe) is lock-free relaxed
// atomics, safe from any pool worker.  Callers on hot paths resolve the
// instrument pointer once (pointers are stable for the registry's
// lifetime) and bump it per event.  Like the Tracer* convention, every
// integration point takes a nullable MetricsRegistry* and null disables
// instrumentation at the price of one pointer test.
//
// Snapshot() returns a consistent-enough copy (each atom read once,
// relaxed) that exports to Prometheus text exposition and to JSON, the
// latter with a round-trip parser for tests and tooling.

#ifndef FUSEME_TELEMETRY_METRICS_H_
#define FUSEME_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/synchronization.h"

namespace fuseme {

/// Label set attached to one instrument in a family.  Keys are sorted
/// on registration so {a=1,b=2} and {b=2,a=1} name the same instrument.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event/amount counter.  Add() with a negative delta is a
/// programming error (checked).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(std::int64_t delta);
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time level with high-water tracking: peak() is the maximum
/// value ever Set()/Add()ed, so "worst task memory" survives the gauge
/// returning to zero.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double peak() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void RaisePeak(double candidate);

  std::atomic<double> value_{0.0};
  std::atomic<double> peak_{0.0};
};

/// Fixed-boundary histogram.  An observation lands in the first bucket
/// whose upper bound is >= the value; values above the last boundary land
/// in the implicit overflow bucket.  Boundaries must be strictly
/// increasing (checked on registration).
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void Observe(double value);

  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (not cumulative) counts; size() == boundaries().size()+1,
  /// the last entry being the overflow bucket.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;

 private:
  std::vector<double> boundaries_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Histogram boundaries for wall-time observations in seconds: ten
/// decades from 1 microsecond to 10 seconds.
std::vector<double> DefaultTimeBoundaries();
/// Histogram boundaries for byte counts: 1 KiB to 16 GiB by powers of 4.
std::vector<double> DefaultByteBoundaries();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One instrument's state as read by Snapshot().
struct MetricSample {
  std::string name;
  MetricLabels labels;  // sorted by key
  MetricKind kind = MetricKind::kCounter;

  std::int64_t counter_value = 0;               // kCounter
  double gauge_value = 0.0, gauge_peak = 0.0;   // kGauge
  std::vector<double> boundaries;               // kHistogram
  std::vector<std::int64_t> bucket_counts;      // per-bucket + overflow
  std::int64_t histogram_count = 0;
  double histogram_sum = 0.0;

  bool operator==(const MetricSample&) const = default;
};

/// Point-in-time copy of a registry, sorted by (name, labels) so exports
/// are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Finds the sample with exactly this name and label set, or null.
  [[nodiscard]] const MetricSample* Find(std::string_view name,
                                         const MetricLabels& labels = {}) const;
  /// Sum of counter values across every sample of the family `name`.
  [[nodiscard]] std::int64_t CounterTotal(std::string_view name) const;

  /// Prometheus text exposition format (# TYPE comments, cumulative
  /// _bucket{le=...} histogram lines ending at +Inf, gauges emit a
  /// companion <name>_peak series).
  [[nodiscard]] std::string ToPrometheusText() const;
  /// JSON export; ParseMetricsJson is the exact inverse.
  [[nodiscard]] std::string ToJson() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Parses MetricsSnapshot::ToJson output back (round-trip tests, bench
/// tooling that embeds snapshots).
Result<MetricsSnapshot> ParseMetricsJson(const std::string& json);

/// Small format checker for the Prometheus text exposition: every sample
/// line parses, refers to a preceding # TYPE declaration, and histogram
/// bucket series are cumulative and end at +Inf.  Used by the
/// metrics_report smoke step so exposition regressions fail the gate.
[[nodiscard]] Status ValidatePrometheusText(const std::string& text);

/// Structural invariants every live registry maintains: counters >= 0,
/// gauge peak >= current value, histogram count equals the sum of its
/// buckets.  The workload sweep test runs this after every engine run.
[[nodiscard]] Status CheckMetricsConsistency(const MetricsSnapshot& snapshot);

/// Lock-sharded instrument registry.  GetX() registers on first use and
/// returns a pointer that stays valid (and mutation-safe from any thread)
/// until the registry is destroyed.  Asking for an existing name with a
/// different instrument kind or histogram boundaries is a programming
/// error (checked).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, std::vector<double> boundaries,
                          MetricLabels labels = {});

  [[nodiscard]] MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable Mutex mu;
    // Keyed by name + '\x1f' + canonical labels.  The map (registration)
    // is guarded; the instruments the Entry values own mutate lock-free
    // via their own atomics once a caller holds a pointer.
    std::unordered_map<std::string, Entry> instruments GUARDED_BY(mu);
  };

  Entry* Lookup(std::string_view name, MetricLabels labels, MetricKind kind,
                const std::vector<double>* boundaries);

  static constexpr std::size_t kShards = 16;
  Shard shards_[kShards];
};

/// Installs (or, with null, removes) the logging counter hook so every
/// message past the level filter bumps
/// `fuseme_log_messages_total{level=...}` in `registry`.  The registry
/// must outlive the attachment; call AttachLogMetrics(nullptr) before
/// destroying it.
void AttachLogMetrics(MetricsRegistry* registry);

}  // namespace fuseme

#endif  // FUSEME_TELEMETRY_METRICS_H_
