#!/usr/bin/env bash
# Builds the tree with AddressSanitizer (leak checking included) and runs
# the full test suite under it.
# Usage: scripts/run_asan.sh [ctest -R regex]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFUSEME_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"

cd "$BUILD_DIR"
if [[ $# -gt 0 ]]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure
fi
