
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/evaluator.cc" "src/ops/CMakeFiles/fuseme_ops.dir/evaluator.cc.o" "gcc" "src/ops/CMakeFiles/fuseme_ops.dir/evaluator.cc.o.d"
  "/root/repo/src/ops/fused_operator.cc" "src/ops/CMakeFiles/fuseme_ops.dir/fused_operator.cc.o" "gcc" "src/ops/CMakeFiles/fuseme_ops.dir/fused_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fuseme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/fuseme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fuseme_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fuseme_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/fuseme_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fuseme_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
