// Scalar operation vocabulary shared by the local kernels and the IR.
//
// The paper's operator taxonomy (§2.1) has five operator types; unary and
// binary operators are parameterized by a scalar function from this file.

#ifndef FUSEME_MATRIX_SCALAR_OPS_H_
#define FUSEME_MATRIX_SCALAR_OPS_H_

#include <string_view>

namespace fuseme {

/// Element-wise unary functions, e.g. u(log), u(^2) in the paper's figures.
enum class UnaryFn {
  kIdentity,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kSquare,        // ^2 — the ALS weighted-loss example (Fig. 1(a))
  kAbs,
  kSigmoid,
  kRelu,
  kSin,
  kCos,
  kNotZero,       // (x != 0) — sparsity indicator used by weighted loss
  kReciprocal,
};

/// Element-wise binary functions, e.g. b(*), b(/) in the paper's figures.
enum class BinaryFn {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMin,
  kMax,
  kPow,
  kEqual,
  kNotEqual,
  kGreater,
  kLess,
};

/// Aggregation functions for unary aggregations (sum / rowSums / colSums)
/// and the reduction side of binary aggregation (matrix multiply uses kSum).
enum class AggFn {
  kSum,
  kMin,
  kMax,
};

/// Applies a unary scalar function.
double ApplyUnary(UnaryFn fn, double x);

/// Applies a binary scalar function.
double ApplyBinary(BinaryFn fn, double x, double y);

/// True when fn(0) == 0, i.e. the function preserves sparsity.
bool UnaryPreservesZero(UnaryFn fn);

/// True when fn(0, y) == 0 for all y (kMul only among the supported set
/// guarantees this for the *left* operand being zero AND right arbitrary).
bool BinaryZeroDominant(BinaryFn fn);

std::string_view UnaryFnName(UnaryFn fn);
std::string_view BinaryFnName(BinaryFn fn);
std::string_view AggFnName(AggFn fn);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_SCALAR_OPS_H_
