#include <string>

#include "engine/engine.h"

namespace fuseme {

namespace {

Status Invalid(const std::string& message) {
  return Status::InvalidArgument("invalid EngineOptions: " + message);
}

Status ValidateCluster(const ClusterConfig& c) {
  if (c.num_nodes < 1) {
    return Invalid("cluster.num_nodes must be >= 1, got " +
                   std::to_string(c.num_nodes));
  }
  if (c.tasks_per_node < 1) {
    return Invalid("cluster.tasks_per_node must be >= 1, got " +
                   std::to_string(c.tasks_per_node));
  }
  if (c.task_memory_budget <= 0) {
    return Invalid("cluster.task_memory_budget must be positive, got " +
                   std::to_string(c.task_memory_budget));
  }
  if (c.block_size < 1) {
    return Invalid("cluster.block_size must be >= 1, got " +
                   std::to_string(c.block_size));
  }
  if (!(c.net_bandwidth > 0)) {
    return Invalid("cluster.net_bandwidth must be positive");
  }
  if (!(c.compute_bandwidth > 0)) {
    return Invalid("cluster.compute_bandwidth must be positive");
  }
  if (!(c.timeout_seconds > 0)) {
    return Invalid("cluster.timeout_seconds must be positive");
  }
  if (c.task_launch_overhead < 0) {
    return Invalid("cluster.task_launch_overhead must be >= 0");
  }
  if (c.shuffle_cpu_factor < 0) {
    return Invalid("cluster.shuffle_cpu_factor must be >= 0");
  }
  if (c.local_threads < 0) {
    return Invalid("cluster.local_threads must be >= 0 (0 = process default)");
  }
  if (c.overlap_factor < 0.0 || c.overlap_factor > 1.0) {
    return Invalid("cluster.overlap_factor must lie in [0, 1]");
  }
  if (c.prefetch_depth < 0) {
    return Invalid("cluster.prefetch_depth must be >= 0 (0 = synchronous)");
  }
  if (!(c.emulated_shuffle_seconds_per_byte >= 0)) {
    return Invalid(
        "cluster.emulated_shuffle_seconds_per_byte must be >= 0");
  }
  return Status::OK();
}

Status ValidateFaults(const FaultSpec& f) {
  if (f.task_failure_probability < 0.0 || f.task_failure_probability > 1.0) {
    return Invalid("faults.task_failure_probability must lie in [0, 1]");
  }
  if (f.straggler_probability < 0.0 || f.straggler_probability > 1.0) {
    return Invalid("faults.straggler_probability must lie in [0, 1]");
  }
  if (f.straggler_slowdown < 1.0) {
    return Invalid("faults.straggler_slowdown must be >= 1");
  }
  for (int stage : f.oom_stages) {
    if (stage < 0) {
      return Invalid("faults.oom_stages entries are 0-based ordinals, got " +
                     std::to_string(stage));
    }
  }
  return Status::OK();
}

Status ValidateRecovery(const RecoveryOptions& r) {
  if (r.retry.max_attempts < 1) {
    return Invalid("recovery.retry.max_attempts must be >= 1, got " +
                   std::to_string(r.retry.max_attempts));
  }
  if (r.retry.backoff_base_seconds < 0) {
    return Invalid("recovery.retry.backoff_base_seconds must be >= 0");
  }
  if (r.retry.backoff_max_seconds < 0) {
    return Invalid("recovery.retry.backoff_max_seconds must be >= 0");
  }
  if (r.max_degradations_per_stage < 0) {
    return Invalid("recovery.max_degradations_per_stage must be >= 0");
  }
  if (!(r.speculation_launch_factor > 0)) {
    return Invalid("recovery.speculation_launch_factor must be positive");
  }
  return Status::OK();
}

}  // namespace

Status EngineOptions::Validate() const {
  FUSEME_RETURN_IF_ERROR(ValidateCluster(cluster));
  if (balance_sparsity && analytic) {
    // The analytic path models aggregate totals, which skew-aware splits
    // do not change — asking for both is a configuration bug.
    return Invalid(
        "balance_sparsity has no effect in analytic mode; drop one flag");
  }
  FUSEME_RETURN_IF_ERROR(ValidateFaults(faults));
  FUSEME_RETURN_IF_ERROR(ValidateRecovery(recovery));
  FUSEME_RETURN_IF_ERROR(observability.Validate(metrics != nullptr));
  if (journal != nullptr && observability.journal_capacity > 0) {
    // Two journals would split the event stream; pick one sink.
    return Invalid(
        "options.journal and observability.journal_capacity are mutually "
        "exclusive — pass the external journal or let the engine own one");
  }
  return Status::OK();
}

EngineOptions::Builder& EngineOptions::Builder::System(SystemMode system) {
  options_.system = system;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Cluster(
    const ClusterConfig& cluster) {
  options_.cluster = cluster;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Analytic(bool analytic) {
  options_.analytic = analytic;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::PrunedSearch(bool pruned) {
  options_.pruned_search = pruned;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::BalanceSparsity(bool balance) {
  options_.balance_sparsity = balance;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::WithTracer(Tracer* tracer) {
  options_.tracer = tracer;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::WithMetrics(
    MetricsRegistry* metrics) {
  options_.metrics = metrics;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::WithJournal(
    EventJournal* journal) {
  options_.journal = journal;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Observability(
    const ObservabilityOptions& observability) {
  options_.observability = observability;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Verify(VerifyLevel level) {
  options_.verify = level;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Faults(
    const FaultSpec& faults) {
  options_.faults = faults;
  return *this;
}

EngineOptions::Builder& EngineOptions::Builder::Recovery(
    const RecoveryOptions& recovery) {
  options_.recovery = recovery;
  return *this;
}

Result<EngineOptions> EngineOptions::Builder::Build() const {
  FUSEME_RETURN_IF_ERROR(options_.Validate());
  return options_;
}

}  // namespace fuseme
