#include "engine/reference.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ir/expr.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

TEST(ReferenceEvalTest, ScalarArithmetic) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 2);
  Expr out = 2.0 * a + 1.0;
  DenseMatrix av(2, 2, {1, 2, 3, 4});
  auto result = ReferenceEval(dag, out.id(), {{a.id(), av}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)(0, 0), 3.0);
  EXPECT_EQ((*result)(1, 1), 9.0);
}

TEST(ReferenceEvalTest, MatMulChain) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 3, 4);
  Expr b = Expr::Input(&dag, "B", 4, 2);
  Expr out = MatMul(a, b);
  DenseMatrix av = RandomDense(3, 4, 1);
  DenseMatrix bv = RandomDense(4, 2, 2);
  auto result = ReferenceEval(dag, out.id(), {{a.id(), av}, {b.id(), bv}});
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      double acc = 0;
      for (int k = 0; k < 4; ++k) acc += av(i, k) * bv(k, j);
      EXPECT_NEAR((*result)(i, j), acc, 1e-12);
    }
  }
}

TEST(ReferenceEvalTest, TransposeAndAgg) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 3);
  Expr out = Sum(T(a));
  DenseMatrix av(2, 3, {1, 2, 3, 4, 5, 6});
  auto result = ReferenceEval(dag, out.id(), {{a.id(), av}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)(0, 0), 21.0);
}

TEST(ReferenceEvalTest, MissingInputIsError) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 2);
  auto result = ReferenceEval(dag, a.id(), {});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ReferenceEvalTest, SharedSubexpressionEvaluatedOnce) {
  // exp(A) used twice: memoization means deterministic single value.
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 2);
  Expr e = Exp(a);
  Expr out = e + e;
  DenseMatrix av(2, 2, {0, 1, 2, 3});
  auto result = ReferenceEval(dag, out.id(), {{a.id(), av}});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR((*result)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*result)(1, 1), 2.0 * std::exp(3.0), 1e-9);
}

}  // namespace
}  // namespace fuseme
