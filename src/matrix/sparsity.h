// Sparsity (nnz) estimators used for meta blocks and IR shape inference.
//
// These follow the SystemML/SystemDS convention: treat non-zero positions
// of the two operands as independent uniform draws.

#ifndef FUSEME_MATRIX_SPARSITY_H_
#define FUSEME_MATRIX_SPARSITY_H_

#include <cstdint>

#include "matrix/scalar_ops.h"

namespace fuseme {

/// nnz estimate for an element-wise binary op on rows×cols operands with
/// nnz_a / nnz_b non-zeros.  kMul intersects supports, kAdd/kSub union
/// them, and non-zero-preserving ops (div, comparisons, ...) are dense.
std::int64_t EstimateEwiseBinaryNnz(BinaryFn fn, std::int64_t rows,
                                    std::int64_t cols, std::int64_t nnz_a,
                                    std::int64_t nnz_b);

/// nnz estimate for op-with-scalar: zero-preserving only if fn(x, s)
/// maps 0 to 0 for the given scalar (e.g. x*s, x/s with s != 0).
std::int64_t EstimateEwiseScalarNnz(BinaryFn fn, std::int64_t rows,
                                    std::int64_t cols, std::int64_t nnz,
                                    double scalar, bool scalar_left);

/// nnz estimate for a unary op (dense unless the function preserves zero).
std::int64_t EstimateUnaryNnz(UnaryFn fn, std::int64_t rows,
                              std::int64_t cols, std::int64_t nnz);

/// nnz estimate for (m×k)·(k×n) matrix multiplication:
/// density 1 - (1 - dA·dB)^k.
std::int64_t EstimateMatMulNnz(std::int64_t m, std::int64_t k, std::int64_t n,
                               std::int64_t nnz_a, std::int64_t nnz_b);

/// Floating-point-operation estimate for (m×k)·(k×n) given operand nnz:
/// 2·min over the sparse structure (sparse A ⇒ 2·nnz_a·n, etc.).
std::int64_t EstimateMatMulFlops(std::int64_t m, std::int64_t k,
                                 std::int64_t n, std::int64_t nnz_a,
                                 std::int64_t nnz_b);

}  // namespace fuseme

#endif  // FUSEME_MATRIX_SPARSITY_H_
