#include "telemetry/tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "common/thread_pool.h"

namespace fuseme {
namespace {

TEST(TracerTest, RecordsScopedSpans) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    outer.AddArg("key", "value");
    { ScopedSpan inner(&tracer, "inner", "test"); }
  }
  ASSERT_EQ(tracer.size(), 2u);
  const std::vector<TraceSpan> spans = tracer.spans();
  // The inner span completes (and records) first but sorts after the
  // outer by begin time.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_LE(spans[0].begin_us, spans[1].begin_us);
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "key");
  EXPECT_EQ(spans[0].args[0].second, "value");
}

TEST(TracerTest, NullTracerIsNoOp) {
  ScopedSpan span(nullptr, "ignored", "test");
  span.AddArg("also", "ignored");
  // Nothing to assert beyond "does not crash".
}

TEST(TracerTest, NestingHoldsUnderParallelFor) {
  // One outer span per work item, one inner span nested inside it; items
  // run on the global pool.  Every inner span must sit inside its item's
  // outer span on the same thread, whatever the interleaving was.
  Tracer tracer;
  constexpr std::int64_t kItems = 16;
  GlobalThreadPool()->ParallelFor(0, kItems, [&](std::int64_t i) {
    ScopedSpan outer(&tracer, "item " + std::to_string(i), "work-item");
    { ScopedSpan inner(&tracer, "inner " + std::to_string(i), "phase"); }
  });
  ASSERT_EQ(tracer.size(), 2u * kItems);
  const std::vector<TraceSpan> spans = tracer.spans();
  for (std::int64_t i = 0; i < kItems; ++i) {
    const std::string outer_name = "item " + std::to_string(i);
    const std::string inner_name = "inner " + std::to_string(i);
    auto find = [&](const std::string& name) {
      return std::find_if(
          spans.begin(), spans.end(),
          [&](const TraceSpan& s) { return s.name == name; });
    };
    auto outer = find(outer_name);
    auto inner = find(inner_name);
    ASSERT_NE(outer, spans.end());
    ASSERT_NE(inner, spans.end());
    EXPECT_EQ(outer->tid, inner->tid) << outer_name;
    EXPECT_LE(outer->begin_us, inner->begin_us) << outer_name;
    EXPECT_GE(outer->end_us, inner->end_us) << outer_name;
  }
}

TEST(TracerTest, SpansSnapshotIsSorted) {
  Tracer tracer;
  GlobalThreadPool()->ParallelFor(0, 32, [&](std::int64_t i) {
    ScopedSpan span(&tracer, "s" + std::to_string(i), "t");
  });
  const std::vector<TraceSpan> spans = tracer.spans();
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const TraceSpan& a = spans[i - 1];
    const TraceSpan& b = spans[i];
    // Sort key: begin ascending, then the enclosing (later-ending) span
    // first, then tid/name as deterministic tie-breaks.
    EXPECT_LE(std::tuple(a.begin_us, -a.end_us, a.tid, a.name),
              std::tuple(b.begin_us, -b.end_us, b.tid, b.name));
  }
}

TEST(TracerTest, ChromeJsonRoundTrips) {
  Tracer tracer;
  TraceSpan span;
  span.name = "needs \"escaping\"\n\tand \x01 control chars";
  span.category = "round\\trip";
  span.begin_us = 12;
  span.end_us = 345;
  span.tid = 7;
  span.args.emplace_back("cuboid", "(3,2,1)");
  span.args.emplace_back("note", "a=b, \"c\"");
  tracer.Record(span);
  TraceSpan plain;
  plain.name = "plain";
  plain.category = "t";
  plain.begin_us = 1;
  plain.end_us = 2;
  tracer.Record(plain);

  const std::string json = tracer.ToChromeJson();
  Result<std::vector<TraceSpan>> parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, tracer.spans());
}

TEST(TracerTest, ChromeJsonHasExpectedSchema) {
  Tracer tracer;
  TraceSpan span;
  span.name = "stage";
  span.category = "stage";
  span.begin_us = 10;
  span.end_us = 30;
  span.args.emplace_back("k", "v");
  tracer.Record(span);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"k\": \"v\"}"), std::string::npos);
}

TEST(TracerTest, ParseRejectsMalformedJson) {
  EXPECT_FALSE(ParseChromeTrace("").ok());
  EXPECT_FALSE(ParseChromeTrace("{}").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": [").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\": []} trailing").ok());
}

TEST(TracerTest, ParseSkipsNonCompleteEvents) {
  const std::string json =
      "{\"traceEvents\": ["
      "{\"name\": \"m\", \"cat\": \"c\", \"ph\": \"M\", \"ts\": 0, "
      "\"pid\": 0, \"tid\": 0},"
      "{\"name\": \"x\", \"cat\": \"c\", \"ph\": \"X\", \"ts\": 5, "
      "\"dur\": 10, \"pid\": 0, \"tid\": 2, \"args\": {}}"
      "]}";
  Result<std::vector<TraceSpan>> parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "x");
  EXPECT_EQ((*parsed)[0].begin_us, 5);
  EXPECT_EQ((*parsed)[0].end_us, 15);
  EXPECT_EQ((*parsed)[0].tid, 2);
}

TEST(TracerTest, MetadataRecordsRoundTrip) {
  Tracer tracer;
  tracer.SetProcessName("unit-test");
  tracer.SetThreadName(0, "driver");
  tracer.SetThreadName(3, "pool-worker");
  { ScopedSpan span(&tracer, "work", "test"); }

  const std::string json = tracer.ToChromeJson();
  // Metadata events use the Chrome "M" phase and precede the spans.
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_LT(json.find("\"ph\": \"M\""), json.find("\"ph\": \"X\""));

  Result<ParsedChromeTrace> parsed = ParseChromeTraceFull(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->process_name, "unit-test");
  EXPECT_EQ(parsed->spans, tracer.spans());
  ASSERT_EQ(parsed->thread_names.size(), 2u);
  EXPECT_EQ(parsed->thread_names.at(0), "driver");
  EXPECT_EQ(parsed->thread_names.at(3), "pool-worker");

  // The span-only parser still works on metadata-bearing traces.
  Result<std::vector<TraceSpan>> spans_only = ParseChromeTrace(json);
  ASSERT_TRUE(spans_only.ok()) << spans_only.status();
  EXPECT_EQ(*spans_only, tracer.spans());
}

TEST(TracerTest, NameCurrentThreadUsesCallingThreadId) {
  Tracer tracer;
  tracer.NameCurrentThread("main-thread");
  const auto names = tracer.thread_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names.begin()->first, tracer.CurrentThreadId());
  EXPECT_EQ(names.begin()->second, "main-thread");
}

TEST(TracerTest, ClearEmptiesTheTracer) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "s", "t"); }
  ASSERT_EQ(tracer.size(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

}  // namespace
}  // namespace fuseme
