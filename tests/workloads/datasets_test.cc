#include "workloads/datasets.h"

#include <gtest/gtest.h>

namespace fuseme {
namespace {

TEST(DatasetsTest, PaperTable2Values) {
  const auto& datasets = PaperDatasets();
  ASSERT_EQ(datasets.size(), 3u);
  EXPECT_EQ(datasets[0].name, "MovieLens");
  EXPECT_EQ(datasets[0].users, 283228);
  EXPECT_EQ(datasets[0].items, 58098);
  EXPECT_EQ(datasets[0].ratings, 27753444);
  EXPECT_EQ(datasets[1].name, "Netflix");
  EXPECT_EQ(datasets[1].ratings, 100480507);
  EXPECT_EQ(datasets[2].name, "YahooMusic");
  EXPECT_EQ(datasets[2].ratings, 717872016);
}

TEST(DatasetsTest, FindByName) {
  ASSERT_NE(FindDataset("Netflix"), nullptr);
  EXPECT_EQ(FindDataset("Netflix")->users, 480189);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

TEST(DatasetsTest, DensitiesAreSparse) {
  for (const auto& d : PaperDatasets()) {
    EXPECT_GT(d.density(), 0.0);
    EXPECT_LT(d.density(), 0.02);
  }
}

TEST(DatasetsTest, SyntheticSweeps) {
  auto two_large = VaryTwoLargeDimensions();
  ASSERT_EQ(two_large.size(), 4u);
  EXPECT_EQ(two_large[0].i, 100000);
  EXPECT_EQ(two_large[0].k, 2000);
  EXPECT_DOUBLE_EQ(two_large[0].density, 0.001);
  EXPECT_EQ(two_large[3].i, 750000);

  auto common = VaryCommonDimension();
  ASSERT_EQ(common.size(), 4u);
  EXPECT_EQ(common[0].i, 100000);
  EXPECT_EQ(common[0].k, 2000);
  EXPECT_DOUBLE_EQ(common[0].density, 0.2);

  auto density = VaryDensity();
  ASSERT_EQ(density.size(), 4u);
  EXPECT_DOUBLE_EQ(density[0].density, 0.05);
  EXPECT_DOUBLE_EQ(density[3].density, 1.0);
}

TEST(DatasetsTest, NnzComputation) {
  SyntheticSpec spec{"x", 1000, 1000, 10, 0.5};
  EXPECT_EQ(spec.x_nnz(), 500000);
}

}  // namespace
}  // namespace fuseme
