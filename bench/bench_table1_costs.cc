// Table 1: communication cost, memory usage per task, maximum parallelism,
// and redundant transpose computation of BFO / RFO / CFO for the running
// example O = X * log(U × Vᵀ + eps).
//
// The closed forms are evaluated through the cost model (so this doubles
// as a live check that the implementation matches the paper's formulas).

#include <cstdio>

#include "bench_util.h"
#include "cost/optimizer.h"
#include "workloads/queries.h"

using namespace fuseme;         // NOLINT
using namespace fuseme::bench;  // NOLINT

int main() {
  std::printf(
      "=== Table 1: distributed fusion methods on O = X*log(U x V^T + eps) "
      "===\n\n");

  // A representative instance: I = J = 100K, K = 2K, X at density 0.001.
  const std::int64_t n = 100000, k = 2000;
  NmfPattern q = BuildNmfPattern(n, n, k,
                                 static_cast<std::int64_t>(0.001 * n * n));
  PartialPlan plan(&q.dag, {q.vT, q.mm, q.add, q.log, q.mul}, q.mul);

  ClusterConfig cluster;  // paper defaults
  CostModel model(cluster);
  PqrOptimizer optimizer(&model);
  const GridDims g = model.Grid(plan);
  const std::int64_t T = cluster.total_tasks();

  PqrChoice cfo = optimizer.Pruned(plan);
  const Cuboid bfo{T, T, 1};
  const Cuboid rfo{g.I, g.J, 1};

  std::printf("instance: X %lldx%lld (d=0.001), U,V %lldx%lld dense;"
              " grid I=%lld J=%lld K=%lld, T=%lld tasks\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(n), static_cast<long long>(k),
              static_cast<long long>(g.I), static_cast<long long>(g.J),
              static_cast<long long>(g.K), static_cast<long long>(T));

  PrintRow({"method", "comm formula", "comm (GB)", "mem/task (GB)",
            "max tasks", "transposes"},
           16);
  PrintRule(6, 16);
  auto row = [&](const char* name, const char* formula, const Cuboid& c,
                 std::int64_t max_tasks, std::int64_t transposes) {
    char comm[32], mem[32];
    std::snprintf(comm, sizeof(comm), "%.1f",
                  model.NetEst(c, plan) / 1e9);
    std::snprintf(mem, sizeof(mem), "%.2f",
                  model.MemEst(c, plan) / 1e9);
    PrintRow({name, formula, comm, mem, std::to_string(max_tasks),
              std::to_string(transposes)},
             16);
  };
  row("BFO", "|X|+T(|U|+|V|)", bfo, g.I * g.J, T);
  row("RFO", "|X|+J|U|+I|V|", rfo, g.I * g.J, g.I);
  char cfo_name[64];
  std::snprintf(cfo_name, sizeof(cfo_name), "CFO %s",
                cfo.c.ToString().c_str());
  row(cfo_name, "R|X|+Q|U|+P|V|", cfo.c, g.I * g.J * g.K, cfo.c.P);

  std::printf(
      "\nCFO picks the lowest-communication (P,Q,R) that fits the task\n"
      "memory budget; BFO has fixed (high) memory, RFO fixed (high)\n"
      "communication — neither has a knob (Fig. 9).\n");
  return 0;
}
