#include "fusion/sparsity_analysis.h"

#include <unordered_map>

namespace fuseme {

namespace {

/// True when the subtree under `id` (restricted to plan members) consists
/// only of element-wise / transpose operators — i.e. the evaluator can
/// compute it per element for the masked fast path.  Memoized per NodeId:
/// shared subexpressions make the "tree" a DAG, and an unmemoized walk is
/// exponential in the sharing depth (a chain of n nodes each reusing the
/// previous one twice costs 2^n visits).
bool SubtreeIsElementwise(const PartialPlan& plan, NodeId id,
                          std::unordered_map<NodeId, bool>* memo) {
  if (!plan.Contains(id)) return true;  // external inputs are fine
  if (auto it = memo->find(id); it != memo->end()) return it->second;
  const Node& n = plan.dag().node(id);
  bool ok = true;
  switch (n.kind) {
    case OpKind::kUnary:
    case OpKind::kBinary:
    case OpKind::kTranspose:
      break;
    default:
      ok = false;
  }
  if (ok) {
    for (NodeId in : n.inputs) {
      if (!SubtreeIsElementwise(plan, in, memo)) {
        ok = false;
        break;
      }
    }
  }
  memo->emplace(id, ok);
  return ok;
}

bool SubtreeIsElementwise(const PartialPlan& plan, NodeId id) {
  std::unordered_map<NodeId, bool> memo;
  return SubtreeIsElementwise(plan, id, &memo);
}

}  // namespace

SparseDriver FindSparseDriver(const PartialPlan& plan, NodeId main_mm,
                              double density_threshold) {
  SparseDriver driver;
  if (main_mm == kInvalidNode || !plan.Contains(main_mm)) return driver;
  const Dag& dag = plan.dag();

  std::vector<NodeId> path = {main_mm};
  NodeId current = main_mm;
  while (true) {
    NodeId parent = plan.ParentOf(current);
    if (parent == kInvalidNode) break;  // reached the plan root
    const Node& p = dag.node(parent);
    // The mask only commutes with element-wise operators.
    if (p.kind != OpKind::kUnary && p.kind != OpKind::kBinary) break;
    path.push_back(parent);
    if (p.kind == OpKind::kBinary && p.binary_fn == BinaryFn::kMul) {
      // Which operand is the path child?
      const NodeId other =
          p.inputs[0] == current ? p.inputs[1] : p.inputs[0];
      const Node& o = dag.node(other);
      // The mask may be an external sparse matrix or an in-plan
      // element-wise expression over one (e.g. the (X != 0) of Fig. 1(a));
      // both are cheap to evaluate at non-zero positions only.
      const bool usable =
          !plan.Contains(other) ||
          (other != current && SubtreeIsElementwise(plan, other));
      const bool matrix_shaped =
          o.is_matrix() && o.rows == p.rows && o.cols == p.cols;
      if (usable && matrix_shaped && o.density() < density_threshold) {
        driver.mul_node = parent;
        driver.sparse_input = other;
        driver.scaled_nodes = path;
        driver.density = o.density();
        return driver;
      }
    }
    current = parent;
  }
  return driver;
}

}  // namespace fuseme
