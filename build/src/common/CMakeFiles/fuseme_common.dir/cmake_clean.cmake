file(REMOVE_RECURSE
  "CMakeFiles/fuseme_common.dir/logging.cc.o"
  "CMakeFiles/fuseme_common.dir/logging.cc.o.d"
  "CMakeFiles/fuseme_common.dir/status.cc.o"
  "CMakeFiles/fuseme_common.dir/status.cc.o.d"
  "CMakeFiles/fuseme_common.dir/string_util.cc.o"
  "CMakeFiles/fuseme_common.dir/string_util.cc.o.d"
  "libfuseme_common.a"
  "libfuseme_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
