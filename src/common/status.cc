#include "common/status.h"

namespace fuseme {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fuseme
