#include "workloads/autoencoder.h"

#include "common/logging.h"
#include "ir/expr.h"

namespace fuseme {

AutoEncoderQuery BuildAutoEncoder(std::int64_t batch, std::int64_t features,
                                  std::int64_t h1, std::int64_t h2) {
  AutoEncoderQuery q;
  Dag* dag = &q.dag;
  Expr X = Expr::Input(dag, "X", batch, features);
  Expr W1 = Expr::Input(dag, "W1", h1, features);
  Expr W2 = Expr::Input(dag, "W2", h2, h1);
  Expr W3 = Expr::Input(dag, "W3", h1, h2);
  Expr W4 = Expr::Input(dag, "W4", features, h1);
  q.X = X.id();
  q.W1 = W1.id();
  q.W2 = W2.id();
  q.W3 = W3.id();
  q.W4 = W4.id();

  // Forward: encoder (H1, H2), decoder (H3, Xhat).
  Expr H1 = Sigmoid(MatMul(X, T(W1)));    // batch × h1
  Expr H2 = Sigmoid(MatMul(H1, T(W2)));   // batch × h2
  Expr H3 = Sigmoid(MatMul(H2, T(W3)));   // batch × h1
  Expr Xhat = Sigmoid(MatMul(H3, T(W4)));  // batch × features
  q.H1 = H1.id();
  q.H2 = H2.id();
  q.H3 = H3.id();
  q.Xhat = Xhat.id();

  // Loss: squared reconstruction error.
  Expr E = Xhat - X;
  Expr loss = Sum(Square(E)).MarkOutput();
  q.loss = loss.id();

  // Backward: sigmoid'(a) = a * (1 - a).
  auto sig_grad = [](const Expr& a) { return a * (1.0 - a); };
  Expr D4 = E * sig_grad(Xhat);                 // batch × features
  Expr gW4 = MatMul(T(D4), H3).MarkOutput();    // features × h1
  Expr D3 = MatMul(D4, W4) * sig_grad(H3);      // batch × h1
  Expr gW3 = MatMul(T(D3), H2).MarkOutput();    // h1 × h2
  Expr D2 = MatMul(D3, W3) * sig_grad(H2);      // batch × h2
  Expr gW2 = MatMul(T(D2), H1).MarkOutput();    // h2 × h1
  Expr D1 = MatMul(D2, W2) * sig_grad(H1);      // batch × h1
  Expr gW1 = MatMul(T(D1), X).MarkOutput();     // h1 × features
  q.gW4 = gW4.id();
  q.gW3 = gW3.id();
  q.gW2 = gW2.id();
  q.gW1 = gW1.id();
  return q;
}

}  // namespace fuseme
