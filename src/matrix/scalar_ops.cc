#include "matrix/scalar_ops.h"

#include <algorithm>
#include <cmath>

namespace fuseme {

double ApplyUnary(UnaryFn fn, double x) {
  switch (fn) {
    case UnaryFn::kIdentity:
      return x;
    case UnaryFn::kNeg:
      return -x;
    case UnaryFn::kExp:
      return std::exp(x);
    case UnaryFn::kLog:
      return std::log(x);
    case UnaryFn::kSqrt:
      return std::sqrt(x);
    case UnaryFn::kSquare:
      return x * x;
    case UnaryFn::kAbs:
      return std::fabs(x);
    case UnaryFn::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case UnaryFn::kRelu:
      return x > 0.0 ? x : 0.0;
    case UnaryFn::kSin:
      return std::sin(x);
    case UnaryFn::kCos:
      return std::cos(x);
    case UnaryFn::kNotZero:
      return x != 0.0 ? 1.0 : 0.0;
    case UnaryFn::kReciprocal:
      return 1.0 / x;
  }
  return x;
}

double ApplyBinary(BinaryFn fn, double x, double y) {
  switch (fn) {
    case BinaryFn::kAdd:
      return x + y;
    case BinaryFn::kSub:
      return x - y;
    case BinaryFn::kMul:
      return x * y;
    case BinaryFn::kDiv:
      return x / y;
    case BinaryFn::kMin:
      return std::min(x, y);
    case BinaryFn::kMax:
      return std::max(x, y);
    case BinaryFn::kPow:
      return std::pow(x, y);
    case BinaryFn::kEqual:
      return x == y ? 1.0 : 0.0;
    case BinaryFn::kNotEqual:
      return x != y ? 1.0 : 0.0;
    case BinaryFn::kGreater:
      return x > y ? 1.0 : 0.0;
    case BinaryFn::kLess:
      return x < y ? 1.0 : 0.0;
  }
  return 0.0;
}

bool UnaryPreservesZero(UnaryFn fn) {
  switch (fn) {
    case UnaryFn::kIdentity:
    case UnaryFn::kNeg:
    case UnaryFn::kSqrt:
    case UnaryFn::kSquare:
    case UnaryFn::kAbs:
    case UnaryFn::kRelu:
    case UnaryFn::kSin:
    case UnaryFn::kNotZero:
      return true;
    default:
      return false;
  }
}

bool BinaryZeroDominant(BinaryFn fn) { return fn == BinaryFn::kMul; }

std::string_view UnaryFnName(UnaryFn fn) {
  switch (fn) {
    case UnaryFn::kIdentity:
      return "id";
    case UnaryFn::kNeg:
      return "neg";
    case UnaryFn::kExp:
      return "exp";
    case UnaryFn::kLog:
      return "log";
    case UnaryFn::kSqrt:
      return "sqrt";
    case UnaryFn::kSquare:
      return "^2";
    case UnaryFn::kAbs:
      return "abs";
    case UnaryFn::kSigmoid:
      return "sigmoid";
    case UnaryFn::kRelu:
      return "relu";
    case UnaryFn::kSin:
      return "sin";
    case UnaryFn::kCos:
      return "cos";
    case UnaryFn::kNotZero:
      return "!=0";
    case UnaryFn::kReciprocal:
      return "recip";
  }
  return "?";
}

std::string_view BinaryFnName(BinaryFn fn) {
  switch (fn) {
    case BinaryFn::kAdd:
      return "+";
    case BinaryFn::kSub:
      return "-";
    case BinaryFn::kMul:
      return "*";
    case BinaryFn::kDiv:
      return "/";
    case BinaryFn::kMin:
      return "min";
    case BinaryFn::kMax:
      return "max";
    case BinaryFn::kPow:
      return "pow";
    case BinaryFn::kEqual:
      return "==";
    case BinaryFn::kNotEqual:
      return "!=";
    case BinaryFn::kGreater:
      return ">";
    case BinaryFn::kLess:
      return "<";
  }
  return "?";
}

std::string_view AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

}  // namespace fuseme
