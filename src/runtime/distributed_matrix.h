// DistributedMatrix: a BlockedMatrix plus a block -> task placement.
//
// This is the runtime's analogue of a partitioned Spark RDD of
// ((bi, bj) -> Block) records.  Moving a block to a task other than its
// owner is what the physical operators charge as network communication.

#ifndef FUSEME_RUNTIME_DISTRIBUTED_MATRIX_H_
#define FUSEME_RUNTIME_DISTRIBUTED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "matrix/blocked_matrix.h"

namespace fuseme {

/// Block placement schemes (FuseME extends the RDD partitioner with row,
/// column, and grid schemes — paper §5).
enum class PartitionScheme {
  kRow,   // all blocks of a tile-row share a task
  kCol,   // all blocks of a tile-column share a task
  kGrid,  // round-robin over tiles
};

/// Models how Spark would split a materialized matrix into RDD partitions:
/// one partition per 128 MB of serialized data, at most one per block.
/// SystemDS picks BFO vs RFO by comparing this count with the grid
/// dimensions (paper §6.2).
std::int64_t EstimateSparkPartitions(std::int64_t size_bytes,
                                     std::int64_t num_blocks);

class DistributedMatrix {
 public:
  DistributedMatrix() = default;

  /// Distributes `blocks` over `num_tasks` tasks with the given scheme.
  static DistributedMatrix Create(BlockedMatrix blocks,
                                  PartitionScheme scheme, int num_tasks);

  const BlockedMatrix& blocks() const { return blocks_; }
  BlockedMatrix& mutable_blocks() { return blocks_; }

  int num_tasks() const { return num_tasks_; }
  PartitionScheme scheme() const { return scheme_; }

  /// Task owning tile (bi, bj).
  int Owner(std::int64_t bi, std::int64_t bj) const;

  /// Number of distinct tasks that own at least one non-empty tile.
  int NumActiveTasks() const;

  /// Spark-style partition count of this matrix's data (see above).
  std::int64_t SparkPartitions() const;

 private:
  BlockedMatrix blocks_;
  PartitionScheme scheme_ = PartitionScheme::kGrid;
  int num_tasks_ = 1;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_DISTRIBUTED_MATRIX_H_
