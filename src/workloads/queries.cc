#include "workloads/queries.h"

#include "common/logging.h"

namespace fuseme {

namespace {

NodeId Must(Result<NodeId> result) {
  FUSEME_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

}  // namespace

GnmfQuery BuildGnmf(std::int64_t m, std::int64_t n, std::int64_t k,
                    std::int64_t x_nnz, bool matrix_chain_opt) {
  GnmfQuery q;
  q.X = Must(q.dag.AddInput("X", m, n, x_nnz));
  q.V = Must(q.dag.AddInput("V", m, k));
  q.U = Must(q.dag.AddInput("U", k, n));

  // U' = U * (Vᵀ×X) / (Vᵀ×V×U)
  q.vT = Must(q.dag.AddTranspose(q.V));            // k×m, fanout 2
  q.a1 = Must(q.dag.AddMatMul(q.vT, q.X));         // k×n
  q.a2 = Must(q.dag.AddMatMul(q.vT, q.V));         // k×k
  q.a3 = Must(q.dag.AddBinary(BinaryFn::kMul, q.U, q.a1));
  q.a4 = Must(q.dag.AddMatMul(q.a2, q.U));         // k×n
  q.a5 = Must(q.dag.AddBinary(BinaryFn::kDiv, q.a3, q.a4));
  q.dag.MarkOutput(q.a5);

  // V' = V * (X×Uᵀ) / (V×(U×Uᵀ)) — the denominator chain is associated
  // through the tiny k×k product, mirroring the Vᵀ×V×U side (Fig. 10).
  q.uT = Must(q.dag.AddTranspose(q.U));            // n×k, fanout 2
  q.b1 = Must(q.dag.AddMatMul(q.X, q.uT));         // m×k
  q.b2 = Must(q.dag.AddBinary(BinaryFn::kMul, q.V, q.b1));
  if (matrix_chain_opt) {
    q.b3 = Must(q.dag.AddMatMul(q.U, q.uT));       // k×k
    q.b4 = Must(q.dag.AddMatMul(q.V, q.b3));       // m×k
  } else {
    q.b3 = Must(q.dag.AddMatMul(q.V, q.U));        // m×n (!)
    q.b4 = Must(q.dag.AddMatMul(q.b3, q.uT));      // m×k
  }
  q.b5 = Must(q.dag.AddBinary(BinaryFn::kDiv, q.b2, q.b4));
  q.dag.MarkOutput(q.b5);
  return q;
}

NmfPattern BuildNmfPattern(std::int64_t i, std::int64_t j, std::int64_t k,
                           std::int64_t x_nnz, double eps) {
  NmfPattern q;
  q.X = Must(q.dag.AddInput("X", i, j, x_nnz));
  q.U = Must(q.dag.AddInput("U", i, k));
  q.V = Must(q.dag.AddInput("V", j, k));
  q.vT = Must(q.dag.AddTranspose(q.V));          // k×j
  q.mm = Must(q.dag.AddMatMul(q.U, q.vT));       // i×j
  NodeId eps_node = Must(q.dag.AddScalar(eps));
  q.add = Must(q.dag.AddBinary(BinaryFn::kAdd, q.mm, eps_node));
  q.log = Must(q.dag.AddUnary(UnaryFn::kLog, q.add));
  q.mul = Must(q.dag.AddBinary(BinaryFn::kMul, q.X, q.log));
  q.dag.MarkOutput(q.mul);
  return q;
}

AlsLossQuery BuildAlsLoss(std::int64_t m, std::int64_t n, std::int64_t k,
                          std::int64_t x_nnz) {
  AlsLossQuery q;
  q.X = Must(q.dag.AddInput("X", m, n, x_nnz));
  q.U = Must(q.dag.AddInput("U", m, k));
  q.V = Must(q.dag.AddInput("V", k, n));
  q.mm = Must(q.dag.AddMatMul(q.U, q.V));
  q.mask = Must(q.dag.AddUnary(UnaryFn::kNotZero, q.X));
  q.sub = Must(q.dag.AddBinary(BinaryFn::kSub, q.X, q.mm));
  q.sq = Must(q.dag.AddUnary(UnaryFn::kSquare, q.sub));
  q.mul = Must(q.dag.AddBinary(BinaryFn::kMul, q.mask, q.sq));
  q.loss = Must(q.dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, q.mul));
  q.dag.MarkOutput(q.loss);
  return q;
}

KlLossQuery BuildKlLoss(std::int64_t m, std::int64_t n, std::int64_t k,
                        std::int64_t x_nnz) {
  KlLossQuery q;
  q.X = Must(q.dag.AddInput("X", m, n, x_nnz));
  q.U = Must(q.dag.AddInput("U", m, k));
  q.V = Must(q.dag.AddInput("V", k, n));
  q.mm = Must(q.dag.AddMatMul(q.U, q.V));
  NodeId mask = Must(q.dag.AddUnary(UnaryFn::kNotZero, q.X));
  // Guard the ratio so unfused evaluation never forms 0·log(0): at X's
  // zeros the ratio becomes 1/(U×V) and the X· factor annihilates it.
  NodeId zero = Must(q.dag.AddScalar(0.0));
  NodeId is_zero = Must(q.dag.AddBinary(BinaryFn::kEqual, q.X, zero));
  NodeId safe_x = Must(q.dag.AddBinary(BinaryFn::kAdd, q.X, is_zero));
  NodeId ratio = Must(q.dag.AddBinary(BinaryFn::kDiv, safe_x, q.mm));
  NodeId lg = Must(q.dag.AddUnary(UnaryFn::kLog, ratio));
  NodeId xlog = Must(q.dag.AddBinary(BinaryFn::kMul, q.X, lg));
  NodeId minus_x = Must(q.dag.AddBinary(BinaryFn::kSub, xlog, q.X));
  NodeId plus_uv = Must(q.dag.AddBinary(BinaryFn::kAdd, minus_x, q.mm));
  NodeId masked = Must(q.dag.AddBinary(BinaryFn::kMul, mask, plus_uv));
  q.loss = Must(q.dag.AddUnaryAgg(AggFn::kSum, AggAxis::kAll, masked));
  q.dag.MarkOutput(q.loss);
  return q;
}

PcaPattern BuildPcaPattern(std::int64_t m, std::int64_t n) {
  PcaPattern q;
  q.X = Must(q.dag.AddInput("X", m, n));
  q.S = Must(q.dag.AddInput("S", n, 1));
  q.mm1 = Must(q.dag.AddMatMul(q.X, q.S));   // m×1
  q.t = Must(q.dag.AddTranspose(q.mm1));     // 1×m
  q.mm2 = Must(q.dag.AddMatMul(q.t, q.X));   // 1×n
  q.dag.MarkOutput(q.mm2);
  return q;
}

Fig1cQuery BuildFig1c(std::int64_t m, std::int64_t n, std::int64_t k,
                      std::int64_t x_nnz) {
  Fig1cQuery q;
  q.X = Must(q.dag.AddInput("X", m, n, x_nnz));
  q.U = Must(q.dag.AddInput("U", m, k));
  q.V = Must(q.dag.AddInput("V", k, n));
  NodeId vT = Must(q.dag.AddTranspose(q.V));          // n×k, fanout 2
  NodeId num_mm = Must(q.dag.AddMatMul(q.X, vT));     // m×k
  NodeId num = Must(q.dag.AddBinary(BinaryFn::kMul, num_mm, q.U));
  NodeId vvT = Must(q.dag.AddMatMul(q.V, vT));        // k×k
  NodeId den = Must(q.dag.AddMatMul(q.U, vvT));       // m×k
  q.out = Must(q.dag.AddBinary(BinaryFn::kDiv, num, den));
  q.dag.MarkOutput(q.out);
  return q;
}

}  // namespace fuseme
