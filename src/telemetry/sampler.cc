#include "telemetry/sampler.h"

#include <sstream>

#include "common/json_util.h"
#include "common/logging.h"

namespace fuseme {

namespace {

// Series key: metric name (plus a derived suffix) with the Prometheus
// label rendering appended, so one instrument maps to one stable key.
std::string SeriesKey(const std::string& name, const std::string& suffix,
                      const MetricLabels& labels) {
  std::string key = name + suffix;
  if (labels.empty()) return key;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

std::vector<std::pair<std::string, double>> MetricsSampler::Flatten(
    const MetricsSnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> values;
  values.reserve(snapshot.samples.size() * 2);
  for (const MetricSample& sample : snapshot.samples) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        values.emplace_back(SeriesKey(sample.name, "", sample.labels),
                            static_cast<double>(sample.counter_value));
        break;
      case MetricKind::kGauge:
        values.emplace_back(SeriesKey(sample.name, "", sample.labels),
                            sample.gauge_value);
        values.emplace_back(SeriesKey(sample.name, "_peak", sample.labels),
                            sample.gauge_peak);
        break;
      case MetricKind::kHistogram:
        values.emplace_back(SeriesKey(sample.name, "_count", sample.labels),
                            static_cast<double>(sample.histogram_count));
        values.emplace_back(SeriesKey(sample.name, "_sum", sample.labels),
                            sample.histogram_sum);
        break;
    }
  }
  return values;
}

MetricsSampler::MetricsSampler(const MetricsRegistry* registry,
                               Options options,
                               std::chrono::steady_clock::time_point epoch)
    : registry_(registry), options_(options), epoch_(epoch) {
  FUSEME_CHECK(registry_ != nullptr);
  FUSEME_CHECK_GT(options_.capacity, 0);
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  FUSEME_CHECK_GT(options_.period_seconds, 0.0);
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread(&MetricsSampler::Loop, this);
}

void MetricsSampler::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

void MetricsSampler::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    cv_.WaitFor(mu_, options_.period_seconds);
    if (stop_) break;
    // Sample with the sampler mutex dropped: the registry's shard locks
    // and mu_ are never held together (see header lock-ordering note).
    lock.Unlock();
    SampleNow();
    lock.Lock();
  }
}

TimeSample MetricsSampler::SampleNow() {
  TimeSample sample;
  sample.t_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
  sample.values = Flatten(registry_->Snapshot());

  MutexLock lock(mu_);
  if (static_cast<std::int64_t>(ring_.size()) < options_.capacity) {
    ring_.push_back(sample);
  } else {
    ring_[static_cast<std::size_t>(taken_ % options_.capacity)] = sample;
  }
  ++taken_;
  return sample;
}

std::vector<TimeSample> MetricsSampler::Series() const {
  MutexLock lock(mu_);
  std::vector<TimeSample> out;
  out.reserve(ring_.size());
  if (static_cast<std::int64_t>(ring_.size()) < options_.capacity) {
    out = ring_;  // not yet wrapped: ring order is emission order
  } else {
    for (std::int64_t i = 0; i < options_.capacity; ++i) {
      out.push_back(ring_[static_cast<std::size_t>((taken_ + i) %
                                                   options_.capacity)]);
    }
  }
  return out;
}

std::string MetricsSampler::ToJson() const {
  // Copy state first; JSON rendering happens without mu_ held.
  const std::vector<TimeSample> samples = Series();
  std::int64_t taken = total_samples();

  std::ostringstream out;
  out << "{\"period_seconds\": " << options_.period_seconds
      << ", \"capacity\": " << options_.capacity << ", \"taken\": " << taken
      << ", \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"t_us\": " << samples[i].t_us << ", \"values\": {";
    bool first = true;
    for (const auto& [key, value] : samples[i].values) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << JsonEscape(key) << "\": " << value;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::int64_t MetricsSampler::total_samples() const {
  MutexLock lock(mu_);
  return taken_;
}

}  // namespace fuseme
