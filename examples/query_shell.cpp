// query_shell: type a DML-like matrix expression, get the fusion plans and
// modeled execution reports of all four systems for it.
//
//   $ ./build/examples/query_shell "X * log(U %*% t(V) + 1e-8)"
//   $ ./build/examples/query_shell            # uses the default NMF query
//
// Matrices available to queries (paper-scale, metadata-only execution):
//   X: 100000x100000 sparse (d=0.001)     U, V: 100000x2000 dense
//   W: 2000x100000 dense                  S: 100000x1 dense

#include <cstdio>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string text =
      argc > 1 ? argv[1] : "X * log(U %*% t(V) + 1e-8)";

  std::map<std::string, MatrixShape> symbols = {
      {"X", {100000, 100000, 10000000}},
      {"U", {100000, 2000, -1}},
      {"V", {100000, 2000, -1}},
      {"W", {2000, 100000, -1}},
      {"S", {100000, 1, -1}},
  };

  auto parsed = ParseQuery(text, symbols);
  if (!parsed.ok()) {
    std::printf("%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\nDAG:\n%s\n",
              ExprToString(*parsed->dag, parsed->root).c_str(),
              DagToString(*parsed->dag).c_str());

  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe}) {
    EngineOptions options;
    options.system = mode;
    options.analytic = true;  // paper-default modeled cluster
    Engine engine(options);
    Result<CompiledPlan> compiled = engine.Compile(*parsed->dag);
    if (!compiled.ok()) {
      std::printf("%-10s compile failed: %s\n", SystemModeName(mode).data(),
                  compiled.status().ToString().c_str());
      continue;
    }
    auto run = engine.Execute(*compiled, {});
    std::printf("%-10s %-34s", SystemModeName(mode).data(),
                run.report.Summary().c_str());
    std::printf("  [%zu plan(s):", compiled->plans().plans.size());
    for (const PartialPlan& p : compiled->plans().plans) {
      std::printf(" %lld", static_cast<long long>(p.size()));
    }
    std::printf(" ops]\n");
  }
  std::printf(
      "\n(elapsed/bytes are modeled on the paper's 8-node cluster; run the\n"
      " engine in real mode to execute numerically — see quickstart.cpp)\n");
  return 0;
}
