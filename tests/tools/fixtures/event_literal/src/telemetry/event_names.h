// Fixture event catalogue for the inline-literal negative case.
#ifndef FIXTURE_EVENT_LITERAL_EVENT_NAMES_H_
#define FIXTURE_EVENT_LITERAL_EVENT_NAMES_H_

namespace fuseme::event_names {

inline constexpr char kDemo[] = "fuseme.demo.start";

}  // namespace fuseme::event_names

#endif  // FIXTURE_EVENT_LITERAL_EVENT_NAMES_H_
