file(REMOVE_RECURSE
  "libfuseme_planner.a"
)
