// Differential fuzzing: random query DAGs executed under every system
// policy (different planners + different physical operators) must all
// agree with the single-node oracle bit-for-bit (up to float accumulation
// order).  This is the broadest correctness net in the suite: it covers
// plan generation, space classification, cuboid/broadcast execution,
// sparsity exploitation, aggregation roots, and multi-output queries at
// once.

#include <random>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/reference.h"
#include "matrix/generators.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

struct RandomQuery {
  Dag dag;
  std::map<NodeId, DenseMatrix> dense;
  std::map<NodeId, BlockedMatrix> blocked;
};

/// Builds a random valid DAG with bounded-magnitude values (operations
/// are restricted to a numerically tame set: no division, no log).
RandomQuery MakeRandomQuery(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  RandomQuery q;
  struct Entry {
    NodeId id;
    std::int64_t rows, cols;
  };
  std::vector<Entry> pool;

  // 2-4 leaf matrices with dimensions that are not block-aligned on
  // purpose (ragged tiles must work everywhere).
  const int num_leaves = static_cast<int>(pick(2, 4));
  std::vector<std::int64_t> dims = {10, 12, 17, 24, 9};
  for (int i = 0; i < num_leaves; ++i) {
    const std::int64_t rows = dims[pick(0, 4)];
    const std::int64_t cols = dims[pick(0, 4)];
    const bool sparse = pick(0, 2) == 0;
    NodeId id = *q.dag.AddInput("L" + std::to_string(i), rows, cols,
                                sparse ? rows * cols / 8 : -1);
    DenseMatrix value =
        sparse ? RandomSparse(rows, cols, 0.12, seed * 31 + i, 0.3, 1.2)
                     .ToDense()
               : RandomDense(rows, cols, seed * 31 + i, 0.3, 1.2);
    q.dense[id] = value;
    q.blocked[id] = sparse ? BlockedMatrix::FromSparse(
                                 SparseMatrix::FromDense(value), kBs)
                           : BlockedMatrix::FromDense(value, kBs);
    pool.push_back({id, rows, cols});
  }

  // 6-14 random operators.
  const int num_ops = static_cast<int>(pick(6, 14));
  for (int i = 0; i < num_ops; ++i) {
    const int kind = static_cast<int>(pick(0, 5));
    const Entry a = pool[pick(0, static_cast<std::int64_t>(pool.size()) - 1)];
    Result<NodeId> made = Status::Internal("skip");
    switch (kind) {
      case 0: {  // unary (value-bounded choices only)
        const UnaryFn fns[] = {UnaryFn::kSquare, UnaryFn::kAbs,
                               UnaryFn::kSigmoid, UnaryFn::kRelu,
                               UnaryFn::kNotZero};
        made = q.dag.AddUnary(fns[pick(0, 4)], a.id);
        break;
      }
      case 1: {  // binary with a shape-compatible partner
        std::vector<Entry> compatible;
        for (const Entry& e : pool) {
          if (e.rows == a.rows && e.cols == a.cols) compatible.push_back(e);
        }
        if (compatible.empty()) continue;
        const Entry b =
            compatible[pick(0, static_cast<std::int64_t>(
                                   compatible.size()) - 1)];
        const BinaryFn fns[] = {BinaryFn::kAdd, BinaryFn::kSub,
                                BinaryFn::kMul, BinaryFn::kMin,
                                BinaryFn::kMax};
        made = q.dag.AddBinary(fns[pick(0, 4)], a.id, b.id);
        break;
      }
      case 2: {  // binary with scalar
        NodeId s = *q.dag.AddScalar(0.25 + 0.5 * pick(0, 3));
        made = q.dag.AddBinary(pick(0, 1) == 0 ? BinaryFn::kMul
                                               : BinaryFn::kAdd,
                               a.id, s);
        break;
      }
      case 3: {  // matmul with an inner-compatible partner
        std::vector<Entry> compatible;
        for (const Entry& e : pool) {
          if (e.rows == a.cols) compatible.push_back(e);
        }
        if (compatible.empty()) continue;
        const Entry b =
            compatible[pick(0, static_cast<std::int64_t>(
                                   compatible.size()) - 1)];
        made = q.dag.AddMatMul(a.id, b.id);
        break;
      }
      case 4:  // transpose
        made = q.dag.AddTranspose(a.id);
        break;
      case 5: {  // aggregation
        const AggAxis axes[] = {AggAxis::kAll, AggAxis::kRow, AggAxis::kCol};
        made = q.dag.AddUnaryAgg(AggFn::kSum, axes[pick(0, 2)], a.id);
        break;
      }
    }
    if (!made.ok()) continue;
    const Node& n = q.dag.node(*made);
    pool.push_back({*made, n.rows, n.cols});
  }

  // Outputs: every sink operator (no consumers) that is not a leaf.
  for (const Entry& e : pool) {
    const Node& n = q.dag.node(e.id);
    if (n.kind == OpKind::kInput) continue;
    if (q.dag.Consumers(e.id).empty()) q.dag.MarkOutput(e.id);
  }
  return q;
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllSystemsMatchOracle) {
  RandomQuery q = MakeRandomQuery(GetParam());
  if (q.dag.outputs().empty()) GTEST_SKIP() << "degenerate query";

  // Oracle values for every output.
  std::map<NodeId, DenseMatrix> expected;
  for (NodeId out : q.dag.outputs()) {
    auto ref = ReferenceEval(q.dag, out, q.dense);
    ASSERT_TRUE(ref.ok()) << ref.status();
    expected[out] = *ref;
  }

  EngineOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kMatFast,
        SystemMode::kDistMe, SystemMode::kTensorFlow}) {
    options.system = mode;
    Engine engine(options);
    auto run = engine.Run(q.dag, q.blocked);
    ASSERT_TRUE(run.report.ok())
        << SystemModeName(mode) << " seed " << GetParam() << ": "
        << run.report.status;
    for (NodeId out : q.dag.outputs()) {
      ASSERT_TRUE(run.outputs.contains(out))
          << SystemModeName(mode) << " missing output v" << out;
      EXPECT_LE(DenseMatrix::MaxAbsDiff(
                    run.outputs.at(out).blocks().ToDense(), expected[out]),
                1e-7)
          << SystemModeName(mode) << " seed " << GetParam() << " output v"
          << out;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace fuseme
