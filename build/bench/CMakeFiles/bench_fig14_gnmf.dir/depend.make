# Empty dependencies file for bench_fig14_gnmf.
# This may be replaced when dependencies are built.
