// Broad equivalence sweeps: the CFO must agree with the single-node
// oracle across block sizes (including sizes that don't divide the
// dimensions), cuboid shapes, densities, and operators — the paper's four
// fusion templates each get a sweep.

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "matrix/generators.h"
#include "ops/fused_operator.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

ClusterConfig ClusterFor(std::int64_t block_size) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.tasks_per_node = 3;
  config.block_size = block_size;
  config.task_memory_budget = 1LL << 40;
  return config;
}

struct Bound {
  std::map<NodeId, BlockedMatrix> blocked;
  std::map<NodeId, DenseMatrix> dense;
  std::map<NodeId, DistributedMatrix> dist;

  FusedInputs Inputs() {
    FusedInputs out;
    for (auto& [id, m] : blocked) {
      dist.emplace(id,
                   DistributedMatrix::Create(m, PartitionScheme::kGrid, 6));
    }
    for (auto& [id, dm] : dist) out[id] = &dm;
    return out;
  }
};

// --- Cell template across block sizes -------------------------------------
class CellSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CellSweep, XMulUDivV) {
  const std::int64_t bs = GetParam();
  Dag dag;
  NodeId x = *dag.AddInput("X", 21, 19, 80);
  NodeId u = *dag.AddInput("U", 21, 19);
  NodeId v = *dag.AddInput("V", 21, 19);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, u);
  NodeId div = *dag.AddBinary(BinaryFn::kDiv, mul, v);
  Bound bound;
  bound.dense[x] = RandomSparse(21, 19, 0.2, 1, 1.0, 2.0).ToDense();
  bound.dense[u] = RandomDense(21, 19, 2, 0.5, 1.5);
  bound.dense[v] = RandomDense(21, 19, 3, 0.5, 1.5);
  for (auto& [id, d] : bound.dense) {
    bound.blocked[id] = BlockedMatrix::FromDense(d, bs);
  }
  auto expected = ReferenceEval(dag, div, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&dag, {mul, div}, div);
  StageContext ctx("cell", ClusterFor(bs));
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{3, 2, 1},
                                             bound.Inputs(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CellSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

// --- Row template (PCA) across block sizes --------------------------------
class RowSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RowSweep, PcaPattern) {
  const std::int64_t bs = GetParam();
  PcaPattern q = BuildPcaPattern(26, 14);
  Bound bound;
  bound.dense[q.X] = RandomDense(26, 14, 4, 0.1, 1.0);
  bound.dense[q.S] = RandomDense(14, 1, 5, 0.1, 1.0);
  for (auto& [id, d] : bound.dense) {
    bound.blocked[id] = BlockedMatrix::FromDense(d, bs);
  }
  auto expected = ReferenceEval(q.dag, q.mm2, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&q.dag, {q.mm1, q.t, q.mm2}, q.mm2);
  StageContext ctx("row", ClusterFor(bs));
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{1, 2, 1},
                                             bound.Inputs(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, RowSweep,
                         ::testing::Values(3, 5, 8, 16));

// --- Outer template across densities and cuboids ---------------------------
class OuterSweep
    : public ::testing::TestWithParam<std::tuple<double, int, int, int>> {};

TEST_P(OuterSweep, MaskedMatMul) {
  auto [density, p, q_, r] = GetParam();
  const std::int64_t bs = 8;
  // (U×V) * X — Fig. 2(c).
  Dag dag;
  NodeId x = *dag.AddInput(
      "X", 24, 20, static_cast<std::int64_t>(24 * 20 * density));
  NodeId u = *dag.AddInput("U", 24, 18);
  NodeId v = *dag.AddInput("V", 18, 20);
  NodeId mm = *dag.AddMatMul(u, v);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, mm, x);
  Bound bound;
  bound.dense[x] = RandomSparse(24, 20, density, 6, 1.0, 2.0).ToDense();
  bound.dense[u] = RandomDense(24, 18, 7, 0.5, 1.5);
  bound.dense[v] = RandomDense(18, 20, 8, 0.5, 1.5);
  bound.blocked[x] =
      BlockedMatrix::FromSparse(SparseMatrix::FromDense(bound.dense[x]), bs);
  bound.blocked[u] = BlockedMatrix::FromDense(bound.dense[u], bs);
  bound.blocked[v] = BlockedMatrix::FromDense(bound.dense[v], bs);
  auto expected = ReferenceEval(dag, mul, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&dag, {mm, mul}, mul);
  StageContext ctx("outer", ClusterFor(bs));
  auto result = CuboidFusedOperator::Execute(
      plan, Cuboid{p, q_, r}, bound.Inputs(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DensityAndCuboid, OuterSweep,
    ::testing::Values(std::make_tuple(0.02, 1, 1, 1),
                      std::make_tuple(0.02, 2, 2, 2),
                      std::make_tuple(0.1, 3, 2, 1),
                      std::make_tuple(0.1, 1, 1, 3),
                      std::make_tuple(0.6, 2, 2, 1),   // dense: no driver
                      std::make_tuple(0.6, 2, 1, 2)));

// --- Aggregation roots across cuboids and axes -----------------------------
class AggSweep
    : public ::testing::TestWithParam<std::tuple<AggAxis, int, int>> {};

TEST_P(AggSweep, SumOfMaskedProduct) {
  auto [axis, p, q_] = GetParam();
  const std::int64_t bs = 8;
  Dag dag;
  NodeId x = *dag.AddInput("X", 24, 20, 96);
  NodeId u = *dag.AddInput("U", 24, 6);
  NodeId v = *dag.AddInput("V", 6, 20);
  NodeId mm = *dag.AddMatMul(u, v);
  NodeId mul = *dag.AddBinary(BinaryFn::kMul, x, mm);
  NodeId agg = *dag.AddUnaryAgg(AggFn::kSum, axis, mul);
  Bound bound;
  bound.dense[x] = RandomSparse(24, 20, 0.2, 9, 1.0, 2.0).ToDense();
  bound.dense[u] = RandomDense(24, 6, 10, 0.5, 1.5);
  bound.dense[v] = RandomDense(6, 20, 11, 0.5, 1.5);
  bound.blocked[x] =
      BlockedMatrix::FromSparse(SparseMatrix::FromDense(bound.dense[x]), bs);
  bound.blocked[u] = BlockedMatrix::FromDense(bound.dense[u], bs);
  bound.blocked[v] = BlockedMatrix::FromDense(bound.dense[v], bs);
  auto expected = ReferenceEval(dag, agg, bound.dense);
  ASSERT_TRUE(expected.ok());

  PartialPlan plan(&dag, {mm, mul, agg}, agg);
  StageContext ctx("agg", ClusterFor(bs));
  auto result = CuboidFusedOperator::Execute(plan, Cuboid{p, q_, 1},
                                             bound.Inputs(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(DenseMatrix::MaxAbsDiff(result->blocks().ToDense(), *expected),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndCuboids, AggSweep,
    ::testing::Values(std::make_tuple(AggAxis::kAll, 1, 1),
                      std::make_tuple(AggAxis::kAll, 3, 2),
                      std::make_tuple(AggAxis::kRow, 2, 2),
                      std::make_tuple(AggAxis::kRow, 3, 1),
                      std::make_tuple(AggAxis::kCol, 2, 2),
                      std::make_tuple(AggAxis::kCol, 1, 3)));

}  // namespace
}  // namespace fuseme
