// Per-stage accounting: every distributed operator executes as one stage
// (matrix consolidation -> local operation -> matrix aggregation, §2.2) and
// records, per task, the bytes it received, the bytes it emitted into the
// aggregation shuffle, the FLOPs it executed, and its peak memory.
//
// Concurrency model (see DESIGN.md "Execution runtime"): physical
// operators run their independent work items on a thread pool.  Each work
// item charges a task-local LocalStageAccounting and folds it into the
// shared StageContext under a mutex when the item completes
// (StageContext::MergeTask).  Because the operators never release memory
// mid-stage, every per-task accumulator is a plain sum, so the merged
// totals are independent of item completion order — parallel stats are
// bitwise-identical to a serial run.

#ifndef FUSEME_RUNTIME_STAGE_H_
#define FUSEME_RUNTIME_STAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "runtime/cluster_config.h"
#include "runtime/fault_injector.h"

namespace fuseme {

class Tracer;           // telemetry/tracer.h; carried as an opaque pointer here
class MetricsRegistry;  // telemetry/metrics.h; same opaque-pointer convention
class EventJournal;     // telemetry/event_journal.h; same convention

/// Accumulators for one logical task within a stage.
struct TaskAccounting {
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t memory_used = 0;
  std::int64_t memory_peak = 0;
};

/// Aggregated result of a finished stage.
struct StageStats {
  std::string label;
  int num_tasks = 0;
  std::int64_t consolidation_bytes = 0;
  std::int64_t aggregation_bytes = 0;
  std::int64_t flops = 0;
  std::int64_t max_task_memory = 0;
  /// Modeled cluster seconds for this stage.  The Simulator computes it
  /// (EstimateStageSeconds + recovery overhead) and the engine writes it
  /// back on BOTH execution paths — analytic *and* real-mode runs carry a
  /// nonzero value for every stage that launched tasks.  Always modeled
  /// time from the deterministic accounting above, never host wall clock
  /// (wall time lives in StageTelemetry), so it is bitwise-identical
  /// across thread counts and prefetch depths.
  double elapsed_seconds = 0.0;

  std::int64_t total_bytes() const {
    return consolidation_bytes + aggregation_bytes;
  }
};

/// Wall-clock transfer/compute telemetry of one stage's fetch pipeline
/// (DESIGN.md section 14).  Host measurements — nondeterministic by
/// nature — so they live beside StageStats, never inside it: StageStats
/// must stay bitwise-identical across thread counts and prefetch depths.
struct StagePipeline {
  /// Block copies staged ahead of the consumer by prefetchers.
  std::int64_t prefetch_issued = 0;
  /// Staged copies consumed with the transfer already complete.
  std::int64_t prefetch_ready = 0;
  /// Staged copies the consumer stalled on (transfer still in flight).
  std::int64_t prefetch_waited = 0;
  /// Staged copies the consumer ran inline (pool had not started them).
  std::int64_t prefetch_stolen = 0;
  /// Staged copies dropped unconsumed (cancellation / retry replay).
  std::int64_t prefetch_cancelled = 0;
  /// Blocks fetched directly while a pipeline was active (enumeration
  /// missed them); always 0 when prefetch_depth = 0 disables pipelines.
  std::int64_t prefetch_misses = 0;
  /// Consumer-thread seconds spent acquiring input blocks: direct copies,
  /// stalls on in-flight transfers, and inline steals.
  double fetch_wait_seconds = 0.0;
  /// Consumer-thread seconds spent computing between fetches.
  double compute_busy_seconds = 0.0;

  /// compute/(compute + fetch-wait) in [0, 1]; 1.0 when idle (nothing
  /// measured) or when every transfer hid behind compute.
  double OverlapEfficiency() const {
    const double total = fetch_wait_seconds + compute_busy_seconds;
    return total > 0.0 ? compute_busy_seconds / total : 1.0;
  }
};

/// Charging interface shared by the stage-wide context and the per-work-item
/// local accumulator, so operator plumbing (fetchers, mergers) is agnostic
/// to where a charge lands.
class StageAccounting {
 public:
  virtual ~StageAccounting() = default;

  virtual const ClusterConfig& config() const = 0;

  virtual void ChargeConsolidation(int task, std::int64_t bytes) = 0;
  virtual void ChargeAggregation(int task, std::int64_t bytes) = 0;
  virtual void ChargeFlops(int task, std::int64_t flops) = 0;

  /// Charges `bytes` of live memory on `task`; fails with OutOfMemory when
  /// the running total would exceed the task budget.
  virtual Status ChargeMemory(int task, std::int64_t bytes) = 0;
  /// Releases previously charged memory (peak is retained).
  virtual void ReleaseMemory(int task, std::int64_t bytes) = 0;
};

/// Mutable accounting context handed to a physical operator while it runs.
/// Task ids are logical (0..num_tasks-1 for the stage); the context grows on
/// demand.  Memory charges are validated against the per-task budget so an
/// operator that over-replicates reports OutOfMemory exactly like the
/// paper's failed BFO/RFO runs.
///
/// Every accounting method takes the context mutex, so the context is
/// thread-safe as a whole — the accumulators (tasks_, recovery_,
/// pipeline_) are GUARDED_BY(merge_mu_) and the Clang thread-safety
/// analysis proves no path touches them unlocked.  Concurrent work items
/// still charge a LocalStageAccounting and fold it in via MergeTask:
/// that keeps the hot per-block charges task-local (no contention) and
/// the merged totals order-independent; the direct Charge* path is the
/// serial/meta-mode convenience, paying one uncontended lock per charge.
class StageContext : public StageAccounting {
 public:
  StageContext(std::string label, const ClusterConfig& config)
      : label_(std::move(label)), config_(config) {}

  const ClusterConfig& config() const override { return config_; }
  const std::string& label() const { return label_; }

  /// Optional span sink for this stage's work items (telemetry); null
  /// disables tracing.  The context does not own the tracer.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Optional metrics registry for this stage's work items; null disables
  /// instrumentation (pointer test only).  Not owned.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

  /// Optional flight-recorder sink for this stage's rare events
  /// (prefetch stalls); null disables emission.  Not owned.  The
  /// ordered-commit path never emits — journal writes stay off the
  /// determinism-critical locks (DESIGN.md section 17).
  void set_journal(EventJournal* journal) { journal_ = journal; }
  EventJournal* journal() const { return journal_; }

  /// Wires fault injection and the retry budget for this stage's work
  /// items (DESIGN.md section 13).  `injector` may be null (no injection;
  /// the retry loop then never fires) and is not owned; `stage_ordinal`
  /// is the stage's 0-based position in the run's execution order — the
  /// injector keys its schedule on it.
  void ConfigureRecovery(const FaultInjector* injector, int stage_ordinal,
                         const RetryPolicy& retry);
  const FaultInjector* fault_injector() const { return injector_; }
  int stage_ordinal() const { return stage_ordinal_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Folds one work item's recovery outcome into the stage record under
  /// the context mutex (safe from concurrent work items): `attempts` runs
  /// of the item, `injected_failures` of them killed by the schedule,
  /// `backoff_seconds` of modeled backoff, and whether the item ran out
  /// of attempts.
  void RecordItemRecovery(int attempts, int injected_failures,
                          double backoff_seconds, bool exhausted);

  /// Snapshot of the stage's recovery accounting.
  StageRecovery recovery() const;

  /// Folds one work item's fetch-pipeline telemetry into the stage record
  /// under the context mutex (safe from concurrent work items).
  void RecordItemPipeline(const StagePipeline& item);

  /// Snapshot of the stage's fetch-pipeline telemetry.
  StagePipeline pipeline() const;

  void ChargeConsolidation(int task, std::int64_t bytes) override;
  void ChargeAggregation(int task, std::int64_t bytes) override;
  void ChargeFlops(int task, std::int64_t flops) override;
  Status ChargeMemory(int task, std::int64_t bytes) override;
  void ReleaseMemory(int task, std::int64_t bytes) override;

  /// Folds a completed work item's accounting for `task` into this context
  /// under the context mutex, re-validating the memory budget on the merged
  /// totals.  Safe to call from concurrent work items.
  Status MergeTask(int task, const TaskAccounting& local);

  /// Effective thread count for executing this stage's work items:
  /// config().local_threads, with 0 resolved to the process-wide default.
  int Parallelism() const;

  int num_tasks() const;
  /// Copy of the accumulators for `task_id` (zeroes when out of range).
  /// By value: a reference into the guarded vector would escape the lock.
  TaskAccounting task(int task_id) const;

  /// Rolls the per-task accumulators into a StageStats (elapsed not set).
  StageStats Finalize() const;

 private:
  TaskAccounting& GrowTo(int task) REQUIRES(merge_mu_);

  // label_/config_ are set at construction and the hook pointers before
  // the stage launches work items; all are read-only while tasks run, so
  // only the accumulators below need the mutex.
  std::string label_;
  ClusterConfig config_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  EventJournal* journal_ = nullptr;
  const FaultInjector* injector_ = nullptr;
  int stage_ordinal_ = 0;
  RetryPolicy retry_{.max_attempts = 1};
  mutable Mutex merge_mu_;
  std::vector<TaskAccounting> tasks_ GUARDED_BY(merge_mu_);
  StageRecovery recovery_ GUARDED_BY(merge_mu_);
  StagePipeline pipeline_ GUARDED_BY(merge_mu_);
};

/// Task-local accounting for one work item of a parallel operator.  Not
/// thread-safe (each work item owns one); Flush() folds every touched task
/// into the parent StageContext via MergeTask.  The per-task memory budget
/// is enforced locally too, so an over-replicating item fails fast with the
/// same OutOfMemory message a serial run would produce.
class LocalStageAccounting final : public StageAccounting {
 public:
  explicit LocalStageAccounting(StageContext* parent) : parent_(parent) {}

  const ClusterConfig& config() const override { return parent_->config(); }

  void ChargeConsolidation(int task, std::int64_t bytes) override;
  void ChargeAggregation(int task, std::int64_t bytes) override;
  void ChargeFlops(int task, std::int64_t flops) override;
  Status ChargeMemory(int task, std::int64_t bytes) override;
  void ReleaseMemory(int task, std::int64_t bytes) override;

  /// Merges every charged task into the parent context (thread-safe) and
  /// clears the local state.  Returns the first merge error, if any.
  Status Flush();

 private:
  StageContext* parent_;
  std::map<int, TaskAccounting> tasks_;
};

}  // namespace fuseme

#endif  // FUSEME_RUNTIME_STAGE_H_
