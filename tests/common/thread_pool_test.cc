#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fuseme {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(3);
  auto fut = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::thread::id caller = std::this_thread::get_id();
  auto fut = pool.Submit([&] { return std::this_thread::get_id(); });
  EXPECT_EQ(fut.get(), caller);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(3, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, 8, [&](std::int64_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, MaxParallelismOneIsSerialInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronized on purpose: must be serial
  pool.ParallelFor(0, 100, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  }, /*max_parallelism=*/1);
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexedException) {
  ThreadPool pool(4);
  // Run many times: which failing indices actually execute is scheduling
  // dependent (the abort flag skips unclaimed work), but the rethrown
  // exception must be the lowest index among those that threw — never a
  // tear of the two messages, never a silent success.
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelFor(0, 1000, [&](std::int64_t i) {
        if (i == 3 || i == 700) {
          throw std::runtime_error("fail at " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_TRUE(what == "fail at 3" || what == "fail at 700") << what;
    }
  }
}

TEST(ThreadPoolTest, SerialParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  int last_seen = -1;
  try {
    pool.ParallelFor(0, 100, [&](std::int64_t i) {
      last_seen = static_cast<int>(i);
      if (i == 10) throw std::runtime_error("ten");
    }, /*max_parallelism=*/1);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "ten");
  }
  // Serial mode stops at the throwing index.
  EXPECT_EQ(last_seen, 10);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorker) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, [&](std::int64_t) {
    // From a pool thread (or the caller), the inner loop must complete
    // without deadlocking even though every worker may be busy with the
    // outer loop.
    int inner = 0;
    pool.ParallelFor(0, 16, [&](std::int64_t) { ++inner; });
    EXPECT_EQ(inner, 16);
    total.fetch_add(inner);
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, InWorkerIsTrueOnlyOnPoolThreads) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorker());
  auto fut = pool.Submit([&] { return pool.InWorker(); });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool must run all 64 tasks before joining.
  EXPECT_EQ(ran.load(), 64);
}

TEST(GlobalThreadPoolTest, ResizeControlsParallelism) {
  const int before = GlobalParallelism();
  SetGlobalThreadPoolThreads(1);
  EXPECT_EQ(GlobalParallelism(), 1);
  EXPECT_EQ(GlobalThreadPool()->num_threads(), 0);
  SetGlobalThreadPoolThreads(4);
  EXPECT_EQ(GlobalParallelism(), 4);
  EXPECT_EQ(GlobalThreadPool()->num_threads(), 3);
  std::atomic<int> count{0};
  GlobalThreadPool()->ParallelFor(0, 100,
                                  [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  SetGlobalThreadPoolThreads(before);
}

}  // namespace
}  // namespace fuseme
