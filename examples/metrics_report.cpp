// Metrics report: run a named workload (or an ad-hoc expression) with a
// MetricsRegistry attached to the whole pipeline, then print the per-stage
// run profile and export the registry in both formats.
//
//   $ ./build/examples/metrics_report [workload] [--analytic] [--check]
//                                     [--serve=<port>] [--validate-prom]
//
// Workloads: gnmf (default), nmf, als, kl, pca, or any expression over the
// symbols X (sparse n x n), U (n x k), V (n x k), S (n x 1), e.g.
//
//   $ ./build/examples/metrics_report 'sum((X != 0) * (X - U %*% t(V))^2)'
//
// Output:
//   * the per-stage profile table (time %, shuffle bytes, FLOPs, threads,
//     predicted-vs-actual verdict) on stdout,
//   * metrics_report.prom — Prometheus text exposition,
//   * metrics_report.json — the RunReport (with the embedded snapshot).
//
// --check additionally validates the Prometheus output with the format
// checker, round-trips the JSON snapshot through the parser, and runs the
// registry consistency invariants; any failure exits non-zero (this is the
// scripts/check.sh smoke step).
//
// --serve=<port> turns on the live observability plane (flight recorder,
// sampler, HTTP exporter; port 0 picks an ephemeral port, printed as
// "serving on port N").  After the run the process keeps serving
// /metrics, /healthz, /varz, /flightz and /seriesz until stdin reaches
// EOF — scripts/run_exporter_smoke.sh drives this mode with curl.
//
// --validate-prom ignores every other flag: it reads Prometheus text
// exposition from stdin, runs the format checker, and exits non-zero on
// a violation (the smoke script pipes curl output through it).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "fuseme.h"

using namespace fuseme;  // NOLINT — example brevity

namespace {

constexpr std::int64_t kN = 160, kK = 32, kBlock = 16;

/// Builds the requested workload's DAG (heap-allocated so the handles the
/// builders return can be dropped uniformly).
Result<std::unique_ptr<Dag>> BuildWorkload(const std::string& name,
                                           MetricsRegistry* metrics) {
  if (name == "gnmf") {
    GnmfQuery q = BuildGnmf(kN, kN, kK, kN * kN / 10);
    return std::make_unique<Dag>(std::move(q.dag));
  }
  if (name == "nmf") {
    NmfPattern q = BuildNmfPattern(kN, kN, kK, kN * kN / 10);
    return std::make_unique<Dag>(std::move(q.dag));
  }
  if (name == "als") {
    AlsLossQuery q = BuildAlsLoss(kN, kN, kK, kN * kN / 10);
    return std::make_unique<Dag>(std::move(q.dag));
  }
  if (name == "kl") {
    KlLossQuery q = BuildKlLoss(kN, kN, kK, kN * kN / 10);
    return std::make_unique<Dag>(std::move(q.dag));
  }
  if (name == "pca") {
    PcaPattern q = BuildPcaPattern(kN, kN);
    return std::make_unique<Dag>(std::move(q.dag));
  }
  // Anything else is an expression over the documented symbol table.
  std::map<std::string, MatrixShape> symbols;
  symbols["X"] = {kN, kN, kN * kN / 10};
  symbols["U"] = {kN, kK, -1};
  symbols["V"] = {kN, kK, -1};
  symbols["S"] = {kN, 1, -1};
  FUSEME_ASSIGN_OR_RETURN(ParsedQuery parsed,
                          ParseQuery(name, symbols, metrics));
  return std::move(parsed.dag);
}

/// Random real inputs for every matrix leaf, shaped by the DAG metadata
/// (a leaf whose nnz covers under half its cells becomes sparse).
std::map<NodeId, BlockedMatrix> MakeInputs(const Dag& dag) {
  std::map<NodeId, BlockedMatrix> inputs;
  for (NodeId id = 0; id < dag.num_nodes(); ++id) {
    const Node& n = dag.node(id);
    if (n.kind != OpKind::kInput || !n.is_matrix()) continue;
    const double cells = static_cast<double>(n.rows * n.cols);
    const double density = cells > 0 ? static_cast<double>(n.nnz) / cells : 1;
    const std::uint64_t seed = 7 + static_cast<std::uint64_t>(id);
    inputs.emplace(id, density < 0.5
                           ? RandomSparseBlocked(n.rows, n.cols, density,
                                                 kBlock, seed, 1.0, 5.0)
                           : RandomDenseBlocked(n.rows, n.cols, kBlock, seed,
                                                0.5, 1.5));
  }
  return inputs;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// --validate-prom: stdin -> format checker -> exit status.  Kept free of
/// any engine machinery so shell pipelines can use it as a filter.
int ValidatePromFromStdin() {
  std::ostringstream text;
  text << std::cin.rdbuf();
  if (Status s = ValidatePrometheusText(text.str()); !s.ok()) {
    std::fprintf(stderr, "prometheus validation FAILED: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("prometheus format ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "gnmf";
  bool check = false;
  bool analytic = false;
  int serve_port = -1;  // -1 = no exporter; >= 0 enables --serve mode.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--analytic") == 0) {
      analytic = true;
    } else if (std::strcmp(argv[i], "--validate-prom") == 0) {
      return ValidatePromFromStdin();
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_port = std::atoi(argv[i] + 8);
    } else {
      workload = argv[i];
    }
  }

  MetricsRegistry registry;
  AttachLogMetrics(&registry);
  Tracer tracer;
  tracer.SetProcessName("metrics_report");

  Result<std::unique_ptr<Dag>> dag = BuildWorkload(workload, &registry);
  if (!dag.ok()) {
    std::fprintf(stderr, "error: %s\n", dag.status().ToString().c_str());
    AttachLogMetrics(nullptr);
    return 1;
  }

  EngineOptions options;
  options.system = SystemMode::kFuseMe;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBlock;
  options.analytic = analytic;
  options.tracer = &tracer;
  options.metrics = &registry;
  if (serve_port >= 0) {
    options.observability.journal_capacity = 1024;
    options.observability.sample_period_seconds = 0.05;
    options.observability.exporter_port = serve_port;
  }
  Result<Engine> created = Engine::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
    AttachLogMetrics(nullptr);
    return 1;
  }
  Engine& engine = *created;
  if (serve_port >= 0) {
    // The exact line the smoke script greps for; flush so a piped reader
    // sees it before the run finishes.
    std::printf("serving on port %d\n", engine.exporter_port());
    std::fflush(stdout);
  }

  std::printf("workload: %s (%s mode)\n", workload.c_str(),
              analytic ? "analytic" : "real");
  const auto begin = std::chrono::steady_clock::now();
  Result<CompiledPlan> plan = engine.Compile(**dag);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    AttachLogMetrics(nullptr);
    return 1;
  }
  Engine::RunResult run = engine.Execute(*plan, MakeInputs(**dag));
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  std::printf("execution: %s (host %.3fs)\n\n",
              run.report.Summary().c_str(), host_seconds);

  MetricsSnapshot snapshot = registry.Snapshot();
  AttachLogMetrics(nullptr);

  const RunReport report =
      BuildRunReport(run.report.status, run.report.elapsed_seconds,
                     run.report.telemetry, std::move(snapshot));
  std::printf("%s\n", report.FormatTable().c_str());

  const std::string prom = report.metrics.ToPrometheusText();
  if (!WriteFile("metrics_report.prom", prom)) return 1;
  if (!WriteFile("metrics_report.json", report.ToJson())) return 1;
  std::printf("wrote metrics_report.prom (%zu samples) and "
              "metrics_report.json\n",
              report.metrics.samples.size());

  if (check) {
    if (Status s = ValidatePrometheusText(prom); !s.ok()) {
      std::fprintf(stderr, "prometheus validation FAILED: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    Result<MetricsSnapshot> reparsed =
        ParseMetricsJson(report.metrics.ToJson());
    if (!reparsed.ok() || !(*reparsed == report.metrics)) {
      std::fprintf(stderr, "JSON snapshot round-trip FAILED: %s\n",
                   reparsed.ok() ? "snapshot mismatch"
                                 : reparsed.status().ToString().c_str());
      return 1;
    }
    if (Status s = CheckMetricsConsistency(report.metrics); !s.ok()) {
      std::fprintf(stderr, "metrics consistency FAILED: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("checks: prometheus format, JSON round-trip, and registry "
                "consistency all passed\n");
  }
  if (serve_port >= 0) {
    std::printf("run complete; serving until stdin closes\n");
    std::fflush(stdout);
    // Hold the exporter (and journal/sampler behind it) up for curl: the
    // driver keeps our stdin open on a pipe and closes it to stop us.
    std::string line;
    while (std::getline(std::cin, line)) {
    }
  }
  return run.report.ok() ? 0 : 1;
}
