# Empty compiler generated dependencies file for kl_loss_test.
# This may be replaced when dependencies are built.
