// Negative fixture: an inline "fuseme.x.y" event id that bypasses the
// catalogue.  fuseme_lint must flag it (lint-event-literal) while
// accepting the catalogued id used right next to it.  The "fuseme.h"
// include below must NOT trip the rule: one dotted segment is not an
// event id.

#include "fuseme.h"
#include "telemetry/event_names.h"

namespace fixture {

const char* Catalogued() { return fuseme::event_names::kDemo; }

const char* Rogue() { return "fuseme.rogue.event"; }

}  // namespace fixture
