#include "telemetry/run_report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/json_util.h"
#include "common/string_util.h"

namespace fuseme {

const char* PredictionVerdictName(PredictionVerdict verdict) {
  switch (verdict) {
    case PredictionVerdict::kNone:
      return "none";
    case PredictionVerdict::kWithin2x:
      return "ok";
    case PredictionVerdict::kOff:
      return "off>2x";
  }
  return "unknown";
}

RunReport BuildRunReport(const Status& status, double elapsed_seconds,
                         const std::vector<StageTelemetry>& stages,
                         MetricsSnapshot metrics) {
  RunReport report;
  report.status = status;
  report.elapsed_seconds = elapsed_seconds;
  report.metrics = std::move(metrics);

  double total_wall = 0;
  for (const StageTelemetry& stage : stages) total_wall += stage.wall_seconds;

  for (const StageTelemetry& stage : stages) {
    StageProfile row;
    row.label = stage.label;
    row.wall_seconds = stage.wall_seconds;
    row.time_fraction = total_wall > 0 ? stage.wall_seconds / total_wall : 0;
    row.consolidation_bytes = stage.actual.consolidation_bytes;
    row.aggregation_bytes = stage.actual.aggregation_bytes;
    row.flops = stage.actual.flops;
    row.max_task_memory = stage.actual.max_task_memory;
    row.num_tasks = stage.actual.num_tasks;
    row.threads = stage.threads;
    if (stage.predicted.present) {
      row.operator_kind = stage.predicted.operator_kind;
      const PredictionReport prediction = BuildPredictionReport({stage});
      row.prediction_error_log2 = prediction.max_abs_log2;
      row.prediction = prediction.WithinFactor(2.0)
                           ? PredictionVerdict::kWithin2x
                           : PredictionVerdict::kOff;
    }
    report.stages.push_back(std::move(row));
  }
  return report;
}

std::int64_t RunReport::total_shuffle_bytes() const {
  std::int64_t total = 0;
  for (const StageProfile& row : stages) {
    total += row.consolidation_bytes + row.aggregation_bytes;
  }
  return total;
}

std::int64_t RunReport::total_flops() const {
  std::int64_t total = 0;
  for (const StageProfile& row : stages) total += row.flops;
  return total;
}

std::string RunReport::FormatTable() const {
  std::ostringstream out;
  out << "run status: " << status.ToString()
      << "   wall: " << HumanSeconds(elapsed_seconds) << "\n\n";

  std::size_t label_width = 5;
  for (const StageProfile& row : stages) {
    label_width = std::max(label_width, row.label.size());
  }
  out << std::left << std::setw(static_cast<int>(label_width)) << "stage"
      << std::right << std::setw(6) << "op" << std::setw(12) << "wall"
      << std::setw(7) << "time%" << std::setw(12) << "consol" << std::setw(12)
      << "agg" << std::setw(16) << "flops" << std::setw(7) << "tasks"
      << std::setw(5) << "thr" << std::setw(12) << "mem/task" << std::setw(8)
      << "pred" << '\n';
  for (const StageProfile& row : stages) {
    std::ostringstream pct;
    pct << std::fixed << std::setprecision(1) << 100.0 * row.time_fraction;
    out << std::left << std::setw(static_cast<int>(label_width)) << row.label
        << std::right << std::setw(6)
        << (row.operator_kind.empty() ? "-" : row.operator_kind)
        << std::setw(12) << HumanSeconds(row.wall_seconds) << std::setw(7)
        << pct.str() << std::setw(12)
        << HumanBytes(static_cast<double>(row.consolidation_bytes))
        << std::setw(12)
        << HumanBytes(static_cast<double>(row.aggregation_bytes))
        << std::setw(16) << WithThousands(row.flops) << std::setw(7)
        << row.num_tasks << std::setw(5) << row.threads << std::setw(12)
        << HumanBytes(static_cast<double>(row.max_task_memory)) << std::setw(8)
        << PredictionVerdictName(row.prediction) << '\n';
  }
  out << "\ntotals: shuffle "
      << HumanBytes(static_cast<double>(total_shuffle_bytes())) << ", flops "
      << WithThousands(total_flops()) << ", stages " << stages.size() << '\n';
  return out.str();
}

std::string RunReport::ToJson() const {
  std::ostringstream out;
  out << "{\"status\": \"" << JsonEscape(status.ToString())
      << "\", \"elapsed_seconds\": " << elapsed_seconds << ", \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& row = stages[i];
    out << (i == 0 ? "" : ",") << "\n  {\"label\": \"" << JsonEscape(row.label)
        << "\", \"operator\": \"" << JsonEscape(row.operator_kind)
        << "\", \"wall_seconds\": " << row.wall_seconds
        << ", \"time_fraction\": " << row.time_fraction
        << ", \"consolidation_bytes\": " << row.consolidation_bytes
        << ", \"aggregation_bytes\": " << row.aggregation_bytes
        << ", \"flops\": " << row.flops
        << ", \"max_task_memory\": " << row.max_task_memory
        << ", \"tasks\": " << row.num_tasks << ", \"threads\": " << row.threads
        << ", \"prediction\": \"" << PredictionVerdictName(row.prediction)
        << "\", \"prediction_error_log2\": " << row.prediction_error_log2
        << '}';
  }
  // The snapshot serializer already emits a JSON object; embed it raw.
  std::string snapshot_json = metrics.ToJson();
  while (!snapshot_json.empty() && snapshot_json.back() == '\n') {
    snapshot_json.pop_back();
  }
  out << "\n], \"metrics_snapshot\": " << snapshot_json << "}\n";
  return out.str();
}

}  // namespace fuseme
