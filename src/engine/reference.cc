#include "engine/reference.h"

#include <vector>

#include "matrix/block_ops.h"

namespace fuseme {

namespace {

Result<Block> EvalNode(const Dag& dag, NodeId id,
                       const std::map<NodeId, DenseMatrix>& inputs,
                       std::map<NodeId, Block>* memo) {
  if (auto it = memo->find(id); it != memo->end()) return it->second;
  const Node& n = dag.node(id);
  Result<Block> result = Status::Internal("unset");
  switch (n.kind) {
    case OpKind::kInput: {
      auto it = inputs.find(id);
      if (it == inputs.end()) {
        return Status::InvalidArgument("no value bound to leaf '" + n.name +
                                       "'");
      }
      result = Block::FromDense(it->second);
      break;
    }
    case OpKind::kScalar:
      result = Block::Constant(1, 1, n.scalar);
      break;
    case OpKind::kUnary: {
      FUSEME_ASSIGN_OR_RETURN(Block in, EvalNode(dag, n.inputs[0], inputs,
                                                 memo));
      result = Unary(n.unary_fn, in);
      break;
    }
    case OpKind::kBinary: {
      const Node& a = dag.node(n.inputs[0]);
      const Node& b = dag.node(n.inputs[1]);
      if (a.kind == OpKind::kScalar) {
        FUSEME_ASSIGN_OR_RETURN(Block rhs, EvalNode(dag, n.inputs[1], inputs,
                                                    memo));
        result = EwiseScalar(n.binary_fn, rhs, a.scalar,
                             /*scalar_left=*/true);
      } else if (b.kind == OpKind::kScalar) {
        FUSEME_ASSIGN_OR_RETURN(Block lhs, EvalNode(dag, n.inputs[0], inputs,
                                                    memo));
        result = EwiseScalar(n.binary_fn, lhs, b.scalar,
                             /*scalar_left=*/false);
      } else {
        FUSEME_ASSIGN_OR_RETURN(Block lhs, EvalNode(dag, n.inputs[0], inputs,
                                                    memo));
        FUSEME_ASSIGN_OR_RETURN(Block rhs, EvalNode(dag, n.inputs[1], inputs,
                                                    memo));
        result = EwiseBinary(n.binary_fn, lhs, rhs);
      }
      break;
    }
    case OpKind::kMatMul: {
      FUSEME_ASSIGN_OR_RETURN(Block lhs, EvalNode(dag, n.inputs[0], inputs,
                                                  memo));
      FUSEME_ASSIGN_OR_RETURN(Block rhs, EvalNode(dag, n.inputs[1], inputs,
                                                  memo));
      result = MatMul(lhs, rhs);
      break;
    }
    case OpKind::kUnaryAgg: {
      FUSEME_ASSIGN_OR_RETURN(Block in, EvalNode(dag, n.inputs[0], inputs,
                                                 memo));
      switch (n.agg_axis) {
        case AggAxis::kAll:
          result = FullAgg(n.agg_fn, in);
          break;
        case AggAxis::kRow:
          result = RowAgg(n.agg_fn, in);
          break;
        case AggAxis::kCol:
          result = ColAgg(n.agg_fn, in);
          break;
      }
      break;
    }
    case OpKind::kTranspose: {
      FUSEME_ASSIGN_OR_RETURN(Block in, EvalNode(dag, n.inputs[0], inputs,
                                                 memo));
      result = Transpose(in);
      break;
    }
  }
  if (result.ok()) memo->emplace(id, *result);
  return result;
}

}  // namespace

Result<DenseMatrix> ReferenceEval(
    const Dag& dag, NodeId target,
    const std::map<NodeId, DenseMatrix>& inputs) {
  std::map<NodeId, Block> memo;
  FUSEME_ASSIGN_OR_RETURN(Block out, EvalNode(dag, target, inputs, &memo));
  return out.ToDense();
}

}  // namespace fuseme
