// KernelEvaluator: executes one fused "kernel" (paper Fig. 8) — the
// computation of one output block of a partial fusion plan — on local
// blocks, without materializing any cross-task intermediate.
//
// The evaluator interprets the plan's sub-DAG bottom-up at block
// granularity.  Three features make it the engine of every distributed
// fused operator:
//
//  * k-restriction: the main matrix multiplication can be confined to a
//    block range [k_begin, k_end), producing the partial result a cuboid
//    D_{p,q,r} owns (§2.3);
//  * value injection: a pre-computed block can be bound to a node, which is
//    how the R>1 two-phase execution feeds aggregated matmul partials back
//    into the O-space evaluation;
//  * sparse-driver element path: when a sparse mask gates the matmul
//    (Fig. 1(a)), the evaluator computes dot products only at the mask's
//    non-zero positions instead of materializing the dense product.
//
// External input blocks are pulled through a caller-provided fetcher; the
// caller (the distributed operator) charges communication and memory there.

#ifndef FUSEME_OPS_EVALUATOR_H_
#define FUSEME_OPS_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "fusion/partial_plan.h"
#include "fusion/sparsity_analysis.h"
#include "matrix/block.h"

namespace fuseme {

/// Pulls block (bi, bj) of external node `id` into the current task.
using BlockFetcher =
    std::function<Result<Block>(NodeId id, std::int64_t bi, std::int64_t bj)>;

/// Block-grid geometry of one node under a fixed block size.
struct NodeGrid {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t block_size = 1;

  std::int64_t grid_rows() const {
    return rows == 0 ? 0 : (rows + block_size - 1) / block_size;
  }
  std::int64_t grid_cols() const {
    return cols == 0 ? 0 : (cols + block_size - 1) / block_size;
  }
  std::int64_t TileRows(std::int64_t bi) const {
    return std::min(block_size, rows - bi * block_size);
  }
  std::int64_t TileCols(std::int64_t bj) const {
    return std::min(block_size, cols - bj * block_size);
  }
};

class KernelEvaluator {
 public:
  /// (node, bi, bj) — identifies one block of one node.
  using Key = std::tuple<NodeId, std::int64_t, std::int64_t>;

  KernelEvaluator(const PartialPlan* plan, std::int64_t block_size,
                  BlockFetcher fetcher);

  /// Confines matmul node `mm` to inner block range [k_begin, k_end).
  void RestrictK(NodeId mm, std::int64_t k_begin, std::int64_t k_end);

  /// Binds a precomputed block to (node, bi, bj); Eval returns it directly.
  void Inject(NodeId node, std::int64_t bi, std::int64_t bj, Block block);

  /// Enables the sparse-driver element path for `driver`.
  void SetSparseDriver(const SparseDriver& driver) { driver_ = driver; }

  /// Evaluates block (bi, bj) of `node` (a plan member or input).
  Result<Block> Eval(NodeId node, std::int64_t bi, std::int64_t bj);

  /// Evaluates block (bi, bj) of `value_node` only at the non-zero
  /// positions of the same block of `mask_node` (an external sparse
  /// input), returning a sparse block.  Used for the R>1 first phase: the
  /// masked *partial* matmul under the current k-restriction.
  Result<Block> EvalMaskedNode(NodeId value_node, NodeId mask_node,
                               std::int64_t bi, std::int64_t bj);

  /// Geometry of `node` under the evaluator's block size.
  NodeGrid Grid(NodeId node) const;

  /// An external block a future Eval(node, bi, bj) may pull through the
  /// fetcher.
  struct FetchTarget {
    NodeId node = kInvalidNode;
    std::int64_t bi = 0;
    std::int64_t bj = 0;
  };

  /// Appends to `out` the external input blocks that evaluating block
  /// (bi, bj) of `node` can fetch, honoring the current k-restriction and
  /// skipping injected and already-memoized sub-blocks.  A conservative
  /// superset: the sparse-driver element path and zero-mask shortcuts may
  /// visit fewer blocks at runtime, never more.  `seen` dedups across
  /// calls (one set per pipeline), so each block is listed at most once.
  /// Pure lookahead for the prefetch pipeline — performs no evaluation,
  /// touches no caches, charges nothing.
  void EnumerateFetches(NodeId node, std::int64_t bi, std::int64_t bj,
                        std::set<Key>* seen,
                        std::vector<FetchTarget>* out) const;

  /// FLOPs executed since construction / the last ResetFlops.
  std::int64_t flops() const { return flops_; }
  void ResetFlops() { flops_ = 0; }

  /// Matmul-kernel FLOPs — the GEMM subset of flops().
  std::int64_t gemm_flops() const { return gemm_flops_; }
  /// Block storage-format conversions the evaluator performed (a matmul
  /// result densifying below the storage threshold, a sparse-driver result
  /// densifying above it).
  std::int64_t sparse_to_dense_conversions() const { return sparse_to_dense_; }
  std::int64_t dense_to_sparse_conversions() const { return dense_to_sparse_; }

  /// Drops memoized blocks (injected values are kept).
  void ClearCache();

 private:
  Result<Block> EvalUncached(NodeId node, std::int64_t bi, std::int64_t bj);
  Result<Block> EvalMaskedMul(const Node& n, std::int64_t bi,
                              std::int64_t bj);
  /// SDDMM block fast path: when `node` is a plan-member matmul over two
  /// *external* inputs, computes its value at every stored position of
  /// `mask` (a sparse block) with blockwise dot kernels instead of one
  /// EvalElement recursion per non-zero.  On success fills `vals` (CSR
  /// order of mask, size nnz), charges the same FLOPs the element path
  /// would, and returns true; returns false (charging nothing) when the
  /// fast path does not apply and the caller must fall back.
  Result<bool> TrySddmm(NodeId node, const Block& mask, std::int64_t bi,
                        std::int64_t bj, std::vector<double>* vals);
  /// Element (gi, gj) — global coordinates — of `node`'s value.
  Result<double> EvalElement(NodeId node, std::int64_t gi, std::int64_t gj);

  const PartialPlan* plan_;
  std::int64_t block_size_;
  BlockFetcher fetcher_;
  SparseDriver driver_;

  NodeId restricted_mm_ = kInvalidNode;
  std::int64_t k_begin_ = 0;
  std::int64_t k_end_ = 0;

  std::map<Key, Block> cache_;
  std::map<Key, Block> injected_;
  std::int64_t flops_ = 0;
  std::int64_t gemm_flops_ = 0;
  std::int64_t sparse_to_dense_ = 0;
  std::int64_t dense_to_sparse_ = 0;
};

}  // namespace fuseme

#endif  // FUSEME_OPS_EVALUATOR_H_
