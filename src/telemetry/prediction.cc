#include "telemetry/prediction.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace fuseme {

namespace {

double Ratio(double actual, double predicted, double floor) {
  return std::max(actual, floor) / std::max(predicted, floor);
}

std::string Fixed(double v, const char* fmt = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string HumanFlops(double flops) {
  char buf[32];
  if (flops >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2f TFLOP", flops / 1e12);
  } else if (flops >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GFLOP", flops / 1e9);
  } else if (flops >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MFLOP", flops / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f FLOP", flops);
  }
  return buf;
}

}  // namespace

double StagePredictionError::MaxAbsLog2() const {
  double worst = 0;
  for (double r : {net_ratio, agg_ratio, flops_ratio, mem_ratio}) {
    if (r <= 0) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, std::abs(std::log2(r)));
  }
  return worst;
}

bool PredictionReport::WithinFactor(double factor) const {
  return max_abs_log2 <= std::log2(factor);
}

PredictionReport BuildPredictionReport(
    const std::vector<StageTelemetry>& stages) {
  PredictionReport report;
  for (const StageTelemetry& t : stages) {
    if (!t.predicted.present) continue;
    StagePredictionError err;
    err.label = t.label;
    err.net_ratio =
        Ratio(static_cast<double>(t.actual.consolidation_bytes),
              t.predicted.net_bytes, kRatioFloorBytes);
    err.agg_ratio = Ratio(static_cast<double>(t.actual.aggregation_bytes),
                          t.predicted.agg_bytes, kRatioFloorBytes);
    err.flops_ratio = Ratio(static_cast<double>(t.actual.flops),
                            t.predicted.flops, kRatioFloorFlops);
    err.mem_ratio = Ratio(static_cast<double>(t.actual.max_task_memory),
                          t.predicted.mem_per_task, kRatioFloorBytes);
    report.max_abs_log2 = std::max(report.max_abs_log2, err.MaxAbsLog2());
    report.stages.push_back(std::move(err));
  }
  return report;
}

std::string FormatPredictionTable(const std::vector<StageTelemetry>& stages) {
  const PredictionReport report = BuildPredictionReport(stages);
  std::ostringstream out;
  char line[160];
  std::size_t err_idx = 0;
  for (const StageTelemetry& t : stages) {
    out << t.label << "\n";
    if (!t.predicted.present) {
      out << "  (no cost-model prediction recorded)\n";
      continue;
    }
    const StagePrediction& p = t.predicted;
    std::snprintf(line, sizeof(line),
                  "  %s %s  tasks=%d  threads=%d  wall=%.3fs  modeled=%s\n",
                  p.operator_kind.c_str(), p.cuboid.ToString().c_str(),
                  t.actual.num_tasks, t.threads, t.wall_seconds,
                  HumanSeconds(t.actual.elapsed_seconds).c_str());
    out << line;
    const StagePredictionError& err = report.stages[err_idx++];
    auto row = [&](const char* metric, const std::string& predicted,
                   const std::string& actual, double ratio) {
      std::snprintf(line, sizeof(line), "  %-6s %14s -> %14s   x%s\n",
                    metric, predicted.c_str(), actual.c_str(),
                    Fixed(ratio).c_str());
      out << line;
    };
    row("net", HumanBytes(p.net_bytes),
        HumanBytes(static_cast<double>(t.actual.consolidation_bytes)),
        err.net_ratio);
    row("agg", HumanBytes(p.agg_bytes),
        HumanBytes(static_cast<double>(t.actual.aggregation_bytes)),
        err.agg_ratio);
    row("flops", HumanFlops(p.flops),
        HumanFlops(static_cast<double>(t.actual.flops)), err.flops_ratio);
    row("mem", HumanBytes(p.mem_per_task),
        HumanBytes(static_cast<double>(t.actual.max_task_memory)),
        err.mem_ratio);
  }
  std::snprintf(line, sizeof(line),
                "worst drift: x%.2f (max |log2 ratio| %.3f) over %zu "
                "predicted stage(s)\n",
                std::pow(2.0, report.max_abs_log2), report.max_abs_log2,
                report.stages.size());
  out << line;
  return out.str();
}

}  // namespace fuseme
