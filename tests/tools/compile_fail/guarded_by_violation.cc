// Negative compile fixture: writes a GUARDED_BY field without holding
// its mutex.  Under Clang with -Wthread-safety -Werror this must NOT
// compile ("writing variable 'value_' requires holding mutex 'mu_'");
// under any compiler without the analysis it is well-formed C++ and the
// control build proves the harness accepts the locked twin
// (control_ok.cc).

#include "common/synchronization.h"

namespace fixture {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: mu_ not held.
  }

 private:
  fuseme::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

void Drive() {
  Counter counter;
  counter.Increment();
}

}  // namespace fixture
