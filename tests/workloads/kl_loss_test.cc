#include <cmath>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/reference.h"
#include "matrix/generators.h"
#include "workloads/queries.h"

namespace fuseme {
namespace {

constexpr std::int64_t kBs = 8;

TEST(KlLossTest, MatchesHandComputedDivergence) {
  const std::int64_t m = 20, n = 16, k = 4;
  KlLossQuery q = BuildKlLoss(m, n, k, /*x_nnz=*/m * n / 5);
  SparseMatrix x = RandomSparse(m, n, 0.2, /*seed=*/1, 1.0, 3.0);
  DenseMatrix u = RandomDense(m, k, 2, 0.2, 1.0);
  DenseMatrix v = RandomDense(k, n, 3, 0.2, 1.0);
  DenseMatrix xd = x.ToDense();

  auto result =
      ReferenceEval(q.dag, q.loss, {{q.X, xd}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(std::isnan((*result)(0, 0)));

  double expected = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (xd(i, j) == 0.0) continue;
      double uv = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) uv += u(i, kk) * v(kk, j);
      expected += xd(i, j) * std::log(xd(i, j) / uv) - xd(i, j) + uv;
    }
  }
  EXPECT_NEAR((*result)(0, 0), expected, 1e-9);
}

TEST(KlLossTest, ZeroDivergenceAtExactFactorization) {
  const std::int64_t m = 12, n = 10, k = 3;
  DenseMatrix u = RandomDense(m, k, 5, 0.5, 1.0);
  DenseMatrix v = RandomDense(k, n, 6, 0.5, 1.0);
  DenseMatrix x(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double uv = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) uv += u(i, kk) * v(kk, j);
      x(i, j) = uv;  // X == U×V everywhere
    }
  }
  KlLossQuery q = BuildKlLoss(m, n, k, m * n);
  auto loss = ReferenceEval(q.dag, q.loss, {{q.X, x}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR((*loss)(0, 0), 0.0, 1e-10);
}

TEST(KlLossTest, AllSystemsAgree) {
  const std::int64_t m = 24, n = 16, k = 4;
  KlLossQuery q = BuildKlLoss(m, n, k, m * n / 5);
  SparseMatrix x = RandomSparse(m, n, 0.2, /*seed=*/7, 1.0, 3.0);
  DenseMatrix u = RandomDense(m, k, 8, 0.2, 1.0);
  DenseMatrix v = RandomDense(k, n, 9, 0.2, 1.0);
  std::map<NodeId, BlockedMatrix> inputs;
  inputs[q.X] = BlockedMatrix::FromSparse(x, kBs);
  inputs[q.U] = BlockedMatrix::FromDense(u, kBs);
  inputs[q.V] = BlockedMatrix::FromDense(v, kBs);
  auto expected = ReferenceEval(q.dag, q.loss,
                                {{q.X, x.ToDense()}, {q.U, u}, {q.V, v}});
  ASSERT_TRUE(expected.ok());

  EngineOptions options;
  options.cluster.num_nodes = 2;
  options.cluster.tasks_per_node = 3;
  options.cluster.block_size = kBs;
  for (SystemMode mode :
       {SystemMode::kFuseMe, SystemMode::kSystemDs, SystemMode::kDistMe}) {
    options.system = mode;
    Engine engine(options);
    auto run = engine.Run(q.dag, inputs);
    ASSERT_TRUE(run.report.ok())
        << SystemModeName(mode) << ": " << run.report.status;
    EXPECT_NEAR(run.outputs.at(q.loss).blocks().ToDense()(0, 0),
                (*expected)(0, 0), 1e-8)
        << SystemModeName(mode);
  }
}

}  // namespace
}  // namespace fuseme
