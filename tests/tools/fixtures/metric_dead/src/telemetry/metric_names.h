// Negative fixture: a catalogue entry nothing references.  fuseme_lint
// must flag kDead (lint-metric-dead); kLive is referenced from live.cc.
#ifndef FIXTURE_METRIC_DEAD_METRIC_NAMES_H_
#define FIXTURE_METRIC_DEAD_METRIC_NAMES_H_

namespace fuseme::metric_names {

inline constexpr char kLive[] = "fuseme_live_total";
inline constexpr char kDead[] = "fuseme_dead_total";

}  // namespace fuseme::metric_names

#endif  // FIXTURE_METRIC_DEAD_METRIC_NAMES_H_
