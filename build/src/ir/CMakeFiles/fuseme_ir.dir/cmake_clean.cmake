file(REMOVE_RECURSE
  "CMakeFiles/fuseme_ir.dir/dag.cc.o"
  "CMakeFiles/fuseme_ir.dir/dag.cc.o.d"
  "CMakeFiles/fuseme_ir.dir/expr.cc.o"
  "CMakeFiles/fuseme_ir.dir/expr.cc.o.d"
  "CMakeFiles/fuseme_ir.dir/parser.cc.o"
  "CMakeFiles/fuseme_ir.dir/parser.cc.o.d"
  "CMakeFiles/fuseme_ir.dir/printer.cc.o"
  "CMakeFiles/fuseme_ir.dir/printer.cc.o.d"
  "libfuseme_ir.a"
  "libfuseme_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuseme_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
