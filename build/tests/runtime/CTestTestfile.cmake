# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/build/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime/stage_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/distributed_matrix_test[1]_include.cmake")
