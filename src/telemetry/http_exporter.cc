#include "telemetry/http_exporter.h"

namespace fuseme {

HttpExporter::HttpExporter(Options options, const MetricsRegistry* metrics,
                           const EventJournal* journal,
                           const MetricsSampler* sampler)
    : metrics_(metrics),
      journal_(journal),
      sampler_(sampler),
      server_(HttpServer::Options{options.port, /*max_request_bytes=*/8192},
              [this](const HttpRequest& request) { return Handle(request); }) {
}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() { return server_.Start(); }

void HttpExporter::Stop() { server_.Stop(); }

HttpResponse HttpExporter::Handle(const HttpRequest& request) const {
  HttpResponse response;
  if (request.path == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics" && metrics_ != nullptr) {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = metrics_->Snapshot().ToPrometheusText();
    return response;
  }
  if (request.path == "/varz" && metrics_ != nullptr) {
    response.content_type = "application/json";
    response.body = metrics_->Snapshot().ToJson();
    return response;
  }
  if (request.path == "/flightz" && journal_ != nullptr) {
    response.content_type = "application/json";
    response.body = journal_->DumpJson();
    return response;
  }
  if (request.path == "/seriesz" && sampler_ != nullptr) {
    response.content_type = "application/json";
    response.body = sampler_->ToJson();
    return response;
  }
  response.status = 404;
  response.body = "unknown endpoint " + request.path +
                  " (try /healthz /metrics /varz /flightz /seriesz)\n";
  return response;
}

}  // namespace fuseme
