#include "runtime/prefetcher.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace fuseme {
namespace {

PrefetchKey Key(int node, std::int64_t bi, std::int64_t bj) {
  PrefetchKey key;
  key.node = node;
  key.bi = bi;
  key.bj = bj;
  return key;
}

/// Source producing a Constant block whose value encodes the key, so the
/// consumer can verify it got the right copy.
BlockPrefetcher::Source CountingSource(std::atomic<int>* calls) {
  return [calls](const PrefetchKey& key) -> Result<Block> {
    if (calls != nullptr) calls->fetch_add(1);
    const double value =
        static_cast<double>(key.node) * 100.0 +
        static_cast<double>(key.bi) * 10.0 + static_cast<double>(key.bj);
    return Block::Constant(2, 2, value);
  };
}

double BlockValue(const Block& block) { return block.ToDense()(0, 0); }

TEST(PrefetcherTest, TakeReturnsStagedCopy) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(&calls), opts);

  prefetcher.Prefetch(Key(1, 0, 0));
  prefetcher.Prefetch(Key(1, 0, 1));
  auto a = prefetcher.Take(Key(1, 0, 0));
  auto b = prefetcher.Take(Key(1, 0, 1));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(a->ok());
  ASSERT_TRUE(b->ok());
  EXPECT_DOUBLE_EQ(BlockValue(**a), 100.0);
  EXPECT_DOUBLE_EQ(BlockValue(**b), 101.0);
  EXPECT_EQ(calls.load(), 2);

  const PrefetchCounters c = prefetcher.counters();
  EXPECT_EQ(c.issued, 2);
  EXPECT_EQ(c.ready + c.waited + c.stolen, 2);
  EXPECT_EQ(c.cancelled, 0);
  EXPECT_EQ(prefetcher.InFlight(), 0);
}

TEST(PrefetcherTest, TakeOfUnissuedKeyIsMiss) {
  ThreadPool pool(1);
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(nullptr), opts);
  EXPECT_FALSE(prefetcher.Take(Key(1, 0, 0)).has_value());
}

TEST(PrefetcherTest, DuplicatePrefetchIssuesOneCopy) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(&calls), opts);
  prefetcher.Prefetch(Key(3, 1, 2));
  prefetcher.Prefetch(Key(3, 1, 2));
  auto got = prefetcher.Take(Key(3, 1, 2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(prefetcher.counters().issued, 1);
  // Consumed: a second Take is a miss (the caller would fetch directly).
  EXPECT_FALSE(prefetcher.Take(Key(3, 1, 2)).has_value());
}

TEST(PrefetcherTest, NullPoolRunsCopiesInline) {
  std::atomic<int> calls{0};
  BlockPrefetcher prefetcher(CountingSource(&calls),
                             BlockPrefetcher::Options{});
  prefetcher.Prefetch(Key(2, 0, 0));
  EXPECT_EQ(calls.load(), 1);  // ran synchronously on this thread
  auto got = prefetcher.Take(Key(2, 0, 0));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_DOUBLE_EQ(BlockValue(**got), 200.0);
  EXPECT_EQ(prefetcher.counters().ready, 1);
}

TEST(PrefetcherTest, StealRunsQueuedCopyOnConsumer) {
  // One worker, blocked on a gate task: the staged copy stays kQueued, so
  // Take must steal it inline instead of waiting for the pool.
  ThreadPool pool(1);
  Mutex mu;
  CondVar cv;
  bool release = false;  // guarded by mu (local: annotation needs a member)
  auto gate = pool.Submit([&]() NO_THREAD_SAFETY_ANALYSIS {
    // Captured-local protocol the analysis cannot attribute: mu guards
    // `release`, but GUARDED_BY cannot annotate stack locals.
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
  });

  std::atomic<int> calls{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(&calls), opts);
  prefetcher.Prefetch(Key(4, 2, 1));
  auto got = prefetcher.Take(Key(4, 2, 1));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_DOUBLE_EQ(BlockValue(**got), 421.0);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(prefetcher.counters().stolen, 1);

  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  gate.wait();
}

TEST(PrefetcherTest, CancelPendingDropsQueuedCopies) {
  ThreadPool pool(1);
  Mutex mu;
  CondVar cv;
  bool release = false;  // guarded by mu (local: annotation needs a member)
  auto gate = pool.Submit([&]() NO_THREAD_SAFETY_ANALYSIS {
    // Captured-local protocol the analysis cannot attribute: mu guards
    // `release`, but GUARDED_BY cannot annotate stack locals.
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
  });

  std::atomic<int> calls{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(&calls), opts);
  prefetcher.Prefetch(Key(5, 0, 0));
  prefetcher.Prefetch(Key(5, 0, 1));
  prefetcher.CancelPending();
  EXPECT_EQ(prefetcher.InFlight(), 0);
  EXPECT_EQ(prefetcher.counters().cancelled, 2);

  {
    MutexLock lock(mu);
    release = true;
  }
  cv.NotifyAll();
  gate.wait();
  // The pool tasks observe the cancelled state and never call the source.
  prefetcher.Drain();
  EXPECT_EQ(calls.load(), 0);
  EXPECT_FALSE(prefetcher.Take(Key(5, 0, 0)).has_value());
}

TEST(PrefetcherTest, SourceErrorSurfacesOnTake) {
  ThreadPool pool(1);
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(
      [](const PrefetchKey&) -> Result<Block> {
        return Status::InvalidArgument("no such block");
      },
      opts);
  prefetcher.Prefetch(Key(6, 0, 0));
  auto got = prefetcher.Take(Key(6, 0, 0));
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok());
  EXPECT_TRUE(got->status().IsInvalidArgument());
}

TEST(PrefetcherTest, DrainCountsUnconsumedCopiesAsCancelled) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  BlockPrefetcher prefetcher(CountingSource(&calls), opts);
  prefetcher.Prefetch(Key(7, 0, 0));
  prefetcher.Prefetch(Key(7, 0, 1));
  prefetcher.Prefetch(Key(7, 0, 2));
  auto got = prefetcher.Take(Key(7, 0, 1));
  ASSERT_TRUE(got.has_value());
  prefetcher.Drain();
  const PrefetchCounters c = prefetcher.counters();
  EXPECT_EQ(c.issued, 3);
  EXPECT_EQ(c.cancelled, 2);  // over-prefetched blocks show up here
  EXPECT_EQ(prefetcher.InFlight(), 0);
}

TEST(PrefetcherTest, RecordsMetricsWhenRegistryPresent) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  opts.metrics = &metrics;
  BlockPrefetcher prefetcher(CountingSource(nullptr), opts);
  prefetcher.Prefetch(Key(8, 0, 0));
  prefetcher.Prefetch(Key(8, 0, 1));
  ASSERT_TRUE(prefetcher.Take(Key(8, 0, 0)).has_value());
  prefetcher.Drain();
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter(metric_names::kPrefetchIssued)->value(), 2.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter(metric_names::kPrefetchCancelled)->value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge(metric_names::kPrefetchInFlight)->value(), 0.0);
}

TEST(PrefetcherTest, CopyHookSeesEveryConsumedOutcome) {
  ThreadPool pool(2);
  std::atomic<int> started{0};
  std::atomic<int> completed{0};
  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  opts.copy_hook = [&](const PrefetchKey&) {
    started.fetch_add(1);
    return [&](PrefetchOutcome) { completed.fetch_add(1); };
  };
  BlockPrefetcher prefetcher(CountingSource(nullptr), opts);
  prefetcher.Prefetch(Key(9, 0, 0));
  prefetcher.Prefetch(Key(9, 1, 0));
  ASSERT_TRUE(prefetcher.Take(Key(9, 0, 0)).has_value());
  ASSERT_TRUE(prefetcher.Take(Key(9, 1, 0)).has_value());
  prefetcher.Drain();
  EXPECT_EQ(started.load(), 2);
  EXPECT_EQ(completed.load(), 2);
}

// TSan hammer: concurrent Prefetch / Take / CancelPending across several
// consumer threads and prefetchers sharing one pool, exercising the
// queued-steal CAS, the in-flight wait, and destruction with copies still
// running.  scripts/run_tsan.sh runs this under ThreadSanitizer.
TEST(PrefetcherHammerTest, ConcurrentFetchCommitCancel) {
  ThreadPool pool(4);
  constexpr int kRounds = 20;
  constexpr int kConsumers = 4;
  constexpr int kKeysPerConsumer = 16;

  BlockPrefetcher::Options opts;
  opts.pool = &pool;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> calls{0};
    auto prefetcher =
        std::make_unique<BlockPrefetcher>(CountingSource(&calls), opts);
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&, c] {
        for (int i = 0; i < kKeysPerConsumer; ++i) {
          const PrefetchKey key = Key(c, i, round % 3);
          prefetcher->Prefetch(key);
          if (i % 5 == 4) prefetcher->CancelPending();
          auto got = prefetcher->Take(key);
          if (got.has_value()) {
            ASSERT_TRUE(got->ok());
            EXPECT_DOUBLE_EQ(
                BlockValue(**got),
                c * 100.0 + i * 10.0 + static_cast<double>(round % 3));
          }
        }
      });
    }
    for (std::thread& t : consumers) t.join();
    // Destroy with whatever is still staged; the destructor must drain
    // in-flight copies before the pool outlives the round.
    prefetcher.reset();
  }
}

}  // namespace
}  // namespace fuseme
