#include "runtime/fault_injector.h"

#include <algorithm>

namespace fuseme {

namespace {

/// splitmix64: a high-quality 64-bit mixer — the decisions must be stable
/// across platforms, so only integer arithmetic is used.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Domain-separation tags so the task-failure, failure-point, and
// straggler draws are independent streams of the same seed.
constexpr std::uint64_t kTagTaskFailure = 0x7461736b6661696cULL;  // "taskfail"
constexpr std::uint64_t kTagFailurePoint = 0x6661696c706f696eULL;
constexpr std::uint64_t kTagStraggler = 0x7374726167676c65ULL;    // "straggle"

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  oom_stages_.insert(spec_.oom_stages.begin(), spec_.oom_stages.end());
}

double FaultInjector::Uniform(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) const {
  const std::uint64_t h =
      SplitMix64(spec_.seed ^ SplitMix64(a ^ SplitMix64(b ^ SplitMix64(c))));
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

InjectedFault FaultInjector::TaskFault(int stage, std::int64_t item,
                                       int attempt) const {
  if (spec_.task_failure_probability <= 0.0) return InjectedFault::kNone;
  const auto s = static_cast<std::uint64_t>(stage);
  const auto key = (static_cast<std::uint64_t>(item) << 8) ^
                   static_cast<std::uint64_t>(attempt);
  if (Uniform(kTagTaskFailure, s, key) >= spec_.task_failure_probability) {
    return InjectedFault::kNone;
  }
  return Uniform(kTagFailurePoint, s, key) < 0.5
             ? InjectedFault::kLostAtLaunch
             : InjectedFault::kLostBeforeCommit;
}

double FaultInjector::StragglerFactor(int stage, std::int64_t task) const {
  if (spec_.straggler_probability <= 0.0) return 1.0;
  const bool slow = Uniform(kTagStraggler, static_cast<std::uint64_t>(stage),
                            static_cast<std::uint64_t>(task)) <
                    spec_.straggler_probability;
  return slow ? std::max(spec_.straggler_slowdown, 1.0) : 1.0;
}

double RetryPolicy::BackoffSeconds(int retry_index) const {
  double backoff = backoff_base_seconds;
  for (int i = 0; i < retry_index && backoff < backoff_max_seconds; ++i) {
    backoff *= 2.0;
  }
  return std::min(backoff, backoff_max_seconds);
}

}  // namespace fuseme
