#include "ir/expr.h"

#include <gtest/gtest.h>

#include "ir/printer.h"

namespace fuseme {
namespace {

TEST(ExprTest, ArithmeticBuildsBinaryNodes) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 4, 4);
  Expr b = Expr::Input(&dag, "B", 4, 4);
  Expr c = (a + b) * (a - b) / b;
  const Node& n = c.node();
  EXPECT_EQ(n.kind, OpKind::kBinary);
  EXPECT_EQ(n.binary_fn, BinaryFn::kDiv);
  EXPECT_EQ(ExprToString(dag, c.id()), "(((A + B) * (A - B)) / B)");
}

TEST(ExprTest, ScalarMixing) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 4, 4);
  Expr c = 2.0 * a + 1.0;
  EXPECT_EQ(c.node().rows, 4);
  EXPECT_EQ(ExprToString(dag, c.id()), "((2 * A) + 1)");
}

TEST(ExprTest, NmfPatternShapes) {
  // X * log(U x T(V) + eps): the paper's running example (Fig. 3).
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 30, 30, 90);
  Expr U = Expr::Input(&dag, "U", 30, 2);
  Expr V = Expr::Input(&dag, "V", 30, 2);
  Expr out = (X * Log(MatMul(U, T(V)) + 1e-8)).MarkOutput();
  EXPECT_EQ(out.node().rows, 30);
  EXPECT_EQ(out.node().cols, 30);
  ASSERT_EQ(dag.outputs().size(), 1u);
  EXPECT_EQ(dag.outputs()[0], out.id());
}

TEST(ExprTest, WeightedSquaredLoss) {
  // sum((X != 0) * (X - U x V)^2): Fig. 1(a).
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 20, 20, 40);
  Expr U = Expr::Input(&dag, "U", 20, 3);
  Expr V = Expr::Input(&dag, "V", 3, 20);
  Expr loss = Sum(NotZero(X) * Square(X - MatMul(U, V)));
  EXPECT_EQ(loss.node().kind, OpKind::kUnaryAgg);
  EXPECT_EQ(loss.node().rows, 1);
  EXPECT_EQ(loss.node().cols, 1);
}

TEST(ExprTest, AggregationsShapes) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 5, 7);
  EXPECT_EQ(RowSums(a).node().rows, 5);
  EXPECT_EQ(RowSums(a).node().cols, 1);
  EXPECT_EQ(ColSums(a).node().cols, 7);
  EXPECT_EQ(Sum(a).node().rows, 1);
  EXPECT_EQ(MinAgg(a).node().agg_fn, AggFn::kMin);
  EXPECT_EQ(MaxAgg(a).node().agg_fn, AggFn::kMax);
}

TEST(ExprTest, UnaryHelpers) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 2);
  EXPECT_EQ(Exp(a).node().unary_fn, UnaryFn::kExp);
  EXPECT_EQ(Log(a).node().unary_fn, UnaryFn::kLog);
  EXPECT_EQ(Sqrt(a).node().unary_fn, UnaryFn::kSqrt);
  EXPECT_EQ(Square(a).node().unary_fn, UnaryFn::kSquare);
  EXPECT_EQ(Abs(a).node().unary_fn, UnaryFn::kAbs);
  EXPECT_EQ(Sigmoid(a).node().unary_fn, UnaryFn::kSigmoid);
  EXPECT_EQ(Relu(a).node().unary_fn, UnaryFn::kRelu);
  EXPECT_EQ(NotZero(a).node().unary_fn, UnaryFn::kNotZero);
  EXPECT_EQ(Neg(a).node().unary_fn, UnaryFn::kNeg);
}

TEST(ExprTest, MinMaxPowNotEqual) {
  Dag dag;
  Expr a = Expr::Input(&dag, "A", 2, 2);
  Expr b = Expr::Input(&dag, "B", 2, 2);
  EXPECT_EQ(Min(a, b).node().binary_fn, BinaryFn::kMin);
  EXPECT_EQ(Max(a, b).node().binary_fn, BinaryFn::kMax);
  EXPECT_EQ(Pow(a, b).node().binary_fn, BinaryFn::kPow);
  EXPECT_EQ(NotEqual(a, b).node().binary_fn, BinaryFn::kNotEqual);
}

TEST(ExprTest, GnmfNumeratorDag) {
  // U * (T(V) x X): part of Eq. (6).
  Dag dag;
  Expr X = Expr::Input(&dag, "X", 100, 80, 400);
  Expr U = Expr::Input(&dag, "U", 20, 80);
  Expr V = Expr::Input(&dag, "V", 100, 20);
  Expr numerator = U * MatMul(T(V), X);
  EXPECT_EQ(numerator.node().rows, 20);
  EXPECT_EQ(numerator.node().cols, 80);
}

}  // namespace
}  // namespace fuseme
